//! Fault-injection suite for the resource governor: every budget limit
//! must fire deterministically with the matching structured [`ErrorKind`]
//! and a populated [`ResourceReport`]; cancellation must stop a running
//! loop from another thread; a panicking user-defined accumulator must be
//! contained without poisoning the engine; and a within-budget query must
//! return results identical to an ungoverned run.

use accum::{AccumError, UserAccum};
use gsql_core::{stdlib, Budget, Engine, ErrorKind, PathSemantics};
use pgraph::generators::{diamond_chain, sales_graph};
use pgraph::value::Value;
use std::time::Duration;

/// The Table-1 query: count paths v0 → v<n> on the diamond chain.
fn qn_args(n: usize) -> [(&'static str, Value); 2] {
    [
        ("srcName", Value::from("v0")),
        ("tgtName", Value::from(format!("v{n}"))),
    ]
}

// ---- deadlines --------------------------------------------------------------

#[test]
fn deadline_fires_mid_bfs() {
    // Counting BFS on a large chain: polynomial, but not within 0 ns.
    let (g, _) = diamond_chain(20_000);
    let err = Engine::new(&g)
        .with_budget(Budget::default().with_deadline(Duration::ZERO))
        .run_text(&stdlib::qn("V", "E"), &qn_args(20_000))
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::DeadlineExceeded);
    let report = err.resource_report().expect("deadline errors carry a report");
    assert_eq!(report.paths_enumerated, 0, "counting BFS materializes no paths");
}

#[test]
fn deadline_fires_mid_enumeration() {
    // NRE enumeration on diamond_chain(35) would take ~2^35 steps; a short
    // deadline must abort it from inside the DFS kernel.
    let (g, _) = diamond_chain(35);
    let err = Engine::new(&g)
        .with_semantics(PathSemantics::NonRepeatedEdge)
        .with_budget(Budget::default().with_deadline(Duration::from_millis(50)))
        .run_text(&stdlib::qn("V", "E"), &qn_args(35))
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::DeadlineExceeded);
    let report = err.resource_report().unwrap();
    assert!(report.elapsed >= Duration::from_millis(50));
    // Well under a second: the deadline interrupted the kernel mid-flight.
    assert!(report.elapsed < Duration::from_secs(30));
}

// ---- deterministic budgets --------------------------------------------------

#[test]
fn path_budget_trips_deterministically() {
    let (g, _) = diamond_chain(30);
    for _ in 0..3 {
        let err = Engine::new(&g)
            .with_semantics(PathSemantics::NonRepeatedEdge)
            .with_enum_budget(10_000)
            .run_text(&stdlib::qn("V", "E"), &qn_args(30))
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::PathBudget);
        // The counter trips at exactly limit + 1, every run.
        assert_eq!(err.resource_report().unwrap().paths_enumerated, 10_001);
    }
}

#[test]
fn zero_path_budget_means_zero_paths() {
    let (g, _) = diamond_chain(5);
    let err = Engine::new(&g)
        .with_semantics(PathSemantics::NonRepeatedEdge)
        .with_enum_budget(0)
        .run_text(&stdlib::qn("V", "E"), &qn_args(5))
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::PathBudget);
    assert_eq!(err.resource_report().unwrap().paths_enumerated, 1);
}

#[test]
fn row_limit_trips_with_structured_error() {
    let g = sales_graph();
    // Unconstrained 3-variable pattern: plenty of binding rows.
    let q = r#"
        CREATE QUERY Wide () {
          SumAccum<int> @@n;
          S = SELECT c
              FROM Customer:c -(Bought>:b)- Product:p
              ACCUM @@n += 1;
          PRINT @@n;
        }
    "#;
    let err = Engine::new(&g)
        .with_budget(Budget::default().with_max_binding_rows(2))
        .run_text(q, &[])
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::RowLimit);
    assert!(err.resource_report().unwrap().rows_materialized > 2);
}

#[test]
fn memory_limit_trips_on_growing_accumulator() {
    let g = sales_graph();
    let q = r#"
        CREATE QUERY Hoard () {
          ListAccum<string> @@all;
          S = SELECT c
              FROM Customer:c -(Bought>:b)- Product:p
              ACCUM @@all += p.category;
          PRINT @@all.size();
        }
    "#;
    let err = Engine::new(&g)
        .with_budget(Budget::default().with_max_accum_bytes(64))
        .run_text(q, &[])
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::MemoryLimit);
    assert!(err.resource_report().unwrap().peak_accum_bytes > 64);
    // The same query under a generous limit succeeds.
    let out = Engine::new(&g)
        .with_budget(Budget::default().with_max_accum_bytes(1 << 20))
        .run_text(q, &[])
        .unwrap();
    assert!(out.report.peak_accum_bytes > 64);
}

#[test]
fn iteration_limit_stops_unbounded_while() {
    let g = sales_graph();
    let q = r#"
        CREATE QUERY Spin () {
          SumAccum<int> @@i;
          WHILE true DO
            @@i += 1;
          END;
          PRINT @@i;
        }
    "#;
    let err = Engine::new(&g)
        .with_budget(Budget::default().with_max_while_iters(1_000))
        .run_text(q, &[])
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::IterationLimit);
    assert_eq!(err.resource_report().unwrap().while_iterations, 1_001);
}

// ---- cancellation -----------------------------------------------------------

#[test]
fn cancellation_stops_running_while_loop() {
    let g = sales_graph();
    let engine = Engine::new(&g);
    let handle = engine.cancel_handle();
    let q = r#"
        CREATE QUERY Spin () {
          SumAccum<int> @@i;
          WHILE true DO
            @@i += 1;
          END;
          PRINT @@i;
        }
    "#;
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        handle.cancel();
    });
    let err = engine.run_text(q, &[]).unwrap_err();
    canceller.join().unwrap();
    assert_eq!(err.kind(), ErrorKind::Cancelled);
    assert!(err.resource_report().unwrap().while_iterations > 0);

    // After reset, the engine is usable again.
    engine.cancel_handle().reset();
    let ok = engine
        .run_text("CREATE QUERY G () { PRINT 1 + 1; }", &[])
        .unwrap();
    assert_eq!(ok.prints, vec!["expr = 2"]);
}

// ---- worker-panic containment -----------------------------------------------

/// A user accumulator that panics in its combiner once fed enough inputs
/// — models a buggy user extension blowing up mid-Map-phase.
#[derive(Debug, Clone, Default)]
struct BombAccum {
    count: u64,
}

impl UserAccum for BombAccum {
    fn combine(&mut self, _input: Value) -> Result<(), AccumError> {
        self.count += 1;
        if self.count > 3 {
            panic!("BombAccum exploded");
        }
        Ok(())
    }

    fn assign(&mut self, _value: Value) -> Result<(), AccumError> {
        Ok(())
    }

    fn value(&self) -> Value {
        Value::Int(self.count as i64)
    }

    fn order_invariant(&self) -> bool {
        true
    }

    fn clone_box(&self) -> Box<dyn UserAccum> {
        Box::new(self.clone())
    }
}

#[test]
fn panicking_user_accum_is_contained() {
    // ≥512 customers so the Map phase actually goes parallel
    // (PARALLEL_THRESHOLD), with panics raised on worker threads.
    let g = pgraph::generators::random_sales_graph(2_000, 100, 4, 7);
    let q = r#"
        CREATE QUERY Boom () {
          BombAccum @@b;
          S = SELECT c
              FROM Customer:c -(Bought>:b)- Product:p
              ACCUM @@b += 1;
          PRINT @@b;
        }
    "#;
    for parallelism in [1usize, 4] {
        let mut engine = Engine::new(&g).with_parallelism(parallelism);
        engine
            .registry_mut()
            .register("BombAccum", || Box::<BombAccum>::default());
        let err = engine.run_text(q, &[]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::WorkerPanic, "parallelism={parallelism}");
        assert!(
            err.to_string().contains("BombAccum exploded"),
            "panic payload should be preserved: {err}"
        );
        assert!(err.resource_report().is_some());

        // The panic must not poison the engine: the same engine keeps
        // serving queries.
        let ok = engine
            .run_text("CREATE QUERY G () { PRINT 6 * 7; }", &[])
            .unwrap();
        assert_eq!(ok.prints, vec!["expr = 42"]);
    }
}

// ---- governor transparency --------------------------------------------------

#[test]
fn within_budget_results_identical_with_and_without_governor() {
    let generous = Budget::default()
        .with_deadline(Duration::from_secs(120))
        .with_max_binding_rows(10_000_000)
        .with_max_paths(10_000_000)
        .with_max_accum_bytes(1 << 30)
        .with_max_while_iters(1_000_000);

    // Aggregation workload on the sales graph + enumerative path workload
    // on the diamond chain.
    let sales = sales_graph();
    let (chain, _) = diamond_chain(12);
    let qn = stdlib::qn("V", "E");
    type Case<'a> = (&'a pgraph::graph::Graph, PathSemantics, String, Vec<(&'a str, Value)>);
    let cases: [Case; 2] = [
        (
            &sales,
            PathSemantics::AllShortestPaths,
            stdlib::example5_multi_output().to_string(),
            vec![],
        ),
        (
            &chain,
            PathSemantics::NonRepeatedEdge,
            qn,
            qn_args(12).to_vec(),
        ),
    ];
    for (g, sem, q, args) in &cases {
        let free = Engine::new(g).with_semantics(*sem).run_text(q, args).unwrap();
        let governed = Engine::new(g)
            .with_semantics(*sem)
            .with_budget(generous.clone())
            .run_text(q, args)
            .unwrap();
        // Everything but the (timing-dependent) resource report must be
        // bit-identical.
        assert_eq!(free.tables, governed.tables);
        assert_eq!(free.prints, governed.prints);
        assert_eq!(free.returned, governed.returned);
        assert_eq!(free.stats, governed.stats);
        // Both reports counted the same materialization work.
        assert_eq!(free.report.rows_materialized, governed.report.rows_materialized);
        assert_eq!(free.report.paths_enumerated, governed.report.paths_enumerated);
    }
}

#[test]
fn success_reports_are_populated() {
    let (g, _) = diamond_chain(10);
    let out = Engine::new(&g)
        .with_semantics(PathSemantics::NonRepeatedEdge)
        .run_text(&stdlib::qn("V", "E"), &qn_args(10))
        .unwrap();
    assert!(out.report.rows_materialized > 0);
    assert_eq!(out.report.paths_enumerated, out.stats.paths_enumerated);
    assert!(out.report.elapsed > Duration::ZERO);
}

// ---- WHILE LIMIT edge cases -------------------------------------------------

#[test]
fn negative_while_limit_is_rejected() {
    let g = sales_graph();
    let err = Engine::new(&g)
        .run_text(
            "CREATE QUERY G () { SumAccum<int> @@i; WHILE true LIMIT -3 DO @@i += 1; END; }",
            &[],
        )
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Runtime);
    assert!(err.to_string().contains("non-negative"), "{err}");
}

#[test]
fn non_integer_while_limit_is_rejected() {
    let g = sales_graph();
    let err = Engine::new(&g)
        .run_text(
            "CREATE QUERY G () { SumAccum<int> @@i; WHILE true LIMIT 2.5 DO @@i += 1; END; }",
            &[],
        )
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Runtime);
}

#[test]
fn negative_select_limit_is_rejected() {
    let g = sales_graph();
    let err = Engine::new(&g)
        .run_text(
            "CREATE QUERY G () { S = SELECT c FROM Customer:c LIMIT -1; PRINT S.size(); }",
            &[],
        )
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Runtime);
    assert!(err.to_string().contains("non-negative integer LIMIT"), "{err}");
}

#[test]
fn non_integer_select_limit_is_rejected() {
    let g = sales_graph();
    let err = Engine::new(&g)
        .run_text(
            "CREATE QUERY G () { S = SELECT c FROM Customer:c LIMIT 1.5; PRINT S.size(); }",
            &[],
        )
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Runtime);
    assert!(err.to_string().contains("non-negative integer LIMIT"), "{err}");
}

#[test]
fn zero_select_limit_yields_empty_set() {
    let g = sales_graph();
    let out = Engine::new(&g)
        .run_text(
            "CREATE QUERY G () { S = SELECT c FROM Customer:c LIMIT 0; PRINT S.size(); }",
            &[],
        )
        .unwrap();
    assert_eq!(out.prints, vec!["S.size() = 0"]);
}
