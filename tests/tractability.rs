//! Section 7: the tractable-class boundary is enforced, and stepping
//! outside it is a reported error (or an explicit choice of enumerative
//! semantics) — never a silent wrong answer.

use gsql_core::{Engine, Error, PathSemantics};
use pgraph::generators::diamond_chain;
use pgraph::value::Value;

/// Edge variables may not bind inside Kleene DARPEs (variables in the
/// scope of a Kleene star are outside the tractable class).
#[test]
fn edge_var_in_kleene_is_compile_error() {
    let (g, _) = diamond_chain(3);
    let err = Engine::new(&g)
        .run_text(
            r#"
            CREATE QUERY G () {
              SumAccum<int> @@n;
              S = SELECT t FROM V:s -(E>*:e)- V:t ACCUM @@n += 1;
            }
            "#,
            &[],
        )
        .unwrap_err();
    assert!(matches!(err, Error::Compile(_)), "{err}");
    assert!(err.to_string().contains("Kleene"));
}

/// ListAccum fed from a Kleene pattern under counting semantics is
/// rejected statically...
#[test]
fn list_accum_with_kleene_rejected_under_counting() {
    let (g, _) = diamond_chain(3);
    let q = r#"
        CREATE QUERY G () {
          ListAccum<int> @@paths;
          S = SELECT t FROM V:s -(E>*)- V:t ACCUM @@paths += 1;
        }
    "#;
    let err = Engine::new(&g).run_text(q, &[]).unwrap_err();
    assert!(matches!(err, Error::Compile(_)), "{err}");
    assert!(err.to_string().contains("multiplicity"), "{err}");
}

/// ...but allowed under an enumerative semantics, where each legal path
/// is materialized anyway (the user has opted into exponential cost).
#[test]
fn list_accum_with_kleene_allowed_under_enumeration() {
    let (g, _) = diamond_chain(3);
    let q = r#"
        CREATE QUERY G (string srcName, string tgtName) {
          ListAccum<int> @@ones;
          S = SELECT t FROM V:s -(E>*)- V:t
              WHERE s.name == srcName AND t.name == tgtName
              ACCUM @@ones += 1;
          PRINT @@ones.size() AS paths;
        }
    "#;
    let out = Engine::new(&g)
        .with_semantics(PathSemantics::NonRepeatedEdge)
        .run_text(
            q,
            &[("srcName", Value::from("v0")), ("tgtName", Value::from("v3"))],
        )
        .unwrap();
    assert_eq!(out.prints, vec!["paths = 8".to_string()]);
}

/// Multiplicity-insensitive accumulators are fine with Kleene patterns —
/// and give exact answers even with astronomically many legal paths.
#[test]
fn insensitive_accums_absorb_huge_multiplicities() {
    let (g, _) = diamond_chain(120); // 2^120 paths end to end
    let q = r#"
        CREATE QUERY G (string srcName) {
          MaxAccum<int> @@far;
          SetAccum<string> @@reached;
          S = SELECT t FROM V:s -(E>*)- V:t
              WHERE s.name == srcName
              ACCUM @@far += t.id(), @@reached += t.name;
          PRINT @@reached.size() AS reached;
        }
    "#;
    let out = Engine::new(&g)
        .run_text(q, &[("srcName", Value::from("v0"))])
        .unwrap();
    // Every vertex is reachable from v0.
    assert_eq!(out.prints, vec![format!("reached = {}", g.vertex_count())]);
}

/// SumAccum<INT> overflows (multiplicity beyond i64) are reported, not
/// wrapped silently.
#[test]
fn sum_int_multiplicity_overflow_is_error() {
    let (g, _) = diamond_chain(70); // 2^70 > i64::MAX
    let q = r#"
        CREATE QUERY G (string srcName, string tgtName) {
          SumAccum<int> @@n;
          S = SELECT t FROM V:s -(E>*)- V:t
              WHERE s.name == srcName AND t.name == tgtName
              ACCUM @@n += 1;
        }
    "#;
    let err = Engine::new(&g)
        .run_text(
            q,
            &[("srcName", Value::from("v0")), ("tgtName", Value::from("v70"))],
        )
        .unwrap_err();
    assert!(err.to_string().contains("multiplicity"), "{err}");
}

/// SumAccum<FLOAT> handles the same multiplicity approximately.
#[test]
fn sum_float_handles_huge_multiplicities() {
    let (g, _) = diamond_chain(70);
    let q = r#"
        CREATE QUERY G (string srcName, string tgtName) {
          SumAccum<float> @@n;
          S = SELECT t FROM V:s -(E>*)- V:t
              WHERE s.name == srcName AND t.name == tgtName
              ACCUM @@n += 1;
          PRINT @@n > 1.0e21 AS huge;
        }
    "#;
    let out = Engine::new(&g)
        .run_text(
            q,
            &[("srcName", Value::from("v0")), ("tgtName", Value::from("v70"))],
        )
        .unwrap();
    assert_eq!(out.prints, vec!["huge = true".to_string()]);
}

/// The enumeration budget aborts runaway enumerative queries with a
/// clear error (the stand-in for the paper's query timeouts).
#[test]
fn enumeration_budget_reports_timeout() {
    let (g, _) = diamond_chain(30);
    let q = gsql_core::stdlib::qn("V", "E");
    let err = Engine::new(&g)
        .with_semantics(PathSemantics::NonRepeatedEdge)
        .with_enum_budget(1_000)
        .run_text(
            &q,
            &[("srcName", Value::from("v0")), ("tgtName", Value::from("v30"))],
        )
        .unwrap_err();
    assert!(err.to_string().contains("budget"), "{err}");
}

/// Non-aggregate projections refuse to expand astronomic multiplicities
/// into rows.
#[test]
fn projection_of_huge_multiplicity_is_error() {
    let (g, _) = diamond_chain(80);
    let q = r#"
        CREATE QUERY G (string srcName, string tgtName) {
          SELECT s.name, t.name INTO T
          FROM V:s -(E>*)- V:t
          WHERE s.name == srcName AND t.name == tgtName;
        }
    "#;
    let err = Engine::new(&g)
        .run_text(
            q,
            &[("srcName", Value::from("v0")), ("tgtName", Value::from("v80"))],
        )
        .unwrap_err();
    assert!(err.to_string().contains("multiplicity"), "{err}");
}

/// ...while aggregated projections of the same pattern work fine: the
/// compressed representation reaches the aggregate as a multiplicity.
#[test]
fn aggregated_projection_of_huge_multiplicity_works() {
    let (g, _) = diamond_chain(80);
    let q = r#"
        CREATE QUERY G (string srcName, string tgtName) {
          SELECT count(*) AS paths INTO T
          FROM V:s -(E>*)- V:t
          WHERE s.name == srcName AND t.name == tgtName;
        }
    "#;
    let out = Engine::new(&g)
        .run_text(
            q,
            &[("srcName", Value::from("v0")), ("tgtName", Value::from("v80"))],
        )
        .unwrap();
    // 2^80 exceeds i64: surfaced as a decimal string.
    assert_eq!(
        out.table("T").unwrap().rows,
        vec![vec![Value::Str("1208925819614629174706176".into())]]
    );
}

/// Counting work is polynomial in n on the diamond chain: product states
/// grow linearly even as path counts grow as 2^n.
#[test]
fn product_state_count_grows_linearly() {
    // Float variant of Q_n: 2^80 exceeds SumAccum<INT>.
    let q = r#"
        CREATE QUERY Qf (string srcName, string tgtName) {
          SumAccum<float> @pathCount;
          R = SELECT t
              FROM  V:s -(E>*)- V:t
              WHERE s.name == srcName AND t.name == tgtName
              ACCUM t.@pathCount += 1;
        }
    "#;
    let mut states = Vec::new();
    for n in [20usize, 40, 80] {
        let (g, _) = diamond_chain(n);
        let out = Engine::new(&g)
            .run_text(
                q,
                &[("srcName", Value::from("v0")), ("tgtName", Value::from(format!("v{n}")))],
            )
            .unwrap();
        states.push(out.stats.product_states as f64);
    }
    // Linear growth: doubling n roughly doubles the product states.
    assert!(states[1] / states[0] < 2.6, "{states:?}");
    assert!(states[2] / states[1] < 2.6, "{states:?}");
}
