//! Concurrent engines over one shared `Arc<Graph>` — the invariant the
//! server relies on: N threads each building their own `Engine` view of
//! the same immutable graph, with their own budgets and cancel handles,
//! must (a) produce exactly the results a single-threaded run produces
//! and (b) be isolated — cancelling one mid-flight request must not
//! perturb any other.

use gsql_core::{Budget, Engine, ErrorKind};
use ldbc_snb::{generate, queries, SnbParams};
use pgraph::graph::Graph;
use pgraph::value::Value;
use std::sync::Arc;
use std::time::Duration;

/// A Qn-flavored path-counting query over the SNB `Knows` network
/// (Person has no `name` attribute, so the stdlib Qn text is anchored by
/// vertex parameter instead of name equality).
const QN_KNOWS: &str = "
CREATE QUERY QnKnows (vertex<Person> src) {
  SumAccum<int> @pathCount;
  SumAccum<int> @@reached;
  R = SELECT t FROM Person:src -(Knows*1..3)- Person:t
      WHERE t <> src
      ACCUM t.@pathCount += 1
      POST_ACCUM @@reached += 1;
  PRINT @@reached;
}
";

fn snb() -> Graph {
    generate(SnbParams::new(0.05, 2024))
}

fn persons(g: &Graph) -> Vec<Value> {
    let pt = g.schema().vertex_type_id("Person").unwrap();
    g.vertices_of_type(pt).iter().copied().map(Value::Vertex).collect()
}

#[test]
fn eight_threads_of_mixed_queries_match_single_threaded_results() {
    let graph = Arc::new(snb());
    let people = persons(&graph);
    assert!(people.len() >= 8, "fixture must have enough people");
    let ic5 = queries::ic5(2);

    // Reference results, computed single-threaded.
    let reference: Vec<_> = (0..8)
        .map(|i| {
            let engine = Engine::new(&graph);
            let qn = engine
                .run_text(QN_KNOWS, &[("src", people[i].clone())])
                .unwrap();
            let ic = engine
                .run_text(
                    &ic5,
                    &[("p", people[i].clone()), ("minDate", Value::DateTime(0))],
                )
                .unwrap();
            (qn, ic)
        })
        .collect();

    // The same work from 8 client threads sharing the Arc<Graph>, each
    // with its own per-thread budget (generous, but present — exactly
    // how the server hands budgets to concurrent requests).
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let graph = graph.clone();
                let person = people[i].clone();
                let ic5 = ic5.clone();
                scope.spawn(move || {
                    let budget = Budget::default()
                        .with_deadline(Duration::from_secs(60))
                        .with_max_binding_rows(10_000_000);
                    let engine = Engine::new(&graph).with_budget(budget);
                    let qn = engine.run_text(QN_KNOWS, &[("src", person.clone())]).unwrap();
                    let ic = engine
                        .run_text(&ic5, &[("p", person), ("minDate", Value::DateTime(0))])
                        .unwrap();
                    (qn, ic)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, ((qn, ic), (rqn, ric))) in results.iter().zip(reference.iter()).enumerate() {
        assert_eq!(qn.prints, rqn.prints, "QnKnows prints diverge on thread {i}");
        assert_eq!(qn.tables, rqn.tables, "QnKnows tables diverge on thread {i}");
        assert_eq!(ic.prints, ric.prints, "ic5 prints diverge on thread {i}");
        assert_eq!(ic.tables, ric.tables, "ic5 tables diverge on thread {i}");
    }
}

#[test]
fn cancelling_one_engine_leaves_the_others_unaffected() {
    let graph = Arc::new(snb());
    let people = persons(&graph);
    let ic5 = queries::ic5(2);

    // The victim runs an effectively unbounded spin so the cancel always
    // lands mid-flight; the bystanders run the real mixed workload.
    let spin = "
CREATE QUERY Spin () {
  SumAccum<int> @@s;
  WHILE @@s < 2000000000 LIMIT 2000000000 DO @@s += 1; END;
  PRINT @@s;
}
";
    let victim_engine = Engine::new(&graph);
    let cancel = victim_engine.cancel_handle();

    std::thread::scope(|scope| {
        let victim = scope.spawn(move || victim_engine.run_text(spin, &[]));

        let bystanders: Vec<_> = (0..4)
            .map(|i| {
                let graph = graph.clone();
                let person = people[i].clone();
                let ic5 = ic5.clone();
                scope.spawn(move || {
                    let engine = Engine::new(&graph);
                    let reference = engine
                        .run_text(&ic5, &[("p", person.clone()), ("minDate", Value::DateTime(0))])
                        .unwrap();
                    // Re-run while the victim is being cancelled.
                    for _ in 0..5 {
                        let again = engine
                            .run_text(
                                &ic5,
                                &[("p", person.clone()), ("minDate", Value::DateTime(0))],
                            )
                            .unwrap();
                        assert_eq!(again.prints, reference.prints);
                        assert_eq!(again.tables, reference.tables);
                    }
                })
            })
            .collect();

        // Let the victim get properly in flight, then cancel it.
        std::thread::sleep(Duration::from_millis(50));
        cancel.cancel();

        let err = victim.join().unwrap().expect_err("victim must be cancelled");
        assert_eq!(err.kind(), ErrorKind::Cancelled);
        for b in bystanders {
            b.join().unwrap();
        }
    });
}

#[test]
fn readers_pin_snapshots_while_a_writer_commits() {
    use pgraph::wal::LiveGraph;

    // 8 reader threads query one LiveGraph while a writer commits
    // insert/delete batches through it. Epoch-pinned snapshot isolation:
    // each reader pins `snapshot()` once per iteration and must get
    // byte-identical results from that pinned Arc no matter how many
    // commits land mid-query.
    let live = Arc::new(LiveGraph::in_memory(snb()));
    let people = persons(&live.snapshot());
    let ic5 = queries::ic5(2);
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..8)
            .map(|i| {
                let live = live.clone();
                let person = people[i % people.len()].clone();
                let ic5 = ic5.clone();
                let done = done.clone();
                scope.spawn(move || {
                    let mut iterations = 0u32;
                    while !done.load(std::sync::atomic::Ordering::Relaxed) || iterations == 0 {
                        // Pin one snapshot for this whole iteration.
                        let snap = live.snapshot();
                        let engine = Engine::new(&snap);
                        let args =
                            [("p", person.clone()), ("minDate", Value::DateTime(0))];
                        let first = engine.run_text(&ic5, &args).unwrap();
                        // Re-running on the same pinned snapshot must be
                        // byte-identical even while the writer publishes
                        // new snapshots concurrently.
                        let again = engine.run_text(&ic5, &args).unwrap();
                        assert_eq!(first.prints, again.prints, "reader {i} diverged");
                        assert_eq!(first.tables, again.tables, "reader {i} diverged");
                        iterations += 1;
                    }
                    iterations
                })
            })
            .collect();

        // The writer: insert a burst of Person vertices, then delete
        // them again, committing each batch atomically.
        let pt = live.snapshot().schema().vertex_type_id("Person").unwrap();
        let default_attrs: Vec<pgraph::value::Value> = live
            .snapshot()
            .schema()
            .vertex_type(pt)
            .attrs
            .iter()
            .map(|a| a.ty.default_value())
            .collect();
        for _round in 0..6 {
            let base = live.snapshot().vertex_count();
            let inserts: Vec<_> = (0..4)
                .map(|_| pgraph::mutate::MutationOp::AddVertex {
                    vtype: pt,
                    attrs: default_attrs.clone(),
                })
                .collect();
            let (summary, _) = live.commit(&inserts).unwrap();
            assert_eq!(summary.inserted_vertices, 4);
            let deletes: Vec<_> = (0..4)
                .map(|k| pgraph::mutate::MutationOp::DeleteVertex {
                    v: pgraph::graph::VertexId((base + k) as u32),
                })
                .collect();
            let (summary, _) = live.commit(&deletes).unwrap();
            assert_eq!(summary.deleted_vertices, 4);
        }
        done.store(true, std::sync::atomic::Ordering::Relaxed);

        let total: u32 = readers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total >= 8, "every reader completed at least one pinned iteration");
    });

    // All writer batches net out: the final snapshot equals the seed.
    assert_eq!(live.snapshot().vertex_count(), snb().vertex_count());
    assert_eq!(live.snapshot().edge_count(), snb().edge_count());
}
