//! End-to-end tests of the paper's worked examples (Sections 1–5),
//! executed through the full GSQL pipeline: parse → match → ACCUM →
//! POST_ACCUM → multi-output SELECT.

use gsql_core::exec::ReturnValue;
use gsql_core::{stdlib, Engine, PathSemantics, Table};
use pgraph::generators::{diamond_chain, linkedin_graph, sales_graph};
use pgraph::value::Value;

fn f(v: f64) -> Value {
    Value::Double(v)
}

/// Example 4 / Figure 2: single-pass tree-way aggregation. Observed via
/// the Example 5 multi-output variant, which exposes the three
/// accumulator families as tables.
#[test]
fn example4_and_5_revenue_rollup() {
    let g = sales_graph();
    let eng = Engine::new(&g);
    let out = eng.run_text(stdlib::example5_multi_output(), &[]).unwrap();

    // Toy purchases: alice robot 2×30×1.0=60, alice blocks 1×10×0.9=9,
    // bob robot 1×30×0.5=15, carol kite 4×20×0.75=60.
    let per_cust = out.table("PerCust").unwrap();
    assert_eq!(
        per_cust.sorted_rows(),
        vec![
            vec![Value::from("alice"), f(69.0)],
            vec![Value::from("bob"), f(15.0)],
            vec![Value::from("carol"), f(60.0)],
        ]
    );
    let per_toy = out.table("PerToy").unwrap();
    assert_eq!(
        per_toy.sorted_rows(),
        vec![
            vec![Value::from("blocks"), f(9.0)],
            vec![Value::from("kite"), f(60.0)],
            vec![Value::from("robot"), f(75.0)],
        ]
    );
    let total = out.table("Total").unwrap();
    assert_eq!(total.rows, vec![vec![f(144.0)]]);
    assert_eq!(total.columns, vec!["rev".to_string()]);
}

/// Example 6 / Figure 3: the two-pass TopKToys recommender, composing
/// blocks through the `@lc` vertex accumulator and the
/// `OthersWithCommonLikes` vertex set.
#[test]
fn example6_recommender() {
    let g = sales_graph();
    let eng = Engine::new(&g);
    let alice = g.vertices_of_type(g.schema().vertex_type_id("Customer").unwrap())[0];
    let out = eng
        .run_text(
            stdlib::example6_topk_toys(),
            &[("c", Value::Vertex(alice)), ("k", Value::Int(3))],
        )
        .unwrap();
    let table = match out.returned.as_ref().unwrap() {
        ReturnValue::Table(t) => t,
        other => panic!("expected table, got {other:?}"),
    };
    // bob shares 1 toy like with alice (robot): lc = ln 2.
    // carol shares 2 (robot, blocks): lc = ln 3.
    let ln2 = (2f64).ln();
    let ln3 = (3f64).ln();
    let expect = vec![
        vec![Value::from("kite"), f(ln2 + ln3)],  // bob + carol
        vec![Value::from("robot"), f(ln2 + ln3)], // bob + carol
        vec![Value::from("blocks"), f(ln3)],      // carol
    ];
    assert_eq!(table.columns, vec!["t.name".to_string(), "rank".to_string()]);
    assert_eq!(table.rows.len(), 3);
    for (got, want) in table.rows.iter().zip(&expect) {
        assert_eq!(got[0], want[0]);
        let (Some(a), Some(b)) = (got[1].as_f64(), want[1].as_f64()) else {
            panic!("non-numeric rank")
        };
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }
}

/// Example 7 / Figure 4: iterative PageRank in GSQL, cross-checked
/// against the native reference implementation.
#[test]
fn example7_pagerank_matches_native() {
    let mut g = pgraph::generators::barabasi_albert(60, 3, 42);
    let et = g.schema().edge_type_id("E").unwrap();
    // Give vertex 0 an out-edge: like real GSQL, the POST_ACCUM of Figure 4
    // only updates vertices matched as the source `v`, so the cross-check
    // needs every vertex to have outdegree >= 1.
    g.add_edge(et, pgraph::graph::VertexId(0), pgraph::graph::VertexId(1), vec![])
        .unwrap();
    let g = g;
    let native = pgraph::algo::pagerank(&g, et, 0.85, 1e-10, 100);

    let eng = Engine::new(&g);
    let src = stdlib::pagerank("V", "E");
    // Expose the final scores through a table-producing epilogue.
    let src = src.replace(
        "END;\n}",
        "END;\n  SELECT DISTINCT v.name, v.@score AS score INTO Scores FROM V:v;\n}",
    );
    let out = eng
        .run_text(
            &src,
            &[
                ("maxChange", f(1e-10)),
                ("maxIteration", Value::Int(100)),
                ("dampingFactor", f(0.85)),
            ],
        )
        .unwrap();
    let scores = out.table("Scores").unwrap();
    assert_eq!(scores.rows.len(), 60);
    for row in &scores.rows {
        let name = row[0].as_str().unwrap();
        let idx: usize = name[1..].parse().unwrap();
        let got = row[1].as_f64().unwrap();
        assert!(
            (got - native[idx]).abs() < 1e-6,
            "vertex {name}: gsql {got} vs native {}",
            native[idx]
        );
    }
}

/// Section 7.1's `Q_n` on the paper's 30-diamond graph: the counting
/// engine returns `2^n` without enumerating, for every n up to 30.
#[test]
fn qn_counts_2_to_the_n() {
    let (g, _) = diamond_chain(30);
    let eng = Engine::new(&g);
    let q = stdlib::qn("V", "E");
    for n in [1usize, 5, 10, 20, 30] {
        let out = eng
            .run_text(
                &q,
                &[
                    ("srcName", Value::from("v0")),
                    ("tgtName", Value::from(format!("v{n}"))),
                ],
            )
            .unwrap();
        assert_eq!(out.prints, vec![format!("R: v{n}, {}", 1u64 << n)]);
        // Counting evaluation: zero paths materialized.
        assert_eq!(out.stats.paths_enumerated, 0);
    }
}

/// Example 1 / Figure 1: joining a relational Employee table with the
/// (undirected) LinkedIn graph, with conventional GROUP BY aggregation.
#[test]
fn example1_relational_graph_join() {
    let g = linkedin_graph();
    let employees = Table::from_rows(
        "Employee",
        &["name", "email"],
        vec![
            vec![Value::from("ann"), Value::from("ann@acme.com")],
            vec![Value::from("ben"), Value::from("ben@acme.com")],
        ],
    );
    let eng = Engine::new(&g).with_table(employees);
    let out = eng.run_text(stdlib::example1_join(), &[]).unwrap();
    let result = out.table("Result").unwrap();
    // ann: cam (2017) + eve (2019); dot is 2015, ben is ACME. ben: cam (2018).
    assert_eq!(
        result.rows,
        vec![
            vec![Value::from("ann@acme.com"), Value::from("ann"), Value::Int(2)],
            vec![Value::from("ben@acme.com"), Value::from("ben"), Value::Int(1)],
        ]
    );
}

/// Example 3's accumulator declarations: one global + two vertex families
/// sharing a type, with initializers.
#[test]
fn example3_declarations_and_defaults() {
    let g = sales_graph();
    let eng = Engine::new(&g);
    let out = eng
        .run_text(
            r#"
            CREATE QUERY Decls () {
              SumAccum<float> @@totalRevenue;
              SumAccum<float> @revenuePerToy, @revenuePerCust = 5;
              PRINT @@totalRevenue;
              SELECT DISTINCT c.@revenuePerCust AS r INTO Init FROM Customer:c;
            }
            "#,
            &[],
        )
        .unwrap();
    assert_eq!(out.prints, vec!["@@totalRevenue = 0.0".to_string()]);
    // Initializer applies to every vertex instance.
    assert_eq!(out.table("Init").unwrap().rows, vec![vec![f(5.0)]]);
}

/// WCC and SSSP from the stdlib agree with the native algorithms.
#[test]
fn stdlib_wcc_and_sssp_match_native() {
    // Two components: a 4-cycle and a 3-path.
    let mut b = pgraph::graph::GraphBuilder::new(pgraph::generators::ve_schema());
    let vs: Vec<_> = (0..7)
        .map(|i| b.vertex("V", &[("name", Value::from(format!("v{i}")))]).unwrap())
        .collect();
    for (s, t) in [(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (5, 6)] {
        b.edge("E", vs[s], vs[t], &[]).unwrap();
    }
    let g = b.build();

    let (native_cc, n_comp) = pgraph::algo::weakly_connected_components(&g);
    assert_eq!(n_comp, 2);
    let eng = Engine::new(&g);
    let src = stdlib::wcc("V", "E").replace(
        "END;\n}",
        "END;\n  SELECT DISTINCT v.name, v.@cc AS cc INTO CC FROM V:v;\n}",
    );
    let out = eng.run_text(&src, &[]).unwrap();
    for row in &out.table("CC").unwrap().rows {
        let idx: usize = row[0].as_str().unwrap()[1..].parse().unwrap();
        assert_eq!(row[1], Value::Int(native_cc[idx] as i64), "vertex v{idx}");
    }

    let native_d = pgraph::algo::bfs_distances(&g, vs[0]);
    let src = stdlib::sssp("V", "E").replace(
        "END;\n}",
        "END;\n  SELECT DISTINCT v.name, v.@dist AS d INTO D FROM V:v;\n}",
    );
    let out = eng.run_text(&src, &[("src", Value::Vertex(vs[0]))]).unwrap();
    for row in &out.table("D").unwrap().rows {
        let idx: usize = row[0].as_str().unwrap()[1..].parse().unwrap();
        let want = native_d[idx].map(|d| d as i64).unwrap_or(2147483647);
        assert_eq!(row[1], Value::Int(want), "vertex v{idx}");
    }
}

/// The same Q_n query under Cypher-style non-repeated-edge semantics
/// enumerates paths (exponential work) yet returns the same counts on the
/// diamond chain, where the semantics coincide (Example 11).
#[test]
fn qn_under_enumerative_semantics_agrees_but_enumerates() {
    let (g, _) = diamond_chain(10);
    let q = stdlib::qn("V", "E");
    let args = [
        ("srcName", Value::from("v0")),
        ("tgtName", Value::from("v10")),
    ];
    for sem in [
        PathSemantics::NonRepeatedEdge,
        PathSemantics::NonRepeatedVertex,
        PathSemantics::AllShortestPathsEnumerate,
    ] {
        let eng = Engine::new(&g).with_semantics(sem);
        let out = eng.run_text(&q, &args).unwrap();
        assert_eq!(out.prints, vec!["R: v10, 1024".to_string()], "{sem:?}");
        assert!(out.stats.paths_enumerated >= 1024, "{sem:?} must enumerate");
    }
}

/// Example 12: accumulator-based aggregation subsumes SQL GROUP BY — the
/// same grouping computed conventionally (GROUP BY clause) and via a
/// GroupByAccum must agree group-for-group.
#[test]
fn example12_group_by_equals_groupby_accum() {
    let g = sales_graph();
    let eng = Engine::new(&g);
    let conventional = eng
        .run_text(
            r#"
            CREATE QUERY Conventional () {
              SELECT p.category AS k, sum(b.quantity) AS s, min(p.list_price) AS m,
                     avg(b.discount) AS a INTO T
              FROM Customer:c -(Bought>:b)- Product:p
              GROUP BY p.category
              ORDER BY p.category;
            }
            "#,
            &[],
        )
        .unwrap();
    let accum_style = eng
        .run_text(
            r#"
            CREATE QUERY AccumStyle () {
              GroupByAccum<string k, SumAccum<float> s, MinAccum m, AvgAccum a> @@g;
              S = SELECT c FROM Customer:c -(Bought>:b)- Product:p
                  ACCUM @@g += (p.category -> b.quantity, p.list_price, b.discount);
              PRINT @@g;
            }
            "#,
            &[],
        )
        .unwrap();
    // Rebuild the conventional rows from the accumulator's printed map.
    // @@g = {(book) -> (4.0, 15.0, 0.0), (toy) -> (8.0, 10.0, 0.2125)}
    let printed = &accum_style.prints[0];
    let t = conventional.table("T").unwrap();
    for row in &t.rows {
        let k = row[0].as_str().unwrap();
        let s = row[1].as_f64().unwrap();
        let m = row[2].as_f64().unwrap();
        let a = row[3].as_f64().unwrap();
        let expected = format!("({k}) -> ({s:?}, {m:?}, {a:?})");
        assert!(
            printed.contains(&expected),
            "group `{expected}` missing from `{printed}`"
        );
    }
}

/// Example 2's DARPE on a concrete mixed-direction graph: the pattern
/// `E>.(F>|<G)*.H.<J` from the paper, matched end to end through the
/// engine (directed E/F/G/J, undirected H).
#[test]
fn example2_mixed_direction_darpe() {
    let mut s = pgraph::schema::Schema::new();
    s.add_vertex_type("V", vec![pgraph::schema::AttrDef::new("name", pgraph::value::ValueType::Str)])
        .unwrap();
    for (t, directed) in [("E", true), ("F", true), ("G", true), ("H", false), ("J", true)] {
        s.add_edge_type(t, directed, vec![]).unwrap();
    }
    let mut b = pgraph::graph::GraphBuilder::new(s);
    let mk = |b: &mut pgraph::graph::GraphBuilder, n: &str| {
        b.vertex("V", &[("name", Value::from(n))]).unwrap()
    };
    // a -E> b -F> c <G- ... H ... <J-: build
    //   a -E> b, b -F> c, d -G> c (traversed as <G), c -H- e, f -J> e.
    let a = mk(&mut b, "a");
    let b2 = mk(&mut b, "b");
    let c = mk(&mut b, "c");
    let d = mk(&mut b, "d");
    let e = mk(&mut b, "e");
    let f2 = mk(&mut b, "f");
    b.edge("E", a, b2, &[]).unwrap();
    b.edge("F", b2, c, &[]).unwrap();
    b.edge("G", d, c, &[]).unwrap(); // not on the matched path; a decoy
    b.edge("H", c, e, &[]).unwrap();
    b.edge("J", f2, e, &[]).unwrap();
    let g = b.build();
    let out = Engine::new(&g)
        .run_text(
            r#"
            CREATE QUERY Ex2 () {
              R = SELECT t FROM V:s -(E>.(F>|<G)*.H.<J)- V:t WHERE s.name == 'a';
              PRINT R[R.name];
            }
            "#,
            &[],
        )
        .unwrap();
    // a -E> b (-F> c) -H- e <J- f : target f. Also the zero-repetition
    // branch a -E> b -H- ...? b has no H edge, so only f matches.
    assert_eq!(out.prints, vec!["R: f".to_string()]);
}
