//! Cross-validation of the five legality semantics against each other and
//! against the native reference algorithms, including property-based
//! tests on random graphs.

use darpe::CompiledDarpe;
use gsql_core::governor::QueryGuard;
use gsql_core::semantics::{reach, MatchStats, PathSemantics};
use pgraph::bigcount::BigCount;
use pgraph::generators::{diamond_chain, erdos_renyi, grid};
use pgraph::graph::VertexId;
use proptest::prelude::*;

fn kernel_count(
    g: &pgraph::graph::Graph,
    src: VertexId,
    dst: VertexId,
    darpe: &str,
    sem: PathSemantics,
) -> Option<BigCount> {
    let nfa = CompiledDarpe::compile(&darpe::parse(darpe).unwrap(), g.schema()).unwrap();
    let mut stats = MatchStats::default();
    reach(g, src, &nfa, sem, &QueryGuard::with_path_budget(Some(5_000_000)), &mut stats)
        .unwrap()
        .get(&dst)
        .map(|(_, c)| c.clone())
}

/// On the monotone grid all semantics coincide, and counts are binomial
/// coefficients — compare against the native BFS counter too.
#[test]
fn grid_counts_are_binomial_for_every_semantics() {
    let (g, m) = grid(5, 4);
    let (len, native) = pgraph::algo::count_shortest_paths(&g, m[0][0], m[3][4]).unwrap();
    assert_eq!(len, 7);
    assert_eq!(native.to_u64(), Some(35)); // C(7,3)
    for sem in [
        PathSemantics::AllShortestPaths,
        PathSemantics::AllShortestPathsEnumerate,
        PathSemantics::NonRepeatedEdge,
        PathSemantics::NonRepeatedVertex,
    ] {
        assert_eq!(
            kernel_count(&g, m[0][0], m[3][4], "E>*", sem),
            Some(BigCount::from(35u64)),
            "{sem:?}"
        );
    }
    assert_eq!(
        kernel_count(&g, m[0][0], m[3][4], "E>*", PathSemantics::ShortestOne),
        Some(BigCount::one())
    );
}

/// Counting agrees with the native BFS counter on every vertex pair of
/// the diamond chain.
#[test]
fn diamond_all_pairs_match_native() {
    let (g, _) = diamond_chain(8);
    let nfa = CompiledDarpe::compile(&darpe::parse("E>*").unwrap(), g.schema()).unwrap();
    for src in g.vertices() {
        let mut stats = MatchStats::default();
        let m = reach(&g, src, &nfa, PathSemantics::AllShortestPaths, &QueryGuard::unlimited(), &mut stats)
            .unwrap();
        for dst in g.vertices() {
            let native = pgraph::algo::count_shortest_paths(&g, src, dst);
            match (m.get(&dst), native) {
                (Some((d, c)), Some((nd, nc))) => {
                    assert_eq!(*d as usize, nd, "dist {src:?}->{dst:?}");
                    assert_eq!(*c, nc, "count {src:?}->{dst:?}");
                }
                (None, None) => {}
                (a, b) => panic!("reachability mismatch {src:?}->{dst:?}: {a:?} vs {b:?}"),
            }
        }
    }
}

/// The ASP-enumerating kernel agrees with the ASP-counting kernel
/// everywhere (same legal paths, different evaluation strategy).
#[test]
fn asp_enumeration_agrees_with_counting() {
    let g = erdos_renyi(24, 0.12, 99);
    let nfa = CompiledDarpe::compile(&darpe::parse("E>*").unwrap(), g.schema()).unwrap();
    for src in g.vertices().take(8) {
        let mut s1 = MatchStats::default();
        let mut s2 = MatchStats::default();
        let counted =
            reach(&g, src, &nfa, PathSemantics::AllShortestPaths, &QueryGuard::unlimited(), &mut s1).unwrap();
        let enumerated = reach(
            &g,
            src,
            &nfa,
            PathSemantics::AllShortestPathsEnumerate,
            &QueryGuard::with_path_budget(Some(10_000_000)),
            &mut s2,
        )
        .unwrap();
        assert_eq!(counted.len(), enumerated.len(), "target sets differ from {src:?}");
        for (t, (d, c)) in &counted {
            let (ed, ec) = &enumerated[t];
            assert_eq!(d, ed);
            assert_eq!(c, ec);
        }
        assert_eq!(s1.paths_enumerated, 0);
        assert!(s2.paths_enumerated > 0 || counted.len() == 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: on random sparse digraphs, the number of shortest paths
    /// computed by counting equals the number computed by explicitly
    /// enumerating all shortest paths, for every reachable target.
    #[test]
    fn prop_counting_equals_shortest_enumeration(n in 6usize..28, p in 0.05f64..0.3, seed in 0u64..500) {
        let g = erdos_renyi(n, p, seed);
        let nfa = CompiledDarpe::compile(&darpe::parse("E>*").unwrap(), g.schema()).unwrap();
        let src = VertexId(0);
        let mut s1 = MatchStats::default();
        let mut s2 = MatchStats::default();
        let counted = reach(&g, src, &nfa, PathSemantics::AllShortestPaths, &QueryGuard::unlimited(), &mut s1).unwrap();
        let enumerated = reach(&g, src, &nfa, PathSemantics::AllShortestPathsEnumerate, &QueryGuard::with_path_budget(Some(2_000_000)), &mut s2);
        if let Ok(enumerated) = enumerated {
            prop_assert_eq!(counted.len(), enumerated.len());
            for (t, (d, c)) in &counted {
                let (ed, ec) = &enumerated[t];
                prop_assert_eq!(d, ed);
                prop_assert_eq!(c, ec);
            }
        }
    }

    /// Property: ShortestOne reaches exactly the same targets as
    /// AllShortestPaths and always reports multiplicity 1.
    #[test]
    fn prop_shortest_one_is_boolean_projection(n in 6usize..30, p in 0.05f64..0.3, seed in 0u64..500) {
        let g = erdos_renyi(n, p, seed);
        let nfa = CompiledDarpe::compile(&darpe::parse("E>*").unwrap(), g.schema()).unwrap();
        let src = VertexId(0);
        let mut s = MatchStats::default();
        let asp = reach(&g, src, &nfa, PathSemantics::AllShortestPaths, &QueryGuard::unlimited(), &mut s).unwrap();
        let one = reach(&g, src, &nfa, PathSemantics::ShortestOne, &QueryGuard::unlimited(), &mut s).unwrap();
        prop_assert_eq!(asp.len(), one.len());
        for (t, (d, _)) in &asp {
            let (od, oc) = &one[t];
            prop_assert_eq!(d, od);
            prop_assert!(oc.is_one());
        }
    }

    /// Property: non-repeated-vertex paths are a subset of
    /// non-repeated-edge paths in count (every vertex-simple path is
    /// edge-simple).
    #[test]
    fn prop_nrv_counts_at_most_nre(n in 5usize..18, p in 0.05f64..0.25, seed in 0u64..500) {
        let g = erdos_renyi(n, p, seed);
        let nfa = CompiledDarpe::compile(&darpe::parse("E>*").unwrap(), g.schema()).unwrap();
        let src = VertexId(0);
        let mut s = MatchStats::default();
        let nre = reach(&g, src, &nfa, PathSemantics::NonRepeatedEdge, &QueryGuard::with_path_budget(Some(500_000)), &mut s);
        let nrv = reach(&g, src, &nfa, PathSemantics::NonRepeatedVertex, &QueryGuard::with_path_budget(Some(500_000)), &mut s);
        if let (Ok(nre), Ok(nrv)) = (nre, nrv) {
            for (t, (_, c)) in &nrv {
                let nrec = nre.get(t).map(|(_, c)| c.clone()).unwrap_or_else(BigCount::zero);
                prop_assert!(*c <= nrec, "target {:?}", t);
            }
        }
    }

    /// Property: the diamond-chain count is exactly 2^k for arbitrary k,
    /// including far beyond u64 range.
    #[test]
    fn prop_diamond_counts_exact(k in 1usize..200) {
        let (g, spine) = diamond_chain(k);
        let c = kernel_count(&g, spine[0], spine[k], "E>*", PathSemantics::AllShortestPaths);
        prop_assert_eq!(c, Some(BigCount::pow2(k)));
    }
}
