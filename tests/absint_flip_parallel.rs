//! Regression tests for the abstract-interpretation parallel gate
//! (lint pass 6, `docs/LINTS.md`): paper/bench queries whose ACCUM or
//! POST_ACCUM clauses the *syntactic* gate could not parallelize now
//! run morsel-parallel because the interval/constancy analysis proves
//! them order-invariant — and the output stays byte-identical to
//! sequential execution at every parallelism level and shard count.
//!
//! The enumerated flips (all `POST_ACCUM` accumulator *assignments*
//! that the fixpoint analysis proves row-invariant or per-vertex
//! disjoint):
//!
//! | query                   | flipped block                                  |
//! |-------------------------|------------------------------------------------|
//! | `stdlib::wcc`           | `Init ... POST_ACCUM v.@cc = v.id()`           |
//! | `stdlib::sssp`          | `Init ... POST_ACCUM v.@dist = 0`              |
//! | `stdlib::label_propagation` | `Init ... POST_ACCUM v.@label = v.id()`    |
//! | `stdlib::weighted_sssp` | `Init ... POST_ACCUM v.@dist = 0`              |
//! | `stdlib::example6_topk_toys` | `POST_ACCUM o.@lc = log(1 + o.@inCommon)` |
//!
//! Each test asserts both halves of the contract: the plan actually
//! takes the proven strategy (EXPLAIN says so), and the results are
//! identical across parallelism {1, 2, 8} and shard counts {1, 4}.

use gsql_core::{parse_query, stdlib, Engine, QueryOutput, ResourceReport};
use pgraph::generators::{diamond_chain, erdos_renyi, sales_graph};
use pgraph::graph::Graph;
use pgraph::shard::{ShardSpec, ShardedGraph};
use pgraph::value::Value;

const PARALLELISMS: [usize; 3] = [1, 2, 8];
const SHARD_COUNTS: [usize; 2] = [1, 4];

/// The governor counters that must be schedule-invariant (everything
/// except wall-clock `elapsed` and per-shard busy breakdowns).
fn report_counts(r: &ResourceReport) -> (u64, u64, u64, u64) {
    (r.rows_materialized, r.paths_enumerated, r.peak_accum_bytes, r.while_iterations)
}

fn assert_identical(reference: &QueryOutput, out: &QueryOutput, label: &str) {
    assert_eq!(reference.tables, out.tables, "{label}: tables diverged");
    assert_eq!(reference.prints, out.prints, "{label}: prints diverged");
    assert_eq!(reference.returned, out.returned, "{label}: return diverged");
    assert_eq!(reference.stats, out.stats, "{label}: MatchStats diverged");
    assert_eq!(
        report_counts(&reference.report),
        report_counts(&out.report),
        "{label}: governor counters diverged"
    );
}

fn explain_text(graph: &Graph, src: &str) -> String {
    let q = parse_query(src).unwrap();
    Engine::new(graph).explain(&q).unwrap().render()
}

/// Asserts the plan contains at least `min` blocks using an
/// absint-proven parallel strategy — i.e. blocks the syntactic
/// `accum_exact_merge` / `post_accum_parallel` gates rejected but the
/// abstract interpreter admitted.
fn assert_proven_blocks(graph: &Graph, src: &str, min: usize, label: &str) {
    let plan = explain_text(graph, src);
    let proven = plan.matches("proven").count();
    assert!(
        plan.contains("(absint)"),
        "{label}: expected an absint-proven parallel strategy in plan:\n{plan}"
    );
    assert!(
        proven >= min,
        "{label}: expected >= {min} proven-parallel blocks, found {proven} in plan:\n{plan}"
    );
}

/// Runs `src` sequentially (parallelism 1, unsharded) as the reference,
/// then sweeps parallelism × shard count, asserting byte-identity.
fn sweep(graph: &Graph, src: &str, args: &[(&str, Value)], label: &str) {
    let reference = Engine::new(graph).with_parallelism(1).run_text(src, args).unwrap();
    for &par in &PARALLELISMS {
        let out = Engine::new(graph).with_parallelism(par).run_text(src, args).unwrap();
        assert_identical(&reference, &out, &format!("{label} par={par}"));
    }
    for &shards in &SHARD_COUNTS {
        let sharded = ShardedGraph::build(graph, ShardSpec::hash(shards));
        for &par in &PARALLELISMS {
            let out = Engine::new(graph)
                .with_parallelism(par)
                .with_sharding(&sharded)
                .run_text(src, args)
                .unwrap();
            assert_identical(&reference, &out, &format!("{label} shards={shards} par={par}"));
        }
    }
}

/// Appends a deterministic projection so WCC-family queries produce an
/// observable table (the algorithms themselves only mutate accumulators).
fn with_projection(src: &str, proj: &str) -> String {
    src.replace("END;\n}", &format!("END;\n  {proj}\n}}"))
}

// ---- flip enumeration: the plan takes the proven strategy ------------------

#[test]
fn wcc_init_flips_to_proven_parallel() {
    let g = erdos_renyi(300, 4.0 / 300.0, 7);
    // `Init ... POST_ACCUM v.@cc = v.id()` is an assignment, so the
    // syntactic exact-merge gate rejects it; absint proves the per-vertex
    // cells disjoint and admits the morsel-parallel apply.
    assert_proven_blocks(&g, &stdlib::wcc("V", "E"), 1, "wcc");
}

#[test]
fn sssp_init_flips_to_proven_parallel() {
    let (g, _) = diamond_chain(30);
    assert_proven_blocks(&g, &stdlib::sssp("V", "E"), 1, "sssp");
}

#[test]
fn label_propagation_init_flips_to_proven_parallel() {
    let g = erdos_renyi(200, 4.0 / 200.0, 13);
    assert_proven_blocks(&g, &stdlib::label_propagation("V", "E"), 1, "label_propagation");
}

#[test]
fn weighted_sssp_init_flips_to_proven_parallel() {
    let (g, _) = diamond_chain(20);
    assert_proven_blocks(&g, &stdlib::weighted_sssp("V", "E", "w"), 1, "weighted_sssp");
}

#[test]
fn example6_post_accum_flips_to_proven_parallel() {
    let g = sales_graph();
    // `POST_ACCUM o.@lc = log(1 + o.@inCommon)` assigns a per-vertex
    // cell from data that is stable once the ACCUM fold finished.
    assert_proven_blocks(&g, stdlib::example6_topk_toys(), 1, "example6");
}

// ---- flip determinism: byte-identical at every schedule --------------------

#[test]
fn wcc_flip_is_schedule_invariant() {
    let g = erdos_renyi(300, 4.0 / 300.0, 7);
    let src = with_projection(
        &stdlib::wcc("V", "E"),
        "SELECT DISTINCT v.name, v.@cc AS cc INTO C FROM V:v;",
    );
    sweep(&g, &src, &[], "wcc");
}

#[test]
fn sssp_flip_is_schedule_invariant() {
    let (g, names) = diamond_chain(30);
    let src = with_projection(
        &stdlib::sssp("V", "E"),
        "SELECT DISTINCT v.name, v.@dist AS d INTO D FROM V:v;",
    );
    let args = [("src", Value::Vertex(names[0]))];
    sweep(&g, &src, &args, "sssp");
}

#[test]
fn label_propagation_flip_is_schedule_invariant() {
    let g = erdos_renyi(200, 4.0 / 200.0, 13);
    let src = with_projection(
        &stdlib::label_propagation("V", "E"),
        "SELECT DISTINCT v.name, v.@label AS community INTO C FROM V:v;",
    );
    sweep(&g, &src, &[("maxIter", Value::Int(20))], "label_propagation");
}

#[test]
fn weighted_sssp_flip_is_schedule_invariant() {
    use pgraph::graph::GraphBuilder;
    use pgraph::schema::{AttrDef, Schema};
    use pgraph::value::ValueType;
    let mut s = Schema::new();
    s.add_vertex_type("V", vec![AttrDef::new("name", ValueType::Str)]).unwrap();
    s.add_edge_type("E", true, vec![AttrDef::new("w", ValueType::Double)]).unwrap();
    let mut b = GraphBuilder::new(s);
    let vs: Vec<_> = (0..12)
        .map(|i| b.vertex("V", &[("name", Value::from(format!("v{i}")))]).unwrap())
        .collect();
    for (i, (s_, t)) in [
        (0usize, 1usize), (1, 2), (0, 2), (2, 3), (3, 4), (1, 4), (4, 5),
        (5, 6), (2, 6), (6, 7), (7, 8), (8, 9), (3, 9), (9, 10), (10, 11),
    ]
    .iter()
    .enumerate()
    {
        let w = 1.0 + ((i * 7) % 5) as f64;
        b.edge("E", vs[*s_], vs[*t], &[("w", Value::Double(w))]).unwrap();
    }
    let g = b.build();
    let src = with_projection(
        &stdlib::weighted_sssp("V", "E", "w"),
        "SELECT DISTINCT v.name, v.@dist AS d INTO D FROM V:v;",
    );
    let args = [("src", Value::Vertex(vs[0]))];
    sweep(&g, &src, &args, "weighted_sssp");
}

#[test]
fn example6_flip_is_schedule_invariant() {
    let g = sales_graph();
    let alice = g.vertices_of_type(g.schema().vertex_type_id("Customer").unwrap())[0];
    let args = [("c", Value::Vertex(alice)), ("k", Value::Int(3))];
    sweep(&g, stdlib::example6_topk_toys(), &args, "example6");
}

// ---- hop reordering (satellite): reversal is planned and sound -------------

/// A two-hop count anchored at the *end* of the pattern: the planner
/// should reverse the traversal (EXPLAIN `reordered: true`) because the
/// point-anchored end is provably cheaper to start from, and the
/// count-only output makes the rewrite result-equivalent.
const REORDER_SRC: &str = r#"
CREATE QUERY CountInbound2 () {
  SELECT count(*) AS n INTO R
  FROM  V:s -(E>)- V:t -(E>)- V:u
  WHERE u.name == 'v30';
  PRINT R;
}
"#;

/// The same query with the pattern hand-reversed — the ground truth the
/// planner's rewrite must agree with.
const REORDER_MANUAL: &str = r#"
CREATE QUERY CountInbound2 () {
  SELECT count(*) AS n INTO R
  FROM  V:u -(<E)- V:t -(<E)- V:s
  WHERE u.name == 'v30';
  PRINT R;
}
"#;

#[test]
fn hop_reversal_is_planned_and_annotated() {
    let (g, _) = diamond_chain(30);
    let plan = explain_text(&g, REORDER_SRC);
    assert!(
        plan.contains("reordered: true"),
        "expected hop reversal in plan:\n{plan}"
    );
    // The hand-reversed form is already anchored at its start: no rewrite.
    let manual = explain_text(&g, REORDER_MANUAL);
    assert!(
        !manual.contains("reordered: true"),
        "hand-reversed query must not be rewritten again:\n{manual}"
    );
}

#[test]
fn hop_reversal_is_result_equivalent_and_deterministic() {
    let (g, _) = diamond_chain(30);
    let reference = Engine::new(&g).with_parallelism(1).run_text(REORDER_MANUAL, &[]).unwrap();
    for &par in &PARALLELISMS {
        let out = Engine::new(&g).with_parallelism(par).run_text(REORDER_SRC, &[]).unwrap();
        assert_eq!(
            reference.tables, out.tables,
            "reversed plan diverged from hand-reversed ground truth at par={par}"
        );
        assert_eq!(reference.prints, out.prints, "prints diverged at par={par}");
    }
}
