//! Golden tests pinning the EXPLAIN output format documented in
//! `docs/PLAN_FORMAT.md`. The rendered plan text is a stable public
//! surface — shell, server and bench all print the same renderer's
//! output — so any change to it must be deliberate and must update both
//! the golden files under `tests/golden/` and the format document.
//!
//! Plans are rendered through [`gsql_core::Engine::explain`] against
//! fixed deterministic graphs, so the goldens pin the *cost-based*
//! plans — `est_rows`/`est_cost` annotations included — exactly as the
//! engine executes them.
//!
//! To regenerate the golden files after an intentional format change:
//!
//! ```sh
//! GSQL_BLESS=1 cargo test -p bench --test explain_golden
//! ```

use gsql_core::{explain_plan, parse_query, Engine, PathSemantics};
use pgraph::graph::Graph;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden").join(name)
}

/// Compares `actual` against the golden file, or rewrites the file when
/// `GSQL_BLESS=1` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("GSQL_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with GSQL_BLESS=1 to create it", path.display()));
    assert_eq!(
        actual,
        expected,
        "EXPLAIN output for {name} diverged from the golden file; \
         if the change is intentional, regenerate with GSQL_BLESS=1 and update docs/PLAN_FORMAT.md"
    );
}

/// The paper's 91-vertex / 120-edge diamond-chain experiment graph.
fn diamond() -> Graph {
    pgraph::generators::diamond_chain(30).0
}

/// A small deterministic LDBC SNB graph for the ic5 plan.
fn snb() -> Graph {
    ldbc_snb::generate(ldbc_snb::SnbParams::new(0.01, 42))
}

fn explain_text(graph: &Graph, src: &str, semantics: PathSemantics) -> String {
    let q = parse_query(src).unwrap();
    Engine::new(graph).with_semantics(semantics).explain(&q).unwrap().render()
}

#[test]
fn qn_diamond_counting_plan() {
    let src = gsql_core::stdlib::qn("V", "E");
    assert_golden(
        "qn_counting.txt",
        &explain_text(&diamond(), &src, PathSemantics::AllShortestPaths),
    );
}

#[test]
fn qn_diamond_enumerative_plan() {
    // The same query under an enumerative semantics chooses the
    // backward enumerative kernel and flags it EXPONENTIAL.
    let src = gsql_core::stdlib::qn("V", "E");
    assert_golden(
        "qn_enumerate.txt",
        &explain_text(&diamond(), &src, PathSemantics::NonRepeatedVertex),
    );
}

#[test]
fn ic5_plan() {
    let src = ldbc_snb::queries::ic5(2);
    assert_golden("ic5.txt", &explain_text(&snb(), &src, PathSemantics::AllShortestPaths));
}

#[test]
fn pagerank_plan() {
    let src = gsql_core::stdlib::pagerank("V", "E");
    assert_golden(
        "pagerank.txt",
        &explain_text(&diamond(), &src, PathSemantics::AllShortestPaths),
    );
}

#[test]
fn graphless_plan_carries_no_estimates() {
    // The graph-less `explain_plan` entry point lowers through the same
    // planner but without statistics: same tree shape, no est suffixes.
    let src = gsql_core::stdlib::qn("V", "E");
    let q = parse_query(&src).unwrap();
    let bare = explain_plan(&q, PathSemantics::AllShortestPaths).unwrap().render();
    assert!(!bare.contains("est_rows="), "{bare}");
    let g = diamond();
    let with_stats = explain_text(&g, &src, PathSemantics::AllShortestPaths);
    assert!(with_stats.contains("est_rows="), "{with_stats}");
    // Stripping the annotations recovers the graph-less rendering: the
    // cost model annotates, it never reshapes the tree.
    let stripped: String = with_stats
        .lines()
        .map(|l| match l.find(" [est_rows=") {
            Some(i) => format!("{}\n", &l[..i]),
            None => format!("{l}\n"),
        })
        .collect();
    assert_eq!(stripped, bare);
}

#[test]
fn plan_json_matches_tree() {
    // The JSON rendering carries exactly the same nodes as the text
    // rendering: one line of text per JSON "op" object — including the
    // est annotations, which are scalar fields, not nodes.
    let src = ldbc_snb::queries::ic5(2);
    let q = parse_query(&src).unwrap();
    let g = snb();
    let plan = Engine::new(&g).explain(&q).unwrap();
    let text_lines = plan.render().lines().count();
    let json = plan.to_json();
    let json_ops = json.matches("\"op\":").count();
    assert_eq!(text_lines, json_ops);
    assert!(json.contains("\"est_rows\":"), "{json}");
}

#[test]
fn explain_prefix_parses_and_matches_engine_explain() {
    // `EXPLAIN <query>` through the mode-aware parser yields the same
    // plan as calling Engine::explain on the bare query — the plan that
    // actually executes, est annotations included.
    let src = gsql_core::stdlib::qn("V", "E");
    let (mode, q) = gsql_core::parse_query_with_mode(&format!("EXPLAIN {src}")).unwrap();
    assert_eq!(mode, gsql_core::QueryMode::Explain);
    let g = diamond();
    let engine = Engine::new(&g);
    let via_prefix = engine.explain(&q).unwrap().render();
    let bare = parse_query(&src).unwrap();
    let direct = engine.explain(&bare).unwrap().render();
    assert_eq!(via_prefix, direct);
    assert!(direct.contains("est_rows="), "{direct}");
}
