//! Golden tests pinning the EXPLAIN output format documented in
//! `docs/PLAN_FORMAT.md`. The rendered plan text is a stable public
//! surface — shell, server and bench all print the same renderer's
//! output — so any change to it must be deliberate and must update both
//! the golden files under `tests/golden/` and the format document.
//!
//! To regenerate the golden files after an intentional format change:
//!
//! ```sh
//! GSQL_BLESS=1 cargo test -p bench --test explain_golden
//! ```

use gsql_core::{explain_plan, parse_query, PathSemantics};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden").join(name)
}

/// Compares `actual` against the golden file, or rewrites the file when
/// `GSQL_BLESS=1` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("GSQL_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with GSQL_BLESS=1 to create it", path.display()));
    assert_eq!(
        actual,
        expected,
        "EXPLAIN output for {name} diverged from the golden file; \
         if the change is intentional, regenerate with GSQL_BLESS=1 and update docs/PLAN_FORMAT.md"
    );
}

fn explain_text(src: &str, semantics: PathSemantics) -> String {
    let q = parse_query(src).unwrap();
    explain_plan(&q, semantics).unwrap().render()
}

#[test]
fn qn_diamond_counting_plan() {
    let src = gsql_core::stdlib::qn("V", "E");
    assert_golden("qn_counting.txt", &explain_text(&src, PathSemantics::AllShortestPaths));
}

#[test]
fn qn_diamond_enumerative_plan() {
    // The same query under an enumerative semantics chooses the
    // backward enumerative kernel and flags it EXPONENTIAL.
    let src = gsql_core::stdlib::qn("V", "E");
    assert_golden("qn_enumerate.txt", &explain_text(&src, PathSemantics::NonRepeatedVertex));
}

#[test]
fn ic5_plan() {
    let src = ldbc_snb::queries::ic5(2);
    assert_golden("ic5.txt", &explain_text(&src, PathSemantics::AllShortestPaths));
}

#[test]
fn pagerank_plan() {
    let src = gsql_core::stdlib::pagerank("Page", "LinkTo");
    assert_golden("pagerank.txt", &explain_text(&src, PathSemantics::AllShortestPaths));
}

#[test]
fn plan_json_matches_tree() {
    // The JSON rendering carries exactly the same nodes as the text
    // rendering: one line of text per JSON "op" object.
    let src = ldbc_snb::queries::ic5(2);
    let q = parse_query(&src).unwrap();
    let plan = explain_plan(&q, PathSemantics::AllShortestPaths).unwrap();
    let text_lines = plan.render().lines().count();
    let json = plan.to_json();
    let json_ops = json.matches("\"op\":").count();
    assert_eq!(text_lines, json_ops);
}

#[test]
fn explain_prefix_parses_and_matches_engine_explain() {
    // `EXPLAIN <query>` through the mode-aware parser yields the same
    // plan as calling Engine::explain on the bare query.
    let src = gsql_core::stdlib::qn("V", "E");
    let (mode, q) = gsql_core::parse_query_with_mode(&format!("EXPLAIN {src}")).unwrap();
    assert_eq!(mode, gsql_core::QueryMode::Explain);
    let (g, _) = pgraph::generators::diamond_chain(4);
    let engine = gsql_core::Engine::new(&g);
    let via_engine = engine.explain(&q).unwrap().render();
    let direct = explain_plan(&q, PathSemantics::AllShortestPaths).unwrap().render();
    assert_eq!(via_engine, direct);
}
