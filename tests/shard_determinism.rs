//! Partitioned scatter-gather determinism: the sharded executor must be
//! **byte-identical to unsharded execution at every shard count and
//! every parallelism level** — same tables, prints, return values,
//! kernel statistics and governor counters. The merge order of per-shard
//! partial accumulators is fixed (ascending shard id, then declaration
//! order, then vertex id), so sharding is observationally pure
//! scheduling; see docs/SHARDING.md for the contract.

use gsql_core::{stdlib, Engine, ErrorKind, QueryOutput, ResourceReport};
use ldbc_snb::{generate, queries, SnbParams};
use pgraph::generators::{diamond_chain, erdos_renyi};
use pgraph::shard::{ShardSpec, ShardedGraph};
use pgraph::value::Value;

const SHARD_COUNTS: [usize; 3] = [2, 4, 8];
const PARALLELISMS: [usize; 2] = [1, 4];

/// The governor counters that must be shard-count invariant (everything
/// except wall-clock `elapsed` and the per-shard busy breakdown).
fn report_counts(r: &ResourceReport) -> (u64, u64, u64, u64) {
    (r.rows_materialized, r.paths_enumerated, r.peak_accum_bytes, r.while_iterations)
}

fn assert_identical(reference: &QueryOutput, out: &QueryOutput, label: &str) {
    assert_eq!(reference.tables, out.tables, "{label}: tables diverged");
    assert_eq!(reference.prints, out.prints, "{label}: prints diverged");
    assert_eq!(reference.returned, out.returned, "{label}: return diverged");
    assert_eq!(reference.stats, out.stats, "{label}: MatchStats diverged");
    assert_eq!(
        report_counts(&reference.report),
        report_counts(&out.report),
        "{label}: governor counters diverged"
    );
}

/// Runs `src` unsharded at parallelism 1 as the reference, then at every
/// shard count × parallelism combination, asserting byte-identity.
fn sweep(graph: &pgraph::graph::Graph, src: &str, args: &[(&str, Value)], label: &str) {
    let reference = Engine::new(graph).with_parallelism(1).run_text(src, args).unwrap();
    for &shards in &SHARD_COUNTS {
        let sharded = ShardedGraph::build(graph, ShardSpec::hash(shards));
        for &par in &PARALLELISMS {
            let out = Engine::new(graph)
                .with_parallelism(par)
                .with_sharding(&sharded)
                .run_text(src, args)
                .unwrap();
            assert_identical(&reference, &out, &format!("{label} shards={shards} par={par}"));
        }
    }
}

#[test]
fn qn_counting_is_shard_count_invariant() {
    let (g, _) = diamond_chain(30);
    let q = stdlib::qn("V", "E");
    let args = [("srcName", Value::from("v0")), ("tgtName", Value::from("v30"))];
    sweep(&g, &q, &args, "Qn counting");
}

#[test]
fn qn_enumerative_is_shard_count_invariant() {
    // The enumerative semantics exercises the path-materializing kernels
    // rather than the SDMC counting kernel.
    let (g, _) = diamond_chain(14);
    let q = stdlib::qn("V", "E");
    let args = [("srcName", Value::from("v0")), ("tgtName", Value::from("v14"))];
    let reference = Engine::new(&g)
        .with_semantics(gsql_core::PathSemantics::AllShortestPathsEnumerate)
        .with_parallelism(1)
        .run_text(&q, &args)
        .unwrap();
    for &shards in &SHARD_COUNTS {
        let sharded = ShardedGraph::build(&g, ShardSpec::hash(shards));
        for &par in &PARALLELISMS {
            let out = Engine::new(&g)
                .with_semantics(gsql_core::PathSemantics::AllShortestPathsEnumerate)
                .with_parallelism(par)
                .with_sharding(&sharded)
                .run_text(&q, &args)
                .unwrap();
            assert_identical(&reference, &out, &format!("Qn enum shards={shards} par={par}"));
        }
    }
}

#[test]
fn ic5_is_shard_count_invariant() {
    let g = generate(SnbParams::new(0.05, 31));
    let pt = g.schema().vertex_type_id("Person").unwrap();
    let p = Value::Vertex(g.vertices_of_type(pt)[0]);
    let q = queries::ic5(3);
    let args = [("p", p), ("minDate", Value::DateTime(0))];
    sweep(&g, &q, &args, "ic5");
}

#[test]
fn grouping_sets_are_shard_count_invariant() {
    // The Appendix-B dedicated-accumulator grouping-set query: MapAccum/
    // GroupByAccum partials merged across shards must regroup exactly.
    let g = generate(SnbParams::new(0.05, 31));
    sweep(&g, &queries::q_acc(), &[], "q_acc grouping sets");
}

#[test]
fn degree_aware_partitioning_is_also_invariant() {
    // The alternative partitioning policy must obey the same contract —
    // the output is a function of the graph, never of the partitioning.
    let g = erdos_renyi(400, 5.0 / 400.0, 11);
    let q = r#"
        CREATE QUERY Fanout () {
          SumAccum<int> @hits;
          SumAccum<int> @@total;
          R = SELECT t FROM V:s -(E>*)- V:t ACCUM t.@hits += 1;
          S = SELECT t FROM R:t WHERE t.@hits > 1 POST_ACCUM @@total += t.@hits;
          PRINT S.size();
          PRINT @@total;
        }
    "#;
    let reference = Engine::new(&g).with_parallelism(1).run_text(q, &[]).unwrap();
    for &shards in &SHARD_COUNTS {
        let sharded = ShardedGraph::build(&g, ShardSpec::degree_aware(shards));
        let out = Engine::new(&g)
            .with_parallelism(4)
            .with_sharding(&sharded)
            .run_text(q, &[])
            .unwrap();
        assert_identical(&reference, &out, &format!("degree-aware shards={shards}"));
    }
}

#[test]
fn mid_scatter_cancellation_is_honored() {
    // Cancel while the sharded kernel scatter is in flight: the run must
    // either finish (fast machine) or fail with the structured Cancelled
    // kind, and the engine must stay usable afterwards.
    let g = erdos_renyi(1200, 6.0 / 1200.0, 7);
    let q = r#"
        CREATE QUERY Fanout () {
          SumAccum<int> @hits;
          R = SELECT t FROM V:s -(E>*)- V:t ACCUM t.@hits += 1;
          PRINT R.size();
        }
    "#;
    let sharded = ShardedGraph::build(&g, ShardSpec::hash(4));
    for par in [1usize, 4] {
        let engine = Engine::new(&g).with_parallelism(par).with_sharding(&sharded);
        let handle = engine.cancel_handle();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            handle.cancel();
        });
        let result = engine.run_text(q, &[]);
        canceller.join().unwrap();
        if let Err(e) = result {
            assert_eq!(e.kind(), ErrorKind::Cancelled, "par={par}");
        }
        // The guard poisons per-run state, not the engine: a fresh run
        // on the same sharded view must still be byte-correct.
        let again = Engine::new(&g).with_parallelism(par).with_sharding(&sharded);
        let reference = Engine::new(&g).with_parallelism(1).run_text(q, &[]).unwrap();
        assert_identical(&reference, &again.run_text(q, &[]).unwrap(), "post-cancel rerun");
    }
}

#[test]
fn stale_sharding_falls_back_to_unsharded() {
    // A sharded view fingerprints the graph it was built from; against a
    // *different* graph the engine must silently ignore it rather than
    // read segments that describe the wrong adjacency.
    let (g1, _) = diamond_chain(12);
    let (g2, _) = diamond_chain(13);
    let stale = ShardedGraph::build(&g1, ShardSpec::hash(4));
    let q = stdlib::qn("V", "E");
    let args = [("srcName", Value::from("v0")), ("tgtName", Value::from("v13"))];
    let reference = Engine::new(&g2).with_parallelism(1).run_text(&q, &args).unwrap();
    let out = Engine::new(&g2)
        .with_parallelism(4)
        .with_sharding(&stale)
        .run_text(&q, &args)
        .unwrap();
    assert_identical(&reference, &out, "stale sharding fallback");
    assert!(out.report.shards.is_empty(), "stale sharding must not be scattered over");
}
