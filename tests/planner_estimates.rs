//! Misestimate guard: the planner's `est_rows` annotations are checked
//! against the rows PROFILE actually measured, operator by operator, on
//! the Qn (diamond-chain) and LDBC ic5 bench workloads. Any scan or hop
//! whose estimate is off by more than 10× in either direction fails the
//! suite — PROFILE's measured counters are the cost model's feedback
//! loop, and this test is where that loop closes.

use gsql_core::{parse_query, Engine, PathSemantics, PlanNode, Profile};
use pgraph::graph::Graph;
use pgraph::value::Value;

/// Maximum tolerated estimate-vs-actual ratio (either direction).
const MAX_RATIO: f64 = 10.0;

/// Collects `(label, effective est_rows)` for every scan and hop of the
/// plan, pre-order. A scan's effective estimate is its *last*
/// pushdown-filter child (PROFILE measures scan rows after pushdown);
/// a hop's own estimate already reflects anchor narrowing.
fn plan_estimates(node: &PlanNode, out: &mut Vec<(String, u64)>) {
    match node.op {
        "scan" | "hop" => {
            let mut est = node.est_rows.expect("cost-based plan must annotate est_rows");
            for c in &node.children {
                if c.op == "pushdown-filter" {
                    est = c.est_rows.expect("pushdown-filter must annotate est_rows");
                }
            }
            out.push((node.detail.clone(), est));
        }
        _ => {}
    }
    for c in &node.children {
        plan_estimates(c, out);
    }
}

/// Collects `(detail, rows, calls)` for every profiled scan and hop,
/// pre-order — the same order the plan walk produces.
fn profile_rows(p: &Profile) -> Vec<(String, u64, u64)> {
    let mut out = Vec::new();
    p.root.visit(&mut |n| {
        if matches!(n.op, "scan" | "hop") {
            out.push((n.detail.clone(), n.rows, n.calls));
        }
    });
    out
}

/// Runs `src` profiled and asserts every scan/hop estimate is within
/// `MAX_RATIO` of the measured rows. Operators executed more than once
/// (inside WHILE/FOREACH) are skipped: their profiled rows accumulate
/// over calls while the estimate is per-execution.
fn assert_estimates_track_profile(graph: &Graph, src: &str, args: &[(&str, Value)]) {
    let eng = Engine::new(graph).with_semantics(PathSemantics::AllShortestPaths);
    let q = parse_query(src).unwrap();
    let plan = eng.explain(&q).unwrap();
    let mut est = Vec::new();
    plan_estimates(&plan.root, &mut est);
    let (_, profile) = eng.run_with(&q, args, true).unwrap();
    let profile = profile.expect("profiled run returns a profile");
    let actual = profile_rows(&profile);
    assert_eq!(
        est.len(),
        actual.len(),
        "plan and profile disagree on operator count:\n{}\nvs profile:\n{}",
        plan.render(),
        profile.render(),
    );
    for ((label, est_rows), (_, rows, calls)) in est.iter().zip(&actual) {
        if *calls != 1 {
            continue;
        }
        let e = (*est_rows).max(1) as f64;
        let a = (*rows).max(1) as f64;
        let ratio = if e > a { e / a } else { a / e };
        assert!(
            ratio <= MAX_RATIO,
            "misestimate >{MAX_RATIO}x on `{label}`: est_rows={est_rows}, measured={rows}\n{}",
            plan.render(),
        );
    }
}

#[test]
fn qn_estimates_track_profile_on_diamond_chain() {
    let (g, _) = pgraph::generators::diamond_chain(30);
    let src = gsql_core::stdlib::qn("V", "E");
    assert_estimates_track_profile(
        &g,
        &src,
        &[("srcName", Value::Str("v0".into())), ("tgtName", Value::Str("v30".into()))],
    );
}

#[test]
fn qn_estimates_track_profile_on_a_near_miss_target() {
    // A target one diamond in: far fewer paths than the full chain, the
    // same plan — the estimate must bracket this case too.
    let (g, _) = pgraph::generators::diamond_chain(30);
    let src = gsql_core::stdlib::qn("V", "E");
    assert_estimates_track_profile(
        &g,
        &src,
        &[("srcName", Value::Str("v0".into())), ("tgtName", Value::Str("v1".into()))],
    );
}

#[test]
fn ic5_estimates_track_profile_on_snb() {
    let g = ldbc_snb::generate(ldbc_snb::SnbParams::new(0.01, 42));
    let src = ldbc_snb::queries::ic5(2);
    let pt = g.schema().vertex_type_id("Person").unwrap();
    let p = Value::Vertex(g.vertices_of_type(pt)[0]);
    let min_date = Value::DateTime(pgraph::datetime::to_epoch(2010, 6, 1));
    assert_estimates_track_profile(&g, &src, &[("p", p), ("minDate", min_date)]);
}
