//! Section 4.3: the snapshot Map/Reduce semantics makes parallel ACCUM
//! execution deterministic for order-invariant accumulators. These tests
//! run the same queries with 1, 2 and 8 Map threads and require
//! bit-identical outputs, including property-based randomized workloads.

use gsql_core::{stdlib, Engine};
use ldbc_snb::{generate, queries, SnbParams};
use pgraph::generators::random_sales_graph;
use pgraph::value::Value;
use proptest::prelude::*;

#[test]
fn treeway_aggregation_is_thread_count_invariant() {
    let g = random_sales_graph(3_000, 300, 8, 5);
    let reference = Engine::new(&g)
        .with_parallelism(1)
        .run_text(stdlib::example5_multi_output(), &[])
        .unwrap();
    for threads in [2usize, 4, 8] {
        let out = Engine::new(&g)
            .with_parallelism(threads)
            .run_text(stdlib::example5_multi_output(), &[])
            .unwrap();
        assert_eq!(out.tables, reference.tables, "threads={threads}");
    }
}

#[test]
fn pagerank_is_thread_count_invariant() {
    let g = pgraph::generators::barabasi_albert(800, 4, 17);
    let src = stdlib::pagerank("V", "E").replace(
        "END;\n}",
        "END;\n  SELECT DISTINCT v.name, v.@score AS score INTO Scores FROM V:v;\n}",
    );
    let args = [
        ("maxChange", Value::Double(1e-9)),
        ("maxIteration", Value::Int(50)),
        ("dampingFactor", Value::Double(0.85)),
    ];
    let reference = Engine::new(&g).with_parallelism(1).run_text(&src, &args).unwrap();
    let parallel = Engine::new(&g).with_parallelism(4).run_text(&src, &args).unwrap();
    // Floating-point addition order differs between serial row order and
    // chunked order only if the reduce order differed — it must not: the
    // reduce phase is sequential in row order regardless of Map threads.
    assert_eq!(reference.tables, parallel.tables);
}

#[test]
fn grouping_workload_is_thread_count_invariant() {
    let g = generate(SnbParams::new(0.05, 31));
    let q = queries::q_acc();
    let reference = Engine::new(&g).with_parallelism(1).run_text(&q, &[]).unwrap();
    let parallel = Engine::new(&g).with_parallelism(8).run_text(&q, &[]).unwrap();
    assert_eq!(reference.prints, parallel.prints);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: for random sales graphs, any thread count produces the
    /// same three aggregation tables.
    #[test]
    fn prop_parallel_equals_serial(nc in 600usize..1500, per in 3usize..10, seed in 0u64..1000, threads in 2usize..8) {
        let g = random_sales_graph(nc, nc / 10 + 1, per, seed);
        let serial = Engine::new(&g)
            .with_parallelism(1)
            .run_text(stdlib::example5_multi_output(), &[])
            .unwrap();
        let parallel = Engine::new(&g)
            .with_parallelism(threads)
            .run_text(stdlib::example5_multi_output(), &[])
            .unwrap();
        prop_assert_eq!(serial.tables, parallel.tables);
    }
}
