//! Section 4.3: the snapshot Map/Reduce semantics makes parallel ACCUM
//! execution deterministic for order-invariant accumulators. These tests
//! run the same queries with 1, 2 and 8 Map threads and require
//! bit-identical outputs, including property-based randomized workloads.

use gsql_core::{stdlib, Engine, ErrorKind, QueryOutput, ResourceReport};
use ldbc_snb::{generate, queries, SnbParams};
use pgraph::generators::{diamond_chain, erdos_renyi, random_sales_graph};
use pgraph::value::Value;
use proptest::prelude::*;

/// The governor counters that must be thread-count invariant (everything
/// except wall-clock `elapsed`).
fn report_counts(r: &ResourceReport) -> (u64, u64, u64, u64) {
    (r.rows_materialized, r.paths_enumerated, r.peak_accum_bytes, r.while_iterations)
}

/// Asserts two runs are byte-identical: same tables, prints, return
/// value, kernel statistics, and governor counters.
fn assert_identical(reference: &QueryOutput, out: &QueryOutput, label: &str) {
    assert_eq!(reference.tables, out.tables, "{label}: tables diverged");
    assert_eq!(reference.prints, out.prints, "{label}: prints diverged");
    assert_eq!(reference.returned, out.returned, "{label}: return diverged");
    assert_eq!(reference.stats, out.stats, "{label}: MatchStats diverged");
    assert_eq!(
        report_counts(&reference.report),
        report_counts(&out.report),
        "{label}: governor counters diverged"
    );
}

#[test]
fn treeway_aggregation_is_thread_count_invariant() {
    let g = random_sales_graph(3_000, 300, 8, 5);
    let reference = Engine::new(&g)
        .with_parallelism(1)
        .run_text(stdlib::example5_multi_output(), &[])
        .unwrap();
    for threads in [2usize, 4, 8] {
        let out = Engine::new(&g)
            .with_parallelism(threads)
            .run_text(stdlib::example5_multi_output(), &[])
            .unwrap();
        assert_eq!(out.tables, reference.tables, "threads={threads}");
    }
}

#[test]
fn pagerank_is_thread_count_invariant() {
    let g = pgraph::generators::barabasi_albert(800, 4, 17);
    let src = stdlib::pagerank("V", "E").replace(
        "END;\n}",
        "END;\n  SELECT DISTINCT v.name, v.@score AS score INTO Scores FROM V:v;\n}",
    );
    let args = [
        ("maxChange", Value::Double(1e-9)),
        ("maxIteration", Value::Int(50)),
        ("dampingFactor", Value::Double(0.85)),
    ];
    let reference = Engine::new(&g).with_parallelism(1).run_text(&src, &args).unwrap();
    let parallel = Engine::new(&g).with_parallelism(4).run_text(&src, &args).unwrap();
    // Floating-point addition order differs between serial row order and
    // chunked order only if the reduce order differed — it must not: the
    // reduce phase is sequential in row order regardless of Map threads.
    assert_eq!(reference.tables, parallel.tables);
}

#[test]
fn grouping_workload_is_thread_count_invariant() {
    let g = generate(SnbParams::new(0.05, 31));
    let q = queries::q_acc();
    let reference = Engine::new(&g).with_parallelism(1).run_text(&q, &[]).unwrap();
    let parallel = Engine::new(&g).with_parallelism(8).run_text(&q, &[]).unwrap();
    assert_eq!(reference.prints, parallel.prints);
}

// ---- reach-kernel fan-out ---------------------------------------------------

#[test]
fn qn_counting_is_thread_count_invariant() {
    let (g, _) = diamond_chain(30);
    let q = stdlib::qn("V", "E");
    let args = [("srcName", Value::from("v0")), ("tgtName", Value::from("v30"))];
    let reference = Engine::new(&g).with_parallelism(1).run_text(&q, &args).unwrap();
    for threads in [2usize, 8] {
        let out = Engine::new(&g).with_parallelism(threads).run_text(&q, &args).unwrap();
        assert_identical(&reference, &out, &format!("Qn threads={threads}"));
    }
}

#[test]
fn multi_source_kernel_fanout_is_thread_count_invariant() {
    // Every vertex is a kernel source, so parallelism > 1 actually runs
    // the threaded kernel dispatch (unlike single-anchor Qn).
    let g = erdos_renyi(400, 5.0 / 400.0, 11);
    let q = r#"
        CREATE QUERY Fanout () {
          SumAccum<int> @hits;
          SumAccum<int> @@total;
          R = SELECT t FROM V:s -(E>*)- V:t ACCUM t.@hits += 1;
          S = SELECT t FROM R:t WHERE t.@hits > 1 POST_ACCUM @@total += t.@hits;
          PRINT S.size();
          PRINT @@total;
        }
    "#;
    let reference = Engine::new(&g).with_parallelism(1).run_text(q, &[]).unwrap();
    for threads in [2usize, 8] {
        let out = Engine::new(&g).with_parallelism(threads).run_text(q, &[]).unwrap();
        assert_identical(&reference, &out, &format!("fanout threads={threads}"));
    }
}

#[test]
fn ic5_is_thread_count_invariant() {
    let g = generate(SnbParams::new(0.05, 31));
    let pt = g.schema().vertex_type_id("Person").unwrap();
    let p = Value::Vertex(g.vertices_of_type(pt)[0]);
    let q = queries::ic5(3);
    let args = [
        ("p", p),
        ("minDate", Value::DateTime(0)),
    ];
    let reference = Engine::new(&g).with_parallelism(1).run_text(&q, &args).unwrap();
    for threads in [2usize, 8] {
        let out = Engine::new(&g).with_parallelism(threads).run_text(&q, &args).unwrap();
        assert_identical(&reference, &out, &format!("ic5 threads={threads}"));
    }
}

#[test]
fn mid_kernel_cancellation_is_honored_at_any_parallelism() {
    // A fan-out heavy enough to run for a while: kernels from every
    // vertex of a denser random digraph. Cancel mid-flight and require a
    // structured Cancelled error — at every thread count, including the
    // threaded kernel dispatch where workers observe the shared guard.
    let g = erdos_renyi(1200, 6.0 / 1200.0, 7);
    let q = r#"
        CREATE QUERY Fanout () {
          SumAccum<int> @hits;
          R = SELECT t FROM V:s -(E>*)- V:t ACCUM t.@hits += 1;
          PRINT R.size();
        }
    "#;
    for threads in [1usize, 2, 8] {
        let engine = Engine::new(&g).with_parallelism(threads);
        let handle = engine.cancel_handle();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            handle.cancel();
        });
        let result = engine.run_text(q, &[]);
        canceller.join().unwrap();
        // An Ok result is legitimate (a fast machine may finish before the
        // cancel lands); an error must be the structured Cancelled kind.
        if let Err(e) = result {
            assert_eq!(e.kind(), ErrorKind::Cancelled, "threads={threads}");
        }
    }
}

// ---- morsel boundaries ------------------------------------------------------
//
// The vectorized row loop splits binding tables into fixed-size morsels
// (`Engine::with_morsel_size`); these tests pin its edge cases. Note:
// `morsels_dispatched` is a pure function of table sizes and the morsel
// size, so full-stats equality (`assert_identical`) only applies between
// runs with the SAME morsel size; across sizes we compare outputs.

/// An aggregation workload whose ACCUM targets are all exact-merge
/// (integer sums), so the morsel-parallel partial fold is active.
fn exact_merge_workload() -> &'static str {
    r#"
        CREATE QUERY MorselExact () {
          SumAccum<int> @hits;
          SumAccum<int> @@total;
          R = SELECT t FROM V:s -(E>)- V:t ACCUM t.@hits += 1, @@total += 1;
          S = SELECT t FROM R:t WHERE t.@hits > 1 POST_ACCUM @@total += t.@hits;
          PRINT S.size();
          PRINT @@total;
        }
    "#
}

#[test]
fn empty_binding_table_dispatches_no_morsels() {
    let g = erdos_renyi(600, 3.0 / 600.0, 5);
    let q = r#"
        CREATE QUERY Empty () {
          SumAccum<int> @@total;
          R = SELECT t FROM V:s -(E>)- V:t WHERE false ACCUM @@total += 1;
          PRINT R.size();
          PRINT @@total;
        }
    "#;
    let reference = Engine::new(&g).with_parallelism(1).run_text(q, &[]).unwrap();
    assert_eq!(reference.prints, vec!["R.size() = 0", "@@total = 0"]);
    for threads in [2usize, 8] {
        let out = Engine::new(&g).with_parallelism(threads).run_text(q, &[]).unwrap();
        assert_identical(&reference, &out, &format!("empty threads={threads}"));
    }
}

#[test]
fn morsel_size_one_is_output_invariant() {
    let g = erdos_renyi(700, 4.0 / 700.0, 13);
    let q = exact_merge_workload();
    let reference = Engine::new(&g).with_parallelism(1).run_text(q, &[]).unwrap();
    for threads in [1usize, 2, 8] {
        let out = Engine::new(&g)
            .with_parallelism(threads)
            .with_morsel_size(1)
            .run_text(q, &[])
            .unwrap();
        assert_eq!(reference.prints, out.prints, "morsel=1 threads={threads}");
        assert_eq!(reference.tables, out.tables, "morsel=1 threads={threads}");
    }
}

#[test]
fn single_morsel_table_is_output_invariant() {
    // A morsel size far above the row count puts the whole binding table
    // in exactly one morsel: the multi-worker dispatch degenerates to one
    // busy worker and must still match the sequential fold.
    let g = erdos_renyi(700, 4.0 / 700.0, 13);
    let q = exact_merge_workload();
    let reference = Engine::new(&g).with_parallelism(1).run_text(q, &[]).unwrap();
    for threads in [1usize, 2, 8] {
        let out = Engine::new(&g)
            .with_parallelism(threads)
            .with_morsel_size(1 << 24)
            .run_text(q, &[])
            .unwrap();
        assert_eq!(reference.prints, out.prints, "one-morsel threads={threads}");
        assert_eq!(reference.tables, out.tables, "one-morsel threads={threads}");
    }
}

#[test]
fn non_exact_merge_fallback_is_thread_count_invariant() {
    // Float sums do not merge exactly, so the ACCUM falls back to the
    // sequential row-order Reduce; the Map phase still fans out over
    // morsels. Output must be byte-identical at any thread count and any
    // morsel size — the reduce order never changes.
    let g = random_sales_graph(2_000, 200, 6, 9);
    let q = r#"
        CREATE QUERY FloatFold () {
          SumAccum<float> @@revenue;
          AvgAccum @@avg_qty;
          R = SELECT c FROM Customer:c -(Bought>:b)- Product:p
              ACCUM @@revenue += b.quantity * p.list_price * (1.0 - b.discount),
                    @@avg_qty += b.quantity;
          PRINT @@revenue;
          PRINT @@avg_qty;
        }
    "#;
    let reference = Engine::new(&g).with_parallelism(1).run_text(q, &[]).unwrap();
    for (threads, morsel) in [(2usize, 7usize), (8, 64), (8, 1)] {
        let out = Engine::new(&g)
            .with_parallelism(threads)
            .with_morsel_size(morsel)
            .run_text(q, &[])
            .unwrap();
        assert_eq!(
            reference.prints, out.prints,
            "float fallback threads={threads} morsel={morsel}"
        );
    }
}

#[test]
fn mid_morsel_cancellation_is_honored() {
    // Morsel size 1 maximizes per-morsel guard checkpoints; cancel while
    // the morsel loop is running and require a structured Cancelled error
    // (or a legitimately fast Ok) at every thread count.
    let g = erdos_renyi(1500, 6.0 / 1500.0, 3);
    let q = r#"
        CREATE QUERY Fanout () {
          SumAccum<int> @hits;
          R = SELECT t FROM V:s -(E>*)- V:t ACCUM t.@hits += 1;
          PRINT R.size();
        }
    "#;
    for threads in [1usize, 2, 8] {
        let engine = Engine::new(&g).with_parallelism(threads).with_morsel_size(1);
        let handle = engine.cancel_handle();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            handle.cancel();
        });
        let result = engine.run_text(q, &[]);
        canceller.join().unwrap();
        if let Err(e) = result {
            assert_eq!(e.kind(), ErrorKind::Cancelled, "threads={threads}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: for random sales graphs, any thread count produces the
    /// same three aggregation tables.
    #[test]
    fn prop_parallel_equals_serial(nc in 600usize..1500, per in 3usize..10, seed in 0u64..1000, threads in 2usize..8) {
        let g = random_sales_graph(nc, nc / 10 + 1, per, seed);
        let serial = Engine::new(&g)
            .with_parallelism(1)
            .run_text(stdlib::example5_multi_output(), &[])
            .unwrap();
        let parallel = Engine::new(&g)
            .with_parallelism(threads)
            .run_text(stdlib::example5_multi_output(), &[])
            .unwrap();
        prop_assert_eq!(serial.tables, parallel.tables);
    }
}
