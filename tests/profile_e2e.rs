//! End-to-end checks for `PROFILE`: the per-operator counters must
//! reconcile with the resource governor's `ResourceReport`, and turning
//! profiling on must not change query results — at any parallelism.

use gsql_core::{parse_query, stdlib, Engine, Profile, QueryOutput};
use ldbc_snb::{generate, queries, SnbParams};
use pgraph::generators::{diamond_chain, erdos_renyi};
use pgraph::value::Value;

fn run_both(
    engine: &Engine,
    src: &str,
    args: &[(&str, Value)],
) -> (QueryOutput, QueryOutput, Profile) {
    let q = parse_query(src).unwrap();
    let plain = engine.run(&q, args).unwrap();
    let (profiled, profile) = engine.run_profiled(&q, args).unwrap();
    (plain, profiled, profile)
}

/// Everything observable about a query's result except wall-clock time.
fn assert_results_identical(plain: &QueryOutput, profiled: &QueryOutput, label: &str) {
    assert_eq!(plain.tables, profiled.tables, "{label}: tables diverged");
    assert_eq!(plain.prints, profiled.prints, "{label}: prints diverged");
    assert_eq!(plain.returned, profiled.returned, "{label}: return diverged");
    assert_eq!(plain.stats, profiled.stats, "{label}: MatchStats diverged");
}

#[test]
fn profiling_does_not_change_results() {
    let (g, _) = diamond_chain(30);
    let src = stdlib::qn("V", "E");
    let args = [("srcName", Value::from("v0")), ("tgtName", Value::from("v30"))];
    for threads in [1usize, 4] {
        let engine = Engine::new(&g).with_parallelism(threads);
        let (plain, profiled, _) = run_both(&engine, &src, &args);
        assert_results_identical(&plain, &profiled, &format!("Qn threads={threads}"));
    }
}

#[test]
fn profiling_does_not_change_results_on_ldbc() {
    let g = generate(SnbParams::new(0.05, 31));
    let pt = g.schema().vertex_type_id("Person").unwrap();
    let p = Value::Vertex(g.vertices_of_type(pt)[0]);
    let src = queries::ic5(3);
    let args = [("p", p), ("minDate", Value::DateTime(0))];
    for threads in [1usize, 4] {
        let engine = Engine::new(&g).with_parallelism(threads);
        let (plain, profiled, _) = run_both(&engine, &src, &args);
        assert_results_identical(&plain, &profiled, &format!("ic5 threads={threads}"));
    }
}

#[test]
fn profile_root_reconciles_with_resource_report() {
    let g = erdos_renyi(400, 5.0 / 400.0, 11);
    let src = r#"
        CREATE QUERY Fanout () {
          SumAccum<int> @hits;
          SumAccum<int> @@total;
          R = SELECT t FROM V:s -(E>*)- V:t ACCUM t.@hits += 1;
          S = SELECT t FROM R:t WHERE t.@hits > 1 POST_ACCUM @@total += t.@hits;
          PRINT @@total;
        }
    "#;
    for threads in [1usize, 4] {
        let engine = Engine::new(&g).with_parallelism(threads);
        let q = parse_query(src).unwrap();
        let (out, profile) = engine.run_profiled(&q, &[]).unwrap();
        // The profile root aggregates the same MatchStats the run ends
        // with, and those counters are mirrored into the governor, so
        // the three views of "work done" must agree exactly.
        assert_eq!(profile.root.vertices_touched, out.stats.vertices_touched);
        assert_eq!(profile.root.edges_scanned, out.stats.edges_scanned);
        assert_eq!(profile.root.vertices_touched, out.report.vertices_touched);
        assert_eq!(profile.root.edges_scanned, out.report.edges_scanned);
        assert_eq!(profile.root.kernel_calls, out.stats.kernel_calls);
        assert_eq!(profile.root.paths_enumerated, out.report.paths_enumerated);
        assert!(profile.root.vertices_touched > 0, "threads={threads}: no vertices counted");
        assert!(profile.root.edges_scanned > 0, "threads={threads}: no edges counted");
    }
}

#[test]
fn while_loop_operators_fold_into_one_node() {
    // PageRank runs its block tens of times inside WHILE; the profile
    // must fold every iteration into a single per-operator node whose
    // `calls` records the iteration count.
    let g = pgraph::generators::barabasi_albert(200, 3, 17);
    let src = stdlib::pagerank("V", "E");
    let args = [
        ("maxChange", Value::Double(1e-9)),
        ("maxIteration", Value::Int(10)),
        ("dampingFactor", Value::Double(0.85)),
    ];
    let engine = Engine::new(&g);
    let q = parse_query(&src).unwrap();
    let (out, profile) = engine.run_profiled(&q, &args).unwrap();
    let mut while_nodes = 0u32;
    let mut block_calls = 0u64;
    profile.root.visit(&mut |n| {
        if n.op == "while" {
            while_nodes += 1;
        }
        if n.op == "block" {
            block_calls += n.calls;
        }
    });
    assert_eq!(while_nodes, 1, "WHILE iterations must share one node");
    assert_eq!(
        block_calls, out.report.while_iterations,
        "block calls must equal governor while_iterations"
    );
}

#[test]
fn profile_renderings_are_well_formed() {
    let (g, _) = diamond_chain(10);
    let src = stdlib::qn("V", "E");
    let args = [("srcName", Value::from("v0")), ("tgtName", Value::from("v10"))];
    let engine = Engine::new(&g);
    let q = parse_query(&src).unwrap();
    let (_, profile) = engine.run_profiled(&q, &args).unwrap();
    let text = profile.render();
    assert!(text.starts_with("PROFILE Qn ["), "header: {text}");
    assert!(text.contains("calls 1"), "per-node counters: {text}");
    let json = profile.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    // One JSON op object per rendered line (the header is the root).
    assert_eq!(json.matches("\"op\":").count(), text.lines().count());
}
