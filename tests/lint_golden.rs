//! Golden tests pinning the `gsql check` diagnostic output, one positive
//! trigger and one clean near-miss per rule code (catalog in
//! `docs/LINTS.md`), plus the paper's running examples which must stay
//! diagnostic-free.
//!
//! To regenerate after an intentional message change:
//!
//! ```sh
//! GSQL_BLESS=1 cargo test -p bench --test lint_golden
//! ```

use gsql_core::lint::{render_json, render_text};
use gsql_core::{lint_query, parse_query, PathSemantics, Severity};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden").join(name)
}

fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("GSQL_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {} ({e}); run with GSQL_BLESS=1 to create it", path.display())
    });
    assert_eq!(
        actual, expected,
        "lint output for {name} diverged from the golden file; if the change is \
         intentional, regenerate with GSQL_BLESS=1 and update docs/LINTS.md"
    );
}

fn lint_text(src: &str, semantics: PathSemantics) -> String {
    let q = parse_query(src).unwrap();
    let diags = lint_query(&q, semantics);
    if diags.is_empty() {
        "clean\n".to_string()
    } else {
        render_text(&diags, Some(src)) + "\n"
    }
}

/// Asserts `src` triggers `code` (under counting semantics unless noted)
/// and pins the full rendered output.
fn positive(name: &str, code: &str, src: &str, semantics: PathSemantics) {
    let q = parse_query(src).unwrap();
    let diags = lint_query(&q, semantics);
    assert!(
        diags.iter().any(|d| d.code == code),
        "{name}: expected rule {code} to fire, got: {:?}",
        diags.iter().map(|d| d.code).collect::<Vec<_>>()
    );
    assert_golden(&format!("lint_{name}.txt"), &lint_text(src, semantics));
}

/// Asserts the near-miss variant produces no diagnostic with `code`.
fn near_miss(name: &str, code: &str, src: &str, semantics: PathSemantics) {
    let q = parse_query(src).unwrap();
    let diags = lint_query(&q, semantics);
    assert!(
        !diags.iter().any(|d| d.code == code),
        "{name}: near-miss unexpectedly triggered {code}: {}",
        render_text(&diags, Some(src))
    );
}

const COUNTING: PathSemantics = PathSemantics::AllShortestPaths;

// ---- A001 written-never-read -------------------------------------------

#[test]
fn a001_unread_accumulator() {
    positive(
        "a001",
        "A001",
        r#"CREATE QUERY q () {
  SumAccum<int> @@cnt;
  S = SELECT p FROM Page:p ACCUM @@cnt += 1;
}"#,
        COUNTING,
    );
    near_miss(
        "a001",
        "A001",
        r#"CREATE QUERY q () {
  SumAccum<int> @@cnt;
  S = SELECT p FROM Page:p ACCUM @@cnt += 1;
  PRINT @@cnt;
}"#,
        COUNTING,
    );
}

// ---- A002 read-never-written -------------------------------------------

#[test]
fn a002_unwritten_accumulator() {
    positive(
        "a002",
        "A002",
        r#"CREATE QUERY q () {
  SumAccum<int> @@cnt;
  PRINT @@cnt;
}"#,
        COUNTING,
    );
    // An initializer makes the read meaningful.
    near_miss(
        "a002",
        "A002",
        r#"CREATE QUERY q () {
  SumAccum<int> @@cnt = 42;
  PRINT @@cnt;
}"#,
        COUNTING,
    );
}

// ---- A003 multi-binding `=` write in ACCUM ------------------------------

#[test]
fn a003_assignment_race() {
    positive(
        "a003",
        "A003",
        r#"CREATE QUERY q () {
  SumAccum<int> @cnt;
  S = SELECT t FROM Page:s -(Link>)- Page:t ACCUM t.@cnt = s.rank;
  PRINT S[S.@cnt];
}"#,
        COUNTING,
    );
    // A hopless scan binds each vertex exactly once: `=` is deterministic.
    near_miss(
        "a003",
        "A003",
        r#"CREATE QUERY q () {
  SumAccum<int> @cnt;
  S = SELECT p FROM Page:p ACCUM p.@cnt = 1;
  PRINT S[S.@cnt];
}"#,
        COUNTING,
    );
}

// ---- A004 global assignment in ACCUM ------------------------------------

#[test]
fn a004_global_assign_race() {
    positive(
        "a004",
        "A004",
        r#"CREATE QUERY q () {
  SumAccum<int> @@last;
  S = SELECT p FROM Page:p ACCUM @@last = p.rank;
  PRINT @@last;
}"#,
        COUNTING,
    );
    near_miss(
        "a004",
        "A004",
        r#"CREATE QUERY q () {
  SumAccum<int> @@last;
  S = SELECT p FROM Page:p ACCUM @@last += 7;
  PRINT @@last;
}"#,
        COUNTING,
    );
}

// ---- A005 no-effect snapshot read ---------------------------------------

#[test]
fn a005_no_effect_snapshot() {
    positive(
        "a005",
        "A005",
        r#"CREATE QUERY q () {
  SumAccum<float> @score = 1;
  SumAccum<float> @copy;
  S = SELECT p FROM Page:p POST_ACCUM p.@copy += p.@score';
  PRINT S[S.@copy];
}"#,
        COUNTING,
    );
    // PageRank's idiom: the block writes @score, so `'` is load-bearing.
    near_miss(
        "a005",
        "A005",
        r#"CREATE QUERY q () {
  SumAccum<float> @score = 1;
  S = SELECT p FROM Page:p POST_ACCUM p.@score = p.@score' * 2;
  PRINT S[S.@score];
}"#,
        COUNTING,
    );
}

// ---- A006 undeclared accumulator ----------------------------------------

#[test]
fn a006_undeclared_accumulator() {
    positive(
        "a006",
        "A006",
        r#"CREATE QUERY q () {
  SumAccum<int> @@cnt;
  S = SELECT p FROM Page:p ACCUM @@cont += 1;
  PRINT @@cnt;
}"#,
        COUNTING,
    );
    near_miss(
        "a006",
        "A006",
        r#"CREATE QUERY q () {
  SumAccum<int> @@cnt;
  S = SELECT p FROM Page:p ACCUM @@cnt += 1;
  PRINT @@cnt;
}"#,
        COUNTING,
    );
}

// ---- T001 combine operand type mismatch ---------------------------------

#[test]
fn t001_type_mismatch() {
    positive(
        "t001",
        "T001",
        r#"CREATE QUERY q () {
  SumAccum<int> @@total;
  S = SELECT p FROM Page:p ACCUM @@total += "one";
  PRINT @@total;
}"#,
        COUNTING,
    );
    near_miss(
        "t001",
        "T001",
        r#"CREATE QUERY q () {
  SumAccum<int> @@total;
  S = SELECT p FROM Page:p ACCUM @@total += 1;
  PRINT @@total;
}"#,
        COUNTING,
    );
}

// ---- T002 lossy integer literal -----------------------------------------

#[test]
fn t002_lossy_literal() {
    positive(
        "t002",
        "T002",
        r#"CREATE QUERY q () {
  SumAccum<float> @@total;
  S = SELECT p FROM Page:p ACCUM @@total += 9007199254740995;
  PRINT @@total;
}"#,
        COUNTING,
    );
    // 2^53 itself is exactly representable.
    near_miss(
        "t002",
        "T002",
        r#"CREATE QUERY q () {
  SumAccum<float> @@total;
  S = SELECT p FROM Page:p ACCUM @@total += 9007199254740992;
  PRINT @@total;
}"#,
        COUNTING,
    );
}

// ---- T003 Min/Max over unordered values ---------------------------------

#[test]
fn t003_minmax_over_bool() {
    positive(
        "t003",
        "T003",
        r#"CREATE QUERY q () {
  MaxAccum @@any;
  S = SELECT p FROM Page:p ACCUM @@any += true;
  PRINT @@any;
}"#,
        COUNTING,
    );
    near_miss(
        "t003",
        "T003",
        r#"CREATE QUERY q () {
  MaxAccum @@best;
  S = SELECT p FROM Page:p ACCUM @@best += 3;
  PRINT @@best;
}"#,
        COUNTING,
    );
}

// ---- P001 unbounded Kleene under enumerative semantics ------------------

#[test]
fn p001_enumerative_kleene() {
    // Inline USE SEMANTICS → the query text itself opts into the
    // exponential strategy → Error severity.
    positive(
        "p001",
        "P001",
        r#"CREATE QUERY q () {
  SumAccum<int> @cnt;
  USE SEMANTICS 'non_repeated_edge';
  R = SELECT t FROM Page:s -(Link>*)- Page:t ACCUM t.@cnt += 1;
  PRINT R[R.@cnt];
}"#,
        COUNTING,
    );
    {
        // Ambient (engine-default) enumerative semantics → Warn severity.
        let src = r#"CREATE QUERY q () {
  SumAccum<int> @cnt;
  R = SELECT t FROM Page:s -(Link>*)- Page:t ACCUM t.@cnt += 1;
  PRINT R[R.@cnt];
}"#;
        let q = parse_query(src).unwrap();
        let diags = lint_query(&q, PathSemantics::NonRepeatedEdge);
        let d = diags.iter().find(|d| d.code == "P001").expect("P001 under ambient semantics");
        assert_eq!(d.severity, Severity::Warn);
    }
    // Counting semantics: the same pattern is polynomial, no P001.
    near_miss(
        "p001",
        "P001",
        r#"CREATE QUERY q () {
  SumAccum<int> @cnt;
  R = SELECT t FROM Page:s -(Link>*)- Page:t ACCUM t.@cnt += 1;
  PRINT R[R.@cnt];
}"#,
        COUNTING,
    );
}

// ---- P002 edge variable in Kleene scope ---------------------------------

#[test]
fn p002_edge_var_in_kleene() {
    positive(
        "p002",
        "P002",
        r#"CREATE QUERY q () {
  SumAccum<int> @@n;
  S = SELECT t FROM Page:s -(Link>*1..2:e)- Page:t ACCUM @@n += 1;
  PRINT @@n;
}"#,
        COUNTING,
    );
    near_miss(
        "p002",
        "P002",
        r#"CREATE QUERY q () {
  SumAccum<int> @@n;
  S = SELECT t FROM Page:s -(Link>:e)- Page:t ACCUM @@n += 1;
  PRINT @@n;
}"#,
        COUNTING,
    );
}

// ---- P003 multiplicity-sensitive accumulator under counting -------------

#[test]
fn p003_multiplicity_sensitive() {
    positive(
        "p003",
        "P003",
        r#"CREATE QUERY q () {
  ListAccum<int> @@paths;
  S = SELECT t FROM Page:s -(Link>*)- Page:t ACCUM @@paths += 1;
  PRINT @@paths;
}"#,
        COUNTING,
    );
    // SetAccum is multiplicity-insensitive: fine under counting.
    near_miss(
        "p003",
        "P003",
        r#"CREATE QUERY q () {
  SetAccum<int> @@seen;
  S = SELECT t FROM Page:s -(Link>*)- Page:t ACCUM @@seen += 1;
  PRINT @@seen;
}"#,
        COUNTING,
    );
}

// ---- P004 bounded fan-out estimate under enumeration --------------------

#[test]
fn p004_fanout_estimate() {
    positive(
        "p004",
        "P004",
        r#"CREATE QUERY q () {
  SumAccum<int> @cnt;
  USE SEMANTICS 'non_repeated_edge';
  S = SELECT t FROM Page:s -(Link>*1..3)- Page:t ACCUM t.@cnt += 1;
  PRINT S[S.@cnt];
}"#,
        COUNTING,
    );
    // Under counting semantics no estimate is emitted.
    near_miss(
        "p004",
        "P004",
        r#"CREATE QUERY q () {
  SumAccum<int> @cnt;
  S = SELECT t FROM Page:s -(Link>*1..3)- Page:t ACCUM t.@cnt += 1;
  PRINT S[S.@cnt];
}"#,
        COUNTING,
    );
}

// ---- H001 unused vertex set ---------------------------------------------

#[test]
fn h001_unused_vset() {
    positive(
        "h001",
        "H001",
        r#"CREATE QUERY q () {
  S = SELECT p FROM Page:p;
  PRINT 1;
}"#,
        COUNTING,
    );
    // A block with ACCUM side effects is not dead even if unused (ic5's
    // G-block idiom).
    near_miss(
        "h001",
        "H001",
        r#"CREATE QUERY q () {
  SumAccum<int> @@n;
  S = SELECT p FROM Page:p ACCUM @@n += 1;
  PRINT @@n;
}"#,
        COUNTING,
    );
}

// ---- H002 shadowed names ------------------------------------------------

#[test]
fn h002_shadowed_binding() {
    positive(
        "h002",
        "H002",
        r#"CREATE QUERY q () {
  S = SELECT p FROM Page:p;
  T = SELECT S FROM Page:S WHERE S.rank > 0;
  PRINT T;
}"#,
        COUNTING,
    );
    // Binding variables shadowing *parameters* are idiomatic — not flagged.
    near_miss(
        "h002",
        "H002",
        r#"CREATE QUERY q (VERTEX p) {
  S = SELECT p FROM Person:p;
  PRINT S;
}"#,
        COUNTING,
    );
}

// ---- H003 constant-false WHERE ------------------------------------------

#[test]
fn h003_constant_false_where() {
    positive(
        "h003",
        "H003",
        r#"CREATE QUERY q () {
  S = SELECT p FROM Page:p WHERE 1 == 2;
  PRINT S;
}"#,
        COUNTING,
    );
    near_miss(
        "h003",
        "H003",
        r#"CREATE QUERY q () {
  S = SELECT p FROM Page:p WHERE p.rank == 2;
  PRINT S;
}"#,
        COUNTING,
    );
}

// ---- H004 loop-invariant WHILE ------------------------------------------

#[test]
fn h004_invariant_while() {
    positive(
        "h004",
        "H004",
        r#"CREATE QUERY q () {
  SumAccum<int> @@rounds;
  S = {Page.*};
  WHILE @@rounds < 10 DO
    S = SELECT p FROM S:p;
  END;
  PRINT S;
}"#,
        COUNTING,
    );
    // WCC's idiom: the body updates the condition's accumulator.
    near_miss(
        "h004",
        "H004",
        r#"CREATE QUERY q () {
  SumAccum<int> @@rounds;
  S = {Page.*};
  WHILE @@rounds < 10 DO
    S = SELECT p FROM S:p ACCUM @@rounds += 1;
  END;
  PRINT S;
}"#,
        COUNTING,
    );
}

// ---- M001 DELETE without WHERE -------------------------------------------

#[test]
fn m001_unfiltered_delete() {
    positive(
        "m001",
        "M001",
        r#"CREATE QUERY q () {
  DELETE FROM Page:p;
}"#,
        COUNTING,
    );
    near_miss(
        "m001",
        "M001",
        r#"CREATE QUERY q () {
  DELETE FROM Page:p WHERE p.rank == 0;
}"#,
        COUNTING,
    );
}

// ---- the paper's running examples stay clean ----------------------------

#[test]
fn paper_examples_check_clean() {
    use gsql_core::stdlib;
    for (name, src) in [
        ("pagerank", stdlib::pagerank("Page", "Link")),
        ("qn", stdlib::qn("Page", "Link")),
        ("ic5", ldbc_snb::queries::ic5(2)),
    ] {
        let q = parse_query(&src).unwrap();
        let diags = lint_query(&q, COUNTING);
        assert!(
            diags.is_empty(),
            "{name} must CHECK clean, got:\n{}",
            render_text(&diags, Some(&src))
        );
    }
    assert_golden("lint_clean_pagerank.txt", &lint_text(&stdlib::pagerank("Page", "Link"), COUNTING));
    assert_golden("lint_clean_qn.txt", &lint_text(&stdlib::qn("Page", "Link"), COUNTING));
    assert_golden("lint_clean_ic5.txt", &lint_text(&ldbc_snb::queries::ic5(2), COUNTING));
}

// ---- JSON rendering ------------------------------------------------------

#[test]
fn json_rendering_is_stable() {
    let src = r#"CREATE QUERY q () {
  SumAccum<int> @@cnt;
  S = SELECT p FROM Page:p ACCUM @@cnt += 1;
}"#;
    let q = parse_query(src).unwrap();
    let diags = lint_query(&q, COUNTING);
    assert_golden("lint_json_a001.json", &(render_json(&diags) + "\n"));
    // Structural sanity independent of the golden file.
    let json = render_json(&diags);
    assert!(json.starts_with("{\"diagnostics\":["));
    assert!(json.contains("\"code\":\"A001\""));
    assert!(json.contains("\"errors\":0"));
}

// ---- pass 6: abstract interpretation (D001-D004, docs/LINTS.md) ----------

#[test]
fn d001_unreachable_block() {
    // The interval analysis proves `@@k > 5` false from the assignment
    // `@@k = 3` — a non-literal proof H003 cannot see.
    positive(
        "d001",
        "D001",
        r#"CREATE QUERY q () {
  SumAccum<int> @@k;
  @@k = 3;
  S = SELECT p FROM Page:p WHERE @@k > 5;
  PRINT S;
}"#,
        COUNTING,
    );
    // A literal-false WHERE belongs to H003, not D001.
    near_miss(
        "d001",
        "D001",
        r#"CREATE QUERY q () {
  S = SELECT p FROM Page:p WHERE 1 == 2;
  PRINT S;
}"#,
        COUNTING,
    );
}

#[test]
fn d002_nonterminating_while() {
    positive(
        "d002",
        "D002",
        r#"CREATE QUERY q () {
  SumAccum<int> @@n;
  WHILE @@n < 100 DO PRINT @@n; END;
}"#,
        COUNTING,
    );
    // The body updates the condition's accumulator: termination is
    // plausible, so no D002.
    near_miss(
        "d002",
        "D002",
        r#"CREATE QUERY q () {
  SumAccum<int> @@n;
  WHILE @@n < 100 DO @@n += 1; END;
}"#,
        COUNTING,
    );
}

#[test]
fn d003_guaranteed_budget_trip() {
    use gsql_core::lint::budget_findings;
    use gsql_core::Budget;
    let src = r#"CREATE QUERY q () {
  SumAccum<int> @@n;
  WHILE true LIMIT 100 DO @@n += 1; END;
  PRINT @@n;
}"#;
    let q = parse_query(src).unwrap();
    let (mut diags, facts) = gsql_core::lint::lint_query_and_facts(
        &q,
        COUNTING,
        &accum::UserAccumRegistry::new(),
    );
    diags.extend(budget_findings(&facts, &Budget::default().with_max_while_iters(10)));
    assert!(diags.iter().any(|d| d.code == "D003"), "expected D003 under a 10-iteration budget");
    assert_golden("lint_d003.txt", &(render_text(&diags, Some(src)) + "\n"));
    // A roomy budget produces no finding.
    assert!(budget_findings(&facts, &Budget::default().with_max_while_iters(1000)).is_empty());
}

#[test]
fn d004_merge_order_dependence() {
    positive(
        "d004",
        "D004",
        r#"CREATE QUERY q () {
  ListAccum<int> @@xs;
  S = SELECT t FROM Page:s -(Link>)- Page:t ACCUM @@xs += 1;
  PRINT @@xs;
}"#,
        COUNTING,
    );
    near_miss(
        "d004",
        "D004",
        r#"CREATE QUERY q () {
  SumAccum<double> @@x;
  S = SELECT t FROM Page:s -(Link>)- Page:t ACCUM @@x += 0.5;
  PRINT @@x;
}"#,
        COUNTING,
    );
}

// ---- pass 6 facts JSON (schema documented in docs/LINTS.md) --------------

#[test]
fn facts_json_is_golden() {
    // One of everything: a decidable WHERE conjunct, an undecidable one,
    // a proven POST-ACCUM assign gate, a syntactically-exact ACCUM gate,
    // and a bounded WHILE — pinning the full `facts` schema the shell's
    // CHECK and the server's POST /lint emit.
    let src = r#"CREATE QUERY q () {
  SumAccum<int> @@n;
  MinAccum<int> @cc;
  S = SELECT p FROM Page:p WHERE 1 < 2 AND p.rank > 0
      ACCUM @@n += 1
      POST-ACCUM p.@cc = p.id();
  WHILE true LIMIT 3 DO PRINT 1; END;
  PRINT @@n;
}"#;
    let q = parse_query(src).unwrap();
    let (_, facts) = gsql_core::lint::lint_query_and_facts(
        &q,
        COUNTING,
        &accum::UserAccumRegistry::new(),
    );
    assert!(facts.blocks[0].post_accum_parallel, "assign gate should be proven");
    assert_golden("lint_facts.json", &(facts.render_json() + "\n"));
}
