//! End-to-end LDBC-like workload tests: the IC queries of Section 7.1 run
//! under both the counting (TigerGraph) and enumerative (Neo4j-style)
//! semantics and must return identical results — the paper's observation
//! that "the results of the queries are the same under both semantics for
//! this data set" — and the Appendix-B grouping-set pair must be mutually
//! consistent.

use gsql_core::{Engine, PathSemantics};
use ldbc_snb::{generate, queries, SnbParams};
use pgraph::datetime::to_epoch;
use pgraph::graph::VertexId;
use pgraph::value::Value;

fn test_graph() -> pgraph::graph::Graph {
    generate(SnbParams::new(0.04, 2024))
}

fn some_person(g: &pgraph::graph::Graph) -> VertexId {
    let pt = g.schema().vertex_type_id("Person").unwrap();
    // A well-connected person: the first one (pool-seeded, high degree).
    g.vertices_of_type(pt)[0]
}

fn ic_args(g: &pgraph::graph::Graph, query: &str) -> Vec<(&'static str, Value)> {
    let p = Value::Vertex(some_person(g));
    match query {
        "ic3" => vec![
            ("p", p),
            ("countryX", Value::from("country0")),
            ("countryY", Value::from("country1")),
        ],
        "ic5" => vec![("p", p), ("minDate", Value::DateTime(to_epoch(2010, 6, 1)))],
        "ic6" => vec![("p", p), ("tagName", Value::from("tag0"))],
        "ic9" => vec![("p", p), ("maxDate", Value::DateTime(to_epoch(2012, 6, 1)))],
        "ic11" => vec![
            ("p", p),
            ("country", Value::from("country2")),
            ("beforeYear", Value::Int(2010)),
        ],
        other => panic!("unknown query {other}"),
    }
}

/// Every IC query returns the same result under all-shortest-paths
/// counting, non-repeated-edge enumeration, and non-repeated-vertex
/// enumeration, at hop radii 2 and 3.
#[test]
fn ic_queries_agree_across_semantics() {
    let g = test_graph();
    for hops in [2usize, 3] {
        for (name, text) in [
            ("ic3", queries::ic3(hops)),
            ("ic5", queries::ic5(hops)),
            ("ic6", queries::ic6(hops)),
            ("ic9", queries::ic9(hops)),
            ("ic11", queries::ic11(hops)),
        ] {
            let args = ic_args(&g, name);
            let reference = Engine::new(&g)
                .run_text(&text, &args)
                .unwrap_or_else(|e| panic!("{name} h{hops} counting: {e}"));
            assert!(!reference.prints.is_empty());
            for sem in [PathSemantics::NonRepeatedEdge, PathSemantics::NonRepeatedVertex] {
                let out = Engine::new(&g)
                    .with_semantics(sem)
                    .with_enum_budget(50_000_000)
                    .run_text(&text, &args)
                    .unwrap_or_else(|e| panic!("{name} h{hops} {sem:?}: {e}"));
                assert_eq!(
                    out.prints, reference.prints,
                    "{name} hops={hops} {sem:?} diverged from counting semantics"
                );
            }
        }
    }
}

/// Counting semantics does strictly less work than enumeration: the
/// kernel never materializes a path, while the enumerative baselines
/// materialize at least one path per friend.
#[test]
fn counting_never_materializes_paths() {
    let g = test_graph();
    let text = queries::ic9(3);
    let args = ic_args(&g, "ic9");
    let counting = Engine::new(&g).run_text(&text, &args).unwrap();
    assert_eq!(counting.stats.paths_enumerated, 0);
    assert!(counting.stats.kernel_calls >= 1);
    let enumerating = Engine::new(&g)
        .with_semantics(PathSemantics::NonRepeatedEdge)
        .with_enum_budget(50_000_000)
        .run_text(&text, &args)
        .unwrap();
    assert!(enumerating.stats.paths_enumerated > 0);
}

/// The Appendix-B pair: Q_gs (GROUPING SETS simulation: 8 aggregates for
/// every grouping set) and Q_acc (dedicated accumulators) must see the
/// same groups — Q_gs's single wide accumulator holds exactly the union
/// of the three grouping sets' groups, which are pairwise disjoint by
/// their NULL patterns.
#[test]
fn appendix_b_queries_are_consistent() {
    let g = test_graph();
    let eng = Engine::new(&g);
    let acc = eng.run_text(&queries::q_acc(), &[]).unwrap();
    let gs = eng.run_text(&queries::q_gs(), &[]).unwrap();

    // Q_acc prints "... = a", ...; Q_gs prints "... = n".
    let parse_size =
        |line: &str| -> i64 { line.rsplit('=').next().unwrap().trim().parse().unwrap() };
    let sizes: Vec<i64> = acc.prints.iter().map(|l| parse_size(l)).collect();
    assert_eq!(sizes.len(), 3);
    let (per_year, gs2, gs3) = (sizes[0], sizes[1], sizes[2]);
    // Three publication years in the window.
    assert_eq!(per_year, 3);
    assert!(gs2 > 0 && gs3 > 0);
    let gs_total = parse_size(&gs.prints[0]);
    assert_eq!(gs_total, per_year + gs2 + gs3);
}

/// Widening the hop radius can only grow the friend set (sanity of the
/// hop parameterization the paper varies from 2 to 4).
#[test]
fn widening_hops_grows_results() {
    let g = test_graph();
    // Use the last person: it joined the preferential-attachment process
    // last, so its 1-hop neighborhood is small and the radius sweep has
    // room to grow.
    let pt = g.schema().vertex_type_id("Person").unwrap();
    let p = Value::Vertex(*g.vertices_of_type(pt).last().unwrap());
    let mut friend_counts = Vec::new();
    for hops in [1usize, 2, 3] {
        let text = format!(
            r#"
            CREATE QUERY FriendCount (vertex<Person> p) {{
              F = SELECT f FROM Person:p -(Knows*1..{hops})- Person:f WHERE f <> p;
              PRINT F.size() AS friends;
            }}
            "#
        );
        let out = Engine::new(&g).run_text(&text, &[("p", p.clone())]).unwrap();
        let n: i64 = out.prints[0].rsplit('=').next().unwrap().trim().parse().unwrap();
        friend_counts.push(n);
    }
    assert!(friend_counts[0] < friend_counts[1], "{friend_counts:?}");
    assert!(friend_counts[1] <= friend_counts[2], "{friend_counts:?}");
    assert!(friend_counts[0] > 0);
}

/// The interactive-short family runs and returns internally consistent
/// results on the generated graph.
#[test]
fn interactive_short_queries() {
    let g = test_graph();
    let eng = Engine::new(&g);
    let p = Value::Vertex(some_person(&g));

    let profile = eng.run_text(&queries::is1(), &[("p", p.clone())]).unwrap();
    assert_eq!(profile.table("Profile").unwrap().len(), 1);

    let recent = eng.run_text(&queries::is2(), &[("p", p.clone())]).unwrap();
    assert_eq!(recent.prints.len(), 1);

    let friends = eng.run_text(&queries::is3(), &[("p", p.clone())]).unwrap();
    let friends_t = friends.table("Friends").unwrap().clone();
    assert!(!friends_t.is_empty(), "seed person must have friends");
    // Sorted by since DESC.
    let dates: Vec<_> = friends_t
        .rows
        .iter()
        .map(|r| r[3].as_i64().unwrap())
        .collect();
    assert!(dates.windows(2).all(|w| w[0] >= w[1]));

    // Pick some message and check is5/is7 consistency.
    let mt = g.schema().vertex_type_id("Message").unwrap();
    let m = Value::Vertex(g.vertices_of_type(mt)[0]);
    let creator = eng.run_text(&queries::is5(), &[("m", m.clone())]).unwrap();
    assert_eq!(creator.table("Creator").unwrap().len(), 1);
    let replies = eng.run_text(&queries::is7(), &[("m", m)]).unwrap();
    // Replies may be empty; the query must still produce the table.
    assert!(replies.table("Replies").is_some());
}
