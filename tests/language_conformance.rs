//! Language-conformance suite: every clause and accumulator type the
//! engine supports, exercised end-to-end with hand-checkable answers on
//! the fixed SalesGraph / LinkedIn fixtures.

use gsql_core::exec::ReturnValue;
use gsql_core::{Engine, Error, Table};
use pgraph::generators::{sales_graph, ve_schema};
use pgraph::graph::GraphBuilder;
use pgraph::value::Value;

fn run(src: &str) -> gsql_core::QueryOutput {
    let g = sales_graph();
    Engine::new(&g).run_text(src, &[]).unwrap_or_else(|e| panic!("{e}\n{src}"))
}

fn run_args(src: &str, args: &[(&str, Value)]) -> gsql_core::QueryOutput {
    let g = sales_graph();
    Engine::new(&g).run_text(src, args).unwrap_or_else(|e| panic!("{e}\n{src}"))
}

#[test]
fn group_by_having_order_limit() {
    let out = run(r#"
        CREATE QUERY G () {
          SELECT p.category AS cat, count(*) AS cnt, sum(b.quantity) AS q INTO T
          FROM  Customer:c -(Bought>:b)- Product:p
          GROUP BY p.category
          HAVING count(*) >= 2
          ORDER BY sum(b.quantity) DESC
          LIMIT 2;
        }
    "#);
    // toys: 4 purchases, qty 2+1+1+4=8; books: 2 purchases, qty 3+1=4.
    let t = out.table("T").unwrap();
    assert_eq!(
        t.rows,
        vec![
            vec![Value::from("toy"), Value::Int(4), Value::Double(8.0)],
            vec![Value::from("book"), Value::Int(2), Value::Double(4.0)],
        ]
    );
}

#[test]
fn grouping_sets_produce_null_padded_union() {
    let out = run(r#"
        CREATE QUERY G () {
          SELECT p.category AS cat, c.name AS cust, count(*) AS cnt INTO T
          FROM  Customer:c -(Bought>)- Product:p
          GROUP BY GROUPING SETS ((p.category), (c.name), ());
        }
    "#);
    let t = out.table("T").unwrap();
    // 2 category groups + 4 customer groups + 1 grand total.
    assert_eq!(t.rows.len(), 7);
    let grand: Vec<_> = t
        .rows
        .iter()
        .filter(|r| r[0] == Value::Null && r[1] == Value::Null)
        .collect();
    assert_eq!(grand, vec![&vec![Value::Null, Value::Null, Value::Int(6)]]);
    let toy = t
        .rows
        .iter()
        .find(|r| r[0] == Value::from("toy"))
        .unwrap();
    assert_eq!(toy[2], Value::Int(4));
}

#[test]
fn cube_has_all_subsets() {
    let out = run(r#"
        CREATE QUERY G () {
          SELECT p.category AS cat, c.name AS cust, count(*) AS cnt INTO T
          FROM  Customer:c -(Bought>)- Product:p
          GROUP BY CUBE (p.category, c.name);
        }
    "#);
    // (): 1, (cat): 2, (cust): 4, (cat,cust): 5 distinct pairs
    // (alice-toy, bob-toy, bob-book, carol-toy, dave-book).
    assert_eq!(out.table("T").unwrap().rows.len(), 1 + 2 + 4 + 5);
}

#[test]
fn avg_min_max_aggregates() {
    let out = run(r#"
        CREATE QUERY G () {
          SELECT avg(p.list_price) AS a, min(p.list_price) AS lo, max(p.list_price) AS hi INTO T
          FROM Product:p;
        }
    "#);
    let t = out.table("T").unwrap();
    assert_eq!(
        t.rows,
        vec![vec![Value::Double(75.0 / 4.0), Value::Double(10.0), Value::Double(30.0)]]
    );
}

#[test]
fn while_loop_with_limit_and_if() {
    let out = run(r#"
        CREATE QUERY G () {
          SumAccum<int> @@i, @@evens;
          WHILE true LIMIT 10 DO
            @@i += 1;
            IF @@i % 2 == 0 THEN @@evens += 1; END;
          END;
          PRINT @@i, @@evens;
        }
    "#);
    assert_eq!(out.prints, vec!["@@i = 10".to_string(), "@@evens = 5".to_string()]);
}

#[test]
fn foreach_over_collections() {
    let out = run(r#"
        CREATE QUERY G () {
          ListAccum<int> @@xs;
          SumAccum<int> @@sum;
          @@xs += 3; @@xs += 4; @@xs += 5;
          FOREACH x IN @@xs DO @@sum += x; END;
          PRINT @@sum;
        }
    "#);
    assert_eq!(out.prints, vec!["@@sum = 12".to_string()]);
}

#[test]
fn set_bag_list_map_accums() {
    let out = run(r#"
        CREATE QUERY G () {
          SetAccum<string> @@cats;
          BagAccum<string> @@catBag;
          MapAccum<string, SumAccum<int>> @@perCat;
          S = SELECT p FROM Customer:c -(Bought>)- Product:p
              ACCUM @@cats += p.category,
                    @@catBag += p.category,
                    @@perCat += (p.category -> 1);
          PRINT @@cats, @@catBag, @@perCat;
        }
    "#);
    assert_eq!(
        out.prints,
        vec![
            "@@cats = {book, toy}".to_string(),
            "@@catBag = {book -> 2, toy -> 4}".to_string(),
            "@@perCat = {book -> 2, toy -> 4}".to_string(),
        ]
    );
}

#[test]
fn heap_accum_with_typedef() {
    let out = run(r#"
        CREATE QUERY G () {
          TYPEDEF TUPLE<FLOAT price, STRING name> PN;
          HeapAccum<PN>(2, price DESC, name ASC) @@expensive;
          S = SELECT p FROM Product:p ACCUM @@expensive += (p.list_price, p.name);
          PRINT @@expensive;
        }
    "#);
    assert_eq!(
        out.prints,
        vec!["@@expensive = [(30.0, robot), (20.0, kite)]".to_string()]
    );
}

#[test]
fn or_and_accums_with_post_accum() {
    let out = run(r#"
        CREATE QUERY G () {
          OrAccum @@anyCheap;
          AndAccum @@allCheap;
          S = SELECT p FROM Product:p
              ACCUM @@anyCheap += p.list_price < 12.0,
                    @@allCheap += p.list_price < 12.0;
          PRINT @@anyCheap, @@allCheap;
        }
    "#);
    assert_eq!(
        out.prints,
        vec!["@@anyCheap = true".to_string(), "@@allCheap = false".to_string()]
    );
}

#[test]
fn string_and_math_functions() {
    let out = run(r#"
        CREATE QUERY G () {
          PRINT upper('abc'), lower('DeF'), length('hello'),
                abs(0 - 5), sqrt(16.0), pow(2, 10), floor(2.7), ceil(2.1),
                min(3, 7), max(3, 7), coalesce(NULL, 42);
        }
    "#);
    assert_eq!(
        out.prints,
        vec![
            "upper = ABC", "lower = def", "length = 5", "abs = 5", "sqrt = 4.0",
            "pow = 1024.0", "floor = 2.0", "ceil = 3.0", "min = 3", "max = 7",
            "coalesce = 42"
        ]
        .into_iter()
        .map(String::from)
        .collect::<Vec<_>>()
    );
}

#[test]
fn datetime_functions() {
    let out = run(r#"
        CREATE QUERY G () {
          PRINT year(to_datetime(2011, 7, 15)) AS y,
                month(to_datetime(2011, 7, 15)) AS m,
                day(to_datetime(2011, 7, 15)) AS d;
        }
    "#);
    assert_eq!(out.prints, vec!["y = 2011", "m = 7", "d = 15"]);
}

#[test]
fn to_datetime_rejects_out_of_range_month_and_day() {
    let g = sales_graph();
    let eng = Engine::new(&g);
    // A negative Int must not wrap through the u32 narrowing — it is a
    // structured runtime error naming the offending component.
    for (src, needle) in [
        ("CREATE QUERY G () { PRINT to_datetime(2011, 0 - 7, 15); }", "month out of range: -7"),
        ("CREATE QUERY G () { PRINT to_datetime(2011, 7, 0 - 15); }", "day out of range: -15"),
        ("CREATE QUERY G () { PRINT to_datetime(2011, 0, 15); }", "month out of range: 0"),
        ("CREATE QUERY G () { PRINT to_datetime(2011, 13, 15); }", "month out of range: 13"),
        ("CREATE QUERY G () { PRINT to_datetime(2011, 7, 0); }", "day out of range: 0"),
        ("CREATE QUERY G () { PRINT to_datetime(2011, 7, 32); }", "day out of range: 32"),
        (
            "CREATE QUERY G () { PRINT to_datetime(2011, 4000000000, 15); }",
            "month out of range: 4000000000",
        ),
    ] {
        let e = eng.run_text(src, &[]).unwrap_err();
        assert_eq!(e.kind(), gsql_core::ErrorKind::Runtime, "{src}: {e}");
        assert!(e.to_string().contains(needle), "{src}: {e}");
    }
    // Boundary values stay accepted.
    let out = eng
        .run_text("CREATE QUERY G () { PRINT day(to_datetime(2011, 12, 31)) AS d; }", &[])
        .unwrap();
    assert_eq!(out.prints, vec!["d = 31"]);
}

#[test]
fn vertex_methods() {
    let out = run(r#"
        CREATE QUERY G () {
          SELECT DISTINCT c.name, c.outdegree('Bought') AS bought,
                 c.outdegree() AS total, c.type() AS ty INTO T
          FROM Customer:c
          ORDER BY c.name ASC;
        }
    "#);
    let t = out.table("T").unwrap();
    // alice: 2 bought + 2 likes; bob 2+2; carol 1+3; dave 1+1.
    assert_eq!(
        t.rows,
        vec![
            vec![Value::from("alice"), Value::Int(2), Value::Int(4), Value::from("Customer")],
            vec![Value::from("bob"), Value::Int(2), Value::Int(4), Value::from("Customer")],
            vec![Value::from("carol"), Value::Int(1), Value::Int(4), Value::from("Customer")],
            vec![Value::from("dave"), Value::Int(1), Value::Int(2), Value::from("Customer")],
        ]
    );
}

#[test]
fn vset_literals_and_composition() {
    let out = run(r#"
        CREATE QUERY G () {
          All = {Customer.*, Product.*};
          Customers = {Customer.*};
          PRINT All.size(), Customers.size();
        }
    "#);
    assert_eq!(out.prints, vec!["All.size() = 8", "Customers.size() = 4"]);
}

#[test]
fn params_of_every_scalar_type() {
    let out = run_args(
        r#"
        CREATE QUERY G (int i, float f, string s, bool b) {
          PRINT i + 1, f * 2, s + '!', NOT b;
        }
        "#,
        &[
            ("i", Value::Int(41)),
            ("f", Value::Double(1.5)),
            ("s", Value::from("hi")),
            ("b", Value::Bool(false)),
        ],
    );
    assert_eq!(out.prints, vec!["expr = 42", "expr = 3.0", "expr = hi!", "expr = true"]);
}

#[test]
fn return_value_and_table_and_vset() {
    let g = sales_graph();
    let eng = Engine::new(&g);
    let out = eng
        .run_text("CREATE QUERY G () { RETURN 6 * 7; }", &[])
        .unwrap();
    assert_eq!(out.returned, Some(ReturnValue::Value(Value::Int(42))));

    let out = eng
        .run_text(
            "CREATE QUERY G () { S = SELECT c FROM Customer:c; RETURN S; }",
            &[],
        )
        .unwrap();
    match out.returned {
        Some(ReturnValue::VSet(vs)) => assert_eq!(vs.len(), 4),
        other => panic!("{other:?}"),
    }
}

#[test]
fn undirected_pattern_matching() {
    // Knows is undirected: both endpoints see each other.
    let mut s = pgraph::schema::Schema::new();
    s.add_vertex_type("P", vec![pgraph::schema::AttrDef::new("name", pgraph::value::ValueType::Str)]).unwrap();
    s.add_edge_type("Knows", false, vec![]).unwrap();
    let mut b = GraphBuilder::new(s);
    let a = b.vertex("P", &[("name", Value::from("a"))]).unwrap();
    let c = b.vertex("P", &[("name", Value::from("c"))]).unwrap();
    b.edge("Knows", a, c, &[]).unwrap();
    let g = b.build();
    let out = Engine::new(&g)
        .run_text(
            r#"
            CREATE QUERY G () {
              SELECT x.name AS a, y.name AS b INTO T
              FROM P:x -(Knows)- P:y
              ORDER BY x.name ASC;
            }
            "#,
            &[],
        )
        .unwrap();
    assert_eq!(
        out.table("T").unwrap().rows,
        vec![
            vec![Value::from("a"), Value::from("c")],
            vec![Value::from("c"), Value::from("a")],
        ]
    );
}

#[test]
fn multi_hop_join_on_repeated_variable() {
    // Triangle query: x bought p and likes the same p.
    let out = run(r#"
        CREATE QUERY G () {
          SELECT DISTINCT c.name, p.name INTO T
          FROM Customer:c -(Bought>)- Product:p, Customer:c -(Likes>)- Product:p
          ORDER BY c.name, p.name;
        }
    "#);
    // alice bought+likes robot, blocks; carol bought+likes kite; dave novel.
    assert_eq!(
        out.table("T").unwrap().rows,
        vec![
            vec![Value::from("alice"), Value::from("blocks")],
            vec![Value::from("alice"), Value::from("robot")],
            vec![Value::from("bob"), Value::from("robot")],
            vec![Value::from("carol"), Value::from("kite")],
            vec![Value::from("dave"), Value::from("novel")],
        ]
    );
}

#[test]
fn accum_local_variables_are_per_execution() {
    let out = run(r#"
        CREATE QUERY G () {
          SumAccum<float> @@total;
          S = SELECT c FROM Customer:c -(Bought>:b)- Product:p
              ACCUM float line = b.quantity * p.list_price,
                    @@total += line;
          PRINT @@total;
        }
    "#);
    // 2*30 + 1*10 + 1*30 + 3*15 + 4*20 + 1*15 = 60+10+30+45+80+15 = 240.
    assert_eq!(out.prints, vec!["@@total = 240.0".to_string()]);
}

#[test]
fn table_join_cross_product_filtered() {
    let g = sales_graph();
    let budgets = Table::from_rows(
        "Budget",
        &["name", "cap"],
        vec![
            vec![Value::from("alice"), Value::Double(50.0)],
            vec![Value::from("bob"), Value::Double(100.0)],
        ],
    );
    let eng = Engine::new(&g).with_table(budgets);
    let out = eng
        .run_text(
            r#"
            CREATE QUERY G () {
              SELECT c.name, t.cap AS cap INTO T
              FROM Budget:t, Customer:c
              WHERE c.name == t.name
              ORDER BY c.name;
            }
            "#,
            &[],
        )
        .unwrap();
    assert_eq!(
        out.table("T").unwrap().rows,
        vec![
            vec![Value::from("alice"), Value::Double(50.0)],
            vec![Value::from("bob"), Value::Double(100.0)],
        ]
    );
}

#[test]
fn errors_are_reported_not_panicked() {
    let g = sales_graph();
    let eng = Engine::new(&g);
    // Unknown accumulator.
    let err = eng
        .run_text("CREATE QUERY G () { @@nope += 1; }", &[])
        .unwrap_err();
    assert!(matches!(err, Error::Runtime(_)), "{err}");
    // Unknown vertex type in FROM.
    let err = eng
        .run_text("CREATE QUERY G () { S = SELECT x FROM Nope:x; }", &[])
        .unwrap_err();
    assert!(matches!(err, Error::Runtime(_)), "{err}");
    // Missing argument.
    let err = eng.run_text("CREATE QUERY G (int k) { PRINT k; }", &[]).unwrap_err();
    assert!(err.to_string().contains("missing argument"));
    // Type error in arithmetic (booleans coerce, strings do not multiply).
    let err = eng
        .run_text("CREATE QUERY G () { PRINT 1 * 'x'; }", &[])
        .unwrap_err();
    assert!(matches!(err, Error::Runtime(_)), "{err}");
    // Division by zero.
    let err = eng
        .run_text("CREATE QUERY G () { PRINT 1 / 0; }", &[])
        .unwrap_err();
    assert!(err.to_string().contains("division by zero"));
}

#[test]
fn empty_match_is_fine_everywhere() {
    let out = run(r#"
        CREATE QUERY G () {
          SumAccum<int> @@n;
          S = SELECT c FROM Customer:c WHERE c.name == 'nobody'
              ACCUM @@n += 1
              POST_ACCUM @@n += 100;
          SELECT c.name INTO T FROM Customer:c WHERE c.name == 'nobody';
          PRINT @@n, S.size();
        }
    "#);
    assert_eq!(out.prints, vec!["@@n = 0", "S.size() = 0"]);
    assert!(out.table("T").unwrap().is_empty());
}

#[test]
fn bounded_repetition_pattern() {
    // Path graph a->b->c->d: E>*2..3 from a reaches c and d.
    let (g, vs) = pgraph::generators::directed_path(3);
    let out = Engine::new(&g)
        .run_text(
            r#"
            CREATE QUERY G (vertex src) {
              R = SELECT t FROM V:s -(E>*2..3)- V:t WHERE s == src;
              PRINT R[R.name];
            }
            "#,
            &[("src", Value::Vertex(vs[0]))],
        )
        .unwrap();
    assert_eq!(out.prints, vec!["R: v2".to_string(), "R: v3".to_string()]);
}

#[test]
fn wildcard_edge_and_vertex_specs() {
    let out = run(r#"
        CREATE QUERY G () {
          SELECT DISTINCT p.name INTO T
          FROM Customer:c -(_)- _:p
          WHERE c.name == 'dave'
          ORDER BY p.name;
        }
    "#);
    // dave bought + likes novel.
    assert_eq!(out.table("T").unwrap().rows, vec![vec![Value::from("novel")]]);
}

#[test]
fn distinct_vs_bag_projection() {
    let dup = run(r#"
        CREATE QUERY G () {
          SELECT p.category AS cat INTO T
          FROM Customer:c -(Bought>)- Product:p
          ORDER BY p.category;
        }
    "#);
    assert_eq!(dup.table("T").unwrap().rows.len(), 6); // bag semantics
    let dis = run(r#"
        CREATE QUERY G () {
          SELECT DISTINCT p.category AS cat INTO T
          FROM Customer:c -(Bought>)- Product:p;
        }
    "#);
    assert_eq!(dis.table("T").unwrap().rows.len(), 2);
}

#[test]
fn ve_schema_smoke_for_builderless_graph() {
    let g = pgraph::graph::Graph::new(ve_schema());
    let out = Engine::new(&g)
        .run_text("CREATE QUERY G () { S = SELECT v FROM V:v; PRINT S.size(); }", &[])
        .unwrap();
    assert_eq!(out.prints, vec!["S.size() = 0"]);
}

#[test]
fn use_semantics_pragma_switches_per_query() {
    // The per-query semantics selection the paper announces as planned
    // syntax (Section 6.1). On G1 of Example 9 the same pattern yields
    // different multiplicities under each semantics.
    let (g, _) = pgraph::generators::example9_g1();
    let count_under = |sem: &str| -> String {
        let q = format!(
            r#"
            CREATE QUERY G () {{
              USE SEMANTICS '{sem}';
              SumAccum<int> @cnt;
              R = SELECT t FROM V:s -(E>*)- V:t
                  WHERE s.name == '1' AND t.name == '5'
                  ACCUM t.@cnt += 1;
              PRINT R[R.@cnt];
            }}
            "#
        );
        Engine::new(&g).run_text(&q, &[]).unwrap().prints[0].clone()
    };
    assert_eq!(count_under("non_repeated_vertex"), "R: 3");
    assert_eq!(count_under("non_repeated_edge"), "R: 4");
    assert_eq!(count_under("all_shortest_paths"), "R: 2");
    assert_eq!(count_under("shortest_one"), "R: 1");
    // Unknown names are rejected at parse time, with a position.
    let err = Engine::new(&g)
        .run_text("CREATE QUERY G () { USE SEMANTICS 'bogus'; }", &[])
        .unwrap_err();
    assert!(matches!(err, Error::Parse { .. }), "{err}");
    assert!(err.to_string().contains("unknown semantics `bogus`"), "{err}");
}

#[test]
fn vertex_set_algebra() {
    let out = run(r#"
        CREATE QUERY G () {
          All = {Customer.*, Product.*};
          Customers = {Customer.*};
          Products = All MINUS Customers;
          Both = Customers UNION Products;
          Nothing = Customers INTERSECT Products;
          PRINT Products.size(), Both.size(), Nothing.size();
        }
    "#);
    assert_eq!(
        out.prints,
        vec!["Products.size() = 4", "Both.size() = 8", "Nothing.size() = 0"]
    );
}

#[test]
fn case_expressions() {
    let out = run(r#"
        CREATE QUERY G () {
          SELECT DISTINCT p.name,
                 CASE WHEN p.list_price >= 25.0 THEN 'premium'
                      WHEN p.list_price >= 15.0 THEN 'standard'
                      ELSE 'budget' END AS tier
          INTO T
          FROM Product:p
          ORDER BY p.name;
        }
    "#);
    assert_eq!(
        out.table("T").unwrap().rows,
        vec![
            vec![Value::from("blocks"), Value::from("budget")],
            vec![Value::from("kite"), Value::from("standard")],
            vec![Value::from("novel"), Value::from("standard")],
            vec![Value::from("robot"), Value::from("premium")],
        ]
    );
    // CASE without ELSE yields NULL when nothing matches.
    let out = run("CREATE QUERY G () { PRINT CASE WHEN false THEN 1 END AS x; }");
    assert_eq!(out.prints, vec!["x = null"]);
}

// ---- mutation statements (INSERT / UPDATE / DELETE) ----------------------
//
// The engine never mutates the graph it runs against: mutation
// statements evaluate their expressions against the pinned snapshot and
// emit a `MutationOp` batch in `QueryOutput::mutations`. The graph owner
// (server /mutate, shell autosave, `LiveGraph::commit`) applies it.

#[test]
fn insert_statements_emit_ops_and_leave_the_snapshot_untouched() {
    use pgraph::mutate::{apply_batch, MutationOp};

    let g = sales_graph();
    let out = Engine::new(&g)
        .run_text(
            r#"CREATE QUERY M () {
          INSERT VERTEX Customer (name) VALUES ("erin");
          INSERT VERTEX Product (name, category, list_price)
                 VALUES ("drone", "toy", 99.5);
          // Provisional ids: 8 and 9 are the two vertices inserted above.
          INSERT EDGE Bought FROM 8 TO 9 (quantity, discount) VALUES (1, 0.0);
          PRINT "done";
        }"#,
            &[],
        )
        .unwrap();
    assert_eq!(out.prints, vec!["expr = done"]);
    assert_eq!(out.mutations.len(), 3);
    assert!(matches!(&out.mutations[0], MutationOp::AddVertex { .. }));
    assert!(matches!(&out.mutations[2], MutationOp::AddEdge { .. }));
    // Snapshot semantics: the source graph is untouched.
    assert_eq!(g.vertex_count(), 8);
    assert_eq!(g.edge_count(), 14);

    // Applying the batch yields the mutated graph.
    let mut g2 = g.clone();
    apply_batch(&mut g2, &out.mutations).unwrap();
    assert_eq!(g2.vertex_count(), 10);
    assert_eq!(g2.edge_count(), 15);
    let out2 = Engine::new(&g2)
        .run_text(
            r#"CREATE QUERY Q () {
          SELECT c.name AS who, p.name AS what INTO T
          FROM Customer:c -(Bought>)- Product:p
          WHERE p.name == "drone";
        }"#,
            &[],
        )
        .unwrap();
    assert_eq!(
        out2.table("T").unwrap().rows,
        vec![vec![Value::from("erin"), Value::from("drone")]]
    );
}

#[test]
fn update_and_delete_filter_with_where() {
    use pgraph::mutate::apply_batch;

    let g = sales_graph();
    let out = Engine::new(&g)
        .run_text(
            r#"CREATE QUERY M () {
          UPDATE Product:p SET p.list_price = p.list_price * 2.0
          WHERE p.category == "toy";
          DELETE FROM Customer:c WHERE c.name == "dave";
        }"#,
            &[],
        )
        .unwrap();
    // 3 toys updated + 1 customer deleted.
    assert_eq!(out.mutations.len(), 4);
    let mut g2 = g.clone();
    let summary = apply_batch(&mut g2, &out.mutations).unwrap();
    assert_eq!(summary.updated_attrs, 3);
    assert_eq!(summary.deleted_vertices, 1);
    assert_eq!(g2.vertex_count(), 7);
    let out2 = Engine::new(&g2)
        .run_text(
            r#"CREATE QUERY Q () {
          SELECT DISTINCT p.name, p.list_price INTO T FROM Product:p
          WHERE p.category == "toy" ORDER BY p.name;
        }"#,
            &[],
        )
        .unwrap();
    assert_eq!(
        out2.table("T").unwrap().rows,
        vec![
            vec![Value::from("blocks"), Value::Double(20.0)],
            vec![Value::from("kite"), Value::Double(40.0)],
            vec![Value::from("robot"), Value::Double(60.0)],
        ]
    );
}

#[test]
fn mutation_runtime_errors_are_structured() {
    let g = sales_graph();
    let run = |src: &str| Engine::new(&g).run_text(src, &[]).unwrap_err().to_string();
    // Unknown vertex type.
    assert!(run(r#"CREATE QUERY M () { INSERT VERTEX Robot VALUES ("x"); }"#)
        .contains("Robot"));
    // Arity mismatch on a positional insert.
    assert!(run(r#"CREATE QUERY M () { INSERT VERTEX Customer VALUES ("a", 1); }"#)
        .contains("declares 1"));
    // Unknown attribute in UPDATE.
    assert!(run(r#"CREATE QUERY M () { UPDATE Customer:c SET c.age = 4; }"#).contains("age"));
    // Type mismatch that cannot be coerced.
    assert!(
        run(r#"CREATE QUERY M () { UPDATE Product:p SET p.list_price = "free"; }"#)
            .contains("expects"),
    );
    // Edge endpoint that is not a vertex.
    assert!(run(r#"CREATE QUERY M () { INSERT EDGE Likes FROM -3 TO 0; }"#).contains("-3"));
    // Duplicate column in the INSERT column list: rejected, not
    // last-value-wins.
    assert!(run(
        r#"CREATE QUERY M () { INSERT VERTEX Customer (name, name) VALUES ("a", "b"); }"#
    )
    .contains("more than once"));
}

#[test]
fn update_sees_the_snapshot_not_its_own_writes() {
    use pgraph::mutate::apply_batch;

    // Both updates read list_price from the pinned snapshot: the +5
    // reads the pre-double price, so the net effect is deterministic
    // regardless of op order within the batch... but ops apply in
    // order, so the second SET overwrites the first (last-write-wins
    // per attribute), both computed against the snapshot.
    let g = sales_graph();
    let out = Engine::new(&g)
        .run_text(
            r#"CREATE QUERY M () {
          UPDATE Product:p SET p.list_price = p.list_price * 2.0 WHERE p.name == "robot";
          UPDATE Product:p SET p.list_price = p.list_price + 5.0 WHERE p.name == "robot";
        }"#,
            &[],
        )
        .unwrap();
    let mut g2 = g.clone();
    apply_batch(&mut g2, &out.mutations).unwrap();
    let out2 = Engine::new(&g2)
        .run_text(
            r#"CREATE QUERY Q () {
          SELECT DISTINCT p.list_price INTO T FROM Product:p WHERE p.name == "robot";
        }"#,
            &[],
        )
        .unwrap();
    // Snapshot price 30.0: the last write is 30 + 5 = 35.
    assert_eq!(out2.table("T").unwrap().rows, vec![vec![Value::Double(35.0)]]);
}
