//! The GSQL algorithm library cross-checked against native Rust
//! implementations — the paper's thesis that accumulators + minimal
//! control flow express "the sophisticated iterative algorithms required
//! by modern graph analytics" *inside* the query language.

use gsql_core::exec::ReturnValue;
use gsql_core::{stdlib, Engine};
use pgraph::generators::{barabasi_albert, ve_schema};
use pgraph::graph::{GraphBuilder, VertexId};
use pgraph::value::Value;

/// Pseudo-random simple graph with no parallel or anti-parallel edges
/// (each unordered pair gets at most one directed edge), so the GSQL
/// edge-instance count and the native neighbor-set count agree. Uses a
/// splitmix-style hash instead of an RNG dependency.
fn simple_random_graph(n: usize, percent: u64, seed: u64) -> pgraph::graph::Graph {
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e3779b97f4a7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }
    let mut b = GraphBuilder::new(ve_schema());
    let vs: Vec<VertexId> = (0..n)
        .map(|i| b.vertex("V", &[("name", Value::from(format!("v{i}")))]).unwrap())
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if mix(seed ^ ((i as u64) << 32) ^ j as u64) % 100 < percent {
                b.edge("E", vs[i], vs[j], &[]).unwrap();
            }
        }
    }
    b.build()
}

#[test]
fn triangle_count_matches_native() {
    for seed in [1u64, 2, 3] {
        let g = simple_random_graph(40, 15, seed);
        let native = pgraph::algo::triangle_count(&g);
        let out = Engine::new(&g)
            .run_text(&stdlib::triangle_count("V", "E"), &[])
            .unwrap();
        assert_eq!(
            out.prints,
            vec![format!("triangles = {native}")],
            "seed {seed}"
        );
    }
}

#[test]
fn khop_matches_bfs_frontier() {
    let g = barabasi_albert(120, 3, 9);
    let src = VertexId(40);
    let dist = pgraph::algo::bfs_distances(&g, src);
    for k in 1..=3usize {
        let expect = dist
            .iter()
            .enumerate()
            .filter(|(i, d)| matches!(d, Some(x) if *x >= 1 && *x <= k as u32) && *i != src.0 as usize)
            .count();
        let out = Engine::new(&g)
            .run_text(&stdlib::khop("V", "E", k), &[("src", Value::Vertex(src))])
            .unwrap();
        assert_eq!(out.prints, vec![format!("reachable = {expect}")], "k={k}");
        match out.returned {
            Some(ReturnValue::VSet(vs)) => assert_eq!(vs.len(), expect),
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn label_propagation_finds_disconnected_communities() {
    // Two 5-cliques with no inter-edges: label propagation must converge
    // to exactly two labels (the min vertex id of each clique).
    let mut b = GraphBuilder::new(ve_schema());
    let vs: Vec<VertexId> = (0..10)
        .map(|i| b.vertex("V", &[("name", Value::from(format!("v{i}")))]).unwrap())
        .collect();
    for base in [0usize, 5] {
        for i in 0..5 {
            for j in (i + 1)..5 {
                b.edge("E", vs[base + i], vs[base + j], &[]).unwrap();
            }
        }
    }
    let g = b.build();
    let src = stdlib::label_propagation("V", "E").replace(
        "END;\n}",
        "END;\n  SELECT DISTINCT v.name, v.@label AS community INTO C FROM V:v;\n}",
    );
    let out = Engine::new(&g)
        .run_text(&src, &[("maxIter", Value::Int(20))])
        .unwrap();
    let t = out.table("C").unwrap();
    for row in &t.rows {
        let idx: usize = row[0].as_str().unwrap()[1..].parse().unwrap();
        let expect = if idx < 5 { 0 } else { 5 };
        assert_eq!(row[1], Value::Int(expect), "vertex v{idx}");
    }
}

#[test]
fn common_neighbors_matches_hand_count() {
    // Star around h: a and b share exactly {h, x}; a also knows y.
    let mut bld = GraphBuilder::new(ve_schema());
    let mk = |b: &mut GraphBuilder, n: &str| b.vertex("V", &[("name", Value::from(n))]).unwrap();
    let a = mk(&mut bld, "a");
    let b2 = mk(&mut bld, "b");
    let h = mk(&mut bld, "h");
    let x = mk(&mut bld, "x");
    let y = mk(&mut bld, "y");
    for (s, t) in [(a, h), (b2, h), (a, x), (b2, x), (a, y)] {
        bld.edge("E", s, t, &[]).unwrap();
    }
    let g = bld.build();
    let out = Engine::new(&g)
        .run_text(
            &stdlib::common_neighbors("V", "E"),
            &[("a", Value::Vertex(a)), ("b", Value::Vertex(b2))],
        )
        .unwrap();
    assert_eq!(out.prints, vec!["@@common = 2".to_string()]);
}

#[test]
fn all_new_stdlib_queries_parse() {
    for src in [
        stdlib::triangle_count("V", "E"),
        stdlib::khop("V", "E", 3),
        stdlib::label_propagation("V", "E"),
        stdlib::common_neighbors("V", "E"),
    ] {
        gsql_core::parse_query(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    }
}

#[test]
fn weighted_sssp_matches_dijkstra() {
    use pgraph::schema::{AttrDef, Schema};
    use pgraph::value::ValueType;
    let mut s = Schema::new();
    s.add_vertex_type("V", vec![AttrDef::new("name", ValueType::Str)]).unwrap();
    s.add_edge_type("E", true, vec![AttrDef::new("w", ValueType::Double)]).unwrap();
    let mut b = GraphBuilder::new(s);
    let vs: Vec<VertexId> = (0..12)
        .map(|i| b.vertex("V", &[("name", Value::from(format!("v{i}")))]).unwrap())
        .collect();
    // A deterministic weighted digraph with alternative routes.
    for (i, (s_, t)) in [
        (0usize, 1usize), (1, 2), (0, 2), (2, 3), (3, 4), (1, 4), (4, 5),
        (5, 6), (2, 6), (6, 7), (7, 8), (8, 9), (3, 9), (9, 10), (10, 11),
    ]
    .iter()
    .enumerate()
    {
        let w = 1.0 + ((i * 7) % 5) as f64;
        b.edge("E", vs[*s_], vs[*t], &[("w", Value::Double(w))]).unwrap();
    }
    let g = b.build();
    let native = pgraph::algo::sssp::dijkstra(&g, vs[0], 0);

    let src = stdlib::weighted_sssp("V", "E", "w").replace(
        "END;\n}",
        "END;\n  SELECT DISTINCT v.name, v.@dist AS d INTO D FROM V:v;\n}",
    );
    let out = Engine::new(&g)
        .run_text(&src, &[("src", Value::Vertex(vs[0]))])
        .unwrap();
    for row in &out.table("D").unwrap().rows {
        let idx: usize = row[0].as_str().unwrap()[1..].parse().unwrap();
        let got = row[1].as_f64().unwrap();
        let want = native[idx].unwrap_or(999999999.0);
        assert!((got - want).abs() < 1e-9, "v{idx}: gsql {got} vs dijkstra {want}");
    }
}
