//! Section 6/7 in action: the legality flavors of Example 9 on graph G1,
//! the ASP-only match of Example 10 on G2, and the exponential path
//! counts of Example 11 on the diamond chain — counted in microseconds
//! by the polynomial SDMC kernel.
//!
//! ```sh
//! cargo run -p bench --example diamond_paths
//! ```

use gsql_core::{stdlib, Engine, PathSemantics};
use pgraph::generators::{diamond_chain, example10_g2, example9_g1};
use pgraph::value::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Example 9: one pattern, four multiplicities.
    let (g1, _) = example9_g1();
    let q = stdlib::qn("V", "E");
    println!("Example 9 — paths 1→5 under E>* on G1:");
    for (label, sem) in [
        ("non-repeated-vertex (Gremlin)", PathSemantics::NonRepeatedVertex),
        ("non-repeated-edge   (Cypher) ", PathSemantics::NonRepeatedEdge),
        ("all-shortest-paths  (GSQL)   ", PathSemantics::AllShortestPaths),
        ("boolean-exists      (SPARQL) ", PathSemantics::ShortestOne),
    ] {
        let out = Engine::new(&g1).with_semantics(sem).run_text(
            &q,
            &[("srcName", Value::from("1")), ("tgtName", Value::from("5"))],
        )?;
        println!("  {label}: {}", out.prints[0]);
    }

    // Example 10: E>*.F>.E>* from 1 to 4 matches only under ASP.
    let (g2, _) = example10_g2();
    let q2 = r#"
        CREATE QUERY G2Probe (string srcName, string tgtName) {
          SumAccum<int> @cnt;
          R = SELECT t
              FROM  V:s -(E>*.F>.E>*)- V:t
              WHERE s.name == srcName AND t.name == tgtName
              ACCUM t.@cnt += 1;
          PRINT R.size() AS matches;
        }
    "#;
    println!("\nExample 10 — E>*.F>.E>* from 1 to 4 on G2:");
    for (label, sem) in [
        ("all-shortest-paths ", PathSemantics::AllShortestPaths),
        ("non-repeated-edge  ", PathSemantics::NonRepeatedEdge),
        ("non-repeated-vertex", PathSemantics::NonRepeatedVertex),
    ] {
        let out = Engine::new(&g2).with_semantics(sem).run_text(
            q2,
            &[("srcName", Value::from("1")), ("tgtName", Value::from("4"))],
        )?;
        println!("  {label}: {}", out.prints[0]);
    }

    // EXPLAIN: how the engine will evaluate Q_n under each strategy.
    let parsed = gsql_core::parse_query(&q)?;
    println!("\nplan under counting semantics:");
    print!("{}", gsql_core::explain(&parsed, PathSemantics::AllShortestPaths)?);
    println!("plan under Cypher-style enumeration:");
    print!("{}", gsql_core::explain(&parsed, PathSemantics::NonRepeatedEdge)?);

    // Example 11: 2^n paths on the diamond chain, counted not enumerated.
    let (g, _) = diamond_chain(60);
    println!("\nExample 11 — diamond chain, counting 2^n shortest paths:");
    for n in [16usize, 32, 60] {
        let t0 = std::time::Instant::now();
        let out = Engine::new(&g).run_text(
            &q,
            &[
                ("srcName", Value::from("v0")),
                ("tgtName", Value::from(format!("v{n}"))),
            ],
        )?;
        println!("  n={n:>2}: {} ({:?})", out.prints[0], t0.elapsed());
    }
    Ok(())
}
