//! The LDBC-like workload end to end: generate a social network, run an
//! IC query under both legality semantics, and run the Appendix-B
//! grouping-set pair — the full Section 7/Appendix B story in one binary.
//!
//! ```sh
//! cargo run -p bench --example social_analytics --release
//! ```

use gsql_core::{Engine, PathSemantics};
use ldbc_snb::{generate, queries, SnbParams};
use pgraph::datetime::to_epoch;
use pgraph::value::Value;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = generate(SnbParams::new(0.1, 2024));
    println!(
        "SNB-like graph at sf 0.1: {} vertices, {} edges",
        graph.vertex_count(),
        graph.edge_count()
    );

    let person_t = graph.schema().vertex_type_id("Person").unwrap();
    let p = Value::Vertex(graph.vertices_of_type(person_t)[0]);

    // IC9 with the Knows radius widened, under both semantics.
    println!("\nic9 (20 most recent messages of friends), radius sweep:");
    for hops in [2usize, 3] {
        let text = queries::ic9(hops);
        let args = [
            ("p", p.clone()),
            ("maxDate", Value::DateTime(to_epoch(2012, 6, 1))),
        ];
        for (label, sem) in [
            ("counting   ", PathSemantics::AllShortestPaths),
            ("enumerating", PathSemantics::NonRepeatedEdge),
        ] {
            let eng = Engine::new(&graph)
                .with_semantics(sem)
                .with_enum_budget(50_000_000);
            let t0 = Instant::now();
            match eng.run_text(&text, &args) {
                Ok(out) => println!(
                    "  hops={hops} {label}: {:?} ({} paths materialized)",
                    t0.elapsed(),
                    out.stats.paths_enumerated
                ),
                Err(e) => println!("  hops={hops} {label}: aborted ({e})"),
            }
        }
    }

    // Appendix B: grouping-set styles.
    println!("\nAppendix B grouping-set pair:");
    let eng = Engine::new(&graph);
    for (label, text) in [("Q_gs ", queries::q_gs()), ("Q_acc", queries::q_acc())] {
        let t0 = Instant::now();
        let out = eng.run_text(&text, &[])?;
        println!("  {label}: {:?}  [{}]", t0.elapsed(), out.prints.join("; "));
    }
    Ok(())
}
