//! Quickstart: build the paper's SalesGraph, run the Example 4/5
//! accumulator queries, and register a user-defined accumulator.
//!
//! ```sh
//! cargo run -p bench --example quickstart
//! ```

use accum::user::ProductAccum;
use gsql_core::{stdlib, Engine};
use pgraph::generators::sales_graph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A property graph with customers, products and purchases.
    let graph = sales_graph();
    println!(
        "SalesGraph: {} vertices, {} edges",
        graph.vertex_count(),
        graph.edge_count()
    );

    // 2. Example 4: single-pass tree-way aggregation — revenue per
    // customer, revenue per toy and total revenue, all in one traversal.
    let engine = Engine::new(&graph);
    let out = engine.run_text(stdlib::example5_multi_output(), &[])?;
    for name in ["PerCust", "PerToy", "Total"] {
        println!("\n{}", out.table(name).unwrap());
    }

    // 3. A user-defined accumulator: the product of all toy prices.
    let mut engine = Engine::new(&graph);
    engine
        .registry_mut()
        .register("ProductAccum", || Box::<ProductAccum>::default());
    let out = engine.run_text(
        r#"
        CREATE QUERY PriceProduct () {
          ProductAccum @@prod;
          S = SELECT p FROM Product:p
              WHERE p.category == 'toy'
              ACCUM @@prod += p.list_price;
          PRINT @@prod AS priceProduct;
        }
        "#,
        &[],
    )?;
    println!();
    for line in &out.prints {
        println!("{line}");
    }
    Ok(())
}
