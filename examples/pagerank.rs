//! Example 7 (Figure 4): iterative PageRank expressed in GSQL — the
//! WHILE loop and the `@@maxDifference`/`@score'` accumulators replace
//! the client-side driver program other systems require. Cross-checked
//! against the native Rust implementation.
//!
//! ```sh
//! cargo run -p bench --example pagerank
//! ```

use gsql_core::{stdlib, Engine};
use pgraph::generators::barabasi_albert;
use pgraph::value::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = barabasi_albert(200, 3, 7);
    let et = graph.schema().edge_type_id("E").unwrap();

    let gsql = stdlib::pagerank("V", "E").replace(
        "END;\n}",
        "END;\n  SELECT DISTINCT v.name, v.@score AS score INTO Scores FROM V:v\n  ORDER BY v.@score DESC LIMIT 10;\n}",
    );
    let out = Engine::new(&graph).run_text(
        &gsql,
        &[
            ("maxChange", Value::Double(1e-9)),
            ("maxIteration", Value::Int(100)),
            ("dampingFactor", Value::Double(0.85)),
        ],
    )?;

    let native = pgraph::algo::pagerank(&graph, et, 0.85, 1e-9, 100);
    println!("top 10 by GSQL PageRank (native score in parentheses):");
    for row in &out.table("Scores").unwrap().rows {
        let name = row[0].as_str().unwrap();
        let idx: usize = name[1..].parse().unwrap();
        println!(
            "  {name:>5}  {:.6}  ({:.6})",
            row[1].as_f64().unwrap(),
            native[idx]
        );
    }
    Ok(())
}
