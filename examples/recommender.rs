//! Example 6 (Figure 3): the two-pass TopKToys recommender. The first
//! block computes log-cosine similarity into the `@lc` vertex
//! accumulator; the second block reads it — composition via accumulators.
//!
//! ```sh
//! cargo run -p bench --example recommender
//! ```

use gsql_core::exec::ReturnValue;
use gsql_core::{stdlib, Engine};
use pgraph::generators::sales_graph;
use pgraph::value::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = sales_graph();
    let engine = Engine::new(&graph);
    let customer_t = graph.schema().vertex_type_id("Customer").unwrap();

    for &customer in graph.vertices_of_type(customer_t) {
        let name = graph.vertex_attr_by_name(customer, "name").unwrap().clone();
        let out = engine.run_text(
            stdlib::example6_topk_toys(),
            &[("c", Value::Vertex(customer)), ("k", Value::Int(3))],
        )?;
        let Some(ReturnValue::Table(recs)) = out.returned else {
            panic!("TopKToys must return a table")
        };
        println!("recommendations for {name}:");
        if recs.is_empty() {
            println!("  (no co-liking customers)");
        }
        for row in &recs.rows {
            println!("  {} (rank {})", row[0], row[1]);
        }
    }
    Ok(())
}
