#!/usr/bin/env python3
"""Doc-link checker: every relative markdown link in README.md and
docs/*.md must resolve to a file in the repo, and the architecture doc
must stay cross-linked from the documents that reference the execution
pipeline.

Run from anywhere inside the repo:

    python3 tools/check_doc_links.py

Exit status 0 when every link resolves and every required edge exists;
1 otherwise, with one line per problem.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Files whose links we verify (README plus everything under docs/).
SOURCES = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))

# Cross-link contract: (source file, link target that must appear).
# docs/EXECUTION.md is the hub document — README and every layer doc
# must point at it, and it must point back at each layer doc.
REQUIRED_EDGES = [
    ("README.md", "docs/EXECUTION.md"),
    ("docs/PLAN_FORMAT.md", "EXECUTION.md"),
    ("docs/SHARDING.md", "EXECUTION.md"),
    ("docs/DURABILITY.md", "EXECUTION.md"),
    ("docs/LINTS.md", "EXECUTION.md"),
    ("docs/EXECUTION.md", "PLAN_FORMAT.md"),
    ("docs/EXECUTION.md", "SHARDING.md"),
    ("docs/EXECUTION.md", "DURABILITY.md"),
    ("docs/EXECUTION.md", "LINTS.md"),
]

# Inline markdown links: [text](target). Reference-style links and
# autolinks are not used in these docs.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

# Fenced code blocks contain query text and shell transcripts whose
# parentheses would otherwise read as links.
FENCE_RE = re.compile(r"^(```|~~~)")


def links_in(path):
    """Yield (lineno, target) for every inline link outside code fences."""
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            yield lineno, m.group(1)


def main():
    problems = []
    seen_edges = set()

    for src in SOURCES:
        if not src.exists():
            problems.append(f"{src.relative_to(REPO)}: source file missing")
            continue
        rel_src = src.relative_to(REPO).as_posix()
        for lineno, target in links_in(src):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            seen_edges.add((rel_src, target))
            # Strip a #fragment; resolve relative to the linking file.
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (src.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{rel_src}:{lineno}: broken link `{target}` "
                    f"(resolved to {resolved})"
                )

    for src, target in REQUIRED_EDGES:
        if (src, target) not in seen_edges:
            problems.append(
                f"missing required cross-link: {src} must link to `{target}`"
            )

    if problems:
        print(f"{len(problems)} doc-link problem(s):", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1

    n_links = len(seen_edges)
    print(f"doc links OK: {n_links} relative links across {len(SOURCES)} files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
