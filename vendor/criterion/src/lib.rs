//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real crates-io
//! `criterion` cannot be fetched. This shim implements the subset of the API
//! the workspace benches use (`Criterion`, `benchmark_group`, `sample_size`,
//! `bench_with_input`, `bench_function`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`) as a plain wall-clock harness: each
//! benchmark runs one warm-up iteration plus `sample_size` timed iterations
//! and prints min/median/max to stdout. There is no statistical analysis,
//! HTML report, or baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group, e.g. `q_gs/0.3`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs the closure under measurement.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up, untimed
        self.timings.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            self.timings.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_one(group: &str, label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples, timings: Vec::new() };
    f(&mut b);
    b.timings.sort_unstable();
    let (min, med, max) = if b.timings.is_empty() {
        (Duration::ZERO, Duration::ZERO, Duration::ZERO)
    } else {
        (b.timings[0], b.timings[b.timings.len() / 2], b.timings[b.timings.len() - 1])
    };
    println!(
        "{group}/{label}: median {} (min {}, max {}, {} samples)",
        fmt_duration(med),
        fmt_duration(min),
        fmt_duration(max),
        samples
    );
}

/// A named collection of related benchmarks sharing a sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.label, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { default_sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: self.default_sample_size }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, "", self.default_sample_size, &mut f);
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }
}

/// Re-export for callers that import `black_box` from criterion rather than
/// `std::hint`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; nothing to parse in
            // this shim.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::new("count", 1), &1, |b, &_| {
            b.iter(|| calls += 1)
        });
        group.finish();
        assert_eq!(calls, 4); // 1 warm-up + 3 samples
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
