//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real crates-io
//! `proptest` cannot be fetched. This vendored shim implements the subset of
//! the API this workspace actually uses — `proptest!`, `prop_assert*!`,
//! `Strategy` with `prop_map`/`prop_recursive`/`boxed`, `Just`, range and
//! tuple strategies, `prop_oneof!`, `prop::collection::vec`, and
//! `prop::option::of` — on top of a small deterministic PRNG.
//!
//! Differences from the real crate, by design:
//! * no shrinking: a failing case reports its inputs but is not minimized;
//! * generation is fully deterministic per test name, so CI runs are
//!   reproducible (there is no `PROPTEST_` env handling);
//! * `prop_recursive` builds the recursion eagerly to the requested depth
//!   instead of probabilistically, which bounds tree size the same way.

pub mod test_runner {
    use std::fmt;

    /// Deterministic xoshiro256++ generator used to drive strategies.
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Seed derived from the fully-qualified test name, so every test
        /// gets its own reproducible stream.
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }

        pub fn next_u128(&mut self) -> u128 {
            ((self.next_u64() as u128) << 64) | self.next_u64() as u128
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u128() % n as u128) as usize
        }
    }

    /// Subset of the real `ProptestConfig`: only `cases` matters here.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Error type returned by a failing property body.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::sync::Arc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Eagerly stacks `f` on top of the leaf strategy `depth` times.
        /// `_desired_size` and `_expected_branch` are accepted for API
        /// compatibility; tree size is bounded by construction depth.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let mut s = self.boxed();
            for _ in 0..depth {
                s = f(s).boxed();
            }
            s
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    trait DynStrategy<V> {
        fn dyn_generate(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.dyn_generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len());
            self.options[i].generate(rng)
        }
    }

    // Integer ranges. Uniformity via 128-bit modulo is biased by at most
    // span/2^128, irrelevant for test generation.
    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    let off = rng.next_u128() % span;
                    (self.start as i128).wrapping_add(off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut TestRng) -> u128 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_u128() % (self.end - self.start)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.next_f64() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.next_f64() as f32 * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A/a);
    tuple_strategy!(A/a, B/b);
    tuple_strategy!(A/a, B/b, C/c);
    tuple_strategy!(A/a, B/b, C/c, D/d);
    tuple_strategy!(A/a, B/b, C/c, D/d, E/e);
    tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.start + rng.below(self.size.end - self.size.start);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    /// `prop::option::of(inner)`: `None` half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Full-domain strategy for `any::<T>()`.
    pub struct Any<T>(PhantomData<T>);

    pub trait Arbitrary: Sized {
        fn arbitrary() -> Any<Self> {
            Any(PhantomData)
        }
        fn from_rng(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::from_rng(rng)
        }
    }

    macro_rules! arb_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn from_rng(rng: &mut TestRng) -> $t {
                    rng.next_u128() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Arbitrary for bool {
        fn from_rng(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 0
        }
    }

    impl Arbitrary for f64 {
        fn from_rng(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        T::arbitrary()
    }
}

pub use arbitrary::{any, Arbitrary};

/// `use proptest::prelude::*;`
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors the real prelude's `prop` module path.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), l, r
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left), stringify!($right), l
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match __outcome {
                    Ok(Ok(())) => {}
                    Ok(Err($crate::test_runner::TestCaseError::Reject(_))) => {}
                    Ok(Err(e)) => panic!(
                        "proptest `{}` failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), __case + 1, __config.cases, e, __inputs
                    ),
                    Err(payload) => {
                        eprintln!(
                            "proptest `{}` panicked at case {}/{}\n  inputs: {}",
                            stringify!($name), __case + 1, __config.cases, __inputs
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges_respect_bounds");
        for _ in 0..10_000 {
            let a = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&a));
            let b = (-50i64..50).generate(&mut rng);
            assert!((-50..50).contains(&b));
            let c = (0.05f64..0.3).generate(&mut rng);
            assert!((0.05..0.3).contains(&c));
            let d = (0u128..u128::MAX).generate(&mut rng);
            assert!(d < u128::MAX);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen_all = || {
            let mut rng = TestRng::for_test("determinism");
            crate::collection::vec(0u64..1000, 1..20).generate(&mut rng)
        };
        assert_eq!(gen_all(), gen_all());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_multiple_args(x in 0i64..10, ys in prop::collection::vec(0u32..5, 0..4)) {
            prop_assert!(x >= 0);
            for y in ys {
                prop_assert!(y < 5, "y out of range: {}", y);
            }
        }

        #[test]
        fn early_return_ok_is_supported(x in 0u32..10) {
            if x > 3 {
                return Ok(());
            }
            prop_assert!(x <= 3);
        }
    }

    #[test]
    fn oneof_and_recursive_compose() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u32),
            Node(Vec<Tree>),
        }
        let strat = (0u32..10).prop_map(Tree::Leaf).prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                crate::collection::vec(inner.clone(), 1..4).prop_map(Tree::Node),
                inner,
            ]
        });
        let mut rng = TestRng::for_test("oneof_and_recursive_compose");
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            fn depth(t: &Tree) -> usize {
                match t {
                    Tree::Leaf(_) => 0,
                    Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
                }
            }
            assert!(depth(&t) <= 3);
        }
    }
}
