//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small API subset it actually uses: a seedable deterministic PRNG
//! (`rngs::StdRng`), the [`SeedableRng`] constructor, and the [`Rng`]
//! sampling methods `gen`, `gen_range` and `gen_bool`. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically solid for
//! graph generation and benchmarks, deterministic for a given seed, and
//! free of any OS-entropy dependency.
//!
//! Streams are **not** bit-compatible with the real `rand::StdRng`
//! (ChaCha12); nothing in this workspace depends on specific streams,
//! only on determinism per seed.

/// Seedable construction, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range type (mirror of `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// A uniform double in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Sampling helpers, mirroring the `rand::Rng` extension trait.
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T` (implemented for the float and
    /// integer types the workspace generates).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable by `Rng::gen()` (the `Standard` distribution).
pub trait Standard {
    fn sample(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        rng.next_f64()
    }
}

impl Standard for u64 {
    fn sample(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Rejection-free bounded sampling via 128-bit multiply (Lemire's method,
/// biased by at most 2^-64 — irrelevant for generator workloads).
fn bounded(rng: &mut dyn RngCore, bound: u64) -> u64 {
    if bound == 0 {
        return 0;
    }
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`; not stream-compatible, see crate docs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = r.gen_range(1..=12u32);
            assert!((1..=12).contains(&y));
            let z = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
            let f = r.gen_range(0.25..0.5f64);
            assert!((0.25..0.5).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits={hits}");
    }
}
