//! Shared helpers for the table-regeneration binaries.

use std::time::{Duration, Instant};

/// Times a closure, returning (result, elapsed).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// Formats a duration like the paper's tables: ms below 10 s, seconds
/// below a minute (`15.0s`, not `0m15s`), else m/s.
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    let ms = secs * 1e3;
    if ms < 10_000.0 {
        format!("{ms:.1}ms")
    } else if secs < 60.0 {
        format!("{secs:.1}s")
    } else {
        let s = d.as_secs();
        format!("{}m{:02}s", s / 60, s % 60)
    }
}

/// Parses a human-friendly duration: `500ms`, `2s`, `1.5s`, `10m`, or a
/// bare number (seconds).
pub fn parse_duration(s: &str) -> Result<Duration, String> {
    let s = s.trim();
    let (num, scale) = if let Some(n) = s.strip_suffix("ms") {
        (n, 1e-3)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1.0)
    } else if let Some(n) = s.strip_suffix('m') {
        (n, 60.0)
    } else {
        (s, 1.0)
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("invalid duration `{s}` (try 500ms, 2s, 10m)"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("invalid duration `{s}`: must be non-negative"));
    }
    Ok(Duration::from_secs_f64(v * scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_format() {
        assert_eq!(fmt_duration(Duration::from_millis(42)), "42.0ms");
        assert_eq!(fmt_duration(Duration::from_millis(9_950)), "9950.0ms");
        // 10–60 s must render as seconds, not zero minutes.
        assert_eq!(fmt_duration(Duration::from_secs(15)), "15.0s");
        assert_eq!(fmt_duration(Duration::from_millis(59_949)), "59.9s");
        assert_eq!(fmt_duration(Duration::from_secs(60)), "1m00s");
        assert_eq!(fmt_duration(Duration::from_secs(135)), "2m15s");
    }

    #[test]
    fn durations_parse() {
        assert_eq!(parse_duration("500ms").unwrap(), Duration::from_millis(500));
        assert_eq!(parse_duration("2s").unwrap(), Duration::from_secs(2));
        assert_eq!(parse_duration("1.5s").unwrap(), Duration::from_millis(1500));
        assert_eq!(parse_duration("10m").unwrap(), Duration::from_secs(600));
        assert_eq!(parse_duration("3").unwrap(), Duration::from_secs(3));
        assert!(parse_duration("abc").is_err());
        assert!(parse_duration("-1s").is_err());
    }
}
