//! Shared helpers for the table-regeneration binaries.

use std::time::{Duration, Instant};

/// Times a closure, returning (result, elapsed).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// Formats a duration like the paper's tables: ms below 10 s, else m/s.
pub fn fmt_duration(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms < 10_000.0 {
        format!("{ms:.1}ms")
    } else {
        let s = d.as_secs();
        format!("{}m{:02}s", s / 60, s % 60)
    }
}
