//! Regenerates **Table 1** and the surrounding Section 7.1 experiment:
//! the diamond-chain path-counting family `Q_n` on the paper's
//! 30-diamond graph (91 vertices, 120 edges).
//!
//! Three evaluation strategies are timed:
//! * `TG(count)` — all-shortest-paths **counting** (TigerGraph's
//!   strategy; the paper reports all queries completing within 10 ms),
//! * `NRE(enum)` — non-repeated-edge enumeration (Neo4j's default
//!   Cypher semantics; Table 1 column `Q_n^nre`, exponential),
//! * `ASP(enum)` — all-shortest-paths by enumeration (Neo4j's
//!   `allShortestPaths`; Table 1 column `Q_n^asp`, also exponential and
//!   with a worse constant).
//!
//! Run with `--release`; enumerative strategies stop once a query
//! exceeds the time cap (the paper used a 10-minute timeout — default
//! here is 5 s per query, override with `TABLE1_CAP_SECS`).

use bench::harness::{fmt_duration, timed};
use gsql_core::{stdlib, Engine, PathSemantics};
use pgraph::generators::diamond_chain;
use pgraph::value::Value;
use std::time::Duration;

fn main() {
    let cap_secs: u64 = std::env::var("TABLE1_CAP_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let cap = Duration::from_secs(cap_secs);
    let max_n: usize = std::env::var("TABLE1_MAX_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);

    let (g, _) = diamond_chain(30);
    println!(
        "Diamond-chain graph: {} vertices, {} edges (paper: 91 / 120)",
        g.vertex_count(),
        g.edge_count()
    );
    println!("Per-query time cap: {cap_secs}s\n");
    println!(
        "{:>3} | {:>12} | {:>14} | {:>14} | {:>14}",
        "n", "path count", "TG(count)", "NRE(enum)", "ASP(enum)"
    );
    println!("{}", "-".repeat(70));

    let q = stdlib::qn("V", "E");
    let mut nre_dead = false;
    let mut asp_dead = false;
    for n in 1..=max_n {
        let args = [
            ("srcName", Value::from("v0")),
            ("tgtName", Value::from(format!("v{n}"))),
        ];

        let (out, t_count) = timed(|| Engine::new(&g).run_text(&q, &args).unwrap());
        let count = out.prints[0].rsplit(", ").next().unwrap().to_string();

        let run_enum = |sem: PathSemantics, dead: &mut bool| -> String {
            if *dead {
                return "-".to_string();
            }
            let (res, t) = timed(|| {
                Engine::new(&g)
                    .with_semantics(sem)
                    .run_text(&q, &args)
                    .map(|o| o.prints[0].clone())
            });
            match res {
                Ok(line) => {
                    assert!(line.ends_with(&count), "semantics disagree at n={n}");
                    if t > cap {
                        *dead = true;
                    }
                    fmt_duration(t)
                }
                Err(e) => format!("error: {e}"),
            }
        };
        let nre = run_enum(PathSemantics::NonRepeatedEdge, &mut nre_dead);
        let asp = run_enum(PathSemantics::AllShortestPathsEnumerate, &mut asp_dead);

        println!(
            "{n:>3} | {count:>12} | {:>14} | {nre:>14} | {asp:>14}",
            fmt_duration(t_count)
        );
    }
    println!(
        "\nShape check vs paper: TG stays flat (paper: <10ms for all n);\n\
         NRE and ASP double per increment of n (paper: 2ms at n=8 doubling\n\
         to 6.95min at n=25, ASP timing out earlier at n=22)."
    );
}
