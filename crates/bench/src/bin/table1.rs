//! Regenerates **Table 1** and the surrounding Section 7.1 experiment:
//! the diamond-chain path-counting family `Q_n` on the paper's
//! 30-diamond graph (91 vertices, 120 edges).
//!
//! Three evaluation strategies are timed:
//! * `TG(count)` — all-shortest-paths **counting** (TigerGraph's
//!   strategy; the paper reports all queries completing within 10 ms),
//! * `NRE(enum)` — non-repeated-edge enumeration (Neo4j's default
//!   Cypher semantics; Table 1 column `Q_n^nre`, exponential),
//! * `ASP(enum)` — all-shortest-paths by enumeration (Neo4j's
//!   `allShortestPaths`; Table 1 column `Q_n^asp`, also exponential and
//!   with a worse constant).
//!
//! Run with `--release`. Enumerative strategies run under the engine's
//! resource governor with a per-query wall-clock deadline (the stand-in
//! for the paper's 10-minute Neo4j timeout): a cell whose query trips the
//! deadline prints `timeout` mid-flight — the engine aborts the running
//! kernel, it does not wait for completion — and later rows of that
//! strategy print `-`. Default deadline 5 s; override with
//! `--timeout <dur>` (e.g. `2s`, `500ms`) or `TABLE1_CAP_SECS`.

use bench::harness::{fmt_duration, parse_duration, timed};
use gsql_core::{stdlib, Budget, Engine, ErrorKind, PathSemantics};
use pgraph::generators::diamond_chain;
use pgraph::value::Value;
use std::time::Duration;

fn main() {
    let cap_secs: u64 = std::env::var("TABLE1_CAP_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let mut cap = Duration::from_secs(cap_secs);
    let mut max_n: usize = std::env::var("TABLE1_MAX_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);

    let mut parallelism: Option<usize> = None;
    let mut profile = false;
    let mut check = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--profile" => profile = true,
            "--check" => check = true,
            "--timeout" => {
                let spec = it.next().unwrap_or_default();
                cap = parse_duration(&spec).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--max-n" => {
                max_n = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--max-n expects an integer");
                        std::process::exit(2);
                    });
            }
            "--parallelism" => {
                parallelism = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| {
                            eprintln!("--parallelism expects a positive integer");
                            std::process::exit(2);
                        }),
                );
            }
            other => {
                eprintln!(
                    "usage: table1 [--timeout <dur>] [--max-n <n>] [--parallelism <k>] \
                     [--profile] [--check] (got `{other}`)"
                );
                std::process::exit(2);
            }
        }
    }
    let mk_engine = |g| {
        let e = Engine::new(g);
        match parallelism {
            Some(n) => e.with_parallelism(n),
            None => e,
        }
    };

    if check {
        // `--check`: lint the experiment's query under each timed
        // strategy's semantics instead of running it. Q_n must be clean
        // under counting; under the enumerative strategies the linter
        // predicts exactly the exponential blowup Table 1 measures.
        let src = stdlib::qn("V", "E");
        let query = gsql_core::parse_query(&src).unwrap();
        let mut exit = 0;
        for (tag, sem) in [
            ("TG(count)", PathSemantics::AllShortestPaths),
            ("NRE(enum)", PathSemantics::NonRepeatedEdge),
            ("ASP(enum)", PathSemantics::AllShortestPathsEnumerate),
        ] {
            let diags = gsql_core::lint_query(&query, sem);
            if diags.is_empty() {
                println!("{tag:>10} Qn: clean");
            } else {
                println!("{tag:>10} Qn:\n{}", gsql_core::lint::render_text(&diags, Some(&src)));
                if gsql_core::lint::has_errors(&diags) {
                    exit = 1;
                }
            }
        }
        std::process::exit(exit);
    }

    let (g, _) = diamond_chain(30);
    println!(
        "Diamond-chain graph: {} vertices, {} edges (paper: 91 / 120)",
        g.vertex_count(),
        g.edge_count()
    );
    println!("Per-query deadline: {}\n", fmt_duration(cap));
    println!(
        "{:>3} | {:>12} | {:>14} | {:>14} | {:>14}",
        "n", "path count", "TG(count)", "NRE(enum)", "ASP(enum)"
    );
    println!("{}", "-".repeat(70));

    let q = stdlib::qn("V", "E");
    let mut nre_dead = false;
    let mut asp_dead = false;
    for n in 1..=max_n {
        let args = [
            ("srcName", Value::from("v0")),
            ("tgtName", Value::from(format!("v{n}"))),
        ];

        let (out, t_count) = timed(|| mk_engine(&g).run_text(&q, &args).unwrap());
        let count = out.prints[0].rsplit(", ").next().unwrap().to_string();

        let run_enum = |sem: PathSemantics, dead: &mut bool| -> String {
            if *dead {
                // Strategy already past its cutoff: larger n can only be
                // slower, so report the timeout without re-running.
                return "timeout".to_string();
            }
            let (res, t) = timed(|| {
                mk_engine(&g)
                    .with_semantics(sem)
                    .with_budget(Budget::default().with_deadline(cap))
                    .run_text(&q, &args)
                    .map(|o| o.prints[0].clone())
            });
            match res {
                Ok(line) => {
                    assert!(line.ends_with(&count), "semantics disagree at n={n}");
                    fmt_duration(t)
                }
                Err(e) if e.kind() == ErrorKind::DeadlineExceeded => {
                    *dead = true;
                    "timeout".to_string()
                }
                Err(e) => {
                    *dead = true;
                    format!("error: {}", e.kind())
                }
            }
        };
        let nre = run_enum(PathSemantics::NonRepeatedEdge, &mut nre_dead);
        let asp = run_enum(PathSemantics::AllShortestPathsEnumerate, &mut asp_dead);

        println!(
            "{n:>3} | {count:>12} | {:>14} | {nre:>14} | {asp:>14}",
            fmt_duration(t_count)
        );
    }
    println!(
        "\nShape check vs paper: TG stays flat (paper: <10ms for all n);\n\
         NRE and ASP double per increment of n (paper: 2ms at n=8 doubling\n\
         to 6.95min at n=25, ASP timing out earlier at n=22)."
    );

    if profile {
        // Per-operator breakdown of the counting strategy at the largest
        // n — the same tree `gsql_shell --profile` and the server's
        // `x-gsql-profile` header produce (see docs/PLAN_FORMAT.md).
        let args = [
            ("srcName", Value::from("v0")),
            ("tgtName", Value::from(format!("v{max_n}"))),
        ];
        let query = gsql_core::parse_query(&q).unwrap();
        let (_, prof) = mk_engine(&g).run_profiled(&query, &args).unwrap();
        eprint!("\n{}", prof.render());
    }
}
