//! Micro-benchmark behind `BENCH_table1.json`: wall-clock numbers for the
//! SDMC counting kernel (Table 1's `TG(count)` strategy) at the paper's
//! diamond depth 30, a deeper chain that stresses the adjacency layout,
//! and a multi-source fan-out workload that exercises the parallel
//! kernel dispatch.
//!
//! Usage: `bench_table1 --label before [--parallelism N]`
//!
//! Prints one JSON object for the given label; the checked-in
//! `BENCH_table1.json` is assembled from a `before` run (pre-CSR
//! baseline) and an `after` run on the same machine.
//!
//! `bench_table1 --morsel-sweep` instead runs the morsel-scaling sweep
//! behind EXPERIMENTS.md E13: the `fanout_er1500` ACCUM workload and
//! the Appendix-B grouping-set pair (`Q_gs` / `Q_acc`, SNB sf 0.4) at
//! parallelism 1/2/4/8, printing the `pr9_morsel_scaling` JSON block.

use bench::harness::timed;
use darpe::CompiledDarpe;
use gsql_core::governor::QueryGuard;
use gsql_core::semantics::{reach, MatchStats, PathSemantics};
use gsql_core::{stdlib, Engine};
use pgraph::generators::{diamond_chain, erdos_renyi};
use pgraph::value::Value;
use std::hint::black_box;
use std::time::Duration;

/// Best-of-`runs` wall time for `f`, in fractional milliseconds.
fn best_of(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut best = Duration::MAX;
    for _ in 0..runs {
        let ((), t) = timed(&mut f);
        best = best.min(t);
    }
    best.as_secs_f64() * 1e3
}

/// The E13 sweep: the two morsel-heavy workloads (the ER(1500) Kleene
/// fan-out whose ~2M-row ACCUM is now a morsel-parallel exact-merge
/// fold, and the Appendix-B grouping-set pair whose group-key /
/// aggregate-argument pass runs morsel-parallel) at parallelism
/// 1/2/4/8, best of 3 each.
fn morsel_sweep() {
    let ger = erdos_renyi(1500, 4.0 / 1500.0, 3);
    let fanout = r#"
CREATE QUERY Fanout () {
  SumAccum<int> @hits;
  R = SELECT t FROM V:s -(E>*)- V:t ACCUM t.@hits += 1;
  PRINT R.size();
}
"#;
    let gsnb = ldbc_snb::generate(ldbc_snb::SnbParams::new(0.4, 2024));
    let q_gs = ldbc_snb::queries::q_gs();
    let q_acc = ldbc_snb::queries::q_acc();
    println!("\"pr9_morsel_scaling\": {{");
    let mut lines = Vec::new();
    for p in [1usize, 2, 4, 8] {
        let fan = best_of(3, || {
            Engine::new(&ger).with_parallelism(p).run_text(fanout, &[]).unwrap();
        });
        let gs = best_of(3, || {
            Engine::new(&gsnb).with_parallelism(p).run_text(&q_gs, &[]).unwrap();
        });
        let acc = best_of(3, || {
            Engine::new(&gsnb).with_parallelism(p).run_text(&q_acc, &[]).unwrap();
        });
        lines.push(format!("  \"fanout_er1500_par{p}_ms\": {fan:.1}"));
        lines.push(format!("  \"qgs_sf0_4_par{p}_ms\": {gs:.1}"));
        lines.push(format!("  \"qacc_sf0_4_par{p}_ms\": {acc:.1}"));
    }
    println!("{}\n}}", lines.join(",\n"));
}

fn main() {
    let mut label = "before".to_string();
    let mut parallelism: usize = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--label" => label = it.next().unwrap_or_default(),
            "--parallelism" => {
                parallelism = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or(parallelism)
            }
            "--morsel-sweep" => {
                morsel_sweep();
                return;
            }
            other => {
                eprintln!(
                    "usage: bench_table1 [--label L] [--parallelism N] [--morsel-sweep] (got `{other}`)"
                );
                std::process::exit(2);
            }
        }
    }

    // 1. The paper's Table 1 cell: Q_30 counting on the 30-diamond chain.
    let (g30, _) = diamond_chain(30);
    let qn = stdlib::qn("V", "E");
    let args30 = [("srcName", Value::from("v0")), ("tgtName", Value::from("v30"))];
    let qn_n30_ms = best_of(200, || {
        Engine::new(&g30).run_text(&qn, &args30).unwrap();
    });

    // 1b. Experiment E9: PROFILE overhead on the same Table 1 workload.
    // Both sides run the pre-parsed query so the delta isolates the
    // operator-boundary instrumentation (profiling off costs one Option
    // check per operator; on, it adds span bookkeeping).
    let qn_parsed = gsql_core::parse_query(&qn).unwrap();
    let qn_n30_plain_ms = best_of(200, || {
        let e = Engine::new(&g30);
        black_box(e.run(&qn_parsed, &args30).unwrap());
    });
    let qn_n30_profiled_ms = best_of(200, || {
        let e = Engine::new(&g30);
        black_box(e.run_profiled(&qn_parsed, &args30).unwrap());
    });

    // 2. Deep chain, kernel-level: a single SDMC counting `reach` over a
    // 2000-diamond chain (path counts handled by BigCount) — dominated by
    // the adjacency walk, so it isolates the layout change.
    let (g2k, spine) = diamond_chain(2000);
    let nfa = CompiledDarpe::compile(&darpe::parse("E>*").unwrap(), g2k.schema()).unwrap();
    let kernel_d2000_ms = best_of(25, || {
        let mut stats = MatchStats::default();
        let guard = QueryGuard::unlimited();
        let m = reach(&g2k, spine[0], &nfa, PathSemantics::AllShortestPaths, &guard, &mut stats)
            .unwrap();
        black_box(m.len());
    });

    // 3. Multi-source fan-out: one counting kernel per vertex of an
    // Erdős–Rényi digraph, sequential vs parallel dispatch.
    let ger = erdos_renyi(1500, 4.0 / 1500.0, 3);
    let fanout = r#"
CREATE QUERY Fanout () {
  SumAccum<int> @hits;
  R = SELECT t FROM V:s -(E>*)- V:t ACCUM t.@hits += 1;
  PRINT R.size();
}
"#;
    let fanout_seq_ms = best_of(3, || {
        Engine::new(&ger).with_parallelism(1).run_text(fanout, &[]).unwrap();
    });
    // E9 on a row-bound workload (~2M binding rows through the ACCUM
    // Map/Reduce): the worst case for per-operator span bookkeeping.
    let fanout_parsed = gsql_core::parse_query(fanout).unwrap();
    let fanout_seq_profiled_ms = best_of(3, || {
        let e = Engine::new(&ger).with_parallelism(1);
        black_box(e.run_profiled(&fanout_parsed, &[]).unwrap());
    });
    let fanout_par_ms = best_of(3, || {
        Engine::new(&ger)
            .with_parallelism(parallelism)
            .run_text(fanout, &[])
            .unwrap();
    });

    // 4. Kernel-dominated fan-out: the same per-source counting kernels,
    // but with the target anchored to a vertex parameter so almost no
    // binding rows materialize. Fanout (3) is bound by sequential row
    // materialization (~2M rows); this one is bound by the kernels
    // themselves, so it shows the parallel dispatch scaling.
    let ga = erdos_renyi(3000, 4.0 / 3000.0, 3);
    let reaches = r#"
CREATE QUERY Reaches (VERTEX tgt) {
  SumAccum<int> @@n;
  R = SELECT s FROM V:s -(E>*)- V:tgt ACCUM @@n += 1;
  PRINT @@n;
}
"#;
    let tgt = ("tgt", Value::Vertex(pgraph::graph::VertexId(0)));
    let anchored_seq_ms = best_of(3, || {
        Engine::new(&ga)
            .with_parallelism(1)
            .run_text(reaches, std::slice::from_ref(&tgt))
            .unwrap();
    });
    let anchored_par_ms = best_of(3, || {
        Engine::new(&ga)
            .with_parallelism(parallelism)
            .run_text(reaches, std::slice::from_ref(&tgt))
            .unwrap();
    });

    println!(
        "\"{label}\": {{\n  \"qn_n30_ms\": {qn_n30_ms:.3},\n  \
         \"qn_n30_plain_ms\": {qn_n30_plain_ms:.3},\n  \
         \"qn_n30_profiled_ms\": {qn_n30_profiled_ms:.3},\n  \
         \"kernel_d2000_ms\": {kernel_d2000_ms:.3},\n  \
         \"fanout_er1500_seq_ms\": {fanout_seq_ms:.1},\n  \
         \"fanout_er1500_seq_profiled_ms\": {fanout_seq_profiled_ms:.1},\n  \
         \"fanout_er1500_par{parallelism}_ms\": {fanout_par_ms:.1},\n  \
         \"anchored_er3000_seq_ms\": {anchored_seq_ms:.1},\n  \
         \"anchored_er3000_par{parallelism}_ms\": {anchored_par_ms:.1}\n}}"
    );
}
