//! Regenerates the **Section 7.1 LDBC SNB table**: the IC query family
//! (ic3, ic5, ic6, ic9, ic11) with the `Knows` radius widened from 2 to
//! 3 and 4 hops, at several scale factors, under
//!
//! * `TG` — all-shortest-paths counting semantics, and
//! * `Neo` — non-repeated-edge enumeration (Cypher's default).
//!
//! Enumeration cells abort (`timeout`) once they materialize more than
//! `LDBC_IC_BUDGET` paths (default 30M — the stand-in for the paper's
//! 60-minute timeout). Pass `--timeout <dur>` (e.g. `2s`) to additionally
//! impose a wall-clock deadline per query via the resource governor.
//!
//! Scale factors default to `0.05,0.1,0.2` (laptop stand-ins for the
//! paper's 1/10/100 GB); override with `LDBC_IC_SFS=0.1,0.5`.

use bench::harness::{fmt_duration, parse_duration, timed};
use gsql_core::{Budget, Engine, PathSemantics};
use ldbc_snb::{generate, queries, SnbParams};
use pgraph::datetime::to_epoch;
use pgraph::value::Value;

fn ic_text(name: &str, hops: usize) -> String {
    match name {
        "ic3" => queries::ic3(hops),
        "ic5" => queries::ic5(hops),
        "ic6" => queries::ic6(hops),
        "ic9" => queries::ic9(hops),
        "ic11" => queries::ic11(hops),
        other => panic!("unknown query {other}"),
    }
}

fn ic_args(p: Value, name: &str) -> Vec<(&'static str, Value)> {
    match name {
        "ic3" => vec![
            ("p", p),
            ("countryX", Value::from("country0")),
            ("countryY", Value::from("country1")),
        ],
        "ic5" => vec![("p", p), ("minDate", Value::DateTime(to_epoch(2010, 6, 1)))],
        "ic6" => vec![("p", p), ("tagName", Value::from("tag0"))],
        "ic9" => vec![("p", p), ("maxDate", Value::DateTime(to_epoch(2012, 6, 1)))],
        "ic11" => vec![
            ("p", p),
            ("country", Value::from("country2")),
            ("beforeYear", Value::Int(2010)),
        ],
        other => panic!("unknown query {other}"),
    }
}

const QUERIES: [&str; 5] = ["ic3", "ic5", "ic6", "ic9", "ic11"];

fn main() {
    let sfs: Vec<f64> = std::env::var("LDBC_IC_SFS")
        .unwrap_or_else(|_| "0.05,0.1,0.2".to_string())
        .split(',')
        .map(|s| s.trim().parse().expect("bad LDBC_IC_SFS"))
        .collect();
    let path_budget: u64 = std::env::var("LDBC_IC_BUDGET")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000_000);
    // Optional wall-clock deadline per query (`--timeout 2s`); the path
    // budget alone already bounds enumeration work.
    let mut deadline = None;
    let mut parallelism: Option<usize> = None;
    let mut profile = false;
    let mut check = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--profile" => profile = true,
            "--check" => check = true,
            "--timeout" => {
                let spec = it.next().unwrap_or_default();
                deadline = Some(parse_duration(&spec).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                }));
            }
            "--parallelism" => {
                parallelism = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| {
                            eprintln!("--parallelism expects a positive integer");
                            std::process::exit(2);
                        }),
                );
            }
            other => {
                eprintln!(
                    "usage: ldbc_ic [--timeout <dur>] [--parallelism <k>] [--profile] \
                     [--check] (got `{other}`)"
                );
                std::process::exit(2);
            }
        }
    }
    if check {
        // `--check`: lint every IC query at every hop radius under the
        // TG counting semantics instead of running the experiment. All
        // must be clean — a lint finding here means the benchmark's own
        // query set regressed.
        let mut exit = 0;
        for name in QUERIES {
            for hops in [2usize, 3, 4] {
                let text = ic_text(name, hops);
                let query = gsql_core::parse_query(&text).unwrap();
                let diags = gsql_core::lint_query(&query, PathSemantics::AllShortestPaths);
                if diags.is_empty() {
                    println!("{name} (hops={hops}): clean");
                } else {
                    println!(
                        "{name} (hops={hops}):\n{}",
                        gsql_core::lint::render_text(&diags, Some(&text))
                    );
                    if gsql_core::lint::has_errors(&diags) {
                        exit = 1;
                    }
                }
            }
        }
        std::process::exit(exit);
    }

    let mut budget = Budget::default().with_max_paths(path_budget);
    budget.deadline = deadline;

    for (label, sem) in [
        ("TG  (all-shortest-paths, counting)", PathSemantics::AllShortestPaths),
        ("Neo (non-repeated-edge, enumerating)", PathSemantics::NonRepeatedEdge),
    ] {
        println!("== {label} ==");
        println!(
            "{:>6} {:>5} | {:>10} {:>10} {:>10} {:>10} {:>10}",
            "sf", "hops", QUERIES[0], QUERIES[1], QUERIES[2], QUERIES[3], QUERIES[4]
        );
        println!("{}", "-".repeat(70));
        for &sf in &sfs {
            let g = generate(SnbParams::new(sf, 2024));
            let pt = g.schema().vertex_type_id("Person").unwrap();
            let p = Value::Vertex(g.vertices_of_type(pt)[0]);
            for hops in [2usize, 3, 4] {
                let mut cells = Vec::new();
                for name in QUERIES {
                    let text = ic_text(name, hops);
                    let args = ic_args(p.clone(), name);
                    let (res, t) = timed(|| {
                        let mut e = Engine::new(&g)
                            .with_semantics(sem)
                            .with_budget(budget.clone());
                        if let Some(n) = parallelism {
                            e = e.with_parallelism(n);
                        }
                        e.run_text(&text, &args)
                    });
                    cells.push(match res {
                        Ok(_) => fmt_duration(t),
                        Err(e) if e.kind().is_resource() => "timeout".to_string(),
                        Err(e) => format!("error: {}", e.kind()),
                    });
                }
                println!(
                    "{sf:>6} {hops:>5} | {:>10} {:>10} {:>10} {:>10} {:>10}",
                    cells[0], cells[1], cells[2], cells[3], cells[4]
                );
            }
        }
        println!();
    }
    println!(
        "Shape check vs paper: under TG, times grow mildly with hops and\n\
         scale; under Neo, ic3/ic9 (and ic6 at scale) blow up with hops —\n\
         the paper saw repeated 60-minute timeouts on its largest graph."
    );

    if profile {
        // Per-operator breakdown of each IC query at the smallest scale
        // factor, 3 hops, counting semantics — the same tree the shell
        // and server produce (docs/PLAN_FORMAT.md).
        let g = generate(SnbParams::new(sfs[0], 2024));
        let pt = g.schema().vertex_type_id("Person").unwrap();
        let p = Value::Vertex(g.vertices_of_type(pt)[0]);
        for name in QUERIES {
            let text = ic_text(name, 3);
            let query = gsql_core::parse_query(&text).unwrap();
            let mut e = Engine::new(&g).with_budget(budget.clone());
            if let Some(n) = parallelism {
                e = e.with_parallelism(n);
            }
            match e.run_profiled(&query, &ic_args(p.clone(), name)) {
                Ok((_, prof)) => eprint!("\n{}", prof.render()),
                Err(err) => eprintln!("\nPROFILE {name} failed: {err}"),
            }
        }
    }
}
