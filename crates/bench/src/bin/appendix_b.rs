//! Regenerates the **Appendix B table**: multi-grouping-set aggregation
//! in GROUPING-SETS style (`Q_gs`: all eight aggregates computed for
//! every grouping set) vs dedicated-accumulator style (`Q_acc`: each
//! grouping set computes only the aggregates it needs).
//!
//! The paper reports medians of 5 runs and speedups of 2.48–3.05× on
//! graphs from 1 GB to 1 TB. Scale factors here default to
//! `0.05,0.1,0.2,0.4` (override with `APPENDIX_B_SFS`).

use bench::harness::timed;
use gsql_core::Engine;
use ldbc_snb::{generate, queries, SnbParams};
use std::time::Duration;

fn median_of(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

fn main() {
    let sfs: Vec<f64> = std::env::var("APPENDIX_B_SFS")
        .unwrap_or_else(|_| "0.05,0.1,0.2,0.4".to_string())
        .split(',')
        .map(|s| s.trim().parse().expect("bad APPENDIX_B_SFS"))
        .collect();
    let runs: usize = std::env::var("APPENDIX_B_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let q_gs = queries::q_gs();
    let q_acc = queries::q_acc();
    println!(
        "{:>8} | {:>14} | {:>14} | {:>8}",
        "sf", "Q_gs median", "Q_acc median", "speedup"
    );
    println!("{}", "-".repeat(55));
    for &sf in &sfs {
        let g = generate(SnbParams::new(sf, 2024));
        let eng = Engine::new(&g);
        let mut t_gs = Vec::with_capacity(runs);
        let mut t_acc = Vec::with_capacity(runs);
        for _ in 0..runs {
            let (r, t) = timed(|| eng.run_text(&q_gs, &[]).unwrap());
            drop(r);
            t_gs.push(t);
            let (r, t) = timed(|| eng.run_text(&q_acc, &[]).unwrap());
            drop(r);
            t_acc.push(t);
        }
        let (m_gs, m_acc) = (median_of(t_gs), median_of(t_acc));
        println!(
            "{sf:>8} | {:>13.3}s | {:>13.3}s | {:>7.3}x",
            m_gs.as_secs_f64(),
            m_acc.as_secs_f64(),
            m_gs.as_secs_f64() / m_acc.as_secs_f64()
        );
    }
    println!(
        "\nShape check vs paper: Q_acc beats Q_gs by a stable constant factor\n\
         across scale (paper: 2.48x at SF-1 rising to 3.05x at SF-1000)."
    );
}
