//! `gsql_shell` — a small command-line front end for the engine.
//!
//! ```text
//! gsql_shell <graph.pg> [--semantics <flavor>] [--explain] \
//!            [--arg name=value ...] (<query.gsql> | -)
//! ```
//!
//! * `<graph.pg>` — a graph in the `pgraph::loader` text format, or one
//!   of the built-in fixtures `:sales`, `:linkedin`, `:diamond30`,
//!   `:snb[=<sf>]`.
//! * `--semantics` — all_shortest_paths (default), non_repeated_edge,
//!   non_repeated_vertex, all_shortest_paths_enumerate, shortest_one.
//! * `--explain` — print the static plan instead of executing.
//! * `--arg k=v` — query arguments (int / float / true|false / string;
//!   `vertex:<id>` for vertex arguments).
//! * query file or `-` to read GSQL from stdin.

use gsql_core::{explain, parse_query, parser::parse_semantics, Engine, ReturnValue};
use pgraph::graph::{Graph, VertexId};
use pgraph::value::Value;
use std::io::Read as _;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: gsql_shell <graph.pg|:sales|:linkedin|:diamond30|:snb[=sf]> \
         [--semantics <flavor>] [--explain] [--arg k=v ...] (<query.gsql> | -)"
    );
    ExitCode::from(2)
}

fn parse_arg_value(raw: &str) -> Value {
    if let Some(id) = raw.strip_prefix("vertex:") {
        if let Ok(v) = id.parse::<u32>() {
            return Value::Vertex(VertexId(v));
        }
    }
    if let Ok(i) = raw.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = raw.parse::<f64>() {
        return Value::Double(f);
    }
    match raw {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        other => Value::Str(other.to_string()),
    }
}

fn load_graph(spec: &str) -> Result<Graph, String> {
    match spec {
        ":sales" => Ok(pgraph::generators::sales_graph()),
        ":linkedin" => Ok(pgraph::generators::linkedin_graph()),
        ":diamond30" => Ok(pgraph::generators::diamond_chain(30).0),
        s if s.starts_with(":snb") => {
            let sf = s
                .strip_prefix(":snb")
                .and_then(|r| r.strip_prefix('='))
                .map(|v| v.parse::<f64>().map_err(|e| e.to_string()))
                .transpose()?
                .unwrap_or(0.05);
            Ok(ldbc_snb::generate(ldbc_snb::SnbParams::new(sf, 2024)))
        }
        path => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read graph `{path}`: {e}"))?;
            pgraph::loader::load_from_string(&text).map_err(|e| e.to_string())
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut graph_spec: Option<String> = None;
    let mut query_spec: Option<String> = None;
    let mut semantics = gsql_core::PathSemantics::AllShortestPaths;
    let mut do_explain = false;
    let mut args: Vec<(String, Value)> = Vec::new();

    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--semantics" => {
                let Some(name) = it.next() else { return usage() };
                let Some(s) = parse_semantics(&name) else {
                    eprintln!("unknown semantics `{name}`");
                    return ExitCode::from(2);
                };
                semantics = s;
            }
            "--explain" => do_explain = true,
            "--arg" => {
                let Some(kv) = it.next() else { return usage() };
                let Some((k, v)) = kv.split_once('=') else {
                    eprintln!("--arg expects k=v, got `{kv}`");
                    return ExitCode::from(2);
                };
                args.push((k.to_string(), parse_arg_value(v)));
            }
            "--help" | "-h" => return usage(),
            _ if graph_spec.is_none() => graph_spec = Some(a),
            _ if query_spec.is_none() => query_spec = Some(a),
            other => {
                eprintln!("unexpected argument `{other}`");
                return usage();
            }
        }
    }
    let (Some(graph_spec), Some(query_spec)) = (graph_spec, query_spec) else {
        return usage();
    };

    let graph = match load_graph(&graph_spec) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let source = if query_spec == "-" {
        let mut s = String::new();
        if std::io::stdin().read_to_string(&mut s).is_err() {
            eprintln!("cannot read query from stdin");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(&query_spec) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read query `{query_spec}`: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let query = match parse_query(&source) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if do_explain {
        match explain(&query, semantics) {
            Ok(plan) => print!("{plan}"),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    let engine = Engine::new(&graph).with_semantics(semantics);
    let arg_refs: Vec<(&str, Value)> =
        args.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    match engine.run(&query, &arg_refs) {
        Ok(out) => {
            for line in &out.prints {
                println!("{line}");
            }
            for table in out.tables.values() {
                print!("{table}");
            }
            match out.returned {
                Some(ReturnValue::Value(v)) => println!("-> {v}"),
                Some(ReturnValue::Table(t)) => print!("-> {t}"),
                Some(ReturnValue::VSet(vs)) => println!("-> vertex set of {}", vs.len()),
                None => {}
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
