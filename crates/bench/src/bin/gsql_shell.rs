//! `gsql_shell` — a small command-line front end for the engine.
//!
//! ```text
//! gsql_shell <graph.pg> [--semantics <flavor>] [--explain] [--profile] \
//!            [--json] [--arg name=value ...] (<query.gsql> | -)
//! ```
//!
//! * `<graph.pg>` — a graph in the `pgraph::loader` text format, or one
//!   of the built-in fixtures `:sales`, `:linkedin`, `:diamond30`,
//!   `:snb[=<sf>]`.
//! * `--semantics` — all_shortest_paths (default), non_repeated_edge,
//!   non_repeated_vertex, all_shortest_paths_enumerate, shortest_one.
//! * `--explain` — print the static plan instead of executing.
//! * `--profile` — run with per-operator profiling; the profile prints
//!   to stderr after the results (same tree the server returns).
//! * `--json` — render the EXPLAIN plan / PROFILE tree as JSON instead
//!   of indented text (format documented in `docs/PLAN_FORMAT.md`).
//! * `--arg k=v` — query arguments (int / float / true|false / string;
//!   `vertex:<id>` for vertex arguments).
//! * query file or `-` to read GSQL from stdin.
//!
//! The query text itself may also start with the keyword `EXPLAIN`,
//! `PROFILE` or `CHECK` (before `CREATE QUERY`), which behaves exactly
//! like the corresponding flag — the same prefixes the HTTP server
//! accepts. `CHECK` runs the static analyzer (`gsql_core::lint`, rule
//! catalog in `docs/LINTS.md`) and prints the diagnostics instead of
//! executing; the exit code is nonzero iff any diagnostic is
//! `Error`-severity. `SET lint = on|strict` lints before every plain
//! run instead, refusing to execute on errors (strict: also warnings).
//!
//! Resource limits: the query source may start with `SET` directives
//! (before `CREATE QUERY`), which configure the engine's resource
//! governor and execution mode — run `gsql_shell --help` for the full
//! directive list:
//!
//! ```text
//! SET timeout = 5s
//! SET deadline_ms = 250
//! SET row_limit = 1000000
//! SET path_budget = 10000000
//! SET memory_limit = 256MB
//! SET iteration_limit = 10000
//! SET parallelism = 4
//! SET shards = 4
//! SET report = on
//! SET profile = on
//! ```
//!
//! `SET deadline_ms` is the millisecond twin of `SET timeout` (it maps
//! to the same per-request deadline the server reads from the
//! `x-gsql-deadline-ms` header). `SET report = on` prints the engine's
//! [`ResourceReport`](gsql_core::ResourceReport) after each successful
//! query — the same per-request accounting `gsql-serve` returns in its
//! response `report` object. `SET profile = on` is the directive twin of
//! `--profile` (and of the server's `x-gsql-profile: 1` header).
//!
//! A query that trips a limit aborts with a structured report, e.g.
//! `query aborted [deadline-exceeded]: deadline exceeded after 5.0s;
//! 1.2M paths enumerated, ...`.

use bench::harness::parse_duration;
use gsql_core::lint::{
    budget_findings, has_errors, lint_query_and_facts, render_error_snippet, render_json,
    render_text, QueryFacts,
};
use gsql_core::{
    parse_query_with_mode, parser::parse_semantics, Budget, Engine, QueryMode,
    ReturnValue, Severity,
};
use pgraph::graph::{Graph, VertexId};
use pgraph::value::Value;
use std::io::Read as _;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: gsql_shell <graph.pg|:sales|:linkedin|:diamond30|:snb[=sf]> \
         [--semantics <flavor>] [--shards <n>] [--explain] [--profile] [--check] [--json] \
         [--arg k=v ...] (<query.gsql> | -)\n\
         run `gsql_shell --help` for the full option and SET-directive reference"
    );
    ExitCode::from(2)
}

fn help() -> ExitCode {
    println!(
        "gsql_shell — run, EXPLAIN or PROFILE a GSQL query against a graph\n\
         \n\
         usage: gsql_shell <graph> [options] (<query.gsql> | -)\n\
         \n\
         <graph>                a pgraph text file, or a built-in fixture:\n\
         \x20 :sales | :linkedin | :diamond30 | :snb[=<scale-factor>]\n\
         \n\
         options:\n\
         \x20 --semantics <s>      all_shortest_paths (default) | shortest_one |\n\
         \x20                      non_repeated_edge | non_repeated_vertex |\n\
         \x20                      all_shortest_paths_enumerate\n\
         \x20 --explain            print the optimized plan instead of executing;\n\
         \x20                      operators carry `est_rows`/`est_cost` from the\n\
         \x20                      loaded graph's statistics\n\
         \x20 --profile            execute with per-operator profiling; the profile\n\
         \x20                      tree prints to stderr after the results\n\
         \x20 --check              run the static analyzer instead of executing;\n\
         \x20                      diagnostics print to stdout, exit 1 on errors\n\
         \x20                      (rule catalog in docs/LINTS.md)\n\
         \x20 --json               render the plan/profile/diagnostics as JSON (see\n\
         \x20                      docs/PLAN_FORMAT.md for the schema)\n\
         \x20 --arg k=v            bind a query parameter (repeatable);\n\
         \x20                      int / float / true|false / string / vertex:<id>\n\
         \x20 --shards <n>         partition the graph into <n> shards and run the\n\
         \x20                      scatter-gather executor (output is byte-identical\n\
         \x20                      to unsharded execution; see docs/SHARDING.md)\n\
         \x20 -h, --help           this help\n\
         \n\
         The query text may start with `EXPLAIN`, `PROFILE` or `CHECK` (same\n\
         effect as the flags), and/or with `SET` directives, one per line,\n\
         before the CREATE QUERY:\n\
         \n\
         \x20 SET timeout = <dur>        wall-clock budget (e.g. 5s, 250ms)\n\
         \x20 SET deadline_ms = <n>      same budget, in milliseconds\n\
         \x20 SET row_limit = <n>        max binding rows materialized\n\
         \x20 SET path_budget = <n>      max paths enumerated (enumerative kernels)\n\
         \x20 SET memory_limit = <sz>    max accumulator bytes (e.g. 256MB, 1GB)\n\
         \x20 SET iteration_limit = <n>  max WHILE iterations\n\
         \x20 SET parallelism = <n>      Map-phase worker threads (>= 1)\n\
         \x20 SET shards = <n>           scatter-gather shard count (>= 1; overrides\n\
         \x20                            the --shards flag; 1 = unsharded)\n\
         \x20 SET report = on|off        print the ResourceReport to stderr\n\
         \x20 SET profile = on|off       per-operator profiling (same as --profile)\n\
         \x20 SET lint = on|strict|off   lint before running: `on` prints findings\n\
         \x20                            to stderr and refuses to run on errors;\n\
         \x20                            `strict` also refuses on warnings\n\
         \x20 SET autosave = <path>|off  after a mutating query (INSERT/UPDATE/\n\
         \x20                            DELETE), apply the batch and atomically\n\
         \x20                            save the graph to <path> (loader format)\n\
         \n\
         Results print to stdout; the report and profile print to stderr so\n\
         result output stays clean for pipelines."
    );
    ExitCode::SUCCESS
}

fn parse_arg_value(raw: &str) -> Value {
    if let Some(id) = raw.strip_prefix("vertex:") {
        if let Ok(v) = id.parse::<u32>() {
            return Value::Vertex(VertexId(v));
        }
    }
    if let Ok(i) = raw.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = raw.parse::<f64>() {
        return Value::Double(f);
    }
    match raw {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        other => Value::Str(other.to_string()),
    }
}

/// Parses a byte-size spec: plain bytes, or `KB`/`MB`/`GB` suffixes
/// (binary multiples).
fn parse_bytes(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (num, scale) = if let Some(n) = s.strip_suffix("GB") {
        (n, 1u64 << 30)
    } else if let Some(n) = s.strip_suffix("MB") {
        (n, 1u64 << 20)
    } else if let Some(n) = s.strip_suffix("KB") {
        (n, 1u64 << 10)
    } else {
        (s, 1)
    };
    num.trim()
        .parse::<u64>()
        .map(|v| v * scale)
        .map_err(|_| format!("invalid byte size `{s}` (try 1048576 or 256MB)"))
}

/// Everything the `SET` header configures: the resource [`Budget`], an
/// execution thread count (`SET parallelism = N`; when absent the engine
/// default applies, including a `GSQL_PARALLELISM` environment
/// override), and whether to print the per-query `ResourceReport`.
struct ShellSettings {
    budget: Budget,
    parallelism: Option<usize>,
    /// `SET shards = N`: scatter-gather shard count (overrides `--shards`).
    shards: Option<usize>,
    report: bool,
    profile: bool,
    lint: LintMode,
    /// `SET autosave = <path>`: after a query that mutates the graph
    /// (INSERT/UPDATE/DELETE), apply the batch and atomically save the
    /// resulting graph to `<path>` in the loader text format.
    autosave: Option<String>,
}

/// `SET lint = on|strict|off` — whether to run the static analyzer
/// before executing, and how severe a finding must be to refuse the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LintMode {
    Off,
    /// Print findings to stderr; refuse to run on `Error` diagnostics.
    On,
    /// Like `On`, but warnings refuse the run too.
    Strict,
}

/// Strips leading `SET <key> = <value>` directives from the query source
/// and folds them into [`ShellSettings`]. `SET <key> <value>` (no `=`)
/// is accepted too, matching the interactive habit of `SET report on`.
fn extract_set_directives(source: &str) -> Result<(ShellSettings, String), String> {
    let mut budget = Budget::default();
    let mut parallelism = None;
    let mut shards = None;
    let mut report = false;
    let mut profile = false;
    let mut lint = LintMode::Off;
    let mut autosave = None;
    let mut rest = Vec::new();
    let mut in_header = true;
    for line in source.lines() {
        let trimmed = line.trim();
        let lower = trimmed.to_ascii_lowercase();
        if in_header && (trimmed.is_empty() || lower.starts_with("//") || lower.starts_with('#')) {
            rest.push(line);
            continue;
        }
        if in_header && lower.starts_with("set ") {
            let body = trimmed[4..].trim().trim_end_matches(';');
            let (key, value) = body
                .split_once('=')
                .or_else(|| body.split_once(char::is_whitespace))
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| format!("SET expects `SET <key> = <value>`, got `{trimmed}`"))?;
            let int = |v: &str| {
                v.parse::<u64>()
                    .map_err(|_| format!("SET {key} expects a non-negative integer, got `{v}`"))
            };
            let switch = |v: &str| match v.to_ascii_lowercase().as_str() {
                "on" | "true" | "1" => Ok(true),
                "off" | "false" | "0" => Ok(false),
                other => Err(format!("SET {key} expects on|off, got `{other}`")),
            };
            match key.to_ascii_lowercase().as_str() {
                "timeout" => budget.deadline = Some(parse_duration(value)?),
                "deadline_ms" => {
                    budget = budget.with_deadline(std::time::Duration::from_millis(int(value)?))
                }
                "report" => report = switch(value)?,
                "profile" => profile = switch(value)?,
                "lint" => {
                    lint = match value.to_ascii_lowercase().as_str() {
                        "on" | "true" | "1" => LintMode::On,
                        "strict" => LintMode::Strict,
                        "off" | "false" | "0" => LintMode::Off,
                        other => {
                            return Err(format!(
                                "SET lint expects on|strict|off, got `{other}`"
                            ))
                        }
                    }
                }
                "autosave" => {
                    autosave = match value.to_ascii_lowercase().as_str() {
                        "off" | "false" | "0" => None,
                        _ => Some(value.to_string()),
                    }
                }
                "row_limit" => budget.max_binding_rows = Some(int(value)?),
                "path_budget" => budget.max_paths = Some(int(value)?),
                "memory_limit" => budget.max_accum_bytes = Some(parse_bytes(value)?),
                "iteration_limit" => budget.max_while_iters = Some(int(value)?),
                "parallelism" => {
                    parallelism =
                        Some(value.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(
                            || format!("SET parallelism expects a positive integer, got `{value}`"),
                        )?)
                }
                "shards" => {
                    shards = Some(value.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(
                        || format!("SET shards expects a positive integer, got `{value}`"),
                    )?)
                }
                other => {
                    return Err(format!(
                        "unknown SET key `{other}` (expected timeout, deadline_ms, \
                         row_limit, path_budget, memory_limit, iteration_limit, \
                         parallelism, shards, report, profile, lint, autosave)"
                    ))
                }
            }
            continue;
        }
        in_header = false;
        rest.push(line);
    }
    Ok((
        ShellSettings { budget, parallelism, shards, report, profile, lint, autosave },
        rest.join("\n"),
    ))
}

fn load_graph(spec: &str) -> Result<Graph, String> {
    match spec {
        ":sales" => Ok(pgraph::generators::sales_graph()),
        ":linkedin" => Ok(pgraph::generators::linkedin_graph()),
        ":diamond30" => Ok(pgraph::generators::diamond_chain(30).0),
        s if s.starts_with(":snb") => {
            let sf = s
                .strip_prefix(":snb")
                .and_then(|r| r.strip_prefix('='))
                .map(|v| v.parse::<f64>().map_err(|e| e.to_string()))
                .transpose()?
                .unwrap_or(0.05);
            Ok(ldbc_snb::generate(ldbc_snb::SnbParams::new(sf, 2024)))
        }
        path => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read graph `{path}`: {e}"))?;
            pgraph::loader::load_from_string(&text).map_err(|e| e.to_string())
        }
    }
}

/// One-line human summary of the pass-6 abstract-interpretation facts,
/// printed by `CHECK` in text mode (the `--json` form embeds the full
/// schema-stable object under `facts`).
fn facts_summary(facts: &QueryFacts) -> String {
    let blocks = facts.blocks.len();
    let accum = facts.blocks.iter().filter(|b| b.accum_parallel).count();
    let post = facts.blocks.iter().filter(|b| b.post_accum_parallel).count();
    let iters = if facts.min_while_iters == u64::MAX {
        "unbounded".to_string()
    } else {
        facts.min_while_iters.to_string()
    };
    format!(
        "facts: {blocks} block(s); proven parallel ACCUM {accum}/{blocks}, \
         POST_ACCUM {post}/{blocks}; min WHILE iterations {iters}"
    )
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut graph_spec: Option<String> = None;
    let mut query_spec: Option<String> = None;
    let mut semantics = gsql_core::PathSemantics::AllShortestPaths;
    let mut do_explain = false;
    let mut do_profile = false;
    let mut do_check = false;
    let mut json = false;
    let mut cli_shards: Option<usize> = None;
    let mut args: Vec<(String, Value)> = Vec::new();

    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--semantics" => {
                let Some(name) = it.next() else { return usage() };
                let Some(s) = parse_semantics(&name) else {
                    eprintln!("unknown semantics `{name}`");
                    return ExitCode::from(2);
                };
                semantics = s;
            }
            "--shards" => {
                let Some(n) = it.next() else { return usage() };
                match n.parse::<usize>() {
                    Ok(n) if n >= 1 => cli_shards = Some(n),
                    _ => {
                        eprintln!("--shards expects a positive integer, got `{n}`");
                        return ExitCode::from(2);
                    }
                }
            }
            "--explain" => do_explain = true,
            "--profile" => do_profile = true,
            "--check" => do_check = true,
            "--json" => json = true,
            "--arg" => {
                let Some(kv) = it.next() else { return usage() };
                let Some((k, v)) = kv.split_once('=') else {
                    eprintln!("--arg expects k=v, got `{kv}`");
                    return ExitCode::from(2);
                };
                args.push((k.to_string(), parse_arg_value(v)));
            }
            "--help" | "-h" => return help(),
            _ if graph_spec.is_none() => graph_spec = Some(a),
            _ if query_spec.is_none() => query_spec = Some(a),
            other => {
                eprintln!("unexpected argument `{other}`");
                return usage();
            }
        }
    }
    let (Some(graph_spec), Some(query_spec)) = (graph_spec, query_spec) else {
        return usage();
    };

    let graph = match load_graph(&graph_spec) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let source = if query_spec == "-" {
        let mut s = String::new();
        if std::io::stdin().read_to_string(&mut s).is_err() {
            eprintln!("cannot read query from stdin");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(&query_spec) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read query `{query_spec}`: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let (settings, source) = match extract_set_directives(&source) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    // An `EXPLAIN`/`PROFILE`/`CHECK` keyword in the query text behaves
    // exactly like the corresponding command-line flag.
    let (mode, query) = match parse_query_with_mode(&source) {
        Ok(r) => r,
        Err(e) => {
            // Positioned errors get the same caret snippet as lint
            // diagnostics; position-less errors print as-is.
            eprintln!("{}", render_error_snippet(&source, &e));
            return ExitCode::FAILURE;
        }
    };
    let do_check = do_check || mode == QueryMode::Check;
    if do_check {
        let (mut diags, facts) =
            lint_query_and_facts(&query, semantics, &accum::UserAccumRegistry::new());
        // A concrete `SET iteration_limit` makes D003 decidable: a query
        // whose proven minimum WHILE iterations exceed it is guaranteed
        // to trip the governor, so CHECK reports it without executing.
        diags.extend(budget_findings(&facts, &settings.budget));
        if json {
            println!("{{\"lint\":{},\"facts\":{}}}", render_json(&diags), facts.render_json());
        } else {
            if diags.is_empty() {
                println!("check: clean (0 diagnostics)");
            } else {
                println!("{}", render_text(&diags, Some(&source)));
            }
            println!("{}", facts_summary(&facts));
        }
        return if has_errors(&diags) { ExitCode::FAILURE } else { ExitCode::SUCCESS };
    }
    if settings.lint != LintMode::Off {
        let (mut diags, facts) =
            lint_query_and_facts(&query, semantics, &accum::UserAccumRegistry::new());
        diags.extend(budget_findings(&facts, &settings.budget));
        if !diags.is_empty() {
            // Findings go to stderr so result output stays pipeline-clean.
            eprintln!("{}", render_text(&diags, Some(&source)));
        }
        let refuse = has_errors(&diags)
            || (settings.lint == LintMode::Strict
                && diags.iter().any(|d| d.severity >= Severity::Warn));
        if refuse {
            eprintln!(
                "query refused by `SET lint = {}` (fix the findings above, or run \
                 with CHECK to inspect without executing)",
                if settings.lint == LintMode::Strict { "strict" } else { "on" }
            );
            return ExitCode::FAILURE;
        }
    }
    // `SET shards` (query header) overrides the `--shards` flag; a
    // count of 1 means unsharded. The partitioned view is built once and
    // shared by EXPLAIN and execution.
    let sharded = match settings.shards.or(cli_shards) {
        Some(n) if n > 1 => Some(pgraph::shard::ShardedGraph::build(
            &graph,
            pgraph::shard::ShardSpec::hash(n),
        )),
        _ => None,
    };
    let do_explain = do_explain || mode == QueryMode::Explain;
    let do_profile =
        (do_profile || settings.profile || mode == QueryMode::Profile) && !do_explain;
    if do_explain {
        // Explaining through the engine (not the graph-less
        // `explain_plan`) annotates each operator with `est_rows` /
        // `est_cost` from the loaded graph's statistics — the same plan
        // the executor would run.
        let mut engine = Engine::new(&graph).with_semantics(semantics);
        if let Some(sh) = &sharded {
            engine = engine.with_sharding(sh);
        }
        match engine.explain(&query) {
            Ok(plan) => {
                if json {
                    println!("{}", plan.to_json());
                } else {
                    print!("{}", plan.render());
                }
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    let mut engine =
        Engine::new(&graph).with_semantics(semantics).with_budget(settings.budget);
    if let Some(n) = settings.parallelism {
        engine = engine.with_parallelism(n);
    }
    if let Some(sh) = &sharded {
        engine = engine.with_sharding(sh);
    }
    let arg_refs: Vec<(&str, Value)> =
        args.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    match engine.run_with(&query, &arg_refs, do_profile) {
        Ok((out, profile)) => {
            for line in &out.prints {
                println!("{line}");
            }
            for table in out.tables.values() {
                print!("{table}");
            }
            match out.returned {
                Some(ReturnValue::Value(v)) => println!("-> {v}"),
                Some(ReturnValue::Table(t)) => print!("-> {t}"),
                Some(ReturnValue::VSet(vs)) => println!("-> vertex set of {}", vs.len()),
                None => {}
            }
            if !out.mutations.is_empty() {
                match &settings.autosave {
                    Some(path) => {
                        // The engine ran against a snapshot; apply its
                        // batch now and persist atomically
                        // (write-to-temp + fsync + rename).
                        let mut mutated = graph.clone();
                        if let Err(e) = pgraph::mutate::apply_batch(&mut mutated, &out.mutations)
                        {
                            eprintln!("cannot apply mutation batch: {e}");
                            return ExitCode::FAILURE;
                        }
                        let path = std::path::Path::new(path);
                        if let Err(e) = pgraph::loader::save_to_file(&mutated, path) {
                            eprintln!("cannot save graph to `{}`: {e}", path.display());
                            return ExitCode::FAILURE;
                        }
                        eprintln!(
                            "applied {} mutation op(s); saved {} vertices / {} edges to `{}`",
                            out.mutations.len(),
                            mutated.vertex_count(),
                            mutated.edge_count(),
                            path.display()
                        );
                    }
                    None => eprintln!(
                        "note: query produced {} mutation op(s), discarded (shell graphs \
                         are in-memory; add `SET autosave = <path>` to persist)",
                        out.mutations.len()
                    ),
                }
            }
            if settings.report {
                // On stderr so result output stays clean for pipelines;
                // same accounting the server returns per request.
                eprintln!("report: {}", out.report);
            }
            if let Some(profile) = profile {
                // Same channel as the report, same tree as the server's
                // `profile` response section.
                if json {
                    eprintln!("{}", profile.to_json());
                } else {
                    eprint!("{}", profile.render());
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            // Structured reporting: resource errors carry a machine-
            // readable kind and a work report; other errors print as-is.
            match e.resource_report() {
                Some(report) => {
                    eprintln!("query aborted [{}]: {e}; {report}", e.kind())
                }
                None => eprintln!("{e}"),
            }
            ExitCode::FAILURE
        }
    }
}
