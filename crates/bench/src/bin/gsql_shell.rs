//! `gsql_shell` — a small command-line front end for the engine.
//!
//! ```text
//! gsql_shell <graph.pg> [--semantics <flavor>] [--explain] \
//!            [--arg name=value ...] (<query.gsql> | -)
//! ```
//!
//! * `<graph.pg>` — a graph in the `pgraph::loader` text format, or one
//!   of the built-in fixtures `:sales`, `:linkedin`, `:diamond30`,
//!   `:snb[=<sf>]`.
//! * `--semantics` — all_shortest_paths (default), non_repeated_edge,
//!   non_repeated_vertex, all_shortest_paths_enumerate, shortest_one.
//! * `--explain` — print the static plan instead of executing.
//! * `--arg k=v` — query arguments (int / float / true|false / string;
//!   `vertex:<id>` for vertex arguments).
//! * query file or `-` to read GSQL from stdin.
//!
//! Resource limits: the query source may start with `SET` directives
//! (before `CREATE QUERY`), which configure the engine's resource
//! governor:
//!
//! ```text
//! SET timeout = 5s
//! SET deadline_ms = 250
//! SET row_limit = 1000000
//! SET path_budget = 10000000
//! SET memory_limit = 256MB
//! SET iteration_limit = 10000
//! SET report = on
//! ```
//!
//! `SET deadline_ms` is the millisecond twin of `SET timeout` (it maps
//! to the same per-request deadline the server reads from the
//! `x-gsql-deadline-ms` header). `SET report = on` prints the engine's
//! [`ResourceReport`](gsql_core::ResourceReport) after each successful
//! query — the same per-request accounting `gsql-serve` returns in its
//! response `report` object.
//!
//! A query that trips a limit aborts with a structured report, e.g.
//! `query aborted [deadline-exceeded]: deadline exceeded after 5.0s;
//! 1.2M paths enumerated, ...`.

use bench::harness::parse_duration;
use gsql_core::{explain, parse_query, parser::parse_semantics, Budget, Engine, ReturnValue};
use pgraph::graph::{Graph, VertexId};
use pgraph::value::Value;
use std::io::Read as _;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: gsql_shell <graph.pg|:sales|:linkedin|:diamond30|:snb[=sf]> \
         [--semantics <flavor>] [--explain] [--arg k=v ...] (<query.gsql> | -)"
    );
    ExitCode::from(2)
}

fn parse_arg_value(raw: &str) -> Value {
    if let Some(id) = raw.strip_prefix("vertex:") {
        if let Ok(v) = id.parse::<u32>() {
            return Value::Vertex(VertexId(v));
        }
    }
    if let Ok(i) = raw.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = raw.parse::<f64>() {
        return Value::Double(f);
    }
    match raw {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        other => Value::Str(other.to_string()),
    }
}

/// Parses a byte-size spec: plain bytes, or `KB`/`MB`/`GB` suffixes
/// (binary multiples).
fn parse_bytes(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (num, scale) = if let Some(n) = s.strip_suffix("GB") {
        (n, 1u64 << 30)
    } else if let Some(n) = s.strip_suffix("MB") {
        (n, 1u64 << 20)
    } else if let Some(n) = s.strip_suffix("KB") {
        (n, 1u64 << 10)
    } else {
        (s, 1)
    };
    num.trim()
        .parse::<u64>()
        .map(|v| v * scale)
        .map_err(|_| format!("invalid byte size `{s}` (try 1048576 or 256MB)"))
}

/// Everything the `SET` header configures: the resource [`Budget`], an
/// execution thread count (`SET parallelism = N`; when absent the engine
/// default applies, including a `GSQL_PARALLELISM` environment
/// override), and whether to print the per-query `ResourceReport`.
struct ShellSettings {
    budget: Budget,
    parallelism: Option<usize>,
    report: bool,
}

/// Strips leading `SET <key> = <value>` directives from the query source
/// and folds them into [`ShellSettings`]. `SET <key> <value>` (no `=`)
/// is accepted too, matching the interactive habit of `SET report on`.
fn extract_set_directives(source: &str) -> Result<(ShellSettings, String), String> {
    let mut budget = Budget::default();
    let mut parallelism = None;
    let mut report = false;
    let mut rest = Vec::new();
    let mut in_header = true;
    for line in source.lines() {
        let trimmed = line.trim();
        let lower = trimmed.to_ascii_lowercase();
        if in_header && (trimmed.is_empty() || lower.starts_with("//") || lower.starts_with('#')) {
            rest.push(line);
            continue;
        }
        if in_header && lower.starts_with("set ") {
            let body = trimmed[4..].trim().trim_end_matches(';');
            let (key, value) = body
                .split_once('=')
                .or_else(|| body.split_once(char::is_whitespace))
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| format!("SET expects `SET <key> = <value>`, got `{trimmed}`"))?;
            let int = |v: &str| {
                v.parse::<u64>()
                    .map_err(|_| format!("SET {key} expects a non-negative integer, got `{v}`"))
            };
            match key.to_ascii_lowercase().as_str() {
                "timeout" => budget.deadline = Some(parse_duration(value)?),
                "deadline_ms" => {
                    budget = budget.with_deadline(std::time::Duration::from_millis(int(value)?))
                }
                "report" => {
                    report = match value.to_ascii_lowercase().as_str() {
                        "on" | "true" | "1" => true,
                        "off" | "false" | "0" => false,
                        other => {
                            return Err(format!("SET report expects on|off, got `{other}`"))
                        }
                    }
                }
                "row_limit" => budget.max_binding_rows = Some(int(value)?),
                "path_budget" => budget.max_paths = Some(int(value)?),
                "memory_limit" => budget.max_accum_bytes = Some(parse_bytes(value)?),
                "iteration_limit" => budget.max_while_iters = Some(int(value)?),
                "parallelism" => {
                    parallelism =
                        Some(value.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(
                            || format!("SET parallelism expects a positive integer, got `{value}`"),
                        )?)
                }
                other => {
                    return Err(format!(
                        "unknown SET key `{other}` (expected timeout, deadline_ms, \
                         row_limit, path_budget, memory_limit, iteration_limit, \
                         parallelism, report)"
                    ))
                }
            }
            continue;
        }
        in_header = false;
        rest.push(line);
    }
    Ok((ShellSettings { budget, parallelism, report }, rest.join("\n")))
}

fn load_graph(spec: &str) -> Result<Graph, String> {
    match spec {
        ":sales" => Ok(pgraph::generators::sales_graph()),
        ":linkedin" => Ok(pgraph::generators::linkedin_graph()),
        ":diamond30" => Ok(pgraph::generators::diamond_chain(30).0),
        s if s.starts_with(":snb") => {
            let sf = s
                .strip_prefix(":snb")
                .and_then(|r| r.strip_prefix('='))
                .map(|v| v.parse::<f64>().map_err(|e| e.to_string()))
                .transpose()?
                .unwrap_or(0.05);
            Ok(ldbc_snb::generate(ldbc_snb::SnbParams::new(sf, 2024)))
        }
        path => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read graph `{path}`: {e}"))?;
            pgraph::loader::load_from_string(&text).map_err(|e| e.to_string())
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut graph_spec: Option<String> = None;
    let mut query_spec: Option<String> = None;
    let mut semantics = gsql_core::PathSemantics::AllShortestPaths;
    let mut do_explain = false;
    let mut args: Vec<(String, Value)> = Vec::new();

    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--semantics" => {
                let Some(name) = it.next() else { return usage() };
                let Some(s) = parse_semantics(&name) else {
                    eprintln!("unknown semantics `{name}`");
                    return ExitCode::from(2);
                };
                semantics = s;
            }
            "--explain" => do_explain = true,
            "--arg" => {
                let Some(kv) = it.next() else { return usage() };
                let Some((k, v)) = kv.split_once('=') else {
                    eprintln!("--arg expects k=v, got `{kv}`");
                    return ExitCode::from(2);
                };
                args.push((k.to_string(), parse_arg_value(v)));
            }
            "--help" | "-h" => return usage(),
            _ if graph_spec.is_none() => graph_spec = Some(a),
            _ if query_spec.is_none() => query_spec = Some(a),
            other => {
                eprintln!("unexpected argument `{other}`");
                return usage();
            }
        }
    }
    let (Some(graph_spec), Some(query_spec)) = (graph_spec, query_spec) else {
        return usage();
    };

    let graph = match load_graph(&graph_spec) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let source = if query_spec == "-" {
        let mut s = String::new();
        if std::io::stdin().read_to_string(&mut s).is_err() {
            eprintln!("cannot read query from stdin");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(&query_spec) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read query `{query_spec}`: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let (settings, source) = match extract_set_directives(&source) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let query = match parse_query(&source) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if do_explain {
        match explain(&query, semantics) {
            Ok(plan) => print!("{plan}"),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    let mut engine =
        Engine::new(&graph).with_semantics(semantics).with_budget(settings.budget);
    if let Some(n) = settings.parallelism {
        engine = engine.with_parallelism(n);
    }
    let arg_refs: Vec<(&str, Value)> =
        args.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    match engine.run(&query, &arg_refs) {
        Ok(out) => {
            for line in &out.prints {
                println!("{line}");
            }
            for table in out.tables.values() {
                print!("{table}");
            }
            match out.returned {
                Some(ReturnValue::Value(v)) => println!("-> {v}"),
                Some(ReturnValue::Table(t)) => print!("-> {t}"),
                Some(ReturnValue::VSet(vs)) => println!("-> vertex set of {}", vs.len()),
                None => {}
            }
            if settings.report {
                // On stderr so result output stays clean for pipelines;
                // same accounting the server returns per request.
                eprintln!("report: {}", out.report);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            // Structured reporting: resource errors carry a machine-
            // readable kind and a work report; other errors print as-is.
            match e.resource_report() {
                Some(report) => {
                    eprintln!("query aborted [{}]: {e}; {report}", e.kind())
                }
                None => eprintln!("{e}"),
            }
            ExitCode::FAILURE
        }
    }
}
