//! **E12: scatter-gather throughput vs shard count** on an LDBC
//! SF10-class graph produced by the *streaming* generator.
//!
//! The bench (a) streams an `sf = 10` SNB-like graph (~130k vertices,
//! ~700k edges — an order of magnitude beyond the in-tree test graphs)
//! through [`ldbc_snb::generate_streamed`] while asserting that the
//! generator's auxiliary state stays constant-size (no full
//! materialization of the vertex/edge stream outside the graph being
//! built), then (b) runs a kernel-heavy IC query and the Appendix-B
//! grouping-set query at shard counts 1/2/4/8, asserting the outputs
//! are **byte-identical** across every shard count before recording
//! throughput (edges scanned per second) and latency into
//! `BENCH_ldbc.json`.
//!
//! Flags: `--smoke` (sf = 0.5, one repetition — CI-sized),
//! `--sf <f>` (default 10), `--reps <n>` (default 3),
//! `--parallelism <k>` (default 4).

use bench::harness::{fmt_duration, timed};
use gsql_core::{Engine, QueryOutput};
use ldbc_snb::{generate_streamed, queries, SnbParams};
use pgraph::datetime::to_epoch;
use pgraph::shard::{ShardSpec, ShardedGraph};
use pgraph::value::Value;
use pgraph::Graph;
use std::fmt::Write as _;
use std::time::Duration;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Peak resident set (`VmHWM`) in bytes, or 0 where unsupported.
fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace().nth(1).and_then(|kb| kb.parse::<u64>().ok())
            })
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// Canonical byte rendering of a query's observable output (tables,
/// prints, return value, match statistics). Resource *timings* are
/// excluded — only the deterministic counters take part in the identity
/// check.
fn canonical(out: &QueryOutput) -> String {
    let mut s = String::new();
    for (name, table) in &out.tables {
        let _ = writeln!(s, "TABLE {name}\n{table}");
    }
    for p in &out.prints {
        let _ = writeln!(s, "PRINT {p}");
    }
    let _ = writeln!(s, "RETURN {:?}", out.returned);
    let _ = writeln!(s, "STATS {:?}", out.stats);
    let _ = writeln!(
        s,
        "COUNTS rows={} paths={} accum_bytes={} while={}",
        out.report.rows_materialized,
        out.report.paths_enumerated,
        out.report.peak_accum_bytes,
        out.report.while_iterations
    );
    s
}

struct Workload {
    name: &'static str,
    text: String,
    args: Vec<(&'static str, Value)>,
}

fn workloads(graph: &Graph) -> Vec<Workload> {
    let pt = graph.schema().vertex_type_id("Person").expect("Person type");
    let p = Value::Vertex(graph.vertices_of_type(pt)[0]);
    vec![
        Workload {
            name: "ic5",
            text: queries::ic5(3),
            args: vec![("p", p), ("minDate", Value::DateTime(to_epoch(2010, 6, 1)))],
        },
        Workload { name: "q_acc", text: queries::q_acc(), args: vec![] },
    ]
}

struct Cell {
    query: &'static str,
    shards: usize,
    latency: Duration,
    edges_scanned: u64,
    vertices_touched: u64,
}

impl Cell {
    fn throughput(&self) -> f64 {
        self.edges_scanned as f64 / self.latency.as_secs_f64().max(1e-9)
    }
}

fn main() {
    let mut sf = 10.0f64;
    let mut reps = 3usize;
    let mut parallelism = 4usize;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {
                sf = 0.5;
                reps = 1;
            }
            "--sf" => sf = it.next().and_then(|v| v.parse().ok()).expect("--sf <float>"),
            "--reps" => reps = it.next().and_then(|v| v.parse().ok()).expect("--reps <n>"),
            "--parallelism" => {
                parallelism =
                    it.next().and_then(|v| v.parse().ok()).expect("--parallelism <k>");
            }
            other => {
                eprintln!(
                    "usage: bench_ldbc [--smoke] [--sf <f>] [--reps <n>] \
                     [--parallelism <k>] (got `{other}`)"
                );
                std::process::exit(2);
            }
        }
    }

    // ---- streamed generation (satellite #2: bounded auxiliary state) --
    let rss_before = peak_rss_bytes();
    let ((graph, report), gen_wall) = timed(|| generate_streamed(SnbParams::new(sf, 31)));
    let rss_after = peak_rss_bytes();
    assert!(
        report.aux_peak_bytes < 64 * 1024,
        "streamed generator auxiliary state must stay constant-size, got {} bytes",
        report.aux_peak_bytes
    );
    println!(
        "generated sf={sf}: {} vertices, {} edges in {} \
         ({} chunks, aux peak {} B, VmHWM {} -> {} MiB)",
        report.vertices,
        report.edges,
        fmt_duration(gen_wall),
        report.chunks,
        report.aux_peak_bytes,
        rss_before >> 20,
        rss_after >> 20
    );

    // ---- shard sweep with byte-identity gate ------------------------
    let loads = workloads(&graph);
    let mut cells: Vec<Cell> = Vec::new();
    let mut baseline: Vec<Option<String>> = vec![None; loads.len()];
    for &n in &SHARD_COUNTS {
        let (sharded, shard_wall) = timed(|| {
            (n > 1).then(|| ShardedGraph::build(&graph, ShardSpec::hash(n)))
        });
        if let Some(sh) = &sharded {
            println!(
                "shards={n}: built in {} (imbalance {:.3})",
                fmt_duration(shard_wall),
                sh.imbalance_ratio()
            );
        }
        for (wi, w) in loads.iter().enumerate() {
            let mut engine = Engine::new(&graph).with_parallelism(parallelism);
            if let Some(sh) = &sharded {
                engine = engine.with_sharding(sh);
            }
            let args: Vec<(&str, Value)> =
                w.args.iter().map(|(k, v)| (*k, v.clone())).collect();
            let mut best: Option<Cell> = None;
            for _ in 0..reps {
                let (out, wall) = timed(|| engine.run_text(&w.text, &args));
                let out = out.unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
                let bytes = canonical(&out);
                match &baseline[wi] {
                    None => baseline[wi] = Some(bytes),
                    Some(b) => assert_eq!(
                        b, &bytes,
                        "{} output diverged at shards={n} (must be byte-identical)",
                        w.name
                    ),
                }
                let cell = Cell {
                    query: w.name,
                    shards: n,
                    latency: wall,
                    edges_scanned: out.report.edges_scanned,
                    vertices_touched: out.report.vertices_touched,
                };
                if best.as_ref().is_none_or(|b| cell.latency < b.latency) {
                    best = Some(cell);
                }
            }
            let cell = best.unwrap();
            println!(
                "  {:>6} shards={n}: {} ({:.1}M edges/s)",
                cell.query,
                fmt_duration(cell.latency),
                cell.throughput() / 1e6
            );
            cells.push(cell);
        }
    }

    // ---- BENCH_ldbc.json --------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"ldbc_scatter_gather\",");
    let _ = writeln!(json, "  \"sf\": {sf},");
    let _ = writeln!(json, "  \"parallelism\": {parallelism},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(
        json,
        "  \"graph\": {{\"vertices\": {}, \"edges\": {}, \"gen_ms\": {}, \
         \"gen_chunks\": {}, \"gen_aux_peak_bytes\": {}, \"peak_rss_bytes\": {}}},",
        report.vertices,
        report.edges,
        gen_wall.as_millis(),
        report.chunks,
        report.aux_peak_bytes,
        peak_rss_bytes()
    );
    let _ = writeln!(json, "  \"byte_identical_across_shards\": true,");
    let _ = writeln!(json, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"query\": \"{}\", \"shards\": {}, \"latency_ms\": {:.3}, \
             \"edges_scanned\": {}, \"vertices_touched\": {}, \
             \"edges_per_sec\": {:.0}}}{}",
            c.query,
            c.shards,
            c.latency.as_secs_f64() * 1e3,
            c.edges_scanned,
            c.vertices_touched,
            c.throughput(),
            if i + 1 == cells.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push('}');
    json.push('\n');
    std::fs::write("BENCH_ldbc.json", &json).expect("write BENCH_ldbc.json");
    println!("wrote BENCH_ldbc.json ({} cells)", cells.len());
}
