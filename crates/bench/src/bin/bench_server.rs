//! Load generator and smoke driver for `gsql-serve` (EXPERIMENTS.md E8).
//!
//! Two modes:
//!
//! * **load** (default) — spawns an in-process server (or targets
//!   `--addr`), runs a mixed prepared-statement workload (`Qn`, `KHop`,
//!   `Triangles` over the 30-diamond graph) from `--connections`
//!   keep-alive clients, once per entry in `--parallelism`. Every
//!   response's `result` field is compared **byte-for-byte** against a
//!   local `Engine::run_text` serialized through the same JSON writer,
//!   and `GET /metrics` must reconcile exactly with the client-observed
//!   counts. Prints the `BENCH_server.json` document (throughput +
//!   client-measured p50/p99) to stdout or `--out`.
//!
//! * **--smoke --addr HOST:PORT** — drives an already-running server
//!   through the full surface (healthz, prepare, execute, ad-hoc query,
//!   oversized-body rejection, metrics reconciliation) and exits
//!   non-zero on any failure; CI uses this against a `gsql-serve`
//!   process it then SIGTERMs to check graceful drain.

use gsql_core::{stdlib, Engine};
use gsql_serve::client::Client;
use gsql_serve::json::{parse, write_json, Json};
use gsql_serve::{handlers, Server, ServerConfig};
use pgraph::generators::diamond_chain;
use pgraph::value::Value;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

const DIAMOND_N: usize = 30;

struct Options {
    smoke: bool,
    addr: Option<SocketAddr>,
    connections: usize,
    requests: usize,
    parallelism: Vec<usize>,
    out: Option<String>,
}

fn parse_options() -> Options {
    let mut o = Options {
        smoke: false,
        addr: None,
        connections: 8,
        requests: 200,
        parallelism: vec![1, 4],
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| die(&format!("{flag} needs a value")));
        match a.as_str() {
            "--smoke" => o.smoke = true,
            "--addr" => {
                o.addr = Some(
                    value("--addr")
                        .parse()
                        .unwrap_or_else(|_| die("--addr expects HOST:PORT")),
                )
            }
            "--connections" => {
                o.connections = value("--connections").parse().unwrap_or_else(|_| die("bad --connections"))
            }
            "--requests" => {
                o.requests = value("--requests").parse().unwrap_or_else(|_| die("bad --requests"))
            }
            "--parallelism" => {
                o.parallelism = value("--parallelism")
                    .split(',')
                    .map(|p| p.trim().parse().unwrap_or_else(|_| die("bad --parallelism")))
                    .collect()
            }
            "--out" => o.out = Some(value("--out")),
            other => die(&format!(
                "unknown flag `{other}`\nusage: bench_server [--smoke] [--addr H:P] \
                 [--connections N] [--requests N] [--parallelism 1,4] [--out FILE]"
            )),
        }
    }
    o
}

fn die(msg: &str) -> ! {
    eprintln!("bench_server: {msg}");
    std::process::exit(2)
}

/// One statement of the mixed workload: GSQL text plus the rotating
/// argument sets it is executed with (server-wire JSON form and local
/// `Engine` form side by side).
struct Workload {
    name: &'static str,
    src: String,
    /// (json args object text, local engine args)
    arg_sets: Vec<(String, Vec<(&'static str, Value)>)>,
}

fn workloads() -> Vec<Workload> {
    let mut qn_args = Vec::new();
    for i in (2..=DIAMOND_N).step_by(4) {
        qn_args.push((
            format!(r#"{{"srcName":"v0","tgtName":"v{i}"}}"#),
            vec![("srcName", Value::from("v0")), ("tgtName", Value::from(format!("v{i}")))],
        ));
    }
    // Vertex 0 is the spine head "v0"; a mid-spine vertex keeps KHop
    // non-trivial in both directions.
    let mut khop_args = Vec::new();
    for vid in [0u32, 3, 9] {
        khop_args.push((
            format!(r#"{{"src":"vertex:{vid}"}}"#),
            vec![("src", Value::Vertex(pgraph::graph::VertexId(vid)))],
        ));
    }
    vec![
        Workload { name: "Qn", src: stdlib::qn("V", "E"), arg_sets: qn_args },
        Workload { name: "KHop", src: stdlib::khop("V", "E", 4), arg_sets: khop_args },
        Workload {
            name: "Triangles",
            src: stdlib::triangle_count("V", "E"),
            arg_sets: vec![("{}".to_string(), Vec::new())],
        },
    ]
}

/// Serializes the deterministic result of a local run through the same
/// writer the server uses — the byte-identical oracle.
fn expected_results(work: &[Workload]) -> Vec<Vec<String>> {
    let graph = diamond_chain(DIAMOND_N).0;
    let engine = Engine::new(&graph);
    work.iter()
        .map(|w| {
            w.arg_sets
                .iter()
                .map(|(_, args)| {
                    let out = engine
                        .run_text(&w.src, args)
                        .unwrap_or_else(|e| die(&format!("local {} run failed: {e}", w.name)));
                    let mut s = String::new();
                    write_json(&mut s, &handlers::result_json(&out));
                    s
                })
                .collect()
        })
        .collect()
}

fn json_str(s: &str) -> String {
    let mut out = String::new();
    write_json(&mut out, &Json::Str(s.to_string()));
    out
}

fn check(cond: bool, what: &str) {
    if !cond {
        eprintln!("bench_server: FAILED: {what}");
        std::process::exit(1);
    }
}

fn get_i64(j: &Json, key: &str) -> i64 {
    j.get(key)
        .and_then(Json::as_i64)
        .unwrap_or_else(|| die(&format!("metrics missing `{key}`")))
}

fn result_field(resp_body: &[u8]) -> String {
    let j = parse(std::str::from_utf8(resp_body).expect("utf8 body")).expect("json body");
    let mut s = String::new();
    write_json(&mut s, j.get("result").unwrap_or(&Json::Null));
    s
}

// ---- smoke mode ----------------------------------------------------------

fn run_smoke(addr: SocketAddr) {
    let work = workloads();
    let expected = expected_results(&work);
    let mut c = Client::connect(addr).unwrap_or_else(|e| die(&format!("connect {addr}: {e}")));

    let health = c.get("/healthz").expect("healthz");
    check(health.status == 200, "GET /healthz returns 200");

    // Prepared flow: prepare Qn, execute it with every argument set.
    let qn = &work[0];
    let resp = c
        .post_json("/prepare", &[], &format!(r#"{{"query":{}}}"#, json_str(&qn.src)))
        .expect("prepare");
    check(resp.status == 200, "POST /prepare returns 200");
    let id = resp
        .json()
        .ok()
        .and_then(|j| j.get("id").and_then(Json::as_str).map(str::to_string))
        .unwrap_or_else(|| die("prepare response has no id"));
    let mut ok_queries = 0i64;
    for (i, (wire, _)) in qn.arg_sets.iter().enumerate() {
        let resp = c
            .post_json(&format!("/execute/{id}"), &[], &format!(r#"{{"params":{wire}}}"#))
            .expect("execute");
        check(resp.status == 200, "POST /execute returns 200");
        check(
            result_field(&resp.body) == expected[0][i],
            "executed result is byte-identical to the local engine",
        );
        ok_queries += 1;
    }

    // Bad bindings are refused before admission: 422 with a structured
    // `bad-param` error naming the parameter at fault.
    let resp = c
        .post_json(
            &format!("/execute/{id}"),
            &[],
            r#"{"params":{"srcName":7,"tgtName":"v2"}}"#,
        )
        .expect("execute bad binding");
    check(resp.status == 422, "type-mismatched binding returns 422");
    let err = resp.json().expect("bad-param json");
    check(
        err.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str) == Some("bad-param"),
        "422 body carries kind=bad-param",
    );
    check(
        err.get("error").and_then(|e| e.get("param")).and_then(Json::as_str) == Some("srcName"),
        "422 body names the offending parameter",
    );

    // Ad-hoc query with a per-request budget header.
    let body = format!(
        r#"{{"query":{},"args":{}}}"#,
        json_str(&work[2].src),
        work[2].arg_sets[0].0
    );
    let resp = c
        .post_json("/query", &[("x-gsql-deadline-ms", "30000")], &body)
        .expect("query");
    check(resp.status == 200, "POST /query returns 200");
    check(
        result_field(&resp.body) == expected[2][0],
        "ad-hoc result is byte-identical to the local engine",
    );
    ok_queries += 1;

    // Oversized bodies are rejected up front (and the connection drops).
    let huge = format!(r#"{{"query":"{}"}}"#, "x".repeat(2 << 20));
    let resp = c.post_json("/query", &[], &huge).expect("oversized request");
    check(resp.status == 413, "oversized body is rejected with 413");

    // The 413 closed that connection; reconcile metrics on a fresh one.
    let mut c = Client::connect(addr).expect("reconnect");
    let m = c.get("/metrics").expect("metrics").json().expect("metrics json");
    check(
        get_i64(&m, "admitted")
            == get_i64(&m, "completed") + get_i64(&m, "failed") + get_i64(&m, "cancelled"),
        "metrics admission invariant holds",
    );
    check(get_i64(&m, "completed") == ok_queries, "completed matches client-observed 200s");
    check(get_i64(&m, "rejected_body") == 1, "the 413 was counted");
    check(get_i64(&m, "failed") == 0, "no failed queries in the smoke run");

    println!("bench_server: smoke OK ({ok_queries} queries verified byte-identical)");
}

// ---- load mode -----------------------------------------------------------

struct RunStats {
    completed: u64,
    shed_busy: u64,
    latencies_us: Vec<u64>,
    wall: std::time::Duration,
}

fn run_load_once(addr: SocketAddr, o: &Options, work: &Arc<Vec<Workload>>, expected: &Arc<Vec<Vec<String>>>) -> RunStats {
    let started = Instant::now();
    let handles: Vec<_> = (0..o.connections)
        .map(|conn_idx| {
            let work = work.clone();
            let expected = expected.clone();
            let requests = o.requests;
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("client connect");
                // Prepare every statement once per connection (hits the
                // shared plan cache after the first connection).
                let ids: Vec<String> = work
                    .iter()
                    .map(|w| {
                        let resp = c
                            .post_json("/prepare", &[], &format!(r#"{{"query":{}}}"#, json_str(&w.src)))
                            .expect("prepare");
                        check(resp.status == 200, "prepare succeeds");
                        resp.json()
                            .ok()
                            .and_then(|j| j.get("id").and_then(Json::as_str).map(str::to_string))
                            .expect("prepare id")
                    })
                    .collect();

                let mut completed = 0u64;
                let mut shed = 0u64;
                let mut latencies = Vec::with_capacity(requests);
                for r in 0..requests {
                    // Deterministic mixed schedule, offset per connection.
                    let wi = (r + conn_idx) % work.len();
                    let ai = (r / work.len() + conn_idx) % work[wi].arg_sets.len();
                    let body = format!(r#"{{"args":{}}}"#, work[wi].arg_sets[ai].0);
                    loop {
                        let t0 = Instant::now();
                        let resp = c
                            .post_json(&format!("/execute/{}", ids[wi]), &[], &body)
                            .expect("execute");
                        match resp.status {
                            200 => {
                                latencies.push(t0.elapsed().as_micros() as u64);
                                check(
                                    result_field(&resp.body) == expected[wi][ai],
                                    "load-mode result is byte-identical to the local engine",
                                );
                                completed += 1;
                                break;
                            }
                            429 => {
                                shed += 1;
                                std::thread::sleep(std::time::Duration::from_micros(200));
                            }
                            s => die(&format!("unexpected status {s} under load")),
                        }
                    }
                }
                (completed, shed, latencies)
            })
        })
        .collect();

    let mut stats = RunStats {
        completed: 0,
        shed_busy: 0,
        latencies_us: Vec::new(),
        wall: std::time::Duration::ZERO,
    };
    for h in handles {
        let (completed, shed, lat) = h.join().expect("client thread");
        stats.completed += completed;
        stats.shed_busy += shed;
        stats.latencies_us.extend(lat);
    }
    stats.wall = started.elapsed();
    stats
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

// ---- durability bench ----------------------------------------------------

/// Measures durable-write throughput per WAL fsync policy, plus cold
/// recovery time, against a scratch data directory (EXPERIMENTS.md E10).
/// Each batch is 4 inserts or 4 deletes (alternating, so the graph stays
/// the seed's size); the `always` run's directory is then reopened
/// without a final checkpoint to time a full 1000-frame replay.
fn run_durability() -> String {
    use pgraph::mutate::MutationOp;
    use pgraph::wal::{FlushPolicy, LiveGraph};

    const BATCHES: usize = 1000;
    const OPS_PER_BATCH: usize = 4;

    let base = std::env::temp_dir().join(format!("gsql-bench-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let seed = || diamond_chain(DIAMOND_N).0;
    let vt = seed().schema().vertex_type_id("V").unwrap();
    let attrs: Vec<Value> = seed()
        .schema()
        .vertex_type(vt)
        .attrs
        .iter()
        .map(|a| a.ty.default_value())
        .collect();

    let mut sections = Vec::new();
    let mut always_dir = None;
    for (name, policy) in [
        ("fsync_always", FlushPolicy::Always),
        ("fsync_every_64", FlushPolicy::EveryN(64)),
        ("fsync_on_flush", FlushPolicy::OnFlushOnly),
    ] {
        let dir = base.join(name);
        // u64::MAX commits between checkpoints: the run never compacts,
        // so the WAL holds every frame for the recovery measurement.
        let (live, _) = LiveGraph::open(&dir, seed(), policy, u64::MAX)
            .unwrap_or_else(|e| die(&format!("open {}: {e}", dir.display())));
        let start = Instant::now();
        for b in 0..BATCHES {
            let ops: Vec<MutationOp> = if b % 2 == 0 {
                (0..OPS_PER_BATCH)
                    .map(|_| MutationOp::AddVertex { vtype: vt, attrs: attrs.clone() })
                    .collect()
            } else {
                let n = live.snapshot().vertex_count();
                (0..OPS_PER_BATCH)
                    .map(|k| MutationOp::DeleteVertex {
                        v: pgraph::graph::VertexId((n - OPS_PER_BATCH + k) as u32),
                    })
                    .collect()
            };
            live.commit(&ops).unwrap_or_else(|e| die(&format!("commit: {e}")));
        }
        live.flush().unwrap_or_else(|e| die(&format!("flush: {e}")));
        let wall = start.elapsed();
        let stats = live.stats();
        let fsyncs = stats.fsyncs.load(std::sync::atomic::Ordering::Relaxed);
        let bytes = stats.bytes.load(std::sync::atomic::Ordering::Relaxed);
        let per_sec = BATCHES as f64 / wall.as_secs_f64();
        eprintln!(
            "durability {name}: {per_sec:.0} commits/s ({fsyncs} fsyncs, {bytes} WAL bytes)"
        );
        sections.push(format!(
            "    \"{name}\": {{\n      \"commits_per_sec\": {per_sec:.1},\n      \
             \"ops_per_sec\": {:.1},\n      \"fsyncs\": {fsyncs},\n      \"wal_bytes\": {bytes}\n    }}",
            per_sec * OPS_PER_BATCH as f64,
        ));
        if name == "fsync_always" {
            always_dir = Some(dir);
        }
        // Drop without a final checkpoint: the WAL tail stays populated.
        drop(live);
    }

    // Cold recovery: reopen the fsync_always directory; every frame of
    // the run replays against the checkpoint.
    let dir = always_dir.expect("always run executed");
    let start = Instant::now();
    let (live, report) = LiveGraph::open(&dir, seed(), FlushPolicy::Always, u64::MAX)
        .unwrap_or_else(|e| die(&format!("recovery open: {e}")));
    let recovery = start.elapsed();
    if live.snapshot().vertex_count() != seed().vertex_count() {
        die("recovered graph does not match the writer's final state");
    }
    eprintln!(
        "durability recovery: {} frame(s) / {} op(s) in {:.1} ms",
        report.frames_replayed,
        report.ops_replayed,
        recovery.as_secs_f64() * 1e3
    );
    sections.push(format!(
        "    \"recovery\": {{\n      \"frames_replayed\": {},\n      \"ops_replayed\": {},\n      \
         \"recovery_ms\": {:.2},\n      \"state_verified\": true\n    }}",
        report.frames_replayed,
        report.ops_replayed,
        recovery.as_secs_f64() * 1e3,
    ));
    drop(live);
    let _ = std::fs::remove_dir_all(&base);

    format!(
        "  \"durability\": {{\n    \"batches\": {BATCHES},\n    \"ops_per_batch\": {OPS_PER_BATCH},\n{}\n  }}",
        sections.join(",\n")
    )
}

fn run_load(o: &Options) {
    let work = Arc::new(workloads());
    let expected = Arc::new(expected_results(&work));
    let mut runs = Vec::new();

    for &par in &o.parallelism {
        // Fresh server per parallelism level so metrics start at zero
        // and reconcile exactly against this run's observations.
        let cfg = ServerConfig {
            parallelism: par,
            workers: o.connections.max(2),
            max_concurrent_queries: o.connections.max(2),
            ..ServerConfig::default()
        };
        let server = Server::start(cfg, pgraph::wal::LiveGraph::in_memory(diamond_chain(DIAMOND_N).0))
            .expect("server start");
        let addr = server.local_addr();

        let stats = run_load_once(addr, o, &work, &expected);

        // Exact reconciliation against /metrics before shutdown.
        let mut c = Client::connect(addr).expect("metrics connect");
        let m = c.get("/metrics").expect("metrics").json().expect("metrics json");
        check(
            get_i64(&m, "completed") as u64 == stats.completed,
            "server `completed` equals client-observed 200s",
        );
        check(
            get_i64(&m, "rejected_busy") as u64 == stats.shed_busy,
            "server `rejected_busy` equals client-observed 429s",
        );
        check(
            get_i64(&m, "admitted")
                == get_i64(&m, "completed") + get_i64(&m, "failed") + get_i64(&m, "cancelled"),
            "metrics admission invariant holds",
        );
        check(get_i64(&m, "failed") == 0, "no failed queries under load");
        let plan_misses = get_i64(&m, "plan_cache_misses");
        check(
            plan_misses as usize == work.len(),
            "each statement is parsed exactly once across all connections",
        );
        server.shutdown();

        let mut lat = stats.latencies_us.clone();
        lat.sort_unstable();
        let throughput = stats.completed as f64 / stats.wall.as_secs_f64();
        eprintln!(
            "parallelism {par}: {} ok, {} shed, {:.0} q/s, p50 {}us p99 {}us",
            stats.completed,
            stats.shed_busy,
            throughput,
            percentile(&lat, 0.50),
            percentile(&lat, 0.99)
        );
        runs.push((par, stats, lat, throughput));
    }

    // Assemble the BENCH_server.json document.
    let mut doc = String::new();
    doc.push_str("{\n  \"schema\": \"bench_server/v1\",\n");
    doc.push_str(&format!(
        "  \"graph\": \":diamond{DIAMOND_N}\",\n  \"workloads\": [\"Qn\", \"KHop\", \"Triangles\"],\n"
    ));
    doc.push_str(&format!(
        "  \"connections\": {},\n  \"requests_per_connection\": {},\n  \"runs\": {{\n",
        o.connections, o.requests
    ));
    for (i, (par, stats, lat, throughput)) in runs.iter().enumerate() {
        doc.push_str(&format!(
            "    \"parallelism_{par}\": {{\n      \"completed\": {},\n      \"shed_429\": {},\n      \
             \"throughput_qps\": {:.1},\n      \"p50_us\": {},\n      \"p99_us\": {},\n      \
             \"verified_byte_identical\": true,\n      \"metrics_reconciled\": true\n    }}{}\n",
            stats.completed,
            stats.shed_busy,
            throughput,
            percentile(lat, 0.50),
            percentile(lat, 0.99),
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    doc.push_str("  },\n");
    doc.push_str(&run_durability());
    doc.push_str("\n}\n");

    match &o.out {
        Some(path) => {
            std::fs::write(path, &doc).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
            eprintln!("wrote {path}");
        }
        None => print!("{doc}"),
    }
}

fn main() {
    let o = parse_options();
    if o.smoke {
        let addr = o.addr.unwrap_or_else(|| die("--smoke requires --addr HOST:PORT"));
        run_smoke(addr);
    } else if let Some(addr) = o.addr {
        // Load mode against an external server: run the workload but
        // skip the fresh-metrics reconciliation (the server may have
        // history); still verifies byte-identical results.
        let work = Arc::new(workloads());
        let expected = Arc::new(expected_results(&work));
        let stats = run_load_once(addr, &o, &work, &expected);
        let mut lat = stats.latencies_us;
        lat.sort_unstable();
        eprintln!(
            "external {addr}: {} ok, {} shed, p50 {}us p99 {}us",
            stats.completed,
            stats.shed_busy,
            percentile(&lat, 0.50),
            percentile(&lat, 0.99)
        );
    } else {
        run_load(&o);
    }
}
