//! Benchmark-harness support crate; see `src/bin/*` and `benches/*`.
pub mod harness;
