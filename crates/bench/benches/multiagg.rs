//! Ablation bench E4 (Section 3, claim i): single-pass tree-way
//! aggregation via accumulators (Example 4) vs the same three aggregates
//! computed in three separate passes — quantifying the value of
//! multi-aggregation by distinct grouping criteria in one traversal.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsql_core::{stdlib, Engine};
use pgraph::generators::random_sales_graph;
use std::hint::black_box;

/// Three separate single-aggregation passes over the same pattern.
const THREE_PASS: &str = r#"
CREATE QUERY RevenueThreePasses () FOR GRAPH SalesGraph {
  SumAccum<float> @revenuePerToy, @revenuePerCust;
  SumAccum<float> @@totalRevenue;
  A = SELECT c
      FROM  Customer:c -(Bought>:b)- Product:p
      WHERE p.category == 'toy'
      ACCUM c.@revenuePerCust += b.quantity * p.list_price * (1.0 - b.discount);
  B = SELECT c
      FROM  Customer:c -(Bought>:b)- Product:p
      WHERE p.category == 'toy'
      ACCUM p.@revenuePerToy += b.quantity * p.list_price * (1.0 - b.discount);
  C = SELECT c
      FROM  Customer:c -(Bought>:b)- Product:p
      WHERE p.category == 'toy'
      ACCUM @@totalRevenue += b.quantity * p.list_price * (1.0 - b.discount);
}
"#;

fn bench_multiagg(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiagg_single_vs_three_pass");
    group.sample_size(10);
    for (label, nc) in [("small", 2_000usize), ("large", 20_000)] {
        let g = random_sales_graph(nc, nc / 10, 10, 7);
        group.bench_with_input(BenchmarkId::new("single_pass", label), &nc, |b, _| {
            let eng = Engine::new(&g);
            b.iter(|| black_box(eng.run_text(stdlib::example4_sales(), &[]).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("three_passes", label), &nc, |b, _| {
            let eng = Engine::new(&g);
            b.iter(|| black_box(eng.run_text(THREE_PASS, &[]).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multiagg);
criterion_main!(benches);
