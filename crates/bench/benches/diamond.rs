//! Criterion bench for experiment E1 (Table 1): `Q_n` on the diamond
//! chain under counting vs enumerative strategies. Counting is benched
//! at n up to the paper's full 30; enumeration only at small n (it
//! doubles per step — the harness binary `table1` shows the blow-up).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsql_core::{stdlib, Engine, PathSemantics};
use pgraph::generators::diamond_chain;
use pgraph::value::Value;
use std::hint::black_box;

fn bench_counting(c: &mut Criterion) {
    let (g, _) = diamond_chain(30);
    let q = stdlib::qn("V", "E");
    let mut group = c.benchmark_group("diamond_qn_counting");
    for n in [10usize, 20, 30] {
        let args = [
            ("srcName", Value::from("v0")),
            ("tgtName", Value::from(format!("v{n}"))),
        ];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let eng = Engine::new(&g);
            b.iter(|| black_box(eng.run_text(&q, &args).unwrap()));
        });
    }
    group.finish();
}

fn bench_enumeration(c: &mut Criterion) {
    let (g, _) = diamond_chain(30);
    let q = stdlib::qn("V", "E");
    let mut group = c.benchmark_group("diamond_qn_enumeration");
    group.sample_size(10);
    for n in [8usize, 10, 12] {
        let args = [
            ("srcName", Value::from("v0")),
            ("tgtName", Value::from(format!("v{n}"))),
        ];
        for (label, sem) in [
            ("nre", PathSemantics::NonRepeatedEdge),
            ("asp_enum", PathSemantics::AllShortestPathsEnumerate),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, n),
                &n,
                |b, _| {
                    let eng = Engine::new(&g).with_semantics(sem);
                    b.iter(|| black_box(eng.run_text(&q, &args).unwrap()));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_counting, bench_enumeration);
criterion_main!(benches);
