//! Criterion bench for experiment E2 (Section 7.1 LDBC IC table): ic9
//! and ic3 at hop radii 2 and 3, counting vs non-repeated-edge, on a
//! small SNB-like graph. The full sweep lives in the `ldbc_ic` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsql_core::{Engine, PathSemantics};
use ldbc_snb::{generate, queries, SnbParams};
use pgraph::datetime::to_epoch;
use pgraph::value::Value;
use std::hint::black_box;

fn bench_ic(c: &mut Criterion) {
    let g = generate(SnbParams::new(0.03, 2024));
    let pt = g.schema().vertex_type_id("Person").unwrap();
    let p = Value::Vertex(g.vertices_of_type(pt)[0]);

    let mut group = c.benchmark_group("ldbc_ic");
    group.sample_size(10);
    for hops in [2usize, 3] {
        for (name, text, args) in [
            (
                "ic9",
                queries::ic9(hops),
                vec![("p", p.clone()), ("maxDate", Value::DateTime(to_epoch(2012, 6, 1)))],
            ),
            (
                "ic3",
                queries::ic3(hops),
                vec![
                    ("p", p.clone()),
                    ("countryX", Value::from("country0")),
                    ("countryY", Value::from("country1")),
                ],
            ),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_counting"), hops),
                &hops,
                |b, _| {
                    let eng = Engine::new(&g);
                    b.iter(|| black_box(eng.run_text(&text, &args).unwrap()));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_nre"), hops),
                &hops,
                |b, _| {
                    let eng = Engine::new(&g)
                        .with_semantics(PathSemantics::NonRepeatedEdge)
                        .with_enum_budget(100_000_000);
                    b.iter(|| black_box(eng.run_text(&text, &args).unwrap()));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ic);
criterion_main!(benches);
