//! Criterion bench for experiment E3 (Appendix B): `Q_gs` (GROUPING SETS
//! simulation — all aggregates per grouping set) vs `Q_acc` (dedicated
//! accumulators). The paper reports a 2.5–3× advantage for `Q_acc`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsql_core::Engine;
use ldbc_snb::{generate, queries, SnbParams};
use std::hint::black_box;

fn bench_grouping(c: &mut Criterion) {
    let mut group = c.benchmark_group("appendix_b_grouping");
    group.sample_size(10);
    for sf in [0.03f64, 0.1] {
        let g = generate(SnbParams::new(sf, 2024));
        let q_gs = queries::q_gs();
        let q_acc = queries::q_acc();
        group.bench_with_input(BenchmarkId::new("q_gs", sf), &sf, |b, _| {
            let eng = Engine::new(&g);
            b.iter(|| black_box(eng.run_text(&q_gs, &[]).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("q_acc", sf), &sf, |b, _| {
            let eng = Engine::new(&g);
            b.iter(|| black_box(eng.run_text(&q_acc, &[]).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grouping);
criterion_main!(benches);
