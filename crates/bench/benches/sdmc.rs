//! Ablation bench E6 (Theorem 6.1): the SDMC counting kernel scales
//! polynomially in graph size even as path counts grow as `2^n` —
//! diamond chains of 32..256 diamonds and Erdős–Rényi digraphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use darpe::CompiledDarpe;
use gsql_core::governor::QueryGuard;
use gsql_core::semantics::{reach, MatchStats, PathSemantics};
use pgraph::generators::{diamond_chain, erdos_renyi};
use std::hint::black_box;

fn bench_diamond_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sdmc_diamond_scaling");
    for n in [32usize, 64, 128, 256] {
        let (g, spine) = diamond_chain(n);
        let nfa = CompiledDarpe::compile(&darpe::parse("E>*").unwrap(), g.schema()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut stats = MatchStats::default();
                let guard = QueryGuard::unlimited();
                let m = reach(
                    &g,
                    spine[0],
                    &nfa,
                    PathSemantics::AllShortestPaths,
                    &guard,
                    &mut stats,
                )
                .unwrap();
                black_box(m.len())
            });
        });
    }
    group.finish();
}

fn bench_er_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("sdmc_erdos_renyi");
    group.sample_size(20);
    for n in [200usize, 400, 800] {
        let g = erdos_renyi(n, 4.0 / n as f64, 3);
        let nfa = CompiledDarpe::compile(&darpe::parse("E>*").unwrap(), g.schema()).unwrap();
        let src = pgraph::graph::VertexId(0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut stats = MatchStats::default();
                let guard = QueryGuard::unlimited();
                let m =
                    reach(&g, src, &nfa, PathSemantics::AllShortestPaths, &guard, &mut stats)
                        .unwrap();
                black_box(m.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_diamond_scaling, bench_er_kernel);
criterion_main!(benches);
