//! Ablation bench E5 (Section 4.3, claim iii): the snapshot Map/Reduce
//! semantics admits parallel Map execution. Benches the Example-4 style
//! aggregation with 1, 2 and 4 Map threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsql_core::{stdlib, Engine};
use pgraph::generators::random_sales_graph;
use std::hint::black_box;

fn bench_parallel(c: &mut Criterion) {
    let g = random_sales_graph(30_000, 3_000, 12, 11);
    let mut group = c.benchmark_group("parallel_map_phase");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let eng = Engine::new(&g).with_parallelism(t);
            b.iter(|| black_box(eng.run_text(stdlib::example4_sales(), &[]).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
