//! Seeded SNB-like graph generator.
//!
//! Scale factor `sf` plays the role of LDBC's SF: entity counts grow
//! linearly in it (persons ≈ 1000·sf). Distributions mimic the benchmark
//! qualitatively: `Knows` degrees are preferential-attachment skewed,
//! message counts per person are geometric-ish, message locations
//! correlate with the author's country, and timestamps span 2009–2013
//! (the Appendix-B workload filters on 2010–2012).

use crate::schema::snb_schema;
use pgraph::datetime::to_epoch;
use pgraph::graph::{Graph, GraphBuilder, VertexId};
use pgraph::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Elements (vertices + edges) emitted between two
/// [`GraphSink::flush_chunk`] calls by the streaming generator.
pub const STREAM_CHUNK: usize = 8192;

/// Streaming load target: receives vertices and edges one at a time, in
/// emission order. [`GraphBuilder`] is the canonical sink; other
/// implementations can count, sample, or forward chunks to a loader
/// without the generator ever materializing the element stream.
pub trait GraphSink {
    /// Adds a vertex of `vtype` and returns its id (ids must be handed
    /// out densely in emission order — the generator derives contiguous
    /// id ranges from them instead of remembering every id).
    fn vertex(&mut self, vtype: &str, attrs: &[(&str, Value)]) -> VertexId;
    /// Adds an edge of `etype`.
    fn edge(&mut self, etype: &str, src: VertexId, dst: VertexId, attrs: &[(&str, Value)]);
    /// Chunk boundary: [`STREAM_CHUNK`] elements were emitted since the
    /// previous call. Buffering sinks flush here; the default is a no-op.
    fn flush_chunk(&mut self) {}
}

impl GraphSink for GraphBuilder {
    fn vertex(&mut self, vtype: &str, attrs: &[(&str, Value)]) -> VertexId {
        GraphBuilder::vertex(self, vtype, attrs).expect("generator emits schema-valid vertices")
    }
    fn edge(&mut self, etype: &str, src: VertexId, dst: VertexId, attrs: &[(&str, Value)]) {
        GraphBuilder::edge(self, etype, src, dst, attrs).expect("generator emits schema-valid edges");
    }
}

/// What the streaming generator produced, plus its own memory footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenReport {
    /// Vertices emitted.
    pub vertices: u64,
    /// Edges emitted.
    pub edges: u64,
    /// High-water mark of the generator's *own* bookkeeping, in bytes —
    /// everything it keeps besides what the sink stores. Constant in the
    /// scale factor (the point of the streaming path: no `O(V)` person
    /// table, no `O(E)` attachment pool, no full message list).
    pub aux_peak_bytes: u64,
    /// `flush_chunk` boundaries emitted.
    pub chunks: u64,
}

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct SnbParams {
    /// Scale factor; persons ≈ `1000 · sf` (min 30).
    pub sf: f64,
    pub seed: u64,
}

impl SnbParams {
    pub fn new(sf: f64, seed: u64) -> Self {
        SnbParams { sf, seed }
    }

    /// Number of persons at this scale factor.
    pub fn persons(&self) -> usize {
        ((1000.0 * self.sf).round() as usize).max(30)
    }
}

const BROWSERS: [&str; 4] = ["Firefox", "Chrome", "Safari", "IE"];

/// Generates the graph; deterministic per `(sf, seed)`.
pub fn generate(params: SnbParams) -> Graph {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut b = GraphBuilder::new(snb_schema());
    let n_person = params.persons();
    let n_country = 20usize;
    let n_city = 60usize;
    let n_company = 40usize;
    let n_tag = 80usize;
    let n_forum = (n_person / 3).max(4);

    // Places and organizations.
    let countries: Vec<VertexId> = (0..n_country)
        .map(|i| b.vertex("Country", &[("name", Value::from(format!("country{i}")))]).unwrap())
        .collect();
    let cities: Vec<VertexId> = (0..n_city)
        .map(|i| b.vertex("City", &[("name", Value::from(format!("city{i}")))]).unwrap())
        .collect();
    let city_country: Vec<usize> = (0..n_city).map(|i| i % n_country).collect();
    for (i, &c) in cities.iter().enumerate() {
        b.edge("PartOf", c, countries[city_country[i]], &[]).unwrap();
    }
    let companies: Vec<VertexId> = (0..n_company)
        .map(|i| b.vertex("Company", &[("name", Value::from(format!("company{i}")))]).unwrap())
        .collect();
    let company_country: Vec<usize> = (0..n_company).map(|_| rng.gen_range(0..n_country)).collect();
    for (i, &c) in companies.iter().enumerate() {
        b.edge("CompanyIn", c, countries[company_country[i]], &[]).unwrap();
    }
    let tags: Vec<VertexId> = (0..n_tag)
        .map(|i| b.vertex("Tag", &[("name", Value::from(format!("tag{i}")))]).unwrap())
        .collect();

    // Persons.
    let mut person_city = Vec::with_capacity(n_person);
    let persons: Vec<VertexId> = (0..n_person)
        .map(|i| {
            let gender = if rng.gen_bool(0.5) { "male" } else { "female" };
            let browser = BROWSERS[zipf4(&mut rng)];
            let by = rng.gen_range(1950..2000);
            let bm = rng.gen_range(1..=12u32);
            let bd = rng.gen_range(1..=28u32);
            let v = b
                .vertex(
                    "Person",
                    &[
                        ("id", Value::Int(i as i64)),
                        ("firstName", Value::from(format!("fn{i}"))),
                        ("lastName", Value::from(format!("ln{}", i % 97))),
                        ("gender", Value::from(gender)),
                        ("browser", Value::from(browser)),
                        ("birthday", Value::DateTime(to_epoch(by, bm, bd))),
                        ("creationDate", Value::DateTime(to_epoch(2009, 1, 1))),
                    ],
                )
                .unwrap();
            let city = rng.gen_range(0..n_city);
            person_city.push(city);
            b.edge("LivesIn", v, cities[city], &[]).unwrap();
            v
        })
        .collect();

    // WorkAt: 0–2 companies per person.
    for &p in &persons {
        for _ in 0..rng.gen_range(0..=2usize) {
            let c = rng.gen_range(0..n_company);
            b.edge(
                "WorkAt",
                p,
                companies[c],
                &[("workFrom", Value::Int(rng.gen_range(1990..2015)))],
            )
            .unwrap();
        }
    }

    // Knows: undirected, preferential-attachment skewed, avg degree ~8.
    let mut pool: Vec<usize> = vec![0, 1];
    b.edge(
        "Knows",
        persons[0],
        persons[1],
        &[("since", Value::DateTime(to_epoch(2009, 6, 1)))],
    )
    .unwrap();
    for i in 2..n_person {
        let k = 1 + (rng.gen::<f64>().powi(2) * 7.0) as usize; // skewed 1..8
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        while chosen.len() < k.min(i) {
            let j = pool[rng.gen_range(0..pool.len())];
            if j != i && !chosen.contains(&j) {
                chosen.push(j);
            }
        }
        for j in chosen {
            let y = rng.gen_range(2009..2013);
            let m = rng.gen_range(1..=12u32);
            b.edge(
                "Knows",
                persons[i],
                persons[j],
                &[("since", Value::DateTime(to_epoch(y, m, 1)))],
            )
            .unwrap();
            pool.push(j);
            pool.push(i);
        }
    }

    // Forums with members.
    let forums: Vec<VertexId> = (0..n_forum)
        .map(|i| {
            b.vertex(
                "Forum",
                &[
                    ("title", Value::from(format!("forum{i}"))),
                    ("creationDate", Value::DateTime(to_epoch(2009, 2, 1))),
                ],
            )
            .unwrap()
        })
        .collect();
    for &f in &forums {
        let members = rng.gen_range(4..=16usize).min(n_person);
        for _ in 0..members {
            let p = rng.gen_range(0..n_person);
            let y = rng.gen_range(2009..2013);
            let m = rng.gen_range(1..=12u32);
            let d = rng.gen_range(1..=28u32);
            b.edge(
                "HasMember",
                f,
                persons[p],
                &[("joinDate", Value::DateTime(to_epoch(y, m, d)))],
            )
            .unwrap();
        }
    }

    // Messages: ~12 per person on average, geometric-ish.
    let mut messages: Vec<VertexId> = Vec::new();
    let mut msg_id = 0i64;
    for (pi, &p) in persons.iter().enumerate() {
        let count = sample_geometric(&mut rng, 12.0).min(60);
        for _ in 0..count {
            let y = rng.gen_range(2009..2014);
            let m = rng.gen_range(1..=12u32);
            let d = rng.gen_range(1..=28u32);
            let length = 1 + (rng.gen::<f64>().powi(3) * 199.0) as i64;
            let v = b
                .vertex(
                    "Message",
                    &[
                        ("id", Value::Int(msg_id)),
                        ("creationDate", Value::DateTime(to_epoch(y, m, d))),
                        ("length", Value::Int(length)),
                        ("browser", Value::from(BROWSERS[zipf4(&mut rng)])),
                        ("isPost", Value::Bool(rng.gen_bool(0.4))),
                    ],
                )
                .unwrap();
            msg_id += 1;
            b.edge("HasCreator", v, p, &[]).unwrap();
            // Location correlates with the author's country 70% of the time.
            let country = if rng.gen_bool(0.7) {
                city_country[person_city[pi]]
            } else {
                rng.gen_range(0..n_country)
            };
            b.edge("MsgIn", v, countries[country], &[]).unwrap();
            for _ in 0..rng.gen_range(1..=3usize) {
                let t = zipf_index(&mut rng, n_tag);
                b.edge("HasTag", v, tags[t], &[]).unwrap();
            }
            if !messages.is_empty() && rng.gen_bool(0.3) {
                let parent = messages[rng.gen_range(0..messages.len())];
                b.edge("ReplyOf", v, parent, &[]).unwrap();
            }
            if rng.gen_bool(0.5) {
                let f = forums[rng.gen_range(0..n_forum)];
                b.edge("ContainerOf", f, v, &[]).unwrap();
            }
            messages.push(v);
        }
    }

    // Likes: ~10 per person.
    if !messages.is_empty() {
        for &p in &persons {
            for _ in 0..rng.gen_range(5..=15usize) {
                let m = messages[rng.gen_range(0..messages.len())];
                let y = rng.gen_range(2009..2014);
                let mo = rng.gen_range(1..=12u32);
                b.edge(
                    "Likes",
                    p,
                    m,
                    &[("creationDate", Value::DateTime(to_epoch(y, mo, 1)))],
                )
                .unwrap();
            }
        }
    }

    b.build()
}

/// Counts emissions and inserts chunk boundaries in front of a sink.
struct Emitter<'s, S: GraphSink + ?Sized> {
    sink: &'s mut S,
    vertices: u64,
    edges: u64,
    since_flush: usize,
    chunks: u64,
}

impl<'s, S: GraphSink + ?Sized> Emitter<'s, S> {
    fn tick(&mut self) {
        self.since_flush += 1;
        if self.since_flush >= STREAM_CHUNK {
            self.since_flush = 0;
            self.chunks += 1;
            self.sink.flush_chunk();
        }
    }
    fn vertex(&mut self, vtype: &str, attrs: &[(&str, Value)]) -> VertexId {
        self.vertices += 1;
        let v = self.sink.vertex(vtype, attrs);
        self.tick();
        v
    }
    fn edge(&mut self, etype: &str, src: VertexId, dst: VertexId, attrs: &[(&str, Value)]) {
        self.edges += 1;
        self.sink.edge(etype, src, dst, attrs);
        self.tick();
    }
}

/// Deterministic per-person RNG: lets a later phase re-derive a person's
/// attributes (their city, for message-location correlation) without a
/// scale-sized side table.
fn person_rng(seed: u64, i: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1))
}

/// Streams an SNB-like graph into `sink` without materializing any
/// scale-proportional intermediate state; deterministic per `(sf, seed)`.
///
/// Entity distributions qualitatively match [`generate`] (skewed `Knows`
/// degrees, geometric-ish message counts, correlated message locations)
/// but the element stream itself differs: every scale-sized side table
/// the eager generator keeps is replaced by a bounded-state equivalent —
///
/// * persons, forums, and messages occupy **contiguous id ranges** (the
///   sink hands ids out densely), so edge targets are sampled from a
///   range instead of a remembered `Vec`;
/// * preferential attachment's `O(E)` endpoint pool becomes a
///   quadratically rank-biased pick over `[0, i)` (early persons stay
///   the hubs);
/// * per-person attributes needed again later are re-derived from
///   a per-person seeded RNG (`person_rng`) instead of being stored.
///
/// The returned [`GenReport`] carries the generator's auxiliary
/// high-water mark; the `bench_ldbc` harness asserts it stays flat as
/// `sf` grows.
pub fn generate_into<S: GraphSink + ?Sized>(params: SnbParams, sink: &mut S) -> GenReport {
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x5eed_11dc);
    let mut em = Emitter { sink, vertices: 0, edges: 0, since_flush: 0, chunks: 0 };
    let n_person = params.persons();
    let n_country = 20usize;
    let n_city = 60usize;
    let n_company = 40usize;
    let n_tag = 80usize;
    let n_forum = (n_person / 3).max(4);

    // Places, organizations, tags: the only remembered id tables, all
    // constant-size regardless of scale factor.
    let countries: Vec<VertexId> = (0..n_country)
        .map(|i| em.vertex("Country", &[("name", Value::from(format!("country{i}")))]))
        .collect();
    let cities: Vec<VertexId> = (0..n_city)
        .map(|i| em.vertex("City", &[("name", Value::from(format!("city{i}")))]))
        .collect();
    let city_country: Vec<usize> = (0..n_city).map(|i| i % n_country).collect();
    for (i, &c) in cities.iter().enumerate() {
        em.edge("PartOf", c, countries[city_country[i]], &[]);
    }
    let companies: Vec<VertexId> = (0..n_company)
        .map(|i| em.vertex("Company", &[("name", Value::from(format!("company{i}")))]))
        .collect();
    for &c in &companies {
        let country = rng.gen_range(0..n_country);
        em.edge("CompanyIn", c, countries[country], &[]);
    }
    let tags: Vec<VertexId> = (0..n_tag)
        .map(|i| em.vertex("Tag", &[("name", Value::from(format!("tag{i}")))]))
        .collect();
    let aux_peak_bytes = ((countries.len() + cities.len() + companies.len() + tags.len())
        * std::mem::size_of::<VertexId>()
        + city_country.len() * std::mem::size_of::<usize>()) as u64;

    // Persons: a contiguous id range. Attributes come from the per-
    // person RNG so the message phase can re-derive the city.
    let mut first_person = VertexId(0);
    for i in 0..n_person {
        let mut prng = person_rng(params.seed, i);
        let gender = if prng.gen_bool(0.5) { "male" } else { "female" };
        let browser = BROWSERS[zipf4(&mut prng)];
        let by = prng.gen_range(1950..2000);
        let bm = prng.gen_range(1..=12u32);
        let bd = prng.gen_range(1..=28u32);
        let city = prng.gen_range(0..n_city);
        let v = em.vertex(
            "Person",
            &[
                ("id", Value::Int(i as i64)),
                ("firstName", Value::from(format!("fn{i}"))),
                ("lastName", Value::from(format!("ln{}", i % 97))),
                ("gender", Value::from(gender)),
                ("browser", Value::from(browser)),
                ("birthday", Value::DateTime(to_epoch(by, bm, bd))),
                ("creationDate", Value::DateTime(to_epoch(2009, 1, 1))),
            ],
        );
        if i == 0 {
            first_person = v;
        }
        em.edge("LivesIn", v, cities[city], &[]);
        for _ in 0..rng.gen_range(0..=2usize) {
            let c = rng.gen_range(0..n_company);
            em.edge(
                "WorkAt",
                v,
                companies[c],
                &[("workFrom", Value::Int(rng.gen_range(1990..2015)))],
            );
        }
    }
    let person_at = |i: usize| VertexId(first_person.0 + i as u32);

    // Knows: skewed toward early persons (the preferential-attachment
    // pool replaced by a quadratic rank bias over `[0, i)` — same hub
    // structure, O(1) generator state).
    for i in 1..n_person {
        let k = (1 + (rng.gen::<f64>().powi(2) * 7.0) as usize).min(i);
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        let mut attempts = 0;
        while chosen.len() < k && attempts < 8 * k {
            attempts += 1;
            let r: f64 = rng.gen();
            let j = ((r * r) * i as f64) as usize % i;
            if !chosen.contains(&j) {
                chosen.push(j);
            }
        }
        for j in chosen {
            let y = rng.gen_range(2009..2013);
            let m = rng.gen_range(1..=12u32);
            em.edge(
                "Knows",
                person_at(i),
                person_at(j),
                &[("since", Value::DateTime(to_epoch(y, m, 1)))],
            );
        }
    }

    // Forums: another contiguous range.
    let mut first_forum = VertexId(0);
    for i in 0..n_forum {
        let v = em.vertex(
            "Forum",
            &[
                ("title", Value::from(format!("forum{i}"))),
                ("creationDate", Value::DateTime(to_epoch(2009, 2, 1))),
            ],
        );
        if i == 0 {
            first_forum = v;
        }
        let members = rng.gen_range(4..=16usize).min(n_person);
        for _ in 0..members {
            let p = rng.gen_range(0..n_person);
            let y = rng.gen_range(2009..2013);
            let m = rng.gen_range(1..=12u32);
            let d = rng.gen_range(1..=28u32);
            em.edge(
                "HasMember",
                v,
                person_at(p),
                &[("joinDate", Value::DateTime(to_epoch(y, m, d)))],
            );
        }
    }
    let forum_at = |i: usize| VertexId(first_forum.0 + i as u32);

    // Messages: contiguous range; ReplyOf parents are sampled from the
    // already-emitted prefix of the range instead of a remembered list.
    let mut first_msg: Option<VertexId> = None;
    let mut emitted_msgs = 0u32;
    let mut msg_id = 0i64;
    for pi in 0..n_person {
        let count = sample_geometric(&mut rng, 12.0).min(60);
        let person_city = {
            let mut prng = person_rng(params.seed, pi);
            // Skip the draws before the city (gender, browser, birthday).
            let _ = prng.gen_bool(0.5);
            let _ = zipf4(&mut prng);
            let _: i32 = prng.gen_range(1950..2000);
            let _: u32 = prng.gen_range(1..=12u32);
            let _: u32 = prng.gen_range(1..=28u32);
            prng.gen_range(0..n_city)
        };
        for _ in 0..count {
            let y = rng.gen_range(2009..2014);
            let m = rng.gen_range(1..=12u32);
            let d = rng.gen_range(1..=28u32);
            let length = 1 + (rng.gen::<f64>().powi(3) * 199.0) as i64;
            let v = em.vertex(
                "Message",
                &[
                    ("id", Value::Int(msg_id)),
                    ("creationDate", Value::DateTime(to_epoch(y, m, d))),
                    ("length", Value::Int(length)),
                    ("browser", Value::from(BROWSERS[zipf4(&mut rng)])),
                    ("isPost", Value::Bool(rng.gen_bool(0.4))),
                ],
            );
            msg_id += 1;
            let base = *first_msg.get_or_insert(v);
            em.edge("HasCreator", v, person_at(pi), &[]);
            let country = if rng.gen_bool(0.7) {
                city_country[person_city]
            } else {
                rng.gen_range(0..n_country)
            };
            em.edge("MsgIn", v, countries[country], &[]);
            for _ in 0..rng.gen_range(1..=3usize) {
                let t = zipf_index(&mut rng, n_tag);
                em.edge("HasTag", v, tags[t], &[]);
            }
            if emitted_msgs > 0 && rng.gen_bool(0.3) {
                let parent = VertexId(base.0 + rng.gen_range(0..emitted_msgs));
                em.edge("ReplyOf", v, parent, &[]);
            }
            if rng.gen_bool(0.5) {
                let f = forum_at(rng.gen_range(0..n_forum));
                em.edge("ContainerOf", f, v, &[]);
            }
            emitted_msgs += 1;
        }
    }

    // Likes: uniform over the whole message range.
    if let Some(base) = first_msg {
        for pi in 0..n_person {
            for _ in 0..rng.gen_range(5..=15usize) {
                let m = VertexId(base.0 + rng.gen_range(0..emitted_msgs));
                let y = rng.gen_range(2009..2014);
                let mo = rng.gen_range(1..=12u32);
                em.edge(
                    "Likes",
                    person_at(pi),
                    m,
                    &[("creationDate", Value::DateTime(to_epoch(y, mo, 1)))],
                );
            }
        }
    }

    GenReport { vertices: em.vertices, edges: em.edges, aux_peak_bytes, chunks: em.chunks }
}

/// Streams a graph through a [`GraphBuilder`] sink and finalizes it:
/// the scale-capable entry point (`bench_ldbc` uses it for SF10-class
/// graphs that the eager [`generate`]'s side tables would bloat).
pub fn generate_streamed(params: SnbParams) -> (Graph, GenReport) {
    let mut b = GraphBuilder::new(snb_schema());
    let report = generate_into(params, &mut b);
    (b.build(), report)
}

/// Zipf-ish pick among 4 browsers (rank-biased).
fn zipf4(rng: &mut StdRng) -> usize {
    let r: f64 = rng.gen();
    if r < 0.48 {
        0
    } else if r < 0.72 {
        1
    } else if r < 0.88 {
        2
    } else {
        3
    }
}

/// Rank-biased tag index: low indices are much more popular.
fn zipf_index(rng: &mut StdRng, n: usize) -> usize {
    let r: f64 = rng.gen();
    ((r * r) * n as f64) as usize % n
}

/// Geometric-ish sample with the given mean.
fn sample_geometric(rng: &mut StdRng, mean: f64) -> usize {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    (-u.ln() * mean) as usize + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = generate(SnbParams::new(0.05, 7));
        let c = generate(SnbParams::new(0.05, 7));
        assert_eq!(a.vertex_count(), c.vertex_count());
        assert_eq!(a.edge_count(), c.edge_count());
    }

    #[test]
    fn scales_with_sf() {
        let small = generate(SnbParams::new(0.03, 1));
        let big = generate(SnbParams::new(0.1, 1));
        assert!(big.vertex_count() > small.vertex_count());
        assert!(big.edge_count() > small.edge_count());
    }

    #[test]
    fn person_count_matches_params() {
        let p = SnbParams::new(0.05, 3);
        let g = generate(p);
        let pt = g.schema().vertex_type_id("Person").unwrap();
        assert_eq!(g.vertices_of_type(pt).len(), p.persons());
    }

    #[test]
    fn knows_is_connected_enough() {
        // Preferential attachment links every new person to someone.
        let g = generate(SnbParams::new(0.05, 5));
        let (_, comps) = pgraph::algo::weakly_connected_components(&g);
        // Single giant component plus possibly isolated tags/places that
        // happen to be untouched; persons themselves form one component.
        assert!(comps < g.vertex_count() / 2);
    }

    /// Counting sink: proves the generator runs without any graph store.
    struct CountingSink {
        next: u32,
        vertices: u64,
        edges: u64,
        flushes: u64,
    }

    impl GraphSink for CountingSink {
        fn vertex(&mut self, _vtype: &str, _attrs: &[(&str, Value)]) -> VertexId {
            let v = VertexId(self.next);
            self.next += 1;
            self.vertices += 1;
            v
        }
        fn edge(&mut self, _e: &str, _s: VertexId, _d: VertexId, _a: &[(&str, Value)]) {
            self.edges += 1;
        }
        fn flush_chunk(&mut self) {
            self.flushes += 1;
        }
    }

    #[test]
    fn streamed_generation_is_deterministic_and_scales() {
        let (a, ra) = generate_streamed(SnbParams::new(0.05, 7));
        let (b, rb) = generate_streamed(SnbParams::new(0.05, 7));
        assert_eq!(a.vertex_count(), b.vertex_count());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(ra, rb);
        assert_eq!(ra.vertices, a.vertex_count() as u64);
        assert_eq!(ra.edges, a.edge_count() as u64);
        let (big, rbig) = generate_streamed(SnbParams::new(0.2, 7));
        assert!(big.vertex_count() > a.vertex_count());
        // The whole point: auxiliary state does not grow with scale.
        assert_eq!(ra.aux_peak_bytes, rbig.aux_peak_bytes);
        assert!(rbig.aux_peak_bytes < 16 * 1024, "{}", rbig.aux_peak_bytes);
    }

    #[test]
    fn streamed_matches_counting_sink_and_chunks() {
        let params = SnbParams::new(0.05, 7);
        let mut sink = CountingSink { next: 0, vertices: 0, edges: 0, flushes: 0 };
        let r = generate_into(params, &mut sink);
        assert_eq!(r.vertices, sink.vertices);
        assert_eq!(r.edges, sink.edges);
        assert_eq!(r.chunks, sink.flushes);
        // ~30 persons → few hundred elements; raise sf to force chunking.
        let mut sink = CountingSink { next: 0, vertices: 0, edges: 0, flushes: 0 };
        let r = generate_into(SnbParams::new(0.2, 7), &mut sink);
        assert!(r.chunks >= 1, "SF 0.2 must cross at least one chunk boundary");
    }

    #[test]
    fn streamed_graph_serves_the_snb_queries() {
        use gsql_core::Engine;
        let (g, _) = generate_streamed(SnbParams::new(0.05, 31));
        let pt = g.schema().vertex_type_id("Person").unwrap();
        assert!(!g.vertices_of_type(pt).is_empty());
        let p = Value::Vertex(g.vertices_of_type(pt)[0]);
        let out = Engine::new(&g)
            .run_text(&crate::queries::ic5(3), &[("p", p), ("minDate", Value::DateTime(0))])
            .unwrap();
        assert!(!out.prints.is_empty());
    }

    #[test]
    fn timestamps_span_the_workload_window() {
        let g = generate(SnbParams::new(0.05, 9));
        let mt = g.schema().vertex_type_id("Message").unwrap();
        let mut years: std::collections::BTreeSet<i64> = Default::default();
        for &m in g.vertices_of_type(mt) {
            let ts = match g.vertex_attr_by_name(m, "creationDate").unwrap() {
                Value::DateTime(t) => *t,
                other => panic!("{other:?}"),
            };
            years.insert(pgraph::datetime::year(ts));
        }
        for y in 2010..=2012 {
            assert!(years.contains(&y), "no messages in {y}");
        }
    }
}
