//! Seeded SNB-like graph generator.
//!
//! Scale factor `sf` plays the role of LDBC's SF: entity counts grow
//! linearly in it (persons ≈ 1000·sf). Distributions mimic the benchmark
//! qualitatively: `Knows` degrees are preferential-attachment skewed,
//! message counts per person are geometric-ish, message locations
//! correlate with the author's country, and timestamps span 2009–2013
//! (the Appendix-B workload filters on 2010–2012).

use crate::schema::snb_schema;
use pgraph::datetime::to_epoch;
use pgraph::graph::{Graph, GraphBuilder, VertexId};
use pgraph::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct SnbParams {
    /// Scale factor; persons ≈ `1000 · sf` (min 30).
    pub sf: f64,
    pub seed: u64,
}

impl SnbParams {
    pub fn new(sf: f64, seed: u64) -> Self {
        SnbParams { sf, seed }
    }

    /// Number of persons at this scale factor.
    pub fn persons(&self) -> usize {
        ((1000.0 * self.sf).round() as usize).max(30)
    }
}

const BROWSERS: [&str; 4] = ["Firefox", "Chrome", "Safari", "IE"];

/// Generates the graph; deterministic per `(sf, seed)`.
pub fn generate(params: SnbParams) -> Graph {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut b = GraphBuilder::new(snb_schema());
    let n_person = params.persons();
    let n_country = 20usize;
    let n_city = 60usize;
    let n_company = 40usize;
    let n_tag = 80usize;
    let n_forum = (n_person / 3).max(4);

    // Places and organizations.
    let countries: Vec<VertexId> = (0..n_country)
        .map(|i| b.vertex("Country", &[("name", Value::from(format!("country{i}")))]).unwrap())
        .collect();
    let cities: Vec<VertexId> = (0..n_city)
        .map(|i| b.vertex("City", &[("name", Value::from(format!("city{i}")))]).unwrap())
        .collect();
    let city_country: Vec<usize> = (0..n_city).map(|i| i % n_country).collect();
    for (i, &c) in cities.iter().enumerate() {
        b.edge("PartOf", c, countries[city_country[i]], &[]).unwrap();
    }
    let companies: Vec<VertexId> = (0..n_company)
        .map(|i| b.vertex("Company", &[("name", Value::from(format!("company{i}")))]).unwrap())
        .collect();
    let company_country: Vec<usize> = (0..n_company).map(|_| rng.gen_range(0..n_country)).collect();
    for (i, &c) in companies.iter().enumerate() {
        b.edge("CompanyIn", c, countries[company_country[i]], &[]).unwrap();
    }
    let tags: Vec<VertexId> = (0..n_tag)
        .map(|i| b.vertex("Tag", &[("name", Value::from(format!("tag{i}")))]).unwrap())
        .collect();

    // Persons.
    let mut person_city = Vec::with_capacity(n_person);
    let persons: Vec<VertexId> = (0..n_person)
        .map(|i| {
            let gender = if rng.gen_bool(0.5) { "male" } else { "female" };
            let browser = BROWSERS[zipf4(&mut rng)];
            let by = rng.gen_range(1950..2000);
            let bm = rng.gen_range(1..=12u32);
            let bd = rng.gen_range(1..=28u32);
            let v = b
                .vertex(
                    "Person",
                    &[
                        ("id", Value::Int(i as i64)),
                        ("firstName", Value::from(format!("fn{i}"))),
                        ("lastName", Value::from(format!("ln{}", i % 97))),
                        ("gender", Value::from(gender)),
                        ("browser", Value::from(browser)),
                        ("birthday", Value::DateTime(to_epoch(by, bm, bd))),
                        ("creationDate", Value::DateTime(to_epoch(2009, 1, 1))),
                    ],
                )
                .unwrap();
            let city = rng.gen_range(0..n_city);
            person_city.push(city);
            b.edge("LivesIn", v, cities[city], &[]).unwrap();
            v
        })
        .collect();

    // WorkAt: 0–2 companies per person.
    for &p in &persons {
        for _ in 0..rng.gen_range(0..=2usize) {
            let c = rng.gen_range(0..n_company);
            b.edge(
                "WorkAt",
                p,
                companies[c],
                &[("workFrom", Value::Int(rng.gen_range(1990..2015)))],
            )
            .unwrap();
        }
    }

    // Knows: undirected, preferential-attachment skewed, avg degree ~8.
    let mut pool: Vec<usize> = vec![0, 1];
    b.edge(
        "Knows",
        persons[0],
        persons[1],
        &[("since", Value::DateTime(to_epoch(2009, 6, 1)))],
    )
    .unwrap();
    for i in 2..n_person {
        let k = 1 + (rng.gen::<f64>().powi(2) * 7.0) as usize; // skewed 1..8
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        while chosen.len() < k.min(i) {
            let j = pool[rng.gen_range(0..pool.len())];
            if j != i && !chosen.contains(&j) {
                chosen.push(j);
            }
        }
        for j in chosen {
            let y = rng.gen_range(2009..2013);
            let m = rng.gen_range(1..=12u32);
            b.edge(
                "Knows",
                persons[i],
                persons[j],
                &[("since", Value::DateTime(to_epoch(y, m, 1)))],
            )
            .unwrap();
            pool.push(j);
            pool.push(i);
        }
    }

    // Forums with members.
    let forums: Vec<VertexId> = (0..n_forum)
        .map(|i| {
            b.vertex(
                "Forum",
                &[
                    ("title", Value::from(format!("forum{i}"))),
                    ("creationDate", Value::DateTime(to_epoch(2009, 2, 1))),
                ],
            )
            .unwrap()
        })
        .collect();
    for &f in &forums {
        let members = rng.gen_range(4..=16usize).min(n_person);
        for _ in 0..members {
            let p = rng.gen_range(0..n_person);
            let y = rng.gen_range(2009..2013);
            let m = rng.gen_range(1..=12u32);
            let d = rng.gen_range(1..=28u32);
            b.edge(
                "HasMember",
                f,
                persons[p],
                &[("joinDate", Value::DateTime(to_epoch(y, m, d)))],
            )
            .unwrap();
        }
    }

    // Messages: ~12 per person on average, geometric-ish.
    let mut messages: Vec<VertexId> = Vec::new();
    let mut msg_id = 0i64;
    for (pi, &p) in persons.iter().enumerate() {
        let count = sample_geometric(&mut rng, 12.0).min(60);
        for _ in 0..count {
            let y = rng.gen_range(2009..2014);
            let m = rng.gen_range(1..=12u32);
            let d = rng.gen_range(1..=28u32);
            let length = 1 + (rng.gen::<f64>().powi(3) * 199.0) as i64;
            let v = b
                .vertex(
                    "Message",
                    &[
                        ("id", Value::Int(msg_id)),
                        ("creationDate", Value::DateTime(to_epoch(y, m, d))),
                        ("length", Value::Int(length)),
                        ("browser", Value::from(BROWSERS[zipf4(&mut rng)])),
                        ("isPost", Value::Bool(rng.gen_bool(0.4))),
                    ],
                )
                .unwrap();
            msg_id += 1;
            b.edge("HasCreator", v, p, &[]).unwrap();
            // Location correlates with the author's country 70% of the time.
            let country = if rng.gen_bool(0.7) {
                city_country[person_city[pi]]
            } else {
                rng.gen_range(0..n_country)
            };
            b.edge("MsgIn", v, countries[country], &[]).unwrap();
            for _ in 0..rng.gen_range(1..=3usize) {
                let t = zipf_index(&mut rng, n_tag);
                b.edge("HasTag", v, tags[t], &[]).unwrap();
            }
            if !messages.is_empty() && rng.gen_bool(0.3) {
                let parent = messages[rng.gen_range(0..messages.len())];
                b.edge("ReplyOf", v, parent, &[]).unwrap();
            }
            if rng.gen_bool(0.5) {
                let f = forums[rng.gen_range(0..n_forum)];
                b.edge("ContainerOf", f, v, &[]).unwrap();
            }
            messages.push(v);
        }
    }

    // Likes: ~10 per person.
    if !messages.is_empty() {
        for &p in &persons {
            for _ in 0..rng.gen_range(5..=15usize) {
                let m = messages[rng.gen_range(0..messages.len())];
                let y = rng.gen_range(2009..2014);
                let mo = rng.gen_range(1..=12u32);
                b.edge(
                    "Likes",
                    p,
                    m,
                    &[("creationDate", Value::DateTime(to_epoch(y, mo, 1)))],
                )
                .unwrap();
            }
        }
    }

    b.build()
}

/// Zipf-ish pick among 4 browsers (rank-biased).
fn zipf4(rng: &mut StdRng) -> usize {
    let r: f64 = rng.gen();
    if r < 0.48 {
        0
    } else if r < 0.72 {
        1
    } else if r < 0.88 {
        2
    } else {
        3
    }
}

/// Rank-biased tag index: low indices are much more popular.
fn zipf_index(rng: &mut StdRng, n: usize) -> usize {
    let r: f64 = rng.gen();
    ((r * r) * n as f64) as usize % n
}

/// Geometric-ish sample with the given mean.
fn sample_geometric(rng: &mut StdRng, mean: f64) -> usize {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    (-u.ln() * mean) as usize + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = generate(SnbParams::new(0.05, 7));
        let c = generate(SnbParams::new(0.05, 7));
        assert_eq!(a.vertex_count(), c.vertex_count());
        assert_eq!(a.edge_count(), c.edge_count());
    }

    #[test]
    fn scales_with_sf() {
        let small = generate(SnbParams::new(0.03, 1));
        let big = generate(SnbParams::new(0.1, 1));
        assert!(big.vertex_count() > small.vertex_count());
        assert!(big.edge_count() > small.edge_count());
    }

    #[test]
    fn person_count_matches_params() {
        let p = SnbParams::new(0.05, 3);
        let g = generate(p);
        let pt = g.schema().vertex_type_id("Person").unwrap();
        assert_eq!(g.vertices_of_type(pt).len(), p.persons());
    }

    #[test]
    fn knows_is_connected_enough() {
        // Preferential attachment links every new person to someone.
        let g = generate(SnbParams::new(0.05, 5));
        let (_, comps) = pgraph::algo::weakly_connected_components(&g);
        // Single giant component plus possibly isolated tags/places that
        // happen to be untouched; persons themselves form one component.
        assert!(comps < g.vertex_count() / 2);
    }

    #[test]
    fn timestamps_span_the_workload_window() {
        let g = generate(SnbParams::new(0.05, 9));
        let mt = g.schema().vertex_type_id("Message").unwrap();
        let mut years: std::collections::BTreeSet<i64> = Default::default();
        for &m in g.vertices_of_type(mt) {
            let ts = match g.vertex_attr_by_name(m, "creationDate").unwrap() {
                Value::DateTime(t) => *t,
                other => panic!("{other:?}"),
            };
            years.insert(pgraph::datetime::year(ts));
        }
        for y in 2010..=2012 {
            assert!(years.contains(&y), "no messages in {y}");
        }
    }
}
