//! # ldbc-snb — an LDBC Social Network Benchmark-like workload
//!
//! The paper's large-scale experiments (Section 7.1 and Appendix B) run
//! on LDBC SNB graphs at scale factors 1–1000 and on the benchmark's
//! interactive-complex (IC) query family with the `KNOWS` radius widened
//! from 2 to 3 and 4 hops. This crate provides a laptop-scale stand-in:
//!
//! * [`schema`] — an SNB-like property-graph schema (Person, City,
//!   Country, Company, Forum, Message, Tag, with `Knows` **undirected**
//!   as in SNB),
//! * [`generator`] — a seeded synthetic generator parameterized by a
//!   scale factor, with power-law-ish `Knows` degrees and correlated
//!   message locations,
//! * [`queries`] — the hop-parameterized IC queries (ic3, ic5, ic6, ic9,
//!   ic11) rendered as GSQL text, plus the Appendix-B pair `Q_gs`
//!   (GROUPING-SETS simulation: every aggregate computed for every
//!   grouping set) and `Q_acc` (dedicated accumulator per grouping set).
//!
//! Substitution note (see DESIGN.md): the official generator and
//! terabyte-scale datasets are replaced by this seeded generator because
//! the experiments measure *shapes* — growth with hops/scale and the
//! constant-factor speedup of targeted accumulation — which depend on
//! schema and distribution, not absolute size.

pub mod generator;
pub mod queries;
pub mod schema;

pub use generator::{generate, generate_into, generate_streamed, GenReport, GraphSink, SnbParams};
pub use schema::snb_schema;
