//! The paper's benchmark query workloads as GSQL text.
//!
//! * `ic3/ic5/ic6/ic9/ic11(hops)` — the LDBC interactive-complex queries
//!   exercised in Section 7.1, with the `Knows` radius as a parameter
//!   (the paper widened it from 2 to 3 and 4). Each query starts from a
//!   person parameter `p`, expands friends via `Knows*1..H` (a Kleene
//!   pattern — polynomial under counting semantics, exponential under
//!   enumeration), then aggregates into multiplicity-insensitive
//!   accumulators so results agree across semantics.
//! * `q_gs()` / `q_acc()` — the Appendix-B pair: multi-grouping-set
//!   aggregation in GROUPING-SETS style (all aggregates computed for
//!   every grouping set) vs dedicated-accumulator style.

/// IC3-like: friends within `hops` who authored messages located in both
/// `countryX` and `countryY`; top 20 by total message count.
pub fn ic3(hops: usize) -> String {
    format!(
        r#"
CREATE QUERY ic3 (vertex<Person> p, string countryX, string countryY) {{
  TYPEDEF TUPLE<INT total, INT xc, INT fid> Rec;
  SumAccum<int> @xc, @yc;
  HeapAccum<Rec>(20, total DESC, fid ASC) @@top;
  F = SELECT f FROM Person:p -(Knows*1..{hops})- Person:f WHERE f <> p;
  X = SELECT f FROM F:f -(<HasCreator)- Message:m -(MsgIn>)- Country:c
      WHERE c.name == countryX
      ACCUM f.@xc += 1;
  Y = SELECT f FROM F:f -(<HasCreator)- Message:m -(MsgIn>)- Country:c
      WHERE c.name == countryY
      ACCUM f.@yc += 1;
  Z = SELECT f FROM F:f
      WHERE f.@xc > 0 AND f.@yc > 0
      POST_ACCUM @@top += (f.@xc + f.@yc, f.@xc, f.id());
  PRINT @@top;
}}
"#
    )
}

/// IC5-like: forums that friends within `hops` joined after `minDate`;
/// top 20 forums by joining-friend count.
pub fn ic5(hops: usize) -> String {
    format!(
        r#"
CREATE QUERY ic5 (vertex<Person> p, datetime minDate) {{
  TYPEDEF TUPLE<INT cnt, INT fid> Rec;
  SumAccum<int> @cnt;
  HeapAccum<Rec>(20, cnt DESC, fid ASC) @@top;
  F = SELECT f FROM Person:p -(Knows*1..{hops})- Person:f WHERE f <> p;
  G = SELECT fo FROM F:f -(<HasMember:e)- Forum:fo
      WHERE e.joinDate > minDate
      ACCUM fo.@cnt += 1
      POST_ACCUM @@top += (fo.@cnt, fo.id());
  PRINT @@top;
}}
"#
    )
}

/// IC6-like: tags co-occurring with `tagName` on messages authored by
/// friends within `hops`; top 10 co-tags by message count.
pub fn ic6(hops: usize) -> String {
    format!(
        r#"
CREATE QUERY ic6 (vertex<Person> p, string tagName) {{
  TYPEDEF TUPLE<INT cnt, INT tid> Rec;
  SumAccum<int> @cnt;
  HeapAccum<Rec>(10, cnt DESC, tid ASC) @@top;
  F = SELECT f FROM Person:p -(Knows*1..{hops})- Person:f WHERE f <> p;
  M = SELECT m FROM F:f -(<HasCreator)- Message:m -(HasTag>)- Tag:t
      WHERE t.name == tagName;
  T = SELECT t2 FROM M:m -(HasTag>)- Tag:t2
      WHERE t2.name <> tagName
      ACCUM t2.@cnt += 1
      POST_ACCUM @@top += (t2.@cnt, t2.id());
  PRINT @@top;
}}
"#
    )
}

/// IC9-like: the 20 most recent messages by friends within `hops`
/// created before `maxDate`.
pub fn ic9(hops: usize) -> String {
    format!(
        r#"
CREATE QUERY ic9 (vertex<Person> p, datetime maxDate) {{
  TYPEDEF TUPLE<INT date, INT mid> Rec;
  HeapAccum<Rec>(20, date DESC, mid ASC) @@top;
  F = SELECT f FROM Person:p -(Knows*1..{hops})- Person:f WHERE f <> p;
  M = SELECT m FROM F:f -(<HasCreator)- Message:m
      WHERE m.creationDate < maxDate
      ACCUM @@top += (m.creationDate, m.id());
  PRINT @@top;
}}
"#
    )
}

/// IC11-like: friends within `hops` working at companies in `country`
/// since before `beforeYear`; top 10 by earliest start.
pub fn ic11(hops: usize) -> String {
    format!(
        r#"
CREATE QUERY ic11 (vertex<Person> p, string country, int beforeYear) {{
  TYPEDEF TUPLE<INT yr, INT fid, INT cid> Rec;
  HeapAccum<Rec>(10, yr ASC, fid ASC, cid ASC) @@top;
  F = SELECT f FROM Person:p -(Knows*1..{hops})- Person:f WHERE f <> p;
  W = SELECT f FROM F:f -(WorkAt>:w)- Company:co -(CompanyIn>)- Country:ct
      WHERE ct.name == country AND w.workFrom < beforeYear
      ACCUM @@top += (w.workFrom, f.id(), co.id());
  PRINT @@top;
}}
"#
    )
}

/// The shared FROM/WHERE body of the Appendix-B workload: persons, the
/// city they live in, and the messages they liked, published 2010–2012.
const APPENDIX_B_BODY: &str = r#"
  S = SELECT pp
  FROM  Person:pp -(LivesIn>)- City:ct, Person:pp -(Likes>)- Message:m
  WHERE year(m.creationDate) >= 2010 AND year(m.creationDate) <= 2012
"#;

/// `Q_acc` (Appendix B): dedicated accumulators — each grouping set
/// computes **only** the aggregates it needs.
///
/// * set (i) per publication year: six capacity-bounded heaps,
/// * set (ii) per (city, browser, year, month, length): a count,
/// * set (iii) per (city, gender, browser, year, month): average length.
pub fn q_acc() -> String {
    format!(
        r#"
CREATE QUERY QAcc () {{
  TYPEDEF TUPLE<INT date, INT len, INT mid> DL;
  TYPEDEF TUPLE<INT bday, INT len, INT mid> BL;
  GroupByAccum<int y,
    HeapAccum<DL>(20, date DESC, len DESC) recent,
    HeapAccum<DL>(20, date ASC, len DESC) earliest,
    HeapAccum<DL>(20, len DESC, date DESC) longest,
    HeapAccum<DL>(20, len ASC, date DESC) shortest,
    HeapAccum<BL>(10, bday ASC, len DESC) oldestAuth,
    HeapAccum<BL>(10, bday DESC, len DESC) youngestAuth> @@perYear;
  GroupByAccum<string city, string browser, int y, int mo, int len,
    SumAccum<int> cnt> @@gs2;
  GroupByAccum<string city, string gender, string browser, int y, int mo,
    AvgAccum avgLen> @@gs3;
{body}
  ACCUM
    @@perYear += (year(m.creationDate) ->
        (m.creationDate, m.length, m.id()),
        (m.creationDate, m.length, m.id()),
        (m.creationDate, m.length, m.id()),
        (m.creationDate, m.length, m.id()),
        (pp.birthday, m.length, m.id()),
        (pp.birthday, m.length, m.id())),
    @@gs2 += (ct.name, m.browser, year(m.creationDate), month(m.creationDate), m.length -> 1),
    @@gs3 += (ct.name, pp.gender, m.browser, year(m.creationDate), month(m.creationDate) -> m.length);
  PRINT @@perYear.size(), @@gs2.size(), @@gs3.size();
}}
"#,
        body = APPENDIX_B_BODY
    )
}

/// `Q_gs` (Appendix B): GROUPING-SETS simulation per paper Example 12 —
/// one wide `GroupByAccum` over the union of all grouping keys, with
/// **all eight** aggregates nested, fed once per grouping set with NULLs
/// in the unused key positions. Wasteful exactly as the paper describes:
/// every grouping set pays for every aggregate.
pub fn q_gs() -> String {
    let all_aggs = "(m.creationDate, m.length, m.id()),
        (m.creationDate, m.length, m.id()),
        (m.creationDate, m.length, m.id()),
        (m.creationDate, m.length, m.id()),
        (pp.birthday, m.length, m.id()),
        (pp.birthday, m.length, m.id()),
        1,
        m.length";
    format!(
        r#"
CREATE QUERY QGs () {{
  TYPEDEF TUPLE<INT date, INT len, INT mid> DL;
  TYPEDEF TUPLE<INT bday, INT len, INT mid> BL;
  GroupByAccum<int y, string city, string gender, string browser, int mo, int len,
    HeapAccum<DL>(20, date DESC, len DESC) recent,
    HeapAccum<DL>(20, date ASC, len DESC) earliest,
    HeapAccum<DL>(20, len DESC, date DESC) longest,
    HeapAccum<DL>(20, len ASC, date DESC) shortest,
    HeapAccum<BL>(10, bday ASC, len DESC) oldestAuth,
    HeapAccum<BL>(10, bday DESC, len DESC) youngestAuth,
    SumAccum<int> cnt,
    AvgAccum avgLen> @@gs;
{body}
  ACCUM
    @@gs += (year(m.creationDate), NULL, NULL, NULL, NULL, NULL ->
        {aggs}),
    @@gs += (year(m.creationDate), ct.name, NULL, m.browser, month(m.creationDate), m.length ->
        {aggs}),
    @@gs += (year(m.creationDate), ct.name, pp.gender, m.browser, month(m.creationDate), NULL ->
        {aggs});
  PRINT @@gs.size();
}}
"#,
        body = APPENDIX_B_BODY,
        aggs = all_aggs
    )
}

/// IS1-like: a person's profile (name, gender, browser, birthday, city).
pub fn is1() -> String {
    r#"
CREATE QUERY is1 (vertex<Person> p) {
  SELECT DISTINCT q.firstName, q.lastName, q.gender, q.browser, c.name AS city INTO Profile
  FROM Person:q -(LivesIn>)- City:c
  WHERE q == p;
}
"#
    .to_string()
}

/// IS2-like: the 10 most recent messages created by a person.
pub fn is2() -> String {
    r#"
CREATE QUERY is2 (vertex<Person> p) {
  TYPEDEF TUPLE<INT date, INT mid> Rec;
  HeapAccum<Rec>(10, date DESC, mid ASC) @@recent;
  M = SELECT m FROM Person:p -(<HasCreator)- Message:m
      ACCUM @@recent += (m.creationDate, m.id());
  PRINT @@recent;
}
"#
    .to_string()
}

/// IS3-like: a person's direct friends with friendship date, most recent
/// friendships first.
pub fn is3() -> String {
    r#"
CREATE QUERY is3 (vertex<Person> p) {
  SELECT DISTINCT f.id AS fid, f.firstName, f.lastName, e.since AS since INTO Friends
  FROM Person:p -(Knows:e)- Person:f
  ORDER BY e.since DESC, f.id ASC;
}
"#
    .to_string()
}

/// IS5-like: the creator of a message.
pub fn is5() -> String {
    r#"
CREATE QUERY is5 (vertex<Message> m) {
  SELECT DISTINCT q.id AS pid, q.firstName, q.lastName INTO Creator
  FROM Message:m -(HasCreator>)- Person:q;
}
"#
    .to_string()
}

/// IS7-like: direct replies to a message, with their authors.
pub fn is7() -> String {
    r#"
CREATE QUERY is7 (vertex<Message> m) {
  SELECT DISTINCT r.id AS rid, r.creationDate AS date, q.id AS author INTO Replies
  FROM Message:m -(<ReplyOf)- Message:r -(HasCreator>)- Person:q
  ORDER BY r.creationDate DESC, r.id ASC;
}
"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsql_core::parser::parse_query;

    #[test]
    fn all_queries_parse() {
        for hops in [2, 3, 4] {
            for q in [ic3(hops), ic5(hops), ic6(hops), ic9(hops), ic11(hops)] {
                parse_query(&q).unwrap_or_else(|e| panic!("{e}\n{q}"));
            }
        }
        parse_query(&q_acc()).unwrap_or_else(|e| panic!("{e}\n{}", q_acc()));
        parse_query(&q_gs()).unwrap_or_else(|e| panic!("{e}\n{}", q_gs()));
    }
}
