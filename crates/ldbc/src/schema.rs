//! The SNB-like schema.
//!
//! Entity and relationship names follow LDBC SNB, with two deliberate
//! simplifications documented in DESIGN.md: `Post` and `Comment` are
//! merged into a single `Message` vertex type (the IC queries under test
//! treat them uniformly), and organization types are reduced to
//! `Company`. `Knows` is **undirected**, which exercises the mixed
//! directed/undirected data model DARPEs exist for.

use pgraph::schema::{AttrDef, Schema};
use pgraph::value::ValueType;

/// Builds the SNB-like schema.
pub fn snb_schema() -> Schema {
    let mut s = Schema::new();
    s.add_vertex_type(
        "Person",
        vec![
            AttrDef::new("id", ValueType::Int),
            AttrDef::new("firstName", ValueType::Str),
            AttrDef::new("lastName", ValueType::Str),
            AttrDef::new("gender", ValueType::Str),
            AttrDef::new("browser", ValueType::Str),
            AttrDef::new("birthday", ValueType::DateTime),
            AttrDef::new("creationDate", ValueType::DateTime),
        ],
    )
    .unwrap();
    s.add_vertex_type("City", vec![AttrDef::new("name", ValueType::Str)]).unwrap();
    s.add_vertex_type("Country", vec![AttrDef::new("name", ValueType::Str)]).unwrap();
    s.add_vertex_type("Company", vec![AttrDef::new("name", ValueType::Str)]).unwrap();
    s.add_vertex_type(
        "Forum",
        vec![
            AttrDef::new("title", ValueType::Str),
            AttrDef::new("creationDate", ValueType::DateTime),
        ],
    )
    .unwrap();
    s.add_vertex_type(
        "Message",
        vec![
            AttrDef::new("id", ValueType::Int),
            AttrDef::new("creationDate", ValueType::DateTime),
            AttrDef::new("length", ValueType::Int),
            AttrDef::new("browser", ValueType::Str),
            AttrDef::new("isPost", ValueType::Bool),
        ],
    )
    .unwrap();
    s.add_vertex_type("Tag", vec![AttrDef::new("name", ValueType::Str)]).unwrap();

    // Knows is undirected, as in SNB.
    s.add_edge_type("Knows", false, vec![AttrDef::new("since", ValueType::DateTime)])
        .unwrap();
    s.add_edge_type("LivesIn", true, vec![]).unwrap(); // Person -> City
    s.add_edge_type("PartOf", true, vec![]).unwrap(); // City -> Country
    s.add_edge_type("WorkAt", true, vec![AttrDef::new("workFrom", ValueType::Int)])
        .unwrap(); // Person -> Company
    s.add_edge_type("CompanyIn", true, vec![]).unwrap(); // Company -> Country
    s.add_edge_type("HasCreator", true, vec![]).unwrap(); // Message -> Person
    s.add_edge_type("MsgIn", true, vec![]).unwrap(); // Message -> Country
    s.add_edge_type("HasTag", true, vec![]).unwrap(); // Message -> Tag
    s.add_edge_type("ReplyOf", true, vec![]).unwrap(); // Message -> Message
    s.add_edge_type("HasMember", true, vec![AttrDef::new("joinDate", ValueType::DateTime)])
        .unwrap(); // Forum -> Person
    s.add_edge_type("ContainerOf", true, vec![]).unwrap(); // Forum -> Message
    s.add_edge_type("Likes", true, vec![AttrDef::new("creationDate", ValueType::DateTime)])
        .unwrap(); // Person -> Message
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_builds_with_expected_types() {
        let s = snb_schema();
        assert_eq!(s.vertex_type_count(), 7);
        assert_eq!(s.edge_type_count(), 12);
        let knows = s.edge_type_id("Knows").unwrap();
        assert!(!s.is_directed(knows));
        let likes = s.edge_type_id("Likes").unwrap();
        assert!(s.is_directed(likes));
    }
}
