//! Thompson NFA construction for DARPEs, resolved against a graph schema.

use crate::ast::{Darpe, DarpeDir, Symbol};
use pgraph::graph::Dir;
use pgraph::schema::{ETypeId, Schema};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// A schema-resolved alphabet-symbol predicate: matches concrete adorned
/// edges `(edge type, traversal direction)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymbolSpec {
    /// `None` = wildcard (any edge type).
    pub etype: Option<ETypeId>,
    pub dir: DarpeDir,
}

impl SymbolSpec {
    /// Does an adjacency crossing with type `etype` and direction `dir`
    /// satisfy this spec?
    #[inline]
    pub fn matches(&self, etype: ETypeId, dir: Dir) -> bool {
        if let Some(t) = self.etype {
            if t != etype {
                return false;
            }
        }
        match self.dir {
            DarpeDir::Forward => dir == Dir::Out,
            DarpeDir::Reverse => dir == Dir::In,
            DarpeDir::Undirected => dir == Dir::Und,
            DarpeDir::Any => true,
        }
    }
}

/// DARPE-to-NFA compilation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    UnknownEdgeType(String),
    /// An unadorned named symbol refers to a *directed* edge type — such a
    /// symbol can never match (unadorned means undirected in the paper's
    /// alphabet), which is almost certainly a query bug.
    UndirectedSymbolOnDirectedType(String),
    /// A `>`/`<` adorned symbol refers to an *undirected* edge type.
    DirectedSymbolOnUndirectedType(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownEdgeType(t) => write!(f, "unknown edge type `{t}`"),
            CompileError::UndirectedSymbolOnDirectedType(t) => write!(
                f,
                "edge type `{t}` is directed; use `{t}>` or `<{t}` (unadorned symbols match undirected edges only)"
            ),
            CompileError::DirectedSymbolOnUndirectedType(t) => write!(
                f,
                "edge type `{t}` is undirected; drop the direction adornment"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

/// A compiled DARPE: a Thompson NFA over [`SymbolSpec`]s with a single
/// start and a single accept state.
#[derive(Debug, Clone)]
pub struct CompiledDarpe {
    /// Symbol transitions per state.
    trans: Vec<Vec<(SymbolSpec, u32)>>,
    /// Epsilon transitions per state.
    eps: Vec<Vec<u32>>,
    start: u32,
    accept: u32,
}

struct Builder<'a> {
    schema: &'a Schema,
    trans: Vec<Vec<(SymbolSpec, u32)>>,
    eps: Vec<Vec<u32>>,
}

impl Builder<'_> {
    fn state(&mut self) -> u32 {
        self.trans.push(Vec::new());
        self.eps.push(Vec::new());
        (self.trans.len() - 1) as u32
    }

    fn resolve(&self, s: &Symbol) -> Result<SymbolSpec, CompileError> {
        let etype = match &s.edge_type {
            None => None,
            Some(name) => {
                let id = self
                    .schema
                    .edge_type_id(name)
                    .ok_or_else(|| CompileError::UnknownEdgeType(name.clone()))?;
                let directed = self.schema.is_directed(id);
                match s.dir {
                    DarpeDir::Undirected if directed => {
                        return Err(CompileError::UndirectedSymbolOnDirectedType(name.clone()))
                    }
                    DarpeDir::Forward | DarpeDir::Reverse if !directed => {
                        return Err(CompileError::DirectedSymbolOnUndirectedType(name.clone()))
                    }
                    _ => {}
                }
                Some(id)
            }
        };
        Ok(SymbolSpec { etype, dir: s.dir })
    }

    /// Builds a fragment, returning `(entry, exit)` states.
    fn fragment(&mut self, d: &Darpe) -> Result<(u32, u32), CompileError> {
        match d {
            Darpe::Symbol(s) => {
                let spec = self.resolve(s)?;
                let a = self.state();
                let b = self.state();
                self.trans[a as usize].push((spec, b));
                Ok((a, b))
            }
            Darpe::Concat(parts) => {
                debug_assert!(!parts.is_empty());
                let (first_in, mut cur_out) = self.fragment(&parts[0])?;
                for p in &parts[1..] {
                    let (pin, pout) = self.fragment(p)?;
                    self.eps[cur_out as usize].push(pin);
                    cur_out = pout;
                }
                Ok((first_in, cur_out))
            }
            Darpe::Alt(parts) => {
                let a = self.state();
                let b = self.state();
                for p in parts {
                    let (pin, pout) = self.fragment(p)?;
                    self.eps[a as usize].push(pin);
                    self.eps[pout as usize].push(b);
                }
                Ok((a, b))
            }
            Darpe::Repeat { inner, min, max } => {
                let entry = self.state();
                let mut cur = entry;
                // Mandatory copies.
                for _ in 0..*min {
                    let (pin, pout) = self.fragment(inner)?;
                    self.eps[cur as usize].push(pin);
                    cur = pout;
                }
                match max {
                    None => {
                        // Kleene tail: cur -ε-> loop_in, loop supports 0+ copies.
                        let exit = self.state();
                        let (pin, pout) = self.fragment(inner)?;
                        self.eps[cur as usize].push(exit); // zero extra copies
                        self.eps[cur as usize].push(pin);
                        self.eps[pout as usize].push(pin); // repeat
                        self.eps[pout as usize].push(exit);
                        Ok((entry, exit))
                    }
                    Some(m) => {
                        // (m - min) optional copies chained.
                        let exit = self.state();
                        let mut skip_sources = vec![cur];
                        for _ in *min..*m {
                            let (pin, pout) = self.fragment(inner)?;
                            self.eps[cur as usize].push(pin);
                            cur = pout;
                            skip_sources.push(cur);
                        }
                        for s in skip_sources {
                            self.eps[s as usize].push(exit);
                        }
                        Ok((entry, exit))
                    }
                }
            }
        }
    }
}

/// Resolves a single AST symbol against a schema (used by the query
/// engine for single-edge hops, which enumerate adjacency directly
/// instead of running an automaton).
pub fn resolve_symbol(sym: &Symbol, schema: &Schema) -> Result<SymbolSpec, CompileError> {
    let b = Builder { schema, trans: Vec::new(), eps: Vec::new() };
    b.resolve(sym)
}

impl CompiledDarpe {
    /// Compiles `d` against `schema`, resolving edge-type names.
    pub fn compile(d: &Darpe, schema: &Schema) -> Result<Self, CompileError> {
        let mut b = Builder { schema, trans: Vec::new(), eps: Vec::new() };
        let (start, accept) = b.fragment(d)?;
        Ok(CompiledDarpe { trans: b.trans, eps: b.eps, start, accept })
    }

    /// The reversal of this automaton: accepts exactly the reversed words
    /// (with direction adornments flipped, since traversing a path
    /// backwards crosses each directed edge the other way). Path
    /// reversal is a bijection between `s → t` matches of `self` and
    /// `t → s` matches of the reversal, which lets the engine run
    /// enumerative kernels from whichever endpoint is anchored — the
    /// optimization real planners apply to bound-endpoint patterns.
    pub fn reversed(&self) -> CompiledDarpe {
        let n = self.trans.len();
        let mut trans: Vec<Vec<(SymbolSpec, u32)>> = vec![Vec::new(); n];
        let mut eps: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (s, outs) in self.trans.iter().enumerate() {
            for &(spec, t) in outs {
                let flipped = SymbolSpec {
                    etype: spec.etype,
                    dir: match spec.dir {
                        crate::ast::DarpeDir::Forward => crate::ast::DarpeDir::Reverse,
                        crate::ast::DarpeDir::Reverse => crate::ast::DarpeDir::Forward,
                        other => other,
                    },
                };
                trans[t as usize].push((flipped, s as u32));
            }
        }
        for (s, outs) in self.eps.iter().enumerate() {
            for &t in outs {
                eps[t as usize].push(s as u32);
            }
        }
        CompiledDarpe { trans, eps, start: self.accept, accept: self.start }
    }

    /// Number of NFA states.
    pub fn state_count(&self) -> usize {
        self.trans.len()
    }

    pub fn start(&self) -> u32 {
        self.start
    }

    pub fn accept(&self) -> u32 {
        self.accept
    }

    /// Symbol transitions leaving `state`.
    pub fn transitions(&self, state: u32) -> &[(SymbolSpec, u32)] {
        &self.trans[state as usize]
    }

    /// Extends `set` to its ε-closure.
    pub fn eps_close(&self, set: &mut BTreeSet<u32>) {
        let mut stack: Vec<u32> = set.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for &t in &self.eps[s as usize] {
                if set.insert(t) {
                    stack.push(t);
                }
            }
        }
    }

    /// True iff the empty word (a zero-length path) is accepted.
    pub fn accepts_empty(&self) -> bool {
        let mut set = BTreeSet::from([self.start]);
        self.eps_close(&mut set);
        set.contains(&self.accept)
    }

    /// Simulates the NFA on an explicit adorned word (used by the
    /// enumerative legality semantics to test materialized paths).
    pub fn matches_word(&self, word: &[(ETypeId, Dir)]) -> bool {
        let mut cur = BTreeSet::from([self.start]);
        self.eps_close(&mut cur);
        for &(et, dir) in word {
            let mut next = BTreeSet::new();
            for &s in &cur {
                for &(spec, t) in &self.trans[s as usize] {
                    if spec.matches(et, dir) {
                        next.insert(t);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            self.eps_close(&mut next);
            cur = next;
        }
        cur.contains(&self.accept)
    }

    /// Length of the shortest accepted word, `None` if the language is
    /// empty. (BFS over NFA states; symbol specs are never unsatisfiable
    /// by construction.)
    pub fn min_word_length(&self) -> Option<usize> {
        let mut dist = vec![usize::MAX; self.state_count()];
        let mut q = VecDeque::new();
        dist[self.start as usize] = 0;
        q.push_back(self.start);
        while let Some(s) = q.pop_front() {
            let d = dist[s as usize];
            if s == self.accept {
                return Some(d);
            }
            for &t in &self.eps[s as usize] {
                if dist[t as usize] > d {
                    dist[t as usize] = d;
                    q.push_front(t);
                }
            }
            for &(_, t) in &self.trans[s as usize] {
                if dist[t as usize] > d + 1 {
                    dist[t as usize] = d + 1;
                    q.push_back(t);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use pgraph::schema::AttrDef;
    use pgraph::value::ValueType;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_vertex_type("V", vec![AttrDef::new("name", ValueType::Str)])
            .unwrap();
        s.add_edge_type("E", true, vec![]).unwrap();
        s.add_edge_type("F", true, vec![]).unwrap();
        s.add_edge_type("G", true, vec![]).unwrap();
        s.add_edge_type("H", false, vec![]).unwrap();
        s.add_edge_type("J", true, vec![]).unwrap();
        s
    }

    fn compile(text: &str) -> CompiledDarpe {
        CompiledDarpe::compile(&parse(text).unwrap(), &schema()).unwrap()
    }

    fn et(s: &Schema, name: &str) -> ETypeId {
        s.edge_type_id(name).unwrap()
    }

    #[test]
    fn example2_word_matching() {
        // E> . (F> | <G)* . H . <J
        let s = schema();
        let c = compile("E>.(F>|<G)*.H.<J");
        let e = et(&s, "E");
        let f = et(&s, "F");
        let g = et(&s, "G");
        let h = et(&s, "H");
        let j = et(&s, "J");
        assert!(c.matches_word(&[(e, Dir::Out), (h, Dir::Und), (j, Dir::In)]));
        assert!(c.matches_word(&[
            (e, Dir::Out),
            (f, Dir::Out),
            (g, Dir::In),
            (f, Dir::Out),
            (h, Dir::Und),
            (j, Dir::In)
        ]));
        // Wrong direction on the J edge.
        assert!(!c.matches_word(&[(e, Dir::Out), (h, Dir::Und), (j, Dir::Out)]));
        // Missing H edge.
        assert!(!c.matches_word(&[(e, Dir::Out), (j, Dir::In)]));
    }

    #[test]
    fn kleene_accepts_empty() {
        let c = compile("E>*");
        assert!(c.accepts_empty());
        assert!(!compile("E>").accepts_empty());
        assert!(!compile("E>*1..").accepts_empty());
    }

    #[test]
    fn bounded_repeats() {
        let s = schema();
        let c = compile("E>*2..3");
        let e = et(&s, "E");
        let w = |n: usize| vec![(e, Dir::Out); n];
        assert!(!c.matches_word(&w(1)));
        assert!(c.matches_word(&w(2)));
        assert!(c.matches_word(&w(3)));
        assert!(!c.matches_word(&w(4)));
    }

    #[test]
    fn exact_repeat() {
        let s = schema();
        let c = compile("E>*3");
        let e = et(&s, "E");
        assert!(!c.matches_word(&[(e, Dir::Out); 2]));
        assert!(c.matches_word(&[(e, Dir::Out); 3]));
        assert!(!c.matches_word(&[(e, Dir::Out); 4]));
    }

    #[test]
    fn min_bound_unbounded() {
        let s = schema();
        let c = compile("E>*2..");
        let e = et(&s, "E");
        assert!(!c.matches_word(&[(e, Dir::Out); 1]));
        for n in 2..6 {
            assert!(c.matches_word(&vec![(e, Dir::Out); n]));
        }
    }

    #[test]
    fn wildcard_any_direction() {
        let s = schema();
        let c = compile("_");
        assert!(c.matches_word(&[(et(&s, "E"), Dir::Out)]));
        assert!(c.matches_word(&[(et(&s, "F"), Dir::In)]));
        assert!(c.matches_word(&[(et(&s, "H"), Dir::Und)]));
        let fwd = compile("_>");
        assert!(fwd.matches_word(&[(et(&s, "E"), Dir::Out)]));
        assert!(!fwd.matches_word(&[(et(&s, "E"), Dir::In)]));
    }

    #[test]
    fn min_word_length() {
        assert_eq!(compile("E>*").min_word_length(), Some(0));
        assert_eq!(compile("E>.(F>|<G)*.H.<J").min_word_length(), Some(3));
        assert_eq!(compile("E>*2..5").min_word_length(), Some(2));
        assert_eq!(compile("E>|F>.F>").min_word_length(), Some(1));
    }

    #[test]
    fn reversal_accepts_reversed_adorned_words() {
        let s = schema();
        let e = et(&s, "E");
        let f = et(&s, "F");
        let h = et(&s, "H");
        for text in ["E>", "E>.(F>|<G)*.H.<J", "E>*2..3", "(E>|F>).H", "E>*"] {
            let c = compile(text);
            let r = c.reversed();
            // Enumerate small words and check the reversal property:
            // c accepts w  <=>  r accepts flip(reverse(w)).
            let alphabet = [
                (e, Dir::Out),
                (e, Dir::In),
                (f, Dir::Out),
                (h, Dir::Und),
            ];
            let mut words: Vec<Vec<(pgraph::schema::ETypeId, Dir)>> = vec![vec![]];
            for _ in 0..3 {
                let mut next = Vec::new();
                for w in &words {
                    for &sym in &alphabet {
                        let mut w2 = w.clone();
                        w2.push(sym);
                        next.push(w2);
                    }
                }
                words.extend(next);
            }
            for w in &words {
                let flipped: Vec<(pgraph::schema::ETypeId, Dir)> = w
                    .iter()
                    .rev()
                    .map(|&(t, d)| {
                        let nd = match d {
                            Dir::Out => Dir::In,
                            Dir::In => Dir::Out,
                            Dir::Und => Dir::Und,
                        };
                        (t, nd)
                    })
                    .collect();
                assert_eq!(
                    c.matches_word(w),
                    r.matches_word(&flipped),
                    "reversal property failed for `{text}` on {w:?}"
                );
            }
        }
    }

    #[test]
    fn direction_sanity_errors() {
        let s = schema();
        // H is undirected: H> is a compile error.
        let e = CompiledDarpe::compile(&parse("H>").unwrap(), &s).unwrap_err();
        assert!(matches!(e, CompileError::DirectedSymbolOnUndirectedType(_)));
        // E is directed: unadorned E is a compile error.
        let e = CompiledDarpe::compile(&parse("E").unwrap(), &s).unwrap_err();
        assert!(matches!(e, CompileError::UndirectedSymbolOnDirectedType(_)));
        let e = CompiledDarpe::compile(&parse("Zed>").unwrap(), &s).unwrap_err();
        assert!(matches!(e, CompileError::UnknownEdgeType(_)));
    }
}
