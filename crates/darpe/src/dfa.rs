//! Lazy subset-construction DFA over the adorned alphabet.
//!
//! Why determinize at all? The SDMC counting algorithm (Theorem 6.1)
//! counts *automaton runs* of the product `graph × automaton`. With an
//! NFA, one graph path can have several accepting runs and would be
//! counted several times; with a DFA each path has **exactly one** run,
//! so run counts equal path counts. Determinization is lazy: only the
//! subsets actually reachable while traversing a given graph are
//! materialized, and transitions are memoized per `(state, type,
//! direction)` — the effective alphabet is the small set of adorned edge
//! types occurring in the graph.

use crate::nfa::CompiledDarpe;
use pgraph::fxhash::FxHashMap;
use pgraph::graph::Dir;
use pgraph::schema::ETypeId;
use std::collections::BTreeSet;

/// Identifier of a lazily-materialized DFA state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DfaStateId(pub u32);

/// A lazily determinized view of a [`CompiledDarpe`]. Holds a mutable
/// memo table; create one per traversal (cheap) or share across
/// traversals of the same graph for maximal reuse.
pub struct Dfa<'a> {
    nfa: &'a CompiledDarpe,
    /// Interned NFA-state subsets.
    subsets: Vec<Box<[u32]>>,
    accepting: Vec<bool>,
    index: FxHashMap<Box<[u32]>, DfaStateId>,
    /// Memoized transitions; `None` = dead.
    memo: FxHashMap<(DfaStateId, ETypeId, Dir), Option<DfaStateId>>,
    start: DfaStateId,
}

impl<'a> Dfa<'a> {
    /// Creates the DFA view with its start state materialized.
    pub fn new(nfa: &'a CompiledDarpe) -> Self {
        let mut dfa = Dfa {
            nfa,
            subsets: Vec::new(),
            accepting: Vec::new(),
            index: FxHashMap::default(),
            memo: FxHashMap::default(),
            start: DfaStateId(0),
        };
        let mut set = BTreeSet::from([nfa.start()]);
        nfa.eps_close(&mut set);
        dfa.start = dfa.intern(set);
        dfa
    }

    fn intern(&mut self, set: BTreeSet<u32>) -> DfaStateId {
        let key: Box<[u32]> = set.iter().copied().collect();
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let id = DfaStateId(self.subsets.len() as u32);
        self.accepting.push(set.contains(&self.nfa.accept()));
        self.index.insert(key.clone(), id);
        self.subsets.push(key);
        id
    }

    /// The start state.
    #[inline]
    pub fn start(&self) -> DfaStateId {
        self.start
    }

    /// Whether `s` is accepting.
    #[inline]
    pub fn is_accepting(&self, s: DfaStateId) -> bool {
        self.accepting[s.0 as usize]
    }

    /// Number of DFA states materialized so far.
    pub fn materialized_states(&self) -> usize {
        self.subsets.len()
    }

    /// Transition on the adorned symbol `(etype, dir)`; `None` means the
    /// run dies.
    pub fn next(&mut self, s: DfaStateId, etype: ETypeId, dir: Dir) -> Option<DfaStateId> {
        if let Some(&hit) = self.memo.get(&(s, etype, dir)) {
            return hit;
        }
        let mut out = BTreeSet::new();
        for &ns in self.subsets[s.0 as usize].iter() {
            for &(spec, t) in self.nfa.transitions(ns) {
                if spec.matches(etype, dir) {
                    out.insert(t);
                }
            }
        }
        let result = if out.is_empty() {
            None
        } else {
            self.nfa.eps_close(&mut out);
            Some(self.intern(out))
        };
        self.memo.insert((s, etype, dir), result);
        result
    }

    /// Runs the DFA over an explicit word; used by tests to check
    /// NFA/DFA agreement.
    pub fn matches_word(&mut self, word: &[(ETypeId, Dir)]) -> bool {
        let mut s = self.start();
        for &(et, d) in word {
            match self.next(s, et, d) {
                Some(t) => s = t,
                None => return false,
            }
        }
        self.is_accepting(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use pgraph::schema::Schema;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_vertex_type("V", vec![]).unwrap();
        s.add_edge_type("E", true, vec![]).unwrap();
        s.add_edge_type("F", true, vec![]).unwrap();
        s.add_edge_type("H", false, vec![]).unwrap();
        s
    }

    fn words(s: &Schema, max_len: usize) -> Vec<Vec<(ETypeId, Dir)>> {
        // All adorned words up to max_len over {E>, <E, F>, <F, H}.
        let e = s.edge_type_id("E").unwrap();
        let f = s.edge_type_id("F").unwrap();
        let h = s.edge_type_id("H").unwrap();
        let alphabet = [
            (e, Dir::Out),
            (e, Dir::In),
            (f, Dir::Out),
            (f, Dir::In),
            (h, Dir::Und),
        ];
        let mut out: Vec<Vec<(ETypeId, Dir)>> = vec![vec![]];
        let mut frontier = vec![vec![]];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for w in &frontier {
                for &sym in &alphabet {
                    let mut w2: Vec<(ETypeId, Dir)> = w.clone();
                    w2.push(sym);
                    next.push(w2);
                }
            }
            out.extend(next.iter().cloned());
            frontier = next;
        }
        out
    }

    #[test]
    fn dfa_agrees_with_nfa_exhaustively() {
        let s = schema();
        for text in ["E>", "E>*", "E>.(F>|<E)*.H", "E>*2..3", "(E>|F>).H", "H.H.H"] {
            let nfa = CompiledDarpe::compile(&parse(text).unwrap(), &s).unwrap();
            let mut dfa = Dfa::new(&nfa);
            for w in words(&s, 4) {
                assert_eq!(
                    nfa.matches_word(&w),
                    dfa.matches_word(&w),
                    "disagreement on `{text}` for word {w:?}"
                );
            }
        }
    }

    #[test]
    fn dead_transitions_are_none() {
        let s = schema();
        let nfa = CompiledDarpe::compile(&parse("E>").unwrap(), &s).unwrap();
        let mut dfa = Dfa::new(&nfa);
        let f = s.edge_type_id("F").unwrap();
        assert_eq!(dfa.next(dfa.start(), f, Dir::Out), None);
    }

    #[test]
    fn kleene_start_is_accepting() {
        let s = schema();
        let nfa = CompiledDarpe::compile(&parse("E>*").unwrap(), &s).unwrap();
        let dfa = Dfa::new(&nfa);
        assert!(dfa.is_accepting(dfa.start()));
    }

    #[test]
    fn memoization_reuses_states() {
        let s = schema();
        let e = s.edge_type_id("E").unwrap();
        let nfa = CompiledDarpe::compile(&parse("E>*").unwrap(), &s).unwrap();
        let mut dfa = Dfa::new(&nfa);
        let s1 = dfa.next(dfa.start(), e, Dir::Out).unwrap();
        let s2 = dfa.next(s1, e, Dir::Out).unwrap();
        // E>* loops: after the first step the subset is stable.
        assert_eq!(s1, s2);
        assert!(dfa.materialized_states() <= 2);
    }
}
