//! DARPE abstract syntax and text parser.
//!
//! Grammar (paper Section 2, extended with direction adornments):
//!
//! ```text
//! rpe    -> alt
//! alt    -> cat ('|' cat)*
//! cat    -> rep ('.' rep)*
//! rep    -> atom ('*' bounds?)*
//! atom   -> symbol | '(' rpe ')'
//! symbol -> '<' name | name '>' | name          (name = EdgeType | '_')
//! bounds -> N? '..' N?
//! ```

use std::fmt;

/// The direction adornment of a DARPE symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DarpeDir {
    /// `E>` — directed edge traversed forward.
    Forward,
    /// `<E` — directed edge traversed backward.
    Reverse,
    /// `E` — undirected edge.
    Undirected,
    /// Unadorned wildcard `_`: any edge, traversed any legal way. Only the
    /// wildcard gets this adornment (a *named* unadorned type means
    /// "undirected", per the paper's alphabet).
    Any,
}

/// One alphabet symbol: an optional edge-type name (`None` = wildcard `_`)
/// plus a direction adornment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Symbol {
    pub edge_type: Option<String>,
    pub dir: DarpeDir,
}

/// A DARPE expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Darpe {
    Symbol(Symbol),
    Concat(Vec<Darpe>),
    Alt(Vec<Darpe>),
    /// `inner * min..max`; `max = None` means unbounded. Plain `*` is
    /// `min = 0, max = None`.
    Repeat {
        inner: Box<Darpe>,
        min: u32,
        max: Option<u32>,
    },
}

impl Darpe {
    /// If the whole expression is one symbol (a single-edge hop that can
    /// bind an edge variable), return it.
    pub fn as_single_symbol(&self) -> Option<&Symbol> {
        match self {
            Darpe::Symbol(s) => Some(s),
            Darpe::Concat(xs) | Darpe::Alt(xs) if xs.len() == 1 => xs[0].as_single_symbol(),
            _ => None,
        }
    }

    /// True if the expression contains an unbounded repetition.
    pub fn has_unbounded_repeat(&self) -> bool {
        match self {
            Darpe::Symbol(_) => false,
            Darpe::Concat(xs) | Darpe::Alt(xs) => xs.iter().any(Darpe::has_unbounded_repeat),
            Darpe::Repeat { inner, max, .. } => max.is_none() || inner.has_unbounded_repeat(),
        }
    }

    /// The unique length of all words in the language, when one exists —
    /// the *fixed-unique-length* class of Section 6, for which
    /// all-shortest-paths semantics coincides with unrestricted semantics.
    pub fn fixed_unique_length(&self) -> Option<usize> {
        match self {
            Darpe::Symbol(_) => Some(1),
            Darpe::Concat(xs) => xs.iter().map(Darpe::fixed_unique_length).sum(),
            Darpe::Alt(xs) => {
                let mut lens = xs.iter().map(Darpe::fixed_unique_length);
                let first = lens.next()??;
                for l in lens {
                    if l? != first {
                        return None;
                    }
                }
                Some(first)
            }
            Darpe::Repeat { inner, min, max } => {
                if *max == Some(*min) {
                    Some(inner.fixed_unique_length()? * (*min as usize))
                } else {
                    None
                }
            }
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = self.edge_type.as_deref().unwrap_or("_");
        match self.dir {
            DarpeDir::Forward => write!(f, "{name}>"),
            DarpeDir::Reverse => write!(f, "<{name}"),
            DarpeDir::Undirected | DarpeDir::Any => write!(f, "{name}"),
        }
    }
}

impl fmt::Display for Darpe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Darpe::Symbol(s) => write!(f, "{s}"),
            Darpe::Concat(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(".")?;
                    }
                    if matches!(x, Darpe::Alt(_)) {
                        write!(f, "({x})")?;
                    } else {
                        write!(f, "{x}")?;
                    }
                }
                Ok(())
            }
            Darpe::Alt(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        f.write_str("|")?;
                    }
                    write!(f, "{x}")?;
                }
                Ok(())
            }
            Darpe::Repeat { inner, min, max } => {
                if matches!(**inner, Darpe::Symbol(_)) {
                    write!(f, "{inner}*")?;
                } else {
                    write!(f, "({inner})*")?;
                }
                match (min, max) {
                    (0, None) => Ok(()),
                    (m, None) => write!(f, "{m}.."),
                    (m, Some(x)) => write!(f, "{m}..{x}"),
                }
            }
        }
    }
}

/// A DARPE text-parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub pos: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DARPE parse error at offset {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { pos: self.pos, msg: msg.into() })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            None
        } else {
            Some(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
        }
    }

    fn number(&mut self) -> Option<u32> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start {
            None
        } else {
            std::str::from_utf8(&self.src[start..self.pos])
                .ok()?
                .parse()
                .ok()
        }
    }

    fn alt(&mut self) -> Result<Darpe, ParseError> {
        let mut parts = vec![self.cat()?];
        while self.eat(b'|') {
            parts.push(self.cat()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Darpe::Alt(parts)
        })
    }

    fn cat(&mut self) -> Result<Darpe, ParseError> {
        let mut parts = vec![self.rep()?];
        while self.eat(b'.') {
            // Guard against `..` of a bounds expression leaking here.
            parts.push(self.rep()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Darpe::Concat(parts)
        })
    }

    fn rep(&mut self) -> Result<Darpe, ParseError> {
        let mut node = self.atom()?;
        while self.eat(b'*') {
            let (min, max) = self.bounds()?;
            node = Darpe::Repeat { inner: Box::new(node), min, max };
        }
        Ok(node)
    }

    /// Parses the optional `N?..N?` after `*`. With no bounds: `(0, None)`.
    /// A single number with no `..` (e.g. `E>*3`) means exactly-N.
    fn bounds(&mut self) -> Result<(u32, Option<u32>), ParseError> {
        let lo = self.number();
        self.skip_ws();
        let has_dots = self.src[self.pos..].starts_with(b"..");
        if has_dots {
            self.pos += 2;
            let hi = self.number();
            let min = lo.unwrap_or(0);
            if let Some(h) = hi {
                if h < min {
                    return self.err(format!("bounds {min}..{h} are empty"));
                }
            }
            Ok((min, hi))
        } else if let Some(n) = lo {
            Ok((n, Some(n)))
        } else {
            Ok((0, None))
        }
    }

    fn atom(&mut self) -> Result<Darpe, ParseError> {
        match self.peek() {
            Some(b'(') => {
                self.bump();
                let inner = self.alt()?;
                if !self.eat(b')') {
                    return self.err("expected `)`");
                }
                Ok(inner)
            }
            Some(b'<') => {
                self.bump();
                let name = match self.ident() {
                    Some(n) => n,
                    None => return self.err("expected edge type after `<`"),
                };
                Ok(Darpe::Symbol(mk_symbol(name, DarpeDir::Reverse)))
            }
            Some(c) if c.is_ascii_alphanumeric() || c == b'_' => {
                let name = self.ident().unwrap();
                if self.eat(b'>') {
                    Ok(Darpe::Symbol(mk_symbol(name, DarpeDir::Forward)))
                } else if name == "_" {
                    Ok(Darpe::Symbol(Symbol { edge_type: None, dir: DarpeDir::Any }))
                } else {
                    Ok(Darpe::Symbol(mk_symbol(name, DarpeDir::Undirected)))
                }
            }
            Some(c) => self.err(format!("unexpected character `{}`", c as char)),
            None => self.err("unexpected end of DARPE"),
        }
    }
}

fn mk_symbol(name: String, dir: DarpeDir) -> Symbol {
    if name == "_" {
        Symbol { edge_type: None, dir }
    } else {
        Symbol { edge_type: Some(name), dir }
    }
}

/// Parses a DARPE from text.
pub fn parse(text: &str) -> Result<Darpe, ParseError> {
    let mut p = Parser { src: text.as_bytes(), pos: 0 };
    let d = p.alt()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return p.err("trailing input after DARPE");
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(name: &str, dir: DarpeDir) -> Darpe {
        Darpe::Symbol(mk_symbol(name.to_string(), dir))
    }

    #[test]
    fn single_symbols() {
        assert_eq!(parse("E>").unwrap(), sym("E", DarpeDir::Forward));
        assert_eq!(parse("<E").unwrap(), sym("E", DarpeDir::Reverse));
        assert_eq!(parse("E").unwrap(), sym("E", DarpeDir::Undirected));
        assert_eq!(
            parse("_").unwrap(),
            Darpe::Symbol(Symbol { edge_type: None, dir: DarpeDir::Any })
        );
        assert_eq!(parse("_>").unwrap(), sym("_", DarpeDir::Forward));
        assert_eq!(parse("<_").unwrap(), sym("_", DarpeDir::Reverse));
    }

    #[test]
    fn paper_example2_parses() {
        // E> . (F> | <G)* . H . <J
        let d = parse("E>.(F>|<G)*.H.<J").unwrap();
        match &d {
            Darpe::Concat(parts) => {
                assert_eq!(parts.len(), 4);
                assert_eq!(parts[0], sym("E", DarpeDir::Forward));
                assert!(matches!(&parts[1], Darpe::Repeat { min: 0, max: None, .. }));
                assert_eq!(parts[2], sym("H", DarpeDir::Undirected));
                assert_eq!(parts[3], sym("J", DarpeDir::Reverse));
            }
            other => panic!("expected concat, got {other:?}"),
        }
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(parse(" E> . ( F> | <G )* ").unwrap(), parse("E>.(F>|<G)*").unwrap());
    }

    #[test]
    fn bounds_forms() {
        let d = parse("E>*2..5").unwrap();
        assert!(matches!(d, Darpe::Repeat { min: 2, max: Some(5), .. }));
        let d = parse("E>*..5").unwrap();
        assert!(matches!(d, Darpe::Repeat { min: 0, max: Some(5), .. }));
        let d = parse("E>*2..").unwrap();
        assert!(matches!(d, Darpe::Repeat { min: 2, max: None, .. }));
        let d = parse("E>*3").unwrap();
        assert!(matches!(d, Darpe::Repeat { min: 3, max: Some(3), .. }));
        assert!(parse("E>*5..2").is_err());
    }

    #[test]
    fn alternation_precedence() {
        // a>.b> | c> groups as (a.b) | c
        let d = parse("a>.b>|c>").unwrap();
        match d {
            Darpe::Alt(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(&parts[0], Darpe::Concat(xs) if xs.len() == 2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_report_position() {
        let e = parse("E>.(F>").unwrap_err();
        assert!(e.pos >= 6, "pos {} msg {}", e.pos, e.msg);
        assert!(parse("").is_err());
        assert!(parse("E> garbage~").is_err());
        assert!(parse("<").is_err());
    }

    #[test]
    fn fixed_unique_length_classification() {
        assert_eq!(parse("A>.(B>|D>)._>.A>").unwrap().fixed_unique_length(), Some(4));
        assert_eq!(parse("E>*").unwrap().fixed_unique_length(), None);
        assert_eq!(parse("A>|B>.C>").unwrap().fixed_unique_length(), None);
        assert_eq!(parse("E>*3").unwrap().fixed_unique_length(), Some(3));
        assert_eq!(parse("(A>.B>)|(C>.D>)").unwrap().fixed_unique_length(), Some(2));
    }

    #[test]
    fn unbounded_detection() {
        assert!(parse("E>*").unwrap().has_unbounded_repeat());
        assert!(parse("E>.(F>*2..)").unwrap().has_unbounded_repeat());
        assert!(!parse("E>*1..4").unwrap().has_unbounded_repeat());
        assert!(!parse("E>.F>").unwrap().has_unbounded_repeat());
    }

    #[test]
    fn display_round_trips() {
        for text in ["E>", "<E", "E", "E>.(F>|<G)*.H.<J", "E>*2..5", "A>.(B>|D>)._>.A>"] {
            let d = parse(text).unwrap();
            let d2 = parse(&d.to_string()).unwrap();
            assert_eq!(d, d2, "round-trip failed for `{text}` -> `{d}`");
        }
    }

    #[test]
    fn single_symbol_detection() {
        assert!(parse("E>").unwrap().as_single_symbol().is_some());
        assert!(parse("(E>)").unwrap().as_single_symbol().is_some());
        assert!(parse("E>.F>").unwrap().as_single_symbol().is_none());
        assert!(parse("E>*").unwrap().as_single_symbol().is_none());
    }
}
