//! # darpe — Direction-Aware Regular Path Expressions
//!
//! Section 2 of the paper extends classical regular path expressions to
//! graphs mixing directed and undirected edges. For each edge type `E`
//! the *direction-adorned alphabet* contains three symbols:
//!
//! * `E>` — a directed `E`-edge traversed along its direction,
//! * `<E` — a directed `E`-edge traversed against its direction,
//! * `E`  — an undirected `E`-edge.
//!
//! A DARPE is a regular expression over this alphabet, with wildcard
//! `_` / `_>` / `<_` (any edge type), concatenation `.`, alternation `|`,
//! and Kleene repetition `*` with optional bounds `*min..max`.
//!
//! This crate provides:
//! * [`ast`] — the DARPE abstract syntax plus a text parser for the
//!   grammar in the paper (`E> . (F> | <G)* . H . <J`),
//! * [`nfa`]  — Thompson construction over adorned-symbol specs, resolved
//!   against a [`pgraph::Schema`], plus explicit-path matching,
//! * [`dfa`]  — a lazily determinized automaton. Determinization is what
//!   makes **path counting exact**: each graph path has exactly one DFA
//!   run, so the BFS product construction of Theorem 6.1 never counts a
//!   path twice.
//!
//! # Example
//!
//! ```
//! // Example 2 of the paper: E> . (F> | <G)* . H . <J
//! let d = darpe::parse("E>.(F>|<G)*.H.<J").unwrap();
//! assert!(d.has_unbounded_repeat());
//! assert_eq!(d.fixed_unique_length(), None);
//! // The fixed-unique-length pattern of Section 6:
//! let f = darpe::parse("A>.(B>|D>)._>.A>").unwrap();
//! assert_eq!(f.fixed_unique_length(), Some(4));
//! ```

pub mod ast;
pub mod dfa;
pub mod nfa;

pub use ast::{parse, Darpe, DarpeDir, ParseError, Symbol};
pub use dfa::{Dfa, DfaStateId};
pub use nfa::{resolve_symbol, CompileError, CompiledDarpe, SymbolSpec};
