//! Property-based tests for DARPEs: display/parse round trips on random
//! expression trees, NFA/DFA agreement on random words, and reversal
//! involution.

use darpe::{parse, CompiledDarpe, Darpe, DarpeDir, Dfa, Symbol};
use pgraph::graph::Dir;
use pgraph::schema::{ETypeId, Schema};
use proptest::prelude::*;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_vertex_type("V", vec![]).unwrap();
    s.add_edge_type("A", true, vec![]).unwrap();
    s.add_edge_type("B", true, vec![]).unwrap();
    s.add_edge_type("U", false, vec![]).unwrap();
    s
}

/// Random DARPE trees over edge types {A, B (directed), U (undirected)}.
fn arb_darpe() -> impl Strategy<Value = Darpe> {
    let leaf = prop_oneof![
        Just(Darpe::Symbol(Symbol { edge_type: Some("A".into()), dir: DarpeDir::Forward })),
        Just(Darpe::Symbol(Symbol { edge_type: Some("A".into()), dir: DarpeDir::Reverse })),
        Just(Darpe::Symbol(Symbol { edge_type: Some("B".into()), dir: DarpeDir::Forward })),
        Just(Darpe::Symbol(Symbol { edge_type: Some("U".into()), dir: DarpeDir::Undirected })),
        Just(Darpe::Symbol(Symbol { edge_type: None, dir: DarpeDir::Any })),
        Just(Darpe::Symbol(Symbol { edge_type: None, dir: DarpeDir::Forward })),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Darpe::Concat),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Darpe::Alt),
            (inner, 0u32..3, prop::option::of(0u32..2)).prop_map(|(d, min, extra)| {
                Darpe::Repeat {
                    inner: Box::new(d),
                    min,
                    max: extra.map(|e| min + e),
                }
            }),
        ]
    })
}

fn arb_word() -> impl Strategy<Value = Vec<(usize, Dir)>> {
    prop::collection::vec(
        (0usize..3, prop_oneof![Just(Dir::Out), Just(Dir::In), Just(Dir::Und)]),
        0..7,
    )
}

fn resolve_word(s: &Schema, w: &[(usize, Dir)]) -> Vec<(ETypeId, Dir)> {
    let names = ["A", "B", "U"];
    w.iter()
        .map(|&(i, d)| {
            // Undirected type U only occurs with Und; directed with In/Out.
            let (name, dir) = if i == 2 { ("U", Dir::Und) } else { (names[i], if d == Dir::Und { Dir::Out } else { d }) };
            (s.edge_type_id(name).unwrap(), dir)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Display → parse is the identity on random DARPE trees (modulo
    /// structural normalization, checked by re-displaying).
    #[test]
    fn display_parse_round_trip(d in arb_darpe()) {
        let text = d.to_string();
        let parsed = parse(&text).unwrap_or_else(|e| panic!("{e} for `{text}`"));
        prop_assert_eq!(parsed.to_string(), text);
    }

    /// The lazy DFA accepts exactly the words the NFA accepts.
    #[test]
    fn dfa_agrees_with_nfa(d in arb_darpe(), words in prop::collection::vec(arb_word(), 1..12)) {
        let s = schema();
        let Ok(nfa) = CompiledDarpe::compile(&d, &s) else { return Ok(()); };
        let mut dfa = Dfa::new(&nfa);
        for w in &words {
            let word = resolve_word(&s, w);
            prop_assert_eq!(
                nfa.matches_word(&word),
                dfa.matches_word(&word),
                "word {:?} on `{}`", word, d
            );
        }
    }

    /// Reversing twice yields an automaton equivalent to the original
    /// (checked on sample words).
    #[test]
    fn double_reversal_is_identity(d in arb_darpe(), words in prop::collection::vec(arb_word(), 1..12)) {
        let s = schema();
        let Ok(nfa) = CompiledDarpe::compile(&d, &s) else { return Ok(()); };
        let rr = nfa.reversed().reversed();
        for w in &words {
            let word = resolve_word(&s, w);
            prop_assert_eq!(nfa.matches_word(&word), rr.matches_word(&word));
        }
    }

    /// `fixed_unique_length` is sound: if it reports a length, every
    /// accepted sample word has that length, and the shortest word
    /// matches it.
    #[test]
    fn fixed_unique_length_is_sound(d in arb_darpe(), words in prop::collection::vec(arb_word(), 1..16)) {
        if let Some(len) = d.fixed_unique_length() {
            let s = schema();
            let Ok(nfa) = CompiledDarpe::compile(&d, &s) else { return Ok(()); };
            prop_assert_eq!(nfa.min_word_length(), Some(len));
            for w in &words {
                let word = resolve_word(&s, w);
                if nfa.matches_word(&word) {
                    prop_assert_eq!(word.len(), len);
                }
            }
        }
    }

    /// `min_word_length` is a true lower bound on accepted sample words.
    #[test]
    fn min_word_length_is_lower_bound(d in arb_darpe(), words in prop::collection::vec(arb_word(), 1..16)) {
        let s = schema();
        let Ok(nfa) = CompiledDarpe::compile(&d, &s) else { return Ok(()); };
        if let Some(min) = nfa.min_word_length() {
            for w in &words {
                let word = resolve_word(&s, w);
                if nfa.matches_word(&word) {
                    prop_assert!(word.len() >= min);
                }
            }
        } else {
            for w in &words {
                let word = resolve_word(&s, w);
                prop_assert!(!nfa.matches_word(&word), "empty language accepted a word");
            }
        }
    }
}
