//! The tractable-class checker (paper Section 7).
//!
//! Under all-shortest-paths **counting** evaluation, a query block is in
//! the polynomial-time class iff:
//!
//! 1. no variable binds inside the scope of a Kleene star — in this
//!    engine's syntax, an edge variable may only annotate a
//!    *single-symbol* hop (`-(Connected:c)-`), never a repeated or
//!    composite DARPE;
//! 2. no path variables exist (the syntax has none — accumulators
//!    substitute for them, exactly as the paper argues);
//! 3. accumulators receiving inputs from a block whose pattern has a
//!    Kleene hop must admit the multiplicity shortcut — `ListAccum`,
//!    `ArrayAccum` and `SumAccum<STRING>` do not.
//!
//! Violations of (1) are always errors. Violations of (3) are errors
//! only under counting semantics; enumerative semantics materialize
//! every path so order-/multiplicity-sensitive accumulators are fine
//! (and exponential, which is the user's explicit choice).

use crate::ast::{AccStmt, FromItem, SelectBlock};
use crate::error::{Error, Result};
use crate::semantics::PathSemantics;
use accum::{AccumType, UserAccumRegistry};
use pgraph::fxhash::FxHashMap;

/// Validates a SELECT block against the tractable class. `vacc_types` and
/// `gacc_types` map declared accumulator names to their types.
pub fn check_block(
    block: &SelectBlock,
    semantics: PathSemantics,
    vacc_types: &FxHashMap<String, AccumType>,
    gacc_types: &FxHashMap<String, AccumType>,
    registry: &UserAccumRegistry,
) -> Result<()> {
    let mut has_kleene_hop = false;
    for item in &block.from {
        if let FromItem::Pattern { hops, .. } = item {
            for hop in hops {
                let single = hop.darpe.as_single_symbol().is_some();
                if single {
                    continue;
                }
                has_kleene_hop = true;
                if hop.edge_var.is_some() {
                    return Err(Error::compile(format!(
                        "edge variable `{}` binds inside a composite/Kleene DARPE `{}` — \
                         variables in the scope of a Kleene star are outside the tractable \
                         class (paper Section 7); bind variables on single-edge hops only",
                        hop.edge_var.as_deref().unwrap_or("?"),
                        hop.darpe
                    )));
                }
            }
        }
    }
    if !has_kleene_hop || semantics.is_enumerative() {
        return Ok(());
    }
    // Counting semantics + Kleene hop: every accumulator the block feeds
    // must support the multiplicity shortcut.
    for stmt in block.accum.iter().chain(&block.post_accum) {
        let (name, ty) = match stmt {
            AccStmt::VAcc { name, combine: true, .. } => (name, vacc_types.get(name)),
            AccStmt::GAcc { name, combine: true, .. } => (name, gacc_types.get(name)),
            _ => continue,
        };
        if let Some(ty) = ty {
            if !ty.supports_multiplicity_shortcut(registry) {
                return Err(Error::compile(format!(
                    "accumulator `{name}` of type {ty} is multiplicity-sensitive and \
                     order-dependent; it cannot absorb path multiplicities from a Kleene \
                     pattern under all-shortest-paths counting semantics (paper Section 7). \
                     Use Sum/Avg/Bag or a multiplicity-insensitive accumulator, or switch \
                     to an enumerative path semantics"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use pgraph::value::ValueType;

    fn block_of(src: &str) -> SelectBlock {
        let q = parse_query(src).unwrap();
        for stmt in q.body {
            match stmt {
                crate::ast::Stmt::Select(b) => return *b,
                crate::ast::Stmt::VSetAssign {
                    source: crate::ast::VSetSource::Select(b),
                    ..
                } => return *b,
                _ => continue,
            }
        }
        panic!("no select block in fixture");
    }

    fn maps(
        entries: &[(&str, AccumType)],
    ) -> FxHashMap<String, AccumType> {
        entries.iter().map(|(n, t)| (n.to_string(), t.clone())).collect()
    }

    #[test]
    fn edge_var_in_kleene_rejected() {
        let b = block_of(
            "CREATE QUERY x() { SELECT t FROM V:s -(E>*:e)- V:t ACCUM t.@c += 1; }",
        );
        let empty = FxHashMap::default();
        let err = check_block(
            &b,
            PathSemantics::AllShortestPaths,
            &empty,
            &empty,
            &UserAccumRegistry::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("Kleene"));
    }

    #[test]
    fn list_accum_with_kleene_rejected_under_counting() {
        let b = block_of(
            "CREATE QUERY x() { SELECT t FROM V:s -(E>*)- V:t ACCUM t.@paths += s; }",
        );
        let v = maps(&[("paths", AccumType::List)]);
        let g = FxHashMap::default();
        let reg = UserAccumRegistry::new();
        assert!(check_block(&b, PathSemantics::AllShortestPaths, &v, &g, &reg).is_err());
        // Enumerative semantics allow it.
        assert!(check_block(&b, PathSemantics::NonRepeatedEdge, &v, &g, &reg).is_ok());
    }

    #[test]
    fn sum_accum_with_kleene_allowed() {
        let b = block_of(
            "CREATE QUERY x() { SELECT t FROM V:s -(E>*)- V:t ACCUM t.@c += 1; }",
        );
        let v = maps(&[("c", AccumType::Sum(ValueType::Int))]);
        let g = FxHashMap::default();
        assert!(check_block(
            &b,
            PathSemantics::AllShortestPaths,
            &v,
            &g,
            &UserAccumRegistry::new()
        )
        .is_ok());
    }

    #[test]
    fn list_accum_without_kleene_allowed() {
        let b = block_of(
            "CREATE QUERY x() { SELECT t FROM V:s -(E>)- V:t ACCUM t.@paths += s; }",
        );
        let v = maps(&[("paths", AccumType::List)]);
        let g = FxHashMap::default();
        assert!(check_block(
            &b,
            PathSemantics::AllShortestPaths,
            &v,
            &g,
            &UserAccumRegistry::new()
        )
        .is_ok());
    }
}
