//! # gsql-core — the GSQL-subset graph query language
//!
//! The paper's primary contribution: a pattern-based declarative graph
//! query language with **accumulator-based aggregation**, implemented as
//! a lexer, recursive-descent parser and tree-walking interpreter over a
//! [`pgraph::Graph`].
//!
//! Supported surface (everything the paper exercises):
//!
//! * `CREATE QUERY name(params) FOR GRAPH g { ... }` with typed
//!   parameters (including `VERTEX<Type>`),
//! * accumulator declarations of every built-in type (`SumAccum`,
//!   `Min/MaxAccum`, `AvgAccum`, `And/OrAccum`, `Set/Bag/List/ArrayAccum`,
//!   `MapAccum` (recursively nested), `HeapAccum`, `GroupByAccum`, user-
//!   defined), vertex-attached `@a` and global `@@a`, with initializers,
//! * `SELECT ... FROM ... WHERE ... ACCUM ... POST_ACCUM ...` query
//!   blocks with DARPE path patterns, multi-output `SELECT ... INTO`,
//!   SQL-borrowed `GROUP BY` (incl. `GROUPING SETS`/`CUBE`/`ROLLUP`),
//!   `HAVING`, `ORDER BY`, `LIMIT`, `DISTINCT`,
//! * joins between graph patterns and relational tables (paper Ex. 1),
//! * control flow: `WHILE ... LIMIT ... DO ... END`, `IF/ELSE`,
//!   `FOREACH`, plus `PRINT` and `RETURN`,
//! * composition: accumulator scope spans all blocks; vertex-set
//!   variables flow between blocks; `v.@a'` reads the pre-block snapshot.
//!
//! Pattern-match legality is **pluggable** ([`semantics::PathSemantics`]):
//! the default is the paper's all-shortest-paths semantics evaluated by
//! *counting* (polynomial, Theorems 6.1/7.1); the alternatives
//! (non-repeated-edge/vertex, enumerate-all-shortest, SPARQL-style
//! boolean) are implemented by explicit enumeration and serve as the
//! baselines of the paper's experiments.
//!
//! # Example
//!
//! ```
//! use gsql_core::Engine;
//! use pgraph::generators::sales_graph;
//! use pgraph::value::Value;
//!
//! let graph = sales_graph();
//! let engine = Engine::new(&graph);
//! let out = engine.run_text(r#"
//!     CREATE QUERY ToyRevenue () {
//!       SumAccum<float> @@total;
//!       S = SELECT c
//!           FROM  Customer:c -(Bought>:b)- Product:p
//!           WHERE p.category == 'toy'
//!           ACCUM @@total += b.quantity * p.list_price * (1.0 - b.discount);
//!       PRINT @@total;
//!     }
//! "#, &[]).unwrap();
//! assert_eq!(out.prints, vec!["@@total = 144.0".to_string()]);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod datetime;
pub mod error;
pub mod eval;
pub mod exec;
pub mod explain;
pub mod governor;
pub mod lexer;
pub mod lint;
pub mod morsel;
pub mod parser;
pub mod plan;
pub mod prepared;
pub mod profile;
pub mod semantics;
pub mod stdlib;
pub mod table;
pub mod tractable;

pub use error::{Error, ErrorKind, ResourceError, Result};
pub use exec::{Engine, QueryOutput, ReturnValue};
pub use explain::{explain, explain_plan, Plan, PlanNode};
pub use governor::{Budget, CancelHandle, QueryGuard, ResourceReport, ShardReport};
pub use lint::{lint_query, lint_query_with, Diagnostic, Severity};
pub use morsel::{MorselTable, DEFAULT_MORSEL_SIZE};
pub use parser::{parse_query, parse_query_with_mode, QueryMode};
pub use plan::{BlockPlan, HopStrategy, QueryPlan};
pub use prepared::{BindError, BindErrorKind, PreparedQuery};
pub use profile::{Profile, ProfileNode};
pub use semantics::{MatchStats, PathSemantics};
pub use table::Table;
