//! Structured error taxonomy for parsing, compilation and execution.
//!
//! Every [`Error`] maps to a machine-readable [`ErrorKind`]; resource
//! violations ([`Error::Resource`]) additionally carry a
//! [`ResourceReport`] snapshot of the
//! work done before the limit fired, so clients can distinguish "your
//! query is wrong" from "your query was too expensive" and say how
//! expensive it got.

use crate::governor::ResourceReport;
use pgraph::value::Value;
use std::fmt;

/// Machine-readable classification of an [`Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Lexer/parser rejection.
    Parse,
    /// Static (pre-execution) rejection: unknown names, bad accumulator
    /// declarations, tractability violations, ...
    Compile,
    /// Dynamic evaluation failure.
    Runtime,
    /// Wall-clock deadline expired ([`crate::Budget::deadline`]).
    DeadlineExceeded,
    /// Estimated accumulator footprint exceeded
    /// [`crate::Budget::max_accum_bytes`].
    MemoryLimit,
    /// Binding-table materialization exceeded
    /// [`crate::Budget::max_binding_rows`].
    RowLimit,
    /// Enumerative path materialization exceeded
    /// [`crate::Budget::max_paths`].
    PathBudget,
    /// WHILE-loop iterations exceeded [`crate::Budget::max_while_iters`].
    IterationLimit,
    /// Stopped via [`crate::CancelHandle::cancel`] (or a sibling worker's
    /// poison signal).
    Cancelled,
    /// A Map-phase worker (or user-defined accumulator) panicked; the
    /// panic was contained and the engine remains usable.
    WorkerPanic,
}

impl ErrorKind {
    /// Stable machine-readable name (the server uses it in error JSON).
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Compile => "compile",
            ErrorKind::Runtime => "runtime",
            ErrorKind::DeadlineExceeded => "deadline-exceeded",
            ErrorKind::MemoryLimit => "memory-limit",
            ErrorKind::RowLimit => "row-limit",
            ErrorKind::PathBudget => "path-budget",
            ErrorKind::IterationLimit => "iteration-limit",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::WorkerPanic => "worker-panic",
        }
    }

    /// True for the kinds produced by the resource governor (retrying with
    /// a larger budget may succeed; the query itself is not at fault).
    pub fn is_resource(&self) -> bool {
        matches!(
            self,
            ErrorKind::DeadlineExceeded
                | ErrorKind::MemoryLimit
                | ErrorKind::RowLimit
                | ErrorKind::PathBudget
                | ErrorKind::IterationLimit
                | ErrorKind::Cancelled
                | ErrorKind::WorkerPanic
        )
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A resource-governor violation: what tripped, a human-readable message,
/// and a snapshot of the work performed up to the trip point.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceError {
    /// Which budget dimension tripped.
    pub kind: ErrorKind,
    /// Human-readable description of the violation.
    pub message: String,
    /// Work performed up to the trip point.
    pub report: ResourceReport,
}

/// Any GSQL front-end or runtime error.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Lexing / parsing error with line and column.
    Parse {
        /// 1-based source line of the error.
        line: usize,
        /// 1-based source column of the error.
        col: usize,
        /// What went wrong.
        msg: String,
    },
    /// Static (pre-execution) error: unknown types, bad accumulator
    /// declarations, tractability violations, ...
    Compile(String),
    /// Runtime evaluation error.
    Runtime(String),
    /// Resource-governor violation (boxed: cold path, but carries a full
    /// [`ResourceReport`]).
    Resource(Box<ResourceError>),
}

impl Error {
    /// Shorthand for a [`Error::Compile`] from any message type.
    pub fn compile(msg: impl Into<String>) -> Self {
        Error::Compile(msg.into())
    }

    /// Shorthand for a [`Error::Runtime`] from any message type.
    pub fn runtime(msg: impl Into<String>) -> Self {
        Error::Runtime(msg.into())
    }

    /// Runtime type-mismatch error with a uniform message shape.
    pub fn type_error(expected: &str, got: &Value) -> Self {
        Error::Runtime(format!("expected {expected}, got `{got}`"))
    }

    /// The machine-readable classification of this error.
    pub fn kind(&self) -> ErrorKind {
        match self {
            Error::Parse { .. } => ErrorKind::Parse,
            Error::Compile(_) => ErrorKind::Compile,
            Error::Runtime(_) => ErrorKind::Runtime,
            Error::Resource(r) => r.kind,
        }
    }

    /// The resource accounting attached to governor errors; `None` for
    /// parse/compile/runtime errors.
    pub fn resource_report(&self) -> Option<&ResourceReport> {
        match self {
            Error::Resource(r) => Some(&r.report),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { line, col, msg } => write!(f, "parse error at {line}:{col}: {msg}"),
            Error::Compile(m) => write!(f, "compile error: {m}"),
            Error::Runtime(m) => write!(f, "runtime error: {m}"),
            Error::Resource(r) => f.write_str(&r.message),
        }
    }
}

impl std::error::Error for Error {}

impl From<accum::AccumError> for Error {
    fn from(e: accum::AccumError) -> Self {
        Error::Runtime(e.to_string())
    }
}

impl From<darpe::ParseError> for Error {
    fn from(e: darpe::ParseError) -> Self {
        Error::Compile(e.to_string())
    }
}

impl From<darpe::CompileError> for Error {
    fn from(e: darpe::CompileError) -> Self {
        Error::Compile(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;
