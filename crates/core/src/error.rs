//! Unified error type for parsing, compilation and execution.

use pgraph::value::Value;
use std::fmt;

/// Any GSQL front-end or runtime error.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Lexing / parsing error with line and column.
    Parse { line: usize, col: usize, msg: String },
    /// Static (pre-execution) error: unknown types, bad accumulator
    /// declarations, tractability violations, ...
    Compile(String),
    /// Runtime evaluation error.
    Runtime(String),
}

impl Error {
    pub fn compile(msg: impl Into<String>) -> Self {
        Error::Compile(msg.into())
    }

    pub fn runtime(msg: impl Into<String>) -> Self {
        Error::Runtime(msg.into())
    }

    pub fn type_error(expected: &str, got: &Value) -> Self {
        Error::Runtime(format!("expected {expected}, got `{got}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { line, col, msg } => write!(f, "parse error at {line}:{col}: {msg}"),
            Error::Compile(m) => write!(f, "compile error: {m}"),
            Error::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<accum::AccumError> for Error {
    fn from(e: accum::AccumError) -> Self {
        Error::Runtime(e.to_string())
    }
}

impl From<darpe::ParseError> for Error {
    fn from(e: darpe::ParseError) -> Self {
        Error::Compile(e.to_string())
    }
}

impl From<darpe::CompileError> for Error {
    fn from(e: darpe::CompileError) -> Self {
        Error::Compile(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;
