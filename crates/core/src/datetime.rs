//! Civil-calendar helpers — re-exported from [`pgraph::datetime`], where
//! they live so that the data generator can share them.

pub use pgraph::datetime::{civil_from_days, day, days_from_civil, month, to_epoch, year};
