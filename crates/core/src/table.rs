//! Relational tables: inputs to graph↔table joins (paper Example 1) and
//! outputs of `SELECT ... INTO`.

use pgraph::value::Value;
use std::fmt;

/// A simple named-column table of [`Value`] rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// Table name (the `INTO` target or the fixture's name).
    pub name: String,
    /// Column names, in declaration order.
    pub columns: Vec<String>,
    /// Row-major cell values; every row has `columns.len()` cells.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table with the given name and columns.
    pub fn new(name: impl Into<String>, columns: Vec<String>) -> Self {
        Table { name: name.into(), columns, rows: Vec::new() }
    }

    /// Builds a table from string column names and rows; panics on ragged
    /// rows (test/fixture convenience).
    pub fn from_rows(
        name: impl Into<String>,
        columns: &[&str],
        rows: Vec<Vec<Value>>,
    ) -> Self {
        let columns: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
        for r in &rows {
            assert_eq!(r.len(), columns.len(), "ragged row in table literal");
        }
        Table { name: name.into(), columns, rows }
    }

    /// Index of the named column, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Appends a row (must match the column count).
    pub fn push(&mut self, row: Vec<Value>) {
        debug_assert_eq!(row.len(), self.columns.len());
        self.rows.push(row);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single value of a 1×1 table, if it is one.
    pub fn scalar(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.columns.len() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }

    /// Sorted copy of the rows (for order-insensitive comparisons in
    /// tests).
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}({})", self.name, self.columns.join(", "))?;
        for r in &self.rows {
            let cells: Vec<String> = r.iter().map(|v| v.to_string()).collect();
            writeln!(f, "  {}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let mut t = Table::new("T", vec!["a".into(), "b".into()]);
        assert!(t.is_empty());
        t.push(vec![Value::Int(1), Value::from("x")]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.column_index("b"), Some(1));
        assert_eq!(t.column_index("z"), None);
        assert!(t.scalar().is_none());
    }

    #[test]
    fn scalar_table() {
        let t = Table::from_rows("S", &["v"], vec![vec![Value::Int(7)]]);
        assert_eq!(t.scalar(), Some(&Value::Int(7)));
    }

    #[test]
    fn display_contains_rows() {
        let t = Table::from_rows("T", &["x"], vec![vec![Value::Int(3)]]);
        let s = t.to_string();
        assert!(s.contains("T(x)"));
        assert!(s.contains('3'));
    }
}
