//! The query resource governor: enforced execution envelopes.
//!
//! The engine deliberately ships exponential kernels (`NonRepeatedEdge`,
//! `AllShortestPathsEnumerate` — the paper's baselines), which can hang or
//! exhaust memory on inputs barely larger than Table 1's. A [`Budget`]
//! bounds a query's wall-clock time, binding-table size, materialized
//! paths, estimated accumulator bytes and WHILE iterations; a
//! [`QueryGuard`] carries the live counters and is checked at every loop
//! head of the execution stack (product-BFS, enumerative DFS, binding-table
//! joins, the ACCUM Map phase, WHILE/FOREACH bodies). Violations surface as
//! [`crate::Error::Resource`] with a machine-readable
//! [`crate::ErrorKind`] and a [`ResourceReport`] snapshot, so callers get
//! graceful degradation diagnostics instead of a dead process.

use crate::error::{Error, ErrorKind, ResourceError, Result};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Declarative resource limits for one query execution. `None` fields are
/// unlimited; `Budget::default()` imposes nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline, measured from `Engine::run` entry.
    pub deadline: Option<Duration>,
    /// Cap on binding-table rows materialized, cumulative over the query.
    pub max_binding_rows: Option<u64>,
    /// Cap on paths materialized by enumerative kernels, cumulative
    /// (generalizes the old per-engine `enum_budget`).
    pub max_paths: Option<u64>,
    /// Cap on the estimated heap footprint of all live accumulators.
    pub max_accum_bytes: Option<u64>,
    /// Cap on WHILE-loop iterations, cumulative over all loops.
    pub max_while_iters: Option<u64>,
}

impl Budget {
    /// A budget that imposes nothing (same as `Budget::default()`).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Sets the cumulative binding-table row cap.
    pub fn with_max_binding_rows(mut self, n: u64) -> Self {
        self.max_binding_rows = Some(n);
        self
    }

    /// Sets the cumulative path-materialization cap.
    pub fn with_max_paths(mut self, n: u64) -> Self {
        self.max_paths = Some(n);
        self
    }

    /// Sets the accumulator heap-footprint cap.
    pub fn with_max_accum_bytes(mut self, n: u64) -> Self {
        self.max_accum_bytes = Some(n);
        self
    }

    /// Sets the cumulative WHILE-iteration cap.
    pub fn with_max_while_iters(mut self, n: u64) -> Self {
        self.max_while_iters = Some(n);
        self
    }

    /// `true` if no limit is set in any dimension.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_binding_rows.is_none()
            && self.max_paths.is_none()
            && self.max_accum_bytes.is_none()
            && self.max_while_iters.is_none()
    }
}

/// Shared cancellation flag: clone it, hand it to another thread, and
/// `cancel()` stops the running (and any subsequent) query at its next
/// checkpoint with [`ErrorKind::Cancelled`]. `reset()` re-arms the engine.
#[derive(Debug, Clone, Default)]
pub struct CancelHandle(Arc<AtomicBool>);

impl CancelHandle {
    /// A fresh, un-cancelled handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; the running query stops at its next
    /// checkpoint.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// `true` once [`cancel`](Self::cancel) has been called (until
    /// [`reset`](Self::reset)).
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    /// Re-arms the handle so subsequent queries run normally.
    pub fn reset(&self) {
        self.0.store(false, Ordering::Release);
    }
}

/// Per-shard slice of the resource accounting when a query ran on the
/// scatter-gather path (`Engine::with_sharding`). Kernel work scheduled
/// on a shard is charged to that shard's slot; the totals in
/// [`ResourceReport`] remain the global, shard-count-independent sums.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// Vertex visits performed by kernels scheduled on this shard.
    pub vertices_touched: u64,
    /// Adjacency entries examined by kernels scheduled on this shard.
    pub edges_scanned: u64,
    /// Kernel invocations (reach calls) keyed to this shard.
    pub kernel_calls: u64,
    /// Wall-clock nanoseconds workers spent running this shard's kernels
    /// (sums across workers, so it can exceed elapsed time).
    pub busy_ns: u64,
}

/// Post-execution resource accounting, returned on success
/// ([`crate::QueryOutput::report`]) and attached to every resource
/// failure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceReport {
    /// Binding-table rows materialized, cumulative.
    pub rows_materialized: u64,
    /// Paths materialized by enumerative kernels, cumulative.
    pub paths_enumerated: u64,
    /// Vertex visits performed by scans and kernels, cumulative (a vertex
    /// revisited in another kernel call or automaton state counts again).
    pub vertices_touched: u64,
    /// Adjacency entries examined by scans and kernels, cumulative.
    pub edges_scanned: u64,
    /// Peak estimated accumulator heap footprint observed, in bytes.
    pub peak_accum_bytes: u64,
    /// WHILE-loop iterations executed, cumulative.
    pub while_iterations: u64,
    /// Morsels dispatched by the vectorized operators (ACCUM/POST_ACCUM,
    /// WHERE filters, group-by/projection evaluation), cumulative. A
    /// pure function of table sizes and the configured morsel size —
    /// identical at any parallelism or shard count.
    pub morsels_dispatched: u64,
    /// Wall-clock time from `Engine::run` entry to the snapshot.
    pub elapsed: Duration,
    /// Per-shard breakdown of kernel work; empty unless the query ran on
    /// the scatter-gather path. The sums here are a subset of the global
    /// counters above (scans and non-kernel work stay unattributed).
    pub shards: Vec<ShardReport>,
}

fn fmt_count(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

fn fmt_bytes(n: u64) -> String {
    if n >= 10 * 1024 * 1024 {
        format!("{:.1} MiB", n as f64 / (1024.0 * 1024.0))
    } else if n >= 10 * 1024 {
        format!("{:.1} KiB", n as f64 / 1024.0)
    } else {
        format!("{n} B")
    }
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rows materialized, {} paths enumerated, {} vertices touched, \
             {} edges scanned, {} peak accumulator memory, \
             {} WHILE iterations, {:.3}s elapsed",
            fmt_count(self.rows_materialized),
            fmt_count(self.paths_enumerated),
            fmt_count(self.vertices_touched),
            fmt_count(self.edges_scanned),
            fmt_bytes(self.peak_accum_bytes),
            fmt_count(self.while_iterations),
            self.elapsed.as_secs_f64(),
        )?;
        if !self.shards.is_empty() {
            write!(f, "; {} shards, kernel calls [", self.shards.len())?;
            for (i, s) in self.shards.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", fmt_count(s.kernel_calls))?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// Wall-clock reads in hot kernel loops happen once per this many
/// checkpoints; cancellation flags are read every time (an atomic load is
/// far cheaper than `Instant::now`).
const CLOCK_STRIDE: u64 = 64;

/// Live enforcement state for one query execution. Shared by reference
/// across Map-phase worker threads (all counters are atomic).
pub struct QueryGuard {
    budget: Budget,
    start: Instant,
    deadline_at: Option<Instant>,
    cancel: CancelHandle,
    /// Set when a Map worker panics, so sibling workers stop at their next
    /// checkpoint. Local to this execution (unlike `cancel`).
    poisoned: AtomicBool,
    ticks: AtomicU64,
    rows: AtomicU64,
    paths: AtomicU64,
    vertices: AtomicU64,
    edges: AtomicU64,
    peak_bytes: AtomicU64,
    while_iters: AtomicU64,
    morsels: AtomicU64,
    /// One slot per shard when executing on the scatter-gather path
    /// (empty otherwise) — the per-shard sub-governors. Kernel work is
    /// charged to its shard's slot *in addition to* the global counters;
    /// budget dimensions trip on the global totals so limits behave
    /// identically at any shard count.
    shard_slots: Vec<ShardSlot>,
}

/// Atomic per-shard counters backing [`ShardReport`].
#[derive(Default)]
struct ShardSlot {
    vertices: AtomicU64,
    edges: AtomicU64,
    kernel_calls: AtomicU64,
    busy_ns: AtomicU64,
}

impl QueryGuard {
    /// A guard enforcing `budget`, observing `cancel`. The wall clock
    /// starts here.
    pub fn new(budget: Budget, cancel: CancelHandle) -> Self {
        let start = Instant::now();
        let deadline_at = budget.deadline.map(|d| start + d);
        QueryGuard {
            budget,
            start,
            deadline_at,
            cancel,
            poisoned: AtomicBool::new(false),
            ticks: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            paths: AtomicU64::new(0),
            vertices: AtomicU64::new(0),
            edges: AtomicU64::new(0),
            peak_bytes: AtomicU64::new(0),
            while_iters: AtomicU64::new(0),
            morsels: AtomicU64::new(0),
            shard_slots: Vec::new(),
        }
    }

    /// Equips the guard with `n` per-shard accounting slots (builder —
    /// call before sharing the guard across workers). With slots in
    /// place, [`note_shard`](Self::note_shard) attributes kernel work and
    /// [`report`](Self::report) carries the per-shard breakdown.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shard_slots = (0..n).map(|_| ShardSlot::default()).collect();
        self
    }

    /// A guard that enforces nothing (still collects the report).
    pub fn unlimited() -> Self {
        Self::new(Budget::default(), CancelHandle::new())
    }

    /// A guard enforcing only a path-materialization cap — the shape the
    /// kernel-level tests and benchmarks use.
    pub fn with_path_budget(max_paths: Option<u64>) -> Self {
        Self::new(Budget { max_paths, ..Budget::default() }, CancelHandle::new())
    }

    /// The budget this guard enforces.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Snapshot of all counters plus elapsed wall-clock time.
    pub fn report(&self) -> ResourceReport {
        ResourceReport {
            rows_materialized: self.rows.load(Ordering::Relaxed),
            paths_enumerated: self.paths.load(Ordering::Relaxed),
            vertices_touched: self.vertices.load(Ordering::Relaxed),
            edges_scanned: self.edges.load(Ordering::Relaxed),
            peak_accum_bytes: self.peak_bytes.load(Ordering::Relaxed),
            while_iterations: self.while_iters.load(Ordering::Relaxed),
            morsels_dispatched: self.morsels.load(Ordering::Relaxed),
            elapsed: self.start.elapsed(),
            shards: self
                .shard_slots
                .iter()
                .map(|s| ShardReport {
                    vertices_touched: s.vertices.load(Ordering::Relaxed),
                    edges_scanned: s.edges.load(Ordering::Relaxed),
                    kernel_calls: s.kernel_calls.load(Ordering::Relaxed),
                    busy_ns: s.busy_ns.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    fn fail(&self, kind: ErrorKind, message: String) -> Error {
        Error::Resource(Box::new(ResourceError { kind, message, report: self.report() }))
    }

    fn deadline_error(&self) -> Error {
        let d = self.budget.deadline.unwrap_or_default();
        self.fail(
            ErrorKind::DeadlineExceeded,
            format!("deadline exceeded after {:.1}s", d.as_secs_f64()),
        )
    }

    fn cancelled_error(&self) -> Error {
        if self.poisoned.load(Ordering::Relaxed) {
            self.fail(ErrorKind::Cancelled, "query aborted: a sibling worker panicked".into())
        } else {
            self.fail(ErrorKind::Cancelled, "query cancelled".into())
        }
    }

    /// Cheap check for hot loop heads: cancellation/poison flags every
    /// call, the wall clock once per `CLOCK_STRIDE` (64) calls.
    #[inline]
    pub fn checkpoint(&self) -> Result<()> {
        if self.poisoned.load(Ordering::Relaxed) || self.cancel.is_cancelled() {
            return Err(self.cancelled_error());
        }
        if let Some(at) = self.deadline_at {
            let t = self.ticks.fetch_add(1, Ordering::Relaxed);
            if t.is_multiple_of(CLOCK_STRIDE) && Instant::now() >= at {
                return Err(self.deadline_error());
            }
        }
        Ok(())
    }

    /// Check for coarse loop heads (WHILE bodies, statement boundaries):
    /// always reads the wall clock.
    pub fn checkpoint_coarse(&self) -> Result<()> {
        if self.poisoned.load(Ordering::Relaxed) || self.cancel.is_cancelled() {
            return Err(self.cancelled_error());
        }
        if let Some(at) = self.deadline_at {
            if Instant::now() >= at {
                return Err(self.deadline_error());
            }
        }
        Ok(())
    }

    /// Accounts `n` newly materialized binding-table rows.
    pub fn tick_rows(&self, n: u64) -> Result<()> {
        let total = self.rows.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(max) = self.budget.max_binding_rows {
            if total > max {
                return Err(self.fail(
                    ErrorKind::RowLimit,
                    format!(
                        "binding-table row limit exceeded ({} rows materialized, limit {})",
                        fmt_count(total),
                        fmt_count(max)
                    ),
                ));
            }
        }
        self.checkpoint()
    }

    /// Accounts one path materialized by an enumerative kernel. A
    /// `max_paths` of 0 means *zero paths allowed*: the first
    /// materialization trips.
    #[inline]
    pub fn tick_path(&self) -> Result<()> {
        let total = self.paths.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(max) = self.budget.max_paths {
            if total > max {
                return Err(self.fail(
                    ErrorKind::PathBudget,
                    format!(
                        "path enumeration budget exceeded ({} paths materialized, limit {})",
                        fmt_count(total),
                        fmt_count(max)
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Accounts one WHILE-loop iteration (also a coarse checkpoint).
    pub fn tick_while(&self) -> Result<()> {
        let total = self.while_iters.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(max) = self.budget.max_while_iters {
            if total > max {
                return Err(self.fail(
                    ErrorKind::IterationLimit,
                    format!("WHILE iteration limit exceeded ({total} iterations, limit {max})"),
                ));
            }
        }
        self.checkpoint_coarse()
    }

    /// Records the current estimated accumulator footprint and enforces
    /// the memory budget against it.
    pub fn note_accum_bytes(&self, bytes: u64) -> Result<()> {
        self.peak_bytes.fetch_max(bytes, Ordering::Relaxed);
        if let Some(max) = self.budget.max_accum_bytes {
            if bytes > max {
                return Err(self.fail(
                    ErrorKind::MemoryLimit,
                    format!(
                        "accumulator memory limit exceeded (~{} estimated, limit {})",
                        fmt_bytes(bytes),
                        fmt_bytes(max)
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Accounts `n` morsels handed to the vectorized-operator dispatch
    /// loop. Pure accounting (no budget dimension limits morsels): the
    /// total feeds [`ResourceReport`] and server metrics, and — being a
    /// pure function of table sizes and the configured morsel size — is
    /// identical at any parallelism or shard count.
    #[inline]
    pub fn note_morsels(&self, n: u64) {
        if n != 0 {
            self.morsels.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Accounts `vertices` vertex visits and `edges` adjacency-entry
    /// examinations. Pure accounting — no budget dimension limits these,
    /// so this never fails; the totals feed [`ResourceReport`] and the
    /// PROFILE operator tree (which must reconcile with it exactly).
    #[inline]
    pub fn note_visits(&self, vertices: u64, edges: u64) {
        if vertices != 0 {
            self.vertices.fetch_add(vertices, Ordering::Relaxed);
        }
        if edges != 0 {
            self.edges.fetch_add(edges, Ordering::Relaxed);
        }
    }

    /// Attributes kernel work to shard `shard`'s accounting slot (a
    /// no-op when the guard has no shard slots or `shard` is out of
    /// range). Pure accounting on top of [`note_visits`]: the global
    /// counters are charged separately by the kernels themselves, so
    /// budget enforcement is independent of shard attribution.
    ///
    /// [`note_visits`]: Self::note_visits
    pub fn note_shard(&self, shard: usize, vertices: u64, edges: u64, kernels: u64, busy_ns: u64) {
        let Some(slot) = self.shard_slots.get(shard) else {
            return;
        };
        if vertices != 0 {
            slot.vertices.fetch_add(vertices, Ordering::Relaxed);
        }
        if edges != 0 {
            slot.edges.fetch_add(edges, Ordering::Relaxed);
        }
        if kernels != 0 {
            slot.kernel_calls.fetch_add(kernels, Ordering::Relaxed);
        }
        if busy_ns != 0 {
            slot.busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
        }
    }

    /// Number of per-shard accounting slots ([`with_shards`]); 0 on the
    /// flat execution path.
    ///
    /// [`with_shards`]: Self::with_shards
    pub fn shard_slot_count(&self) -> usize {
        self.shard_slots.len()
    }

    /// Marks the execution poisoned after a Map worker panicked, stopping
    /// sibling workers at their next checkpoint without touching the
    /// engine-level cancellation flag.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Relaxed);
    }

    /// Converts a caught panic payload into a structured
    /// [`ErrorKind::WorkerPanic`] error carrying the payload message.
    pub fn worker_panic_error(&self, payload: &(dyn std::any::Any + Send)) -> Error {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        self.fail(ErrorKind::WorkerPanic, format!("worker panicked: {msg}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_trips() {
        let g = QueryGuard::unlimited();
        for _ in 0..10_000 {
            g.checkpoint().unwrap();
            g.tick_path().unwrap();
        }
        g.tick_rows(1 << 40).unwrap();
        g.note_accum_bytes(u64::MAX).unwrap();
        let r = g.report();
        assert_eq!(r.paths_enumerated, 10_000);
        assert_eq!(r.rows_materialized, 1 << 40);
        assert_eq!(r.peak_accum_bytes, u64::MAX);
    }

    #[test]
    fn zero_path_budget_means_zero_paths() {
        let g = QueryGuard::with_path_budget(Some(0));
        let e = g.tick_path().unwrap_err();
        assert_eq!(e.kind(), ErrorKind::PathBudget);
    }

    #[test]
    fn row_limit_trips_with_report() {
        let g = QueryGuard::new(
            Budget::default().with_max_binding_rows(10),
            CancelHandle::new(),
        );
        g.tick_rows(10).unwrap();
        let e = g.tick_rows(1).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::RowLimit);
        assert_eq!(e.resource_report().unwrap().rows_materialized, 11);
    }

    #[test]
    fn cancellation_is_observed_and_resettable() {
        let h = CancelHandle::new();
        let g = QueryGuard::new(Budget::default(), h.clone());
        g.checkpoint().unwrap();
        h.cancel();
        assert_eq!(g.checkpoint().unwrap_err().kind(), ErrorKind::Cancelled);
        h.reset();
        g.checkpoint().unwrap();
    }

    #[test]
    fn deadline_trips_past_expiry() {
        let g = QueryGuard::new(
            Budget::default().with_deadline(Duration::ZERO),
            CancelHandle::new(),
        );
        assert_eq!(g.checkpoint_coarse().unwrap_err().kind(), ErrorKind::DeadlineExceeded);
        // The strided variant trips within CLOCK_STRIDE calls.
        let e = (0..=CLOCK_STRIDE).find_map(|_| g.checkpoint().err()).unwrap();
        assert_eq!(e.kind(), ErrorKind::DeadlineExceeded);
    }

    #[test]
    fn while_iteration_limit() {
        let g = QueryGuard::new(
            Budget::default().with_max_while_iters(3),
            CancelHandle::new(),
        );
        for _ in 0..3 {
            g.tick_while().unwrap();
        }
        assert_eq!(g.tick_while().unwrap_err().kind(), ErrorKind::IterationLimit);
    }

    #[test]
    fn report_formats_counts() {
        let r = ResourceReport {
            rows_materialized: 12,
            paths_enumerated: 1_200_000,
            vertices_touched: 34_500,
            edges_scanned: 7,
            peak_accum_bytes: 64 * 1024,
            while_iterations: 0,
            morsels_dispatched: 0,
            elapsed: Duration::from_millis(1500),
            shards: Vec::new(),
        };
        let s = r.to_string();
        assert!(s.contains("12 rows"), "{s}");
        assert!(s.contains("1.2M paths"), "{s}");
        assert!(s.contains("34.5k vertices touched"), "{s}");
        assert!(s.contains("7 edges scanned"), "{s}");
        assert!(s.contains("64.0 KiB"), "{s}");
        assert!(s.contains("1.500s"), "{s}");
    }

    #[test]
    fn shard_slots_attribute_without_affecting_budgets() {
        let g = QueryGuard::new(
            Budget::default().with_max_binding_rows(1),
            CancelHandle::new(),
        )
        .with_shards(3);
        assert_eq!(g.shard_slot_count(), 3);
        g.note_shard(0, 10, 20, 1, 5_000);
        g.note_shard(2, 1, 2, 3, 4);
        g.note_shard(2, 1, 2, 3, 4);
        g.note_shard(99, 1, 1, 1, 1); // out of range: ignored
        let r = g.report();
        assert_eq!(r.shards.len(), 3);
        assert_eq!(r.shards[0].vertices_touched, 10);
        assert_eq!(r.shards[0].busy_ns, 5_000);
        assert_eq!(r.shards[1], ShardReport::default());
        assert_eq!(r.shards[2].kernel_calls, 6);
        // Attribution is not enforcement: globals untouched, no trips.
        assert_eq!(r.vertices_touched, 0);
        let s = r.to_string();
        assert!(s.contains("3 shards"), "{s}");
        // A shard-less report renders exactly as before.
        let flat = QueryGuard::unlimited().report();
        assert!(!flat.to_string().contains("shards"));
    }

    #[test]
    fn note_visits_is_pure_accounting() {
        // Even a fully limited budget never trips on visit accounting.
        let g = QueryGuard::new(
            Budget::default().with_max_binding_rows(1).with_max_paths(1),
            CancelHandle::new(),
        );
        g.note_visits(1_000_000, 2_000_000);
        g.note_visits(0, 0);
        let r = g.report();
        assert_eq!(r.vertices_touched, 1_000_000);
        assert_eq!(r.edges_scanned, 2_000_000);
    }
}
