//! The GSQL interpreter: engine, runtime state, statement execution, and
//! the SELECT-block pipeline (FROM matching → WHERE → ACCUM Map/Reduce →
//! POST_ACCUM → multi-output SELECT).

use crate::ast::*;
use crate::error::{Error, Result};
use crate::eval::{eval, truthy, Binding, Bindings, Env, RowRef, VAccStore};
use crate::governor::{Budget, CancelHandle, QueryGuard, ResourceReport};
use crate::morsel::{dispatch, morsel_ranges, MorselBuilder, MorselTable, DEFAULT_MORSEL_SIZE};
use crate::plan::{BlockPlan, HopStrategy, LowerCtx, QueryPlan};
use crate::profile::{Profile, Profiler, Span, SpanExtra};
use crate::semantics::{reach_on, GraphView, MatchStats, PathSemantics, ReachMap};
use crate::table::Table;
use crate::tractable;
use accum::{Accum, AccumType, UserAccumRegistry};
use darpe::{resolve_symbol, CompiledDarpe, SymbolSpec};
use pgraph::bigcount::BigCount;
use pgraph::fxhash::{FxHashMap, FxHashSet};
use pgraph::graph::{Graph, VertexId};
use pgraph::mutate::MutationOp;
use pgraph::schema::{AttrDef, VTypeId};
use pgraph::shard::ShardedGraph;
use pgraph::value::{Value, ValueType};
use std::collections::BTreeMap;

/// Cap on literal row expansion when a non-aggregate projection meets a
/// multiplicity > 1 (outside the compressed representation).
const ROW_EXPANSION_CAP: u64 = 1 << 20;

/// Minimum number of distinct reachability-kernel sources before a Kleene
/// hop fans kernels across worker threads (below this, thread setup costs
/// more than the kernels).
const KERNEL_PARALLEL_THRESHOLD: usize = 2;

/// Threshold below which morsel-driven operators (ACCUM Map phase,
/// WHERE residuals, group-by key evaluation) stay sequential even when
/// parallelism is enabled.
const PARALLEL_THRESHOLD: usize = 512;

/// `GSQL_MORSEL_SIZE` is read once per process, like `GSQL_PARALLELISM`;
/// [`Engine::with_morsel_size`] still wins. Primarily a test/benchmark
/// knob for stressing morsel-boundary behavior.
fn env_morsel_size() -> usize {
    static ENV_MORSEL_SIZE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *ENV_MORSEL_SIZE.get_or_init(|| {
        std::env::var("GSQL_MORSEL_SIZE")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(DEFAULT_MORSEL_SIZE)
    })
}

/// `GSQL_PARALLELISM` is read once per process: engine construction sits
/// on a server's per-request hot path, and the environment cannot change
/// under a running process we'd want to react to.
fn env_parallelism() -> usize {
    static ENV_PARALLELISM: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *ENV_PARALLELISM.get_or_init(|| {
        std::env::var("GSQL_PARALLELISM")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    })
}

/// The query engine: a graph, optional relational tables, a user-accum
/// registry, and evaluation knobs.
pub struct Engine<'g> {
    graph: &'g Graph,
    tables: FxHashMap<String, Table>,
    registry: UserAccumRegistry,
    semantics: PathSemantics,
    /// Resource envelope enforced across the whole execution stack
    /// (deadline, row/path/memory/iteration caps).
    budget: Budget,
    /// Shared cancellation flag; clone via [`Engine::cancel_handle`] to
    /// stop a running query from another thread.
    cancel: CancelHandle,
    /// Map-phase threads (1 = sequential).
    parallelism: usize,
    /// Rows per morsel for the vectorized operators (ACCUM/POST_ACCUM,
    /// filters, group-by/projection evaluation).
    morsel_size: usize,
    /// Sharded view for scatter-gather execution ([`Engine::with_sharding`]).
    shards: Option<&'g ShardedGraph>,
}

impl<'g> Engine<'g> {
    /// Engine with default settings: all-shortest-paths counting
    /// semantics, sequential execution — unless the `GSQL_PARALLELISM`
    /// environment variable names a thread count, which becomes the
    /// default (an explicit [`Engine::with_parallelism`] still wins).
    /// CI uses the variable to run the whole suite threaded.
    pub fn new(graph: &'g Graph) -> Self {
        let parallelism = env_parallelism();
        Engine {
            graph,
            tables: FxHashMap::default(),
            registry: UserAccumRegistry::new(),
            semantics: PathSemantics::AllShortestPaths,
            budget: Budget::default(),
            cancel: CancelHandle::new(),
            parallelism,
            morsel_size: env_morsel_size(),
            shards: None,
        }
    }

    /// Sets the pattern legality semantics.
    pub fn with_semantics(mut self, s: PathSemantics) -> Self {
        self.semantics = s;
        self
    }

    /// Registers a relational input table (joinable in FROM, Example 1).
    pub fn with_table(mut self, table: Table) -> Self {
        self.tables.insert(table.name.clone(), table);
        self
    }

    /// Caps enumerative kernels at `budget` materialized paths (a budget
    /// of 0 means *zero paths allowed*: the first materialization trips).
    pub fn with_enum_budget(mut self, budget: u64) -> Self {
        self.budget.max_paths = Some(budget);
        self
    }

    /// Installs a full resource [`Budget`] (deadline, row/path/memory/
    /// iteration caps) enforced at every execution loop head.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The active resource budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// A handle that cancels the currently running (and any future) query
    /// from another thread; `reset()` re-arms the engine.
    pub fn cancel_handle(&self) -> CancelHandle {
        self.cancel.clone()
    }

    /// Enables parallel Map-phase execution on `n` threads.
    pub fn with_parallelism(mut self, n: usize) -> Self {
        self.parallelism = n.max(1);
        self
    }

    /// Sets the rows-per-morsel chunk size for vectorized execution
    /// (default [`DEFAULT_MORSEL_SIZE`], env-overridable via
    /// `GSQL_MORSEL_SIZE`). Output is byte-identical at any morsel size;
    /// only the work-distribution granularity — and the
    /// `morsels_dispatched` counter — changes.
    pub fn with_morsel_size(mut self, n: usize) -> Self {
        self.morsel_size = n.max(1);
        self
    }

    /// Routes kernel execution through `shards` — the scatter-gather
    /// path: reachability kernels are scheduled and accounted per owner
    /// shard, ACCUM clauses with exclusively combine-merged (`+=`)
    /// exact-merge accumulators scatter across shards and gather through
    /// [`accum::Accum::merge`] in deterministic shard order, and the
    /// [`ResourceReport`] carries a per-shard breakdown. Query output is
    /// **byte-identical** to flat execution at any shard count × any
    /// parallelism (the segments serve bit-identical adjacency and every
    /// merge is deterministic).
    ///
    /// A stale sharding (one whose [`ShardedGraph::matches`] no longer
    /// holds for this engine's graph — it mutated since the build) or a
    /// single-shard one is silently ignored: execution falls back to the
    /// flat path.
    pub fn with_sharding(mut self, shards: &'g ShardedGraph) -> Self {
        self.shards = Some(shards);
        self
    }

    /// The sharded view execution will actually use: the configured one,
    /// unless it is stale for this graph or trivially single-shard.
    fn active_shards(&self) -> Option<&'g ShardedGraph> {
        self.shards
            .filter(|s| s.shard_count() > 1 && s.matches(self.graph))
    }

    /// Runs the static analyzer ([`crate::lint`]) over a parsed query
    /// under this engine's ambient path semantics and user-accumulator
    /// registry, without executing anything.
    pub fn check(&self, q: &crate::ast::Query) -> Vec<crate::lint::Diagnostic> {
        crate::lint::lint_query_with(q, self.semantics, &self.registry)
    }

    /// Mutable access to the user-defined accumulator registry.
    pub fn registry_mut(&mut self) -> &mut UserAccumRegistry {
        &mut self.registry
    }

    /// The graph this engine queries.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The engine-default path semantics (overridable per query via
    /// `USE SEMANTICS`).
    pub fn semantics(&self) -> PathSemantics {
        self.semantics
    }

    /// Parses and runs a query in one step.
    pub fn run_text(&self, src: &str, args: &[(&str, Value)]) -> Result<QueryOutput> {
        let q = crate::parser::parse_query(src)?;
        self.run(&q, args)
    }

    /// Runs a [`crate::PreparedQuery`] (parsed once, executed many
    /// times). Unlike `run(prepared.query(), args)`, the prepared
    /// handle's cached optimized [`QueryPlan`] is reused across
    /// executions (and re-lowered only when the graph is re-finalized
    /// or the engine semantics change), so arbitrarily many bindings
    /// are served by one plan.
    pub fn run_prepared(
        &self,
        prepared: &crate::prepared::PreparedQuery,
        args: &[(&str, Value)],
    ) -> Result<QueryOutput> {
        self.run_prepared_with(prepared, args, false).map(|(out, _)| out)
    }

    /// [`Engine::run_prepared`] with optional profiling — the serving
    /// hot path: plan-cache lookup, then execution over the cached IR.
    pub fn run_prepared_with(
        &self,
        prepared: &crate::prepared::PreparedQuery,
        args: &[(&str, Value)],
        profile: bool,
    ) -> Result<(QueryOutput, Option<Profile>)> {
        let plan = prepared.plan_for(self.graph.stats().epoch(), self.semantics, || {
            self.plan(prepared.query())
        });
        self.run_planned(prepared.query(), args, profile, &plan)
    }

    /// Runs a parsed query with named arguments.
    ///
    /// Execution is wrapped in the resource governor: the engine's
    /// [`Budget`] is enforced at every loop head, cancellation via
    /// [`Engine::cancel_handle`] is observed, and panics anywhere in the
    /// interpreter (including user-defined accumulators) are contained
    /// and surfaced as [`crate::ErrorKind::WorkerPanic`] — the engine
    /// stays usable afterwards.
    pub fn run(&self, query: &Query, args: &[(&str, Value)]) -> Result<QueryOutput> {
        self.run_with(query, args, false).map(|(out, _)| out)
    }

    /// Runs a parsed query with per-operator profiling enabled and
    /// returns the results alongside the measured [`Profile`]. The query
    /// executes through the identical pipeline as [`Engine::run`] —
    /// results are byte-identical to an unprofiled run at any
    /// parallelism; only operator-boundary measurements are added.
    pub fn run_profiled(
        &self,
        query: &Query,
        args: &[(&str, Value)],
    ) -> Result<(QueryOutput, Profile)> {
        self.run_with(query, args, true)
            .map(|(out, prof)| (out, prof.expect("profiled run produces a profile")))
    }

    /// [`Engine::run`] / [`Engine::run_profiled`] in one entry point:
    /// `profile` selects whether operator-boundary instrumentation is
    /// active (when `false` the profiling branch costs one pointer-null
    /// check per operator).
    pub fn run_with(
        &self,
        query: &Query,
        args: &[(&str, Value)],
        profile: bool,
    ) -> Result<(QueryOutput, Option<Profile>)> {
        let plan = self.plan(query);
        self.run_planned(query, args, profile, &plan)
    }

    /// Executes `query` over an already-lowered [`QueryPlan`] — the
    /// common tail of [`Engine::run_with`] (fresh plan) and
    /// [`Engine::run_prepared_with`] (cached plan).
    fn run_planned(
        &self,
        query: &Query,
        args: &[(&str, Value)],
        profile: bool,
        plan: &QueryPlan,
    ) -> Result<(QueryOutput, Option<Profile>)> {
        let mut guard = QueryGuard::new(self.budget.clone(), self.cancel.clone());
        if let Some(shards) = self.active_shards() {
            guard = guard.with_shards(shards.shard_count());
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_inner(query, args, &guard, profile, plan)
        }));
        match outcome {
            Ok(Ok((mut out, prof))) => {
                out.report = guard.report();
                Ok((out, prof))
            }
            Ok(Err(e)) => Err(e),
            Err(payload) => Err(guard.worker_panic_error(payload.as_ref())),
        }
    }

    /// Lowers `query` into the optimized [`QueryPlan`] this engine
    /// executes: cost-based (per-type cardinalities, average degrees,
    /// kernel-direction choices) against the graph's `finalize()`-time
    /// statistics. This is the plan [`Engine::run`] runs and
    /// [`Engine::explain`] renders.
    pub fn plan(&self, query: &Query) -> std::sync::Arc<QueryPlan> {
        let ctx = LowerCtx {
            graph: self.graph,
            tables: &self.tables,
            shards: self.active_shards(),
        };
        std::sync::Arc::new(crate::plan::lower_query(query, self.semantics, Some(&ctx)))
    }

    /// Builds the query plan ([`crate::Plan`]) this engine executes
    /// `query` with, under the engine's configured semantics —
    /// cost-annotated (`est_rows`/`est_cost`) from the graph's
    /// statistics. This is the same lowering execution uses, so EXPLAIN
    /// renders the plan that actually runs.
    pub fn explain(&self, query: &Query) -> Result<crate::explain::Plan> {
        Ok(self.plan(query).plan.clone())
    }

    fn run_inner(
        &self,
        query: &Query,
        args: &[(&str, Value)],
        guard: &QueryGuard,
        profile: bool,
        plan: &QueryPlan,
    ) -> Result<(QueryOutput, Option<Profile>)> {
        let mut params: FxHashMap<String, Value> = FxHashMap::default();
        for p in &query.params {
            let arg = args
                .iter()
                .find(|(n, _)| *n == p.name)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| Error::runtime(format!("missing argument `{}`", p.name)))?;
            // Light type checking; scalars coerce Int→Double.
            let arg = match (&p.ty, arg) {
                (ParamType::Vertex(_), v @ Value::Vertex(_)) => v,
                (ParamType::Vertex(_), other) => {
                    return Err(Error::runtime(format!(
                        "parameter `{}` expects a vertex, got `{other}`",
                        p.name
                    )))
                }
                (ParamType::VertexSet, v @ Value::Set(_)) => v,
                (ParamType::Scalar(pgraph::value::ValueType::Double), Value::Int(i)) => {
                    Value::Double(i as f64)
                }
                (_, v) => v,
            };
            params.insert(p.name.clone(), arg);
        }
        let mut rt = Runtime {
            eng: self,
            guard,
            plan,
            semantics: self.semantics,
            params,
            locals: FxHashMap::default(),
            vsets: FxHashMap::default(),
            vaccs: FxHashMap::default(),
            gaccs: FxHashMap::default(),
            gacc_types: FxHashMap::default(),
            prev_vaccs: FxHashMap::default(),
            prev_gaccs: FxHashMap::default(),
            out_tables: BTreeMap::new(),
            prints: Vec::new(),
            returned: None,
            stats: MatchStats::default(),
            prof: profile.then(Profiler::new),
            prof_hop_cache: (0, 0),
            prof_hop_workers: Vec::new(),
            prof_hop_shards: Vec::new(),
            prof_op_workers: Vec::new(),
            shards: self.active_shards(),
            mutations: Vec::new(),
            pending_vertices: 0,
        };
        rt.exec_stmts(&query.body)?;
        let prof = rt.prof.take().map(|p| {
            p.finish(
                &query.name,
                self.semantics,
                self.parallelism,
                &rt.stats,
                guard.report().peak_accum_bytes,
            )
        });
        Ok((
            QueryOutput {
                tables: rt.out_tables,
                prints: rt.prints,
                returned: rt.returned,
                stats: rt.stats,
                report: ResourceReport::default(),
                mutations: rt.mutations,
            },
            prof,
        ))
    }
}

/// What `RETURN` produced.
#[derive(Debug, Clone, PartialEq)]
pub enum ReturnValue {
    /// A scalar or collection value.
    Value(Value),
    /// A relational table.
    Table(Table),
    /// A vertex set.
    VSet(Vec<VertexId>),
}

/// The result of running a query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// Tables produced by `SELECT ... INTO`.
    pub tables: BTreeMap<String, Table>,
    /// `PRINT` output lines.
    pub prints: Vec<String>,
    /// `RETURN` value, if the query returned.
    pub returned: Option<ReturnValue>,
    /// Evaluation counters (how the query was executed).
    pub stats: MatchStats,
    /// Resource accounting from the governor (rows/paths/bytes/elapsed).
    pub report: ResourceReport,
    /// Mutation ops collected from INSERT/UPDATE/DELETE statements.
    ///
    /// The engine reads a **pinned snapshot** and never mutates it:
    /// mutation statements evaluate their expressions against the
    /// pre-write view (the paper's snapshot semantics, applied to
    /// isolation) and emit ops here for the graph owner — a
    /// `pgraph::LiveGraph`, the shell, or a test — to commit atomically.
    pub mutations: Vec<MutationOp>,
}

impl QueryOutput {
    /// Convenience accessor for an output table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }
}

enum Flow {
    Normal,
    Returned,
}

/// Coerces an INSERT/UPDATE value to the declared attribute type.
/// Int widens to Double/DateTime (and DateTime narrows back to Int);
/// anything else must match exactly — collections are never storable.
fn coerce_attr(v: Value, ty: ValueType, attr: &str) -> Result<Value> {
    match (v, ty) {
        (v @ Value::Bool(_), ValueType::Bool)
        | (v @ Value::Int(_), ValueType::Int)
        | (v @ Value::Double(_), ValueType::Double)
        | (v @ Value::Str(_), ValueType::Str)
        | (v @ Value::DateTime(_), ValueType::DateTime) => Ok(v),
        (Value::Int(i), ValueType::Double) => Ok(Value::Double(i as f64)),
        (Value::Int(i), ValueType::DateTime) => Ok(Value::DateTime(i)),
        (Value::DateTime(t), ValueType::Int) => Ok(Value::Int(t)),
        (v, ty) => {
            Err(Error::runtime(format!("attribute `{attr}` expects {ty}, got `{v}`")))
        }
    }
}

/// A resolved vertex specifier.
enum Spec {
    Any,
    Type(VTypeId),
    Set(FxHashSet<VertexId>),
    Single(VertexId),
}

impl Spec {
    fn matches(&self, graph: &Graph, v: VertexId) -> bool {
        match self {
            Spec::Any => true,
            Spec::Type(t) => graph.vertex_type_of(v) == *t,
            Spec::Set(s) => s.contains(&v),
            Spec::Single(x) => *x == v,
        }
    }

    fn candidates(&self, graph: &Graph) -> Vec<VertexId> {
        match self {
            Spec::Any => graph.vertices().collect(),
            Spec::Type(t) => graph.vertices_of_type(*t).to_vec(),
            Spec::Set(s) => {
                let mut v: Vec<VertexId> = s.iter().copied().collect();
                v.sort();
                v
            }
            Spec::Single(x) => vec![*x],
        }
    }
}

/// One accumulator-input emission from the Map phase.
struct Emission {
    target: EmitTarget,
    value: Value,
    /// `true` = `+=` (combine), `false` = `=` (assign).
    combine: bool,
    mult: BigCount,
}

#[derive(Clone, Copy)]
enum EmitTarget {
    V { name: usize, vertex: VertexId },
    G { name: usize },
}

/// Identity-seeded accumulator partials folded by one scatter worker
/// (per shard or per morsel-stealing thread). Globals key by interned
/// target index, vertex cells by `(target, VertexId)`; both merge into
/// the live stores in a deterministic order — ascending shard / morsel,
/// then ascending key — via [`Runtime::merge_partial`]. The `bool` in
/// each cell records whether the cell was ever written by a plain `=`
/// assignment: such cells *replace* the live state on merge instead of
/// combining into it (sound only under the absint-proven gates — see
/// `lint/absint.rs`).
#[derive(Default)]
struct AccumPartial {
    g: FxHashMap<usize, (Accum, bool)>,
    v: FxHashMap<(usize, VertexId), (Accum, bool)>,
}

/// Fold one Map-phase emission into a worker-local partial. Only
/// reachable under the exact-merge gate ([`Runtime::accum_scatter_exact`])
/// or the absint-proven gate from the block plan, so every target is a
/// declared accumulator of a known type. `+=` emissions combine into the
/// identity-seeded cell; `=` emissions assign and mark the cell so
/// [`Runtime::merge_partial`] replaces rather than merges the live state
/// (legal because the proven gate guarantees either a row-invariant RHS
/// or per-vertex suffix-replay equivalence).
fn fold_into_partial(
    part: &mut AccumPartial,
    em: Emission,
    v_types: &[Option<AccumType>],
    g_types: &[Option<AccumType>],
    registry: &UserAccumRegistry,
) -> Result<()> {
    use std::collections::hash_map::Entry;
    let cell = match em.target {
        EmitTarget::V { name, vertex } => match part.v.entry((name, vertex)) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                let ty = v_types[name].as_ref().ok_or_else(|| {
                    Error::runtime("parallel-fold gate admitted an undeclared accumulator")
                })?;
                e.insert((Accum::new(ty, registry)?, false))
            }
        },
        EmitTarget::G { name } => match part.g.entry(name) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                let ty = g_types[name].as_ref().ok_or_else(|| {
                    Error::runtime("parallel-fold gate admitted an undeclared accumulator")
                })?;
                e.insert((Accum::new(ty, registry)?, false))
            }
        },
    };
    if em.combine {
        cell.0.combine_with_multiplicity(em.value, &em.mult, registry)?;
    } else {
        cell.0.assign(em.value)?;
        cell.1 = true;
    }
    Ok(())
}

struct Runtime<'e, 'g> {
    eng: &'e Engine<'g>,
    /// Live resource-governor state for this execution.
    guard: &'e QueryGuard,
    /// The lowered plan this execution runs over (pushdown assignment
    /// and hop strategies are read from here, not re-derived).
    plan: &'e QueryPlan,
    /// Active path semantics (engine default, overridable per query via
    /// `USE SEMANTICS`).
    semantics: PathSemantics,
    params: FxHashMap<String, Value>,
    locals: FxHashMap<String, Value>,
    vsets: FxHashMap<String, Vec<VertexId>>,
    vaccs: FxHashMap<String, VAccStore>,
    gaccs: FxHashMap<String, Accum>,
    /// Declared types of the global accumulators (the instances in
    /// `gaccs` don't retain their descriptor; the scatter-gather exact-
    /// merge gate needs it).
    gacc_types: FxHashMap<String, AccumType>,
    prev_vaccs: FxHashMap<String, VAccStore>,
    prev_gaccs: FxHashMap<String, Accum>,
    out_tables: BTreeMap<String, Table>,
    prints: Vec<String>,
    returned: Option<ReturnValue>,
    stats: MatchStats,
    /// `Some` only on profiled runs. Every operator boundary pays one
    /// `Option` discriminant check when profiling is off; all detail
    /// strings and snapshots are built only when on.
    prof: Option<Profiler>,
    /// Reach-cache (hits, misses) of the most recent Kleene hop,
    /// consumed by the enclosing hop span.
    prof_hop_cache: (u64, u64),
    /// Per-worker kernel counts of the most recent parallel fan-out,
    /// collected only when profiling.
    prof_hop_workers: Vec<u64>,
    /// Per-shard kernel counts of the most recent scatter fan-out,
    /// collected only when profiling on the sharded path.
    prof_hop_shards: Vec<u64>,
    /// Per-worker morsel counts of the most recent ACCUM/POST_ACCUM
    /// dispatch, collected only when profiling.
    prof_op_workers: Vec<u64>,
    /// Validated sharded view for this execution (`None` = flat path).
    shards: Option<&'g ShardedGraph>,
    /// Mutation ops emitted by INSERT/UPDATE/DELETE, in statement order.
    mutations: Vec<MutationOp>,
    /// Vertices inserted so far this query: `INSERT EDGE` endpoints may
    /// address them by provisional id (`graph.vertex_count() + k`).
    pending_vertices: usize,
}

impl<'e, 'g> Runtime<'e, 'g> {
    fn graph(&self) -> &'g Graph {
        self.eng.graph
    }

    /// Worker count for a morsel dispatch over `n_rows` rows: the
    /// engine's parallelism above [`PARALLEL_THRESHOLD`], else 1 — path
    /// *shape* (morsel boundaries, counters, fold order) never depends
    /// on this, only the thread count does.
    fn workers_for(&self, n_rows: usize) -> usize {
        if n_rows >= PARALLEL_THRESHOLD {
            self.eng.parallelism
        } else {
            1
        }
    }

    /// Accounts a morsel dispatch over `n_rows` rows and returns the
    /// morsel ranges. The count is a pure function of the row count and
    /// the configured morsel size — identical at any parallelism and
    /// on the sharded path, so it is safe to compare across runs.
    fn note_morsels(&mut self, n_rows: usize) -> Vec<std::ops::Range<usize>> {
        let ranges = morsel_ranges(n_rows, self.eng.morsel_size);
        self.stats.morsels_dispatched += ranges.len() as u64;
        self.guard.note_morsels(ranges.len() as u64);
        ranges
    }

    /// Opens a profiling span for operator `(op, key)` — a no-op
    /// returning `None` on unprofiled runs. `key` is the AST node's
    /// address, so re-executions accumulate into one profile node.
    fn prof_enter(
        &mut self,
        op: &'static str,
        key: usize,
        detail: impl FnOnce() -> String,
    ) -> Option<Span> {
        let stats = &self.stats;
        self.prof.as_mut().map(|p| p.enter(op, key, detail, stats))
    }

    /// Closes a span opened by [`Runtime::prof_enter`] (no-op for `None`).
    fn prof_exit(&mut self, span: Option<Span>, extra: SpanExtra) {
        if let Some(span) = span {
            if let Some(p) = self.prof.as_mut() {
                p.exit(span, &self.stats, extra);
            }
        }
    }

    fn env<'a>(&'a self) -> Env<'a> {
        Env {
            graph: self.eng.graph,
            registry: &self.eng.registry,
            params: &self.params,
            locals: Some(&self.locals),
            row: None,
            acc_locals: None,
            vaccs: &self.vaccs,
            prev_vaccs: &self.prev_vaccs,
            gaccs: &self.gaccs,
            prev_gaccs: &self.prev_gaccs,
            vsets: &self.vsets,
            agg: None,
        }
    }

    // ---- statement execution --------------------------------------------

    fn exec_stmts(&mut self, stmts: &[Stmt]) -> Result<Flow> {
        for s in stmts {
            if let Flow::Returned = self.exec_stmt(s)? {
                return Ok(Flow::Returned);
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> Result<Flow> {
        match stmt {
            Stmt::TupleTypedef { .. } => {}
            Stmt::AccumDecl { ty, decls } => {
                for d in decls {
                    let mut proto = Accum::new(ty, &self.eng.registry)?;
                    if let Some(init) = &d.init {
                        let v = eval(&self.env(), init)?;
                        proto.assign(v)?;
                    }
                    if d.global {
                        self.gaccs.insert(d.name.clone(), proto);
                        self.gacc_types.insert(d.name.clone(), ty.clone());
                    } else {
                        self.vaccs.insert(
                            d.name.clone(),
                            VAccStore {
                                ty: ty.clone(),
                                prototype: proto,
                                cells: vec![None; self.graph().vertex_count()],
                            },
                        );
                    }
                }
            }
            Stmt::VSetAssign { name, source, .. } => match source {
                VSetSource::Literal(entries) => {
                    let mut set = Vec::new();
                    for e in entries {
                        set.extend(self.resolve_spec(e)?.candidates(self.graph()));
                    }
                    set.sort();
                    set.dedup();
                    self.vsets.insert(name.clone(), set);
                }
                VSetSource::SetOp { op, lhs, rhs } => {
                    let l = self.resolve_spec(lhs)?.candidates(self.graph());
                    let r: FxHashSet<VertexId> =
                        self.resolve_spec(rhs)?.candidates(self.graph()).into_iter().collect();
                    let mut out: Vec<VertexId> = match op {
                        SetOp::Union => {
                            let mut v = l;
                            v.extend(r.iter().copied());
                            v
                        }
                        SetOp::Intersect => l.into_iter().filter(|v| r.contains(v)).collect(),
                        SetOp::Minus => l.into_iter().filter(|v| !r.contains(v)).collect(),
                    };
                    out.sort();
                    out.dedup();
                    self.vsets.insert(name.clone(), out);
                }
                VSetSource::Select(block) => {
                    let vres = self.exec_select(block)?;
                    let vres = vres.ok_or_else(|| {
                        Error::runtime(format!(
                            "SELECT assigned to `{name}` does not produce a vertex set \
                             (its first output must be a bare pattern vertex variable)"
                        ))
                    })?;
                    self.vsets.insert(name.clone(), vres);
                }
            },
            Stmt::Select(block) => {
                self.exec_select(block)?;
            }
            Stmt::UseSemantics(sem) => {
                self.semantics = *sem;
            }
            Stmt::GAccAssign { name, combine, expr } => {
                let v = eval(&self.env(), expr)?;
                let acc = self
                    .gaccs
                    .get_mut(name)
                    .ok_or_else(|| Error::runtime(format!("undeclared accumulator `@@{name}`")))?;
                if *combine {
                    acc.combine(v, &self.eng.registry)?;
                } else {
                    acc.assign(v)?;
                }
                self.guard.note_accum_bytes(self.accum_footprint())?;
            }
            Stmt::While { cond, limit, body, .. } => {
                let span = self.prof_enter("while", stmt as *const Stmt as usize, || {
                    format!(
                        "WHILE loop{}",
                        if limit.is_some() { " (bounded)" } else { "" }
                    )
                });
                let flow = self.exec_while(cond, limit.as_ref(), body);
                self.prof_exit(span, SpanExtra::default());
                return flow;
            }
            Stmt::If { cond, then_branch, else_branch } => {
                let c = eval(&self.env(), cond)?;
                let branch = if truthy(&c)? { then_branch } else { else_branch };
                if let Flow::Returned = self.exec_stmts(branch)? {
                    return Ok(Flow::Returned);
                }
            }
            Stmt::Foreach { var, iterable, body } => {
                let span = self
                    .prof_enter("foreach", stmt as *const Stmt as usize, || {
                        format!("FOREACH {var}")
                    });
                let flow = self.exec_foreach(var, iterable, body);
                self.prof_exit(span, SpanExtra::default());
                return flow;
            }
            Stmt::Print(items) => self.exec_print(items)?,
            Stmt::Return(expr) => {
                self.returned = Some(self.eval_return(expr)?);
                return Ok(Flow::Returned);
            }
            Stmt::InsertVertex { vtype, columns, values, .. } => {
                self.exec_insert_vertex(vtype, columns, values)?;
            }
            Stmt::InsertEdge { etype, src, dst, columns, values, .. } => {
                self.exec_insert_edge(etype, src, dst, columns, values)?;
            }
            Stmt::Update { target, sets, where_clause, .. } => {
                self.exec_update(target, sets, where_clause.as_ref())?;
            }
            Stmt::Delete { target, where_clause, .. } => {
                self.exec_delete(target, where_clause.as_ref())?;
            }
        }
        Ok(Flow::Normal)
    }

    // ---- mutation statements --------------------------------------------

    /// Evaluates an INSERT value row into a full-arity attribute vector:
    /// positional when `columns` is empty, else by name with unnamed
    /// attributes defaulted.
    fn eval_attr_row(
        &mut self,
        columns: &[String],
        values: &[Expr],
        attrs: &[AttrDef],
        what: &str,
    ) -> Result<Vec<Value>> {
        let mut row: Vec<Value> = attrs.iter().map(|a| a.ty.default_value()).collect();
        if columns.is_empty() {
            if values.len() != attrs.len() {
                return Err(Error::runtime(format!(
                    "{what} declares {} attribute(s), INSERT supplies {}",
                    attrs.len(),
                    values.len()
                )));
            }
            for (i, e) in values.iter().enumerate() {
                let v = eval(&self.env(), e)?;
                row[i] = coerce_attr(v, attrs[i].ty, &attrs[i].name)?;
            }
        } else {
            if columns.len() != values.len() {
                return Err(Error::runtime(format!(
                    "INSERT names {} column(s) but supplies {} value(s)",
                    columns.len(),
                    values.len()
                )));
            }
            let mut seen = vec![false; attrs.len()];
            for (c, e) in columns.iter().zip(values) {
                let idx = attrs.iter().position(|a| &a.name == c).ok_or_else(|| {
                    Error::runtime(format!("{what} has no attribute `{c}`"))
                })?;
                if seen[idx] {
                    return Err(Error::runtime(format!(
                        "attribute `{c}` appears more than once in the INSERT column list"
                    )));
                }
                seen[idx] = true;
                let v = eval(&self.env(), e)?;
                row[idx] = coerce_attr(v, attrs[idx].ty, c)?;
            }
        }
        Ok(row)
    }

    fn exec_insert_vertex(
        &mut self,
        vtype: &str,
        columns: &[String],
        values: &[Expr],
    ) -> Result<()> {
        let vt = self
            .graph()
            .schema()
            .vertex_type_id(vtype)
            .ok_or_else(|| Error::runtime(format!("unknown vertex type `{vtype}`")))?;
        let attrs = &self.graph().schema().vertex_type(vt).attrs;
        let row = self.eval_attr_row(columns, values, attrs, &format!("vertex type `{vtype}`"))?;
        self.mutations.push(MutationOp::AddVertex { vtype: vt, attrs: row });
        self.pending_vertices += 1;
        Ok(())
    }

    /// Resolves an INSERT EDGE endpoint: a vertex value, or an integer id
    /// — which may address a vertex inserted earlier in this query
    /// (provisional ids follow the snapshot's vertex count).
    fn endpoint_vertex(&mut self, e: &Expr) -> Result<VertexId> {
        let total = self.graph().vertex_count() + self.pending_vertices;
        match eval(&self.env(), e)? {
            Value::Vertex(v) if (v.0 as usize) < total => Ok(v),
            Value::Vertex(v) => Err(Error::runtime(format!(
                "endpoint vertex id {} out of range (graph + this query's inserts = {total})",
                v.0
            ))),
            Value::Int(i) if i >= 0 && (i as usize) < total => Ok(VertexId(i as u32)),
            Value::Int(i) => Err(Error::runtime(format!(
                "endpoint vertex id {i} out of range (graph + this query's inserts = {total})"
            ))),
            other => Err(Error::type_error("vertex (or integer vertex id)", &other)),
        }
    }

    fn exec_insert_edge(
        &mut self,
        etype: &str,
        src: &Expr,
        dst: &Expr,
        columns: &[String],
        values: &[Expr],
    ) -> Result<()> {
        let et = self
            .graph()
            .schema()
            .edge_type_id(etype)
            .ok_or_else(|| Error::runtime(format!("unknown edge type `{etype}`")))?;
        let s = self.endpoint_vertex(src)?;
        let d = self.endpoint_vertex(dst)?;
        let attrs = &self.graph().schema().edge_type(et).attrs;
        let row = self.eval_attr_row(columns, values, attrs, &format!("edge type `{etype}`"))?;
        self.mutations.push(MutationOp::AddEdge { etype: et, src: s, dst: d, attrs: row });
        Ok(())
    }

    /// Shared UPDATE/DELETE candidate loop: resolves the target spec,
    /// binds `var` to each candidate vertex (snapshot order), applies the
    /// optional WHERE filter, and calls `apply` for survivors.
    fn for_each_target(
        &mut self,
        target: &VSpec,
        where_clause: Option<&Expr>,
        mut apply: impl FnMut(&mut Self, VertexId) -> Result<()>,
    ) -> Result<()> {
        let var = target.var.clone().unwrap_or_else(|| target.name.clone());
        let candidates = self.resolve_spec(&target.name)?.candidates(self.graph());
        let saved = self.locals.remove(&var);
        let run = || -> Result<()> {
            for v in candidates {
                self.guard.note_visits(1, 0);
                self.locals.insert(var.clone(), Value::Vertex(v));
                if let Some(cond) = where_clause {
                    let keep = truthy(&eval(&self.env(), cond)?)?;
                    if !keep {
                        continue;
                    }
                }
                apply(self, v)?;
            }
            Ok(())
        };
        let result = run();
        match saved {
            Some(old) => {
                self.locals.insert(var, old);
            }
            None => {
                self.locals.remove(&var);
            }
        }
        result
    }

    fn exec_update(
        &mut self,
        target: &VSpec,
        sets: &[(String, String, Expr)],
        where_clause: Option<&Expr>,
    ) -> Result<()> {
        let var = target.var.clone().unwrap_or_else(|| target.name.clone());
        for (svar, _, _) in sets {
            if svar != &var {
                return Err(Error::runtime(format!(
                    "UPDATE SET references `{svar}` but the target binds `{var}`"
                )));
            }
        }
        self.for_each_target(target, where_clause, |rt, v| {
            for (_, attr, expr) in sets {
                let vt = rt.graph().vertex_type_of(v);
                let idx =
                    rt.graph().schema().vertex_attr_index(vt, attr).ok_or_else(|| {
                        Error::runtime(format!(
                            "vertex type `{}` has no attribute `{attr}`",
                            rt.graph().schema().vertex_type(vt).name
                        ))
                    })?;
                let ty = rt.graph().schema().vertex_type(vt).attrs[idx].ty;
                let val = coerce_attr(eval(&rt.env(), expr)?, ty, attr)?;
                rt.mutations.push(MutationOp::SetVertexAttr { v, attr: idx, value: val });
            }
            Ok(())
        })
    }

    fn exec_delete(&mut self, target: &VSpec, where_clause: Option<&Expr>) -> Result<()> {
        self.for_each_target(target, where_clause, |rt, v| {
            rt.mutations.push(MutationOp::DeleteVertex { v });
            Ok(())
        })
    }

    fn exec_while(
        &mut self,
        cond: &Expr,
        limit: Option<&Expr>,
        body: &[Stmt],
    ) -> Result<Flow> {
        let max_iter = match limit {
            Some(e) => {
                let v = eval(&self.env(), e)?;
                let n = v.as_i64().ok_or_else(|| Error::type_error("integer LIMIT", &v))?;
                if n < 0 {
                    return Err(Error::runtime(format!(
                        "WHILE LIMIT must be non-negative, got {n}"
                    )));
                }
                n as u64
            }
            None => u64::MAX,
        };
        let mut iters = 0u64;
        while iters < max_iter {
            self.guard.tick_while()?;
            let c = eval(&self.env(), cond)?;
            if !truthy(&c)? {
                break;
            }
            if let Flow::Returned = self.exec_stmts(body)? {
                return Ok(Flow::Returned);
            }
            iters += 1;
        }
        Ok(Flow::Normal)
    }

    fn exec_foreach(&mut self, var: &str, iterable: &Expr, body: &[Stmt]) -> Result<Flow> {
        let it = eval(&self.env(), iterable)?;
        let items: Vec<Value> = match it {
            Value::List(xs) | Value::Set(xs) | Value::Tuple(xs) => xs,
            Value::Map(entries) => {
                entries.into_iter().map(|(k, v)| Value::Tuple(vec![k, v])).collect()
            }
            other => return Err(Error::type_error("iterable collection", &other)),
        };
        let shadowed = self.locals.remove(var);
        for item in items {
            self.guard.checkpoint()?;
            self.locals.insert(var.to_string(), item);
            if let Flow::Returned = self.exec_stmts(body)? {
                return Ok(Flow::Returned);
            }
        }
        match shadowed {
            Some(v) => {
                self.locals.insert(var.to_string(), v);
            }
            None => {
                self.locals.remove(var);
            }
        }
        Ok(Flow::Normal)
    }

    fn eval_return(&self, expr: &Expr) -> Result<ReturnValue> {
        if let Expr::Ident(name) = expr {
            if let Some(t) = self.out_tables.get(name) {
                return Ok(ReturnValue::Table(t.clone()));
            }
            if let Some(s) = self.vsets.get(name) {
                return Ok(ReturnValue::VSet(s.clone()));
            }
        }
        Ok(ReturnValue::Value(eval(&self.env(), expr)?))
    }

    fn exec_print(&mut self, items: &[PrintItem]) -> Result<()> {
        for item in items {
            match item {
                PrintItem::Expr { expr, label } => {
                    // A bare identifier naming an INTO table prints the table.
                    if let Expr::Ident(name) = expr {
                        if let Some(t) = self.out_tables.get(name) {
                            self.prints.push(t.to_string());
                            continue;
                        }
                    }
                    let v = eval(&self.env(), expr)?;
                    self.prints.push(format!("{label} = {v}"));
                }
                PrintItem::VSetProjection { set, items } => {
                    // The set name may also name an INTO table; prefer the
                    // vertex set, since projections use per-vertex exprs.
                    let vs = self
                        .vsets
                        .get(set)
                        .cloned()
                        .ok_or_else(|| Error::runtime(format!("unknown vertex set `{set}`")))?;
                    let mut vars = FxHashMap::default();
                    vars.insert(set.clone(), 0usize);
                    for v in vs {
                        let bindings = [Binding::Vertex(v)];
                        let env = Env {
                            row: Some(RowRef {
                                vars: &vars,
                                bindings: Bindings::Row(&bindings),
                                tables: &[],
                            }),
                            ..self.env()
                        };
                        let mut cells = Vec::with_capacity(items.len());
                        for it in items {
                            cells.push(eval(&env, &it.expr)?.to_string());
                        }
                        self.prints.push(format!("{set}: {}", cells.join(", ")));
                    }
                }
            }
        }
        Ok(())
    }

    // ---- FROM resolution --------------------------------------------------

    fn resolve_spec(&self, name: &str) -> Result<Spec> {
        if name == "_" || name.eq_ignore_ascii_case("any") {
            return Ok(Spec::Any);
        }
        if let Some(set) = self.vsets.get(name) {
            return Ok(Spec::Set(set.iter().copied().collect()));
        }
        if let Some(t) = self.graph().schema().vertex_type_id(name) {
            return Ok(Spec::Type(t));
        }
        match self.params.get(name) {
            Some(Value::Vertex(v)) => Ok(Spec::Single(*v)),
            Some(Value::Set(items)) => {
                let mut set = FxHashSet::default();
                for it in items {
                    match it {
                        Value::Vertex(v) => {
                            set.insert(*v);
                        }
                        other => {
                            return Err(Error::runtime(format!(
                                "`{name}` contains non-vertex `{other}`"
                            )))
                        }
                    }
                }
                Ok(Spec::Set(set))
            }
            _ => Err(Error::runtime(format!(
                "`{name}` is not a vertex type, vertex set, or vertex parameter"
            ))),
        }
    }

    /// Narrows a spec by a binding variable that is pre-anchored (a
    /// vertex-valued parameter or FOREACH variable of the same name).
    fn anchor_for(&self, var: &str) -> Option<VertexId> {
        match self.locals.get(var).or_else(|| self.params.get(var)) {
            Some(Value::Vertex(v)) => Some(*v),
            _ => None,
        }
    }

    // ---- SELECT block -------------------------------------------------------

    fn exec_select(&mut self, block: &SelectBlock) -> Result<Option<Vec<VertexId>>> {
        let span = self.prof_enter("block", block as *const SelectBlock as usize, || {
            crate::explain::block_label(block)
        });
        let result = self.exec_select_inner(block);
        self.prof_exit(span, SpanExtra::default());
        result
    }

    fn exec_select_inner(&mut self, block: &SelectBlock) -> Result<Option<Vec<VertexId>>> {
        // Static tractability check against the declared accumulators.
        let vacc_types: FxHashMap<String, AccumType> = self
            .vaccs
            .iter()
            .map(|(n, s)| (n.clone(), s.ty.clone()))
            .collect();
        let gacc_types: FxHashMap<String, AccumType> = self
            .gaccs
            .iter()
            .map(|(n, a)| (n.clone(), proto_type(a)))
            .collect();
        tractable::check_block(
            block,
            self.semantics,
            &vacc_types,
            &gacc_types,
            &self.eng.registry,
        )?;

        // 1. FROM + WHERE pushdown: build the (compressed) binding table,
        // applying each WHERE conjunct as soon as every FROM variable it
        // references is bound (classic selection pushdown — without it the
        // Q_n query would run the reachability kernel from every vertex of
        // the graph before filtering on `s.name`). The conjunct split and
        // per-step assignment come from the lowered plan; the per-run
        // worklist is just the not-yet-applied indices into it.
        let bp: std::sync::Arc<BlockPlan> = match self.plan.block_for(block) {
            Some(bp) if bp.semantics == self.semantics => bp.clone(),
            // The static walk mispredicted the runtime semantics (an
            // IF-guarded USE SEMANTICS) or the block reached us outside
            // the planned query: lower it on the fly.
            _ => {
                let ctx =
                    LowerCtx { graph: self.graph(), tables: &self.eng.tables, shards: self.shards };
                std::sync::Arc::new(crate::plan::lower_block_only(
                    block,
                    self.semantics,
                    Some(&ctx),
                ))
            }
        };
        let mut pending: Vec<usize> = (0..bp.conjuncts.len()).collect();

        let mut vars: FxHashMap<String, usize> = FxHashMap::default();
        let mut table_refs: Vec<&Table> = Vec::new();
        let mut rows = MorselTable::unit();
        let mut anon = 0usize;
        // Execute FROM items in the plan's cost-chosen order (empty =
        // source order); a permutation is only ever emitted when the
        // output-invariance gate held, so results are unchanged.
        let exec_order: Vec<usize> = if bp.from_order.is_empty() {
            (0..block.from.len()).collect()
        } else {
            bp.from_order.clone()
        };
        for &item_idx in &exec_order {
            // Hop reordering: when the planner proved a reversed
            // traversal strictly cheaper and result-equivalent, walk the
            // rewritten item (same binding variables, same row multiset).
            let item = bp.rewritten_from.get(&item_idx).unwrap_or(&block.from[item_idx]);
            match item {
                FromItem::Table { name, alias } => {
                    let span =
                        self.prof_enter("scan", item as *const FromItem as usize, || {
                            format!("scan {name} AS {alias}")
                        });
                    if let Some(t) = self.eng.tables.get(name) {
                        let tidx = table_refs.len();
                        table_refs.push(t);
                        let col = new_var(&mut vars, alias)?;
                        debug_assert_eq!(col, rows.width());
                        let mut b = MorselBuilder::new(&rows, 1);
                        for row in 0..rows.len() {
                            for r in 0..t.len() {
                                b.push(
                                    row,
                                    &[Binding::Row { table: tidx, row: r }],
                                    rows.mult(row).clone(),
                                );
                            }
                        }
                        let next = b.finish();
                        self.guard.tick_rows(next.len() as u64)?;
                        rows = next;
                    } else {
                        // Vertex scan (type / set / param named `name`).
                        let spec = self.resolve_spec(name)?;
                        rows = self.bind_vertex(rows, &mut vars, alias, &spec)?;
                    }
                    rows = self.apply_ready_filters(rows, &mut pending, &bp.conjuncts, &vars, &table_refs)?;
                    let n = rows.len() as u64;
                    self.prof_exit(span, SpanExtra { rows: n, ..SpanExtra::default() });
                }
                FromItem::Pattern { start, hops, .. } => {
                    let span =
                        self.prof_enter("scan", start as *const VSpec as usize, || {
                            format!("scan {}", crate::explain::vspec_label(start))
                        });
                    let spec = self.resolve_spec(&start.name)?;
                    let var = start
                        .var
                        .clone()
                        .unwrap_or_else(|| fresh_anon(&mut anon));
                    rows = self.bind_vertex(rows, &mut vars, &var, &spec)?;
                    rows = self.apply_ready_filters(rows, &mut pending, &bp.conjuncts, &vars, &table_refs)?;
                    let n = rows.len() as u64;
                    self.prof_exit(span, SpanExtra { rows: n, ..SpanExtra::default() });
                    let mut prev_col = vars[&var];
                    for hop in hops {
                        let span =
                            self.prof_enter("hop", hop as *const Hop as usize, || {
                                format!(
                                    "hop -({})-> {}",
                                    hop.darpe,
                                    crate::explain::vspec_label(&hop.to)
                                )
                            });
                        if span.is_some() {
                            self.prof_hop_cache = (0, 0);
                            self.prof_hop_workers.clear();
                            self.prof_hop_shards.clear();
                        }
                        let mut to_spec = self.resolve_spec(&hop.to.name)?;
                        let to_var = hop
                            .to
                            .var
                            .clone()
                            .unwrap_or_else(|| fresh_anon(&mut anon));
                        if !vars.contains_key(&to_var) {
                            // Sargable pushdown: WHERE conjuncts that
                            // reference only the hop's target variable
                            // narrow the candidate set *before* the
                            // reachability kernel runs — this is what lets
                            // enumerative kernels anchor on the target
                            // (Q_n's `t.name == tgtName`).
                            to_spec = self.refine_spec(
                                to_spec, &to_var, &mut pending, &bp.conjuncts,
                            )?;
                        }
                        rows = self.extend_hop(
                            rows, &mut vars, prev_col, hop, &to_var, &to_spec,
                            bp.strategy_for(hop),
                        )?;
                        rows = self.apply_ready_filters(
                            rows, &mut pending, &bp.conjuncts, &vars, &table_refs,
                        )?;
                        prev_col = vars[&to_var];
                        if span.is_some() {
                            let extra = SpanExtra {
                                rows: rows.len() as u64,
                                cache_hits: self.prof_hop_cache.0,
                                cache_misses: self.prof_hop_cache.1,
                                workers: std::mem::take(&mut self.prof_hop_workers),
                                shards: std::mem::take(&mut self.prof_hop_shards),
                                ..SpanExtra::default()
                            };
                            self.prof_exit(span, extra);
                        }
                    }
                }
            }
        }

        // 2. Residual WHERE conjuncts (e.g. referencing no FROM variable).
        if !pending.is_empty() {
            let span = self
                .prof_enter("residual-filter", block as *const SelectBlock as usize, || {
                    format!("residual filters ({})", pending.len())
                });
            for idx in pending.drain(..) {
                let cond = &bp.conjuncts[idx].0;
                rows = self.filter_rows(rows, cond, &vars, &table_refs)?;
            }
            let n = rows.len() as u64;
            self.prof_exit(span, SpanExtra { rows: n, ..SpanExtra::default() });
        }
        self.stats.binding_rows += rows.len() as u64;

        // 3. Snapshot for `@a'` reads.
        self.prev_vaccs = self.vaccs.clone();
        self.prev_gaccs = self.gaccs.clone();

        // 4. ACCUM (Map phase + Reduce phase, snapshot semantics).
        if !block.accum.is_empty() {
            let span = self
                .prof_enter("accum", block.accum.as_ptr() as usize, || {
                    format!("ACCUM: {} statement(s)", block.accum.len())
                });
            if span.is_some() {
                self.prof_op_workers.clear();
            }
            self.run_accum(&block.accum, &rows, &vars, &table_refs, bp.accum_parallel_proven)?;
            let bytes = if span.is_some() { self.accum_footprint() } else { 0 };
            let extra = SpanExtra {
                accum_bytes: bytes,
                workers: std::mem::take(&mut self.prof_op_workers),
                ..SpanExtra::default()
            };
            self.prof_exit(span, extra);
        }

        // 5. POST_ACCUM.
        if !block.post_accum.is_empty() {
            let span = self
                .prof_enter("post-accum", block.post_accum.as_ptr() as usize, || {
                    format!("POST_ACCUM: {} statement(s)", block.post_accum.len())
                });
            if span.is_some() {
                self.prof_op_workers.clear();
            }
            self.run_post_accum(
                &block.post_accum,
                &rows,
                &vars,
                &table_refs,
                bp.post_accum_parallel_proven,
            )?;
            let bytes = if span.is_some() { self.accum_footprint() } else { 0 };
            let extra = SpanExtra {
                accum_bytes: bytes,
                workers: std::mem::take(&mut self.prof_op_workers),
                ..SpanExtra::default()
            };
            self.prof_exit(span, extra);
        }

        // 6. Outputs.
        let mut vertex_result: Option<Vec<VertexId>> = None;
        for frag in &block.outputs {
            let span = self
                .prof_enter("output", frag as *const OutputFragment as usize, || {
                    format!(
                        "output{}",
                        frag.into.as_ref().map(|n| format!(" INTO {n}")).unwrap_or_default()
                    )
                });
            let produced;
            if let Some(var) = vertex_fragment_var(frag, &vars, &rows) {
                let vs = self.eval_vertex_fragment(block, frag, &var, &vars, &rows, &table_refs)?;
                produced = vs.len() as u64;
                if let Some(name) = &frag.into {
                    self.vsets.insert(name.clone(), vs.clone());
                }
                if vertex_result.is_none() {
                    vertex_result = Some(vs);
                }
            } else {
                let table = self.eval_table_fragment(block, frag, &vars, &rows, &table_refs)?;
                produced = table.len() as u64;
                self.out_tables.insert(table.name.clone(), table);
            }
            self.prof_exit(span, SpanExtra { rows: produced, ..SpanExtra::default() });
        }
        Ok(vertex_result)
    }

    /// Narrows a vertex spec using pending WHERE conjuncts that reference
    /// only `var`: each such conjunct is evaluated over the spec's
    /// candidates and consumed. Returns the narrowed spec.
    fn refine_spec(
        &self,
        spec: Spec,
        var: &str,
        pending: &mut Vec<usize>,
        conjuncts: &[(Expr, Vec<String>)],
    ) -> Result<Spec> {
        let applicable: Vec<usize> = pending
            .iter()
            .enumerate()
            .filter(|(_, &ci)| {
                let refs = &conjuncts[ci].1;
                refs.len() == 1 && refs[0] == var
            })
            .map(|(i, _)| i)
            .collect();
        if applicable.is_empty() {
            return Ok(spec);
        }
        let conds: Vec<&Expr> = applicable
            .iter()
            .rev()
            .map(|&i| &conjuncts[pending.remove(i)].0)
            .collect();
        let mut pvars = FxHashMap::default();
        pvars.insert(var.to_string(), 0usize);
        let mut keep = FxHashSet::default();
        'cand: for v in spec.candidates(self.graph()) {
            let bindings = [Binding::Vertex(v)];
            let env = Env {
                row: Some(RowRef {
                    vars: &pvars,
                    bindings: Bindings::Row(&bindings),
                    tables: &[],
                }),
                ..self.env()
            };
            for c in &conds {
                if !truthy(&eval(&env, c)?)? {
                    continue 'cand;
                }
            }
            keep.insert(v);
        }
        Ok(Spec::Set(keep))
    }

    /// Applies every pending WHERE conjunct whose FROM variables are all
    /// bound, removing it from `pending`.
    fn apply_ready_filters(
        &mut self,
        mut rows: MorselTable,
        pending: &mut Vec<usize>,
        conjuncts: &[(Expr, Vec<String>)],
        vars: &FxHashMap<String, usize>,
        tables: &[&Table],
    ) -> Result<MorselTable> {
        let mut i = 0;
        while i < pending.len() {
            let refs = &conjuncts[pending[i]].1;
            let ready = refs.iter().all(|v| vars.contains_key(v)) && !refs.is_empty();
            if !ready {
                i += 1;
                continue;
            }
            let cond = &conjuncts[pending.remove(i)].0;
            rows = self.filter_rows(rows, cond, vars, tables)?;
        }
        Ok(rows)
    }

    /// Filters the binding table by one WHERE conjunct, morsel-driven:
    /// workers evaluate the predicate over contiguous row ranges and
    /// return keep-lists; survivors gather into the output table in
    /// ascending morsel order, so the result (and any error — smallest
    /// failing row wins) is byte-identical at any worker count.
    fn filter_rows(
        &mut self,
        rows: MorselTable,
        cond: &Expr,
        vars: &FxHashMap<String, usize>,
        tables: &[&Table],
    ) -> Result<MorselTable> {
        let ranges = self.note_morsels(rows.len());
        let workers = self.workers_for(rows.len());
        let rows_ref = &rows;
        let run = dispatch(self.guard, workers, &ranges, |_, range| {
            let mut keep: Vec<usize> = Vec::new();
            for r in range {
                let env = Env {
                    row: Some(RowRef { vars, bindings: rows_ref.bindings_at(r), tables }),
                    ..self.env()
                };
                if truthy(&eval(&env, cond)?)? {
                    keep.push(r);
                }
            }
            Ok(keep)
        })?;
        let mut b = MorselBuilder::new(&rows, 0);
        for keep in &run.results {
            for &r in keep {
                b.push(r, &[], rows.mult(r).clone());
            }
        }
        Ok(b.finish())
    }

    fn bind_vertex(
        &mut self,
        rows: MorselTable,
        vars: &mut FxHashMap<String, usize>,
        var: &str,
        spec: &Spec,
    ) -> Result<MorselTable> {
        if let Some(&col) = vars.get(var) {
            // Join on the existing column: one contiguous scan.
            let mut b = MorselBuilder::new(&rows, 0);
            for (r, bind) in rows.col(col).iter().enumerate() {
                if let Binding::Vertex(v) = bind {
                    if spec.matches(self.graph(), *v) {
                        b.push(r, &[], rows.mult(r).clone());
                    }
                } else {
                    return Err(Error::runtime(format!("`{var}` is not a vertex variable")));
                }
            }
            return Ok(b.finish());
        }
        let col = new_var(vars, var)?;
        debug_assert_eq!(col, rows.width());
        let anchored = self.anchor_for(var);
        let candidates: Vec<VertexId> = match anchored {
            Some(v) => {
                if spec.matches(self.graph(), v) {
                    vec![v]
                } else {
                    Vec::new()
                }
            }
            None => spec.candidates(self.graph()),
        };
        let mut b = MorselBuilder::new(&rows, 1);
        for row in 0..rows.len() {
            self.guard.checkpoint()?;
            for &v in &candidates {
                b.push(row, &[Binding::Vertex(v)], rows.mult(row).clone());
            }
        }
        let next = b.finish();
        self.guard.tick_rows(next.len() as u64)?;
        self.stats.vertices_touched += next.len() as u64;
        self.guard.note_visits(next.len() as u64, 0);
        Ok(next)
    }

    /// Extends the binding table across one pattern hop.
    ///
    /// `plan_strategy` is the planner's cost-based choice for this hop;
    /// it is advisory — runtime conditions (is the target actually
    /// anchored? how large did the spec-refined set turn out?) always
    /// gate the backward kernels, so a stale or missing hint degrades
    /// to the syntax-driven default, never to a wrong answer.
    #[allow(clippy::too_many_arguments)]
    fn extend_hop(
        &mut self,
        rows: MorselTable,
        vars: &mut FxHashMap<String, usize>,
        prev_col: usize,
        hop: &Hop,
        to_var: &str,
        to_spec: &Spec,
        plan_strategy: Option<HopStrategy>,
    ) -> Result<MorselTable> {
        let graph = self.graph();
        let existing_to = vars.get(to_var).copied();
        let anchored_to = if existing_to.is_none() { self.anchor_for(to_var) } else { None };

        if let Some(sym) = hop.darpe.as_single_symbol() {
            // Single-edge hop: scan the source column contiguously,
            // enumerate adjacency, optionally binding the edge variable.
            let spec: SymbolSpec = resolve_symbol(sym, graph.schema())?;
            let edge_col = match &hop.edge_var {
                Some(name) => Some(new_var(vars, name)?),
                None => None,
            };
            let _to_col = match existing_to {
                Some(c) => c,
                None => new_var(vars, to_var)?,
            };
            let n_extra = edge_col.is_some() as usize + existing_to.is_none() as usize;
            let mut b = MorselBuilder::new(&rows, n_extra);
            let mut ex: Vec<Binding> = Vec::with_capacity(2);
            let mut edges_scanned = 0u64;
            for r in 0..rows.len() {
                let before = b.len();
                let src = vertex_at(&rows, r, prev_col, to_var)?;
                let adj = graph.adjacency(src);
                edges_scanned += adj.len() as u64;
                for a in adj {
                    if !spec.matches(a.etype, a.dir) {
                        continue;
                    }
                    if !to_spec.matches(graph, a.other) {
                        continue;
                    }
                    if let Some(anchor) = anchored_to {
                        if a.other != anchor {
                            continue;
                        }
                    }
                    if let Some(c) = existing_to {
                        if *rows.binding(r, c) != Binding::Vertex(a.other) {
                            continue;
                        }
                    }
                    ex.clear();
                    if edge_col.is_some() {
                        ex.push(Binding::Edge(a.edge));
                    }
                    if existing_to.is_none() {
                        ex.push(Binding::Vertex(a.other));
                    }
                    b.push(r, &ex, rows.mult(r).clone());
                }
                self.guard.tick_rows((b.len() - before) as u64)?;
            }
            let next = b.finish();
            self.stats.vertices_touched += next.len() as u64;
            self.stats.edges_scanned += edges_scanned;
            self.guard.note_visits(next.len() as u64, edges_scanned);
            return Ok(next);
        }

        // Kleene / composite hop: reachability kernel per distinct source,
        // producing (target, multiplicity) pairs — never paths.
        let nfa = CompiledDarpe::compile(&hop.darpe, graph.schema())?;
        if existing_to.is_none() {
            new_var(vars, to_var)?;
        }
        // Enumerative kernels with an anchored/bound target run **backward
        // from the target** over the reversed automaton (path reversal is
        // a bijection, so counts are identical). This mirrors what real
        // planners do for bound-endpoint variable-length patterns and is
        // what makes the Table-1 enumeration cost grow with the target's
        // distance rather than with the whole graph's path population.
        let target_bound = existing_to.is_some() || anchored_to.is_some();
        // Counting kernels reverse only when the cost model asked for it
        // (fewer estimated targets than sources); enumerative kernels
        // always prefer the anchored side, hint or no hint.
        let backward_capable = self.semantics.is_enumerative()
            || matches!(plan_strategy, Some(HopStrategy::CountingBackward));
        // A small (spec-refined) target set also anchors the kernel: run
        // backward once per target instead of forward once per source.
        let spec_targets: Option<Vec<VertexId>> = if backward_capable && !target_bound {
            match &to_spec {
                Spec::Single(v) => Some(vec![*v]),
                Spec::Set(s) if s.len() <= 32 => {
                    let mut v: Vec<VertexId> = s.iter().copied().collect();
                    v.sort();
                    Some(v)
                }
                _ => None,
            }
        } else {
            None
        };
        let reverse_from_target =
            backward_capable && (target_bound || spec_targets.is_some());
        let rev_nfa = if reverse_from_target { Some(nfa.reversed()) } else { None };

        // Multi-source fan-out: pre-compute the distinct kernel keys the
        // row loop below will ask for (forward: source vertices; backward:
        // target anchors), in first-appearance row order, and run the
        // reachability kernels across scoped worker threads. The warmed
        // cache is then consumed by the unchanged sequential row loop, so
        // row order, multiplicities, and output bytes are identical to
        // parallelism 1.
        let mut cache: FxHashMap<VertexId, ReachMap> = FxHashMap::default();
        if self.eng.parallelism > 1 || self.shards.is_some() {
            let mut keys: Vec<VertexId> = Vec::new();
            let mut seen: FxHashSet<VertexId> = FxHashSet::default();
            'scan: for r in 0..rows.len() {
                // Any row the sequential loop would reject (non-vertex
                // binding) ends the scan: kernels past that point are
                // never reached sequentially, so don't compute them.
                let Ok(src) = vertex_at(&rows, r, prev_col, to_var) else { break };
                let bound_target = match (existing_to, anchored_to) {
                    (Some(c), _) => match rows.binding(r, c) {
                        Binding::Vertex(v) => Some(*v),
                        _ => break 'scan,
                    },
                    (None, a) => a,
                };
                if rev_nfa.is_some() {
                    let single;
                    let targets: &[VertexId] = match (bound_target, &spec_targets) {
                        (Some(t), _) => {
                            single = [t];
                            &single
                        }
                        (None, Some(ts)) => ts,
                        (None, None) => unreachable!("reverse kernel requires a target anchor"),
                    };
                    for &t in targets {
                        if seen.insert(t) {
                            keys.push(t);
                        }
                    }
                } else if seen.insert(src) {
                    keys.push(src);
                }
            }
            if keys.len() >= KERNEL_PARALLEL_THRESHOLD {
                cache = self.parallel_kernels(&keys, rev_nfa.as_ref().unwrap_or(&nfa))?;
            }
        }
        let n_extra = existing_to.is_none() as usize;
        let mut out = MorselBuilder::new(&rows, n_extra);
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        for r in 0..rows.len() {
            let before = out.len();
            let src = vertex_at(&rows, r, prev_col, to_var)?;
            let extend = |t: VertexId, cnt: &BigCount, out: &mut MorselBuilder<'_>| {
                if existing_to.is_none() {
                    out.push(r, &[Binding::Vertex(t)], rows.mult(r).mul(cnt));
                } else {
                    out.push(r, &[], rows.mult(r).mul(cnt));
                }
            };
            let bound_target = match (existing_to, anchored_to) {
                (Some(c), _) => match rows.binding(r, c) {
                    Binding::Vertex(v) => Some(*v),
                    _ => return Err(Error::runtime(format!("`{to_var}` is not a vertex"))),
                },
                (None, a) => a,
            };
            if let Some(rev) = &rev_nfa {
                // Backward kernel(s) keyed by target vertex.
                let targets: Vec<VertexId> = match (bound_target, &spec_targets) {
                    (Some(t), _) => vec![t],
                    (None, Some(ts)) => ts.clone(),
                    (None, None) => unreachable!("reverse kernel requires a target anchor"),
                };
                for t in targets {
                    if let std::collections::hash_map::Entry::Vacant(e) = cache.entry(t) {
                        cache_misses += 1;
                        e.insert(self.reach_keyed(t, rev)?);
                    } else {
                        cache_hits += 1;
                    }
                    if let Some((_, cnt)) = cache[&t].get(&src) {
                        if to_spec.matches(graph, t) {
                            extend(t, cnt, &mut out);
                        }
                    }
                }
                self.guard.tick_rows((out.len() - before) as u64)?;
                continue;
            }
            // Forward kernel keyed by the source vertex.
            if let std::collections::hash_map::Entry::Vacant(e) = cache.entry(src) {
                cache_misses += 1;
                e.insert(self.reach_keyed(src, &nfa)?);
            } else {
                cache_hits += 1;
            }
            let m = &cache[&src];
            match bound_target {
                Some(t) => {
                    if let Some((_, cnt)) = m.get(&t) {
                        if to_spec.matches(graph, t) {
                            extend(t, cnt, &mut out);
                        }
                    }
                }
                None => {
                    // Deterministic order: sort targets.
                    let mut targets: Vec<(&VertexId, &(u32, BigCount))> = m.iter().collect();
                    targets.sort_by_key(|(v, _)| **v);
                    for (t, (_, cnt)) in targets {
                        if to_spec.matches(graph, *t) {
                            extend(*t, cnt, &mut out);
                        }
                    }
                }
            }
            self.guard.tick_rows((out.len() - before) as u64)?;
        }
        self.prof_hop_cache = (cache_hits, cache_misses);
        Ok(out.finish())
    }

    /// Runs one reachability kernel on the main thread, routing through
    /// the sharded view when scatter-gather is active and attributing
    /// the kernel to the key's owner shard.
    fn reach_keyed(&mut self, key: VertexId, nfa: &CompiledDarpe) -> Result<ReachMap> {
        let view = match self.shards {
            Some(sh) => GraphView::Sharded(sh),
            None => GraphView::Flat(self.graph()),
        };
        let before_v = self.stats.vertices_touched;
        let before_e = self.stats.edges_scanned;
        let t0 = std::time::Instant::now();
        let r = reach_on(view, key, nfa, self.semantics, self.guard, &mut self.stats);
        if let Some(sh) = self.shards {
            self.guard.note_shard(
                sh.owner(key),
                self.stats.vertices_touched - before_v,
                self.stats.edges_scanned - before_e,
                1,
                t0.elapsed().as_nanos() as u64,
            );
        }
        r
    }

    /// Runs one reachability kernel per key across `Engine::parallelism`
    /// scoped worker threads (work-stealing over the shared key list) and
    /// returns the per-key [`ReachMap`]s.
    ///
    /// Determinism: each worker collects into a local [`MatchStats`] and
    /// the counters (all sums) merge into `self.stats` after the scope, so
    /// totals match sequential execution exactly. The shared [`QueryGuard`]
    /// is checkpointed inside every kernel loop, so cancellation and budget
    /// exhaustion stop all workers. A panicking worker poisons the guard
    /// (stopping siblings at their next checkpoint) and surfaces as a
    /// structured `WorkerPanic`; otherwise the error for the smallest key
    /// index wins, mirroring the order the sequential loop would fail in.
    fn parallel_kernels(
        &mut self,
        keys: &[VertexId],
        nfa: &CompiledDarpe,
    ) -> Result<FxHashMap<VertexId, ReachMap>> {
        let graph = self.graph();
        let semantics = self.semantics;
        let guard = self.guard;
        let shards = self.shards;
        let view = match shards {
            Some(sh) => GraphView::Sharded(sh),
            None => GraphView::Flat(graph),
        };
        // Scatter schedule: indices into `keys`, grouped by owner shard
        // and interleaved round-robin so the work-stealing counter serves
        // every shard fairly — one hot shard cannot monopolize the
        // worker pool's early slots.
        let schedule: Vec<usize> = match shards {
            Some(sh) => {
                let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); sh.shard_count()];
                for (i, k) in keys.iter().enumerate() {
                    by_shard[sh.owner(*k)].push(i);
                }
                let mut out = Vec::with_capacity(keys.len());
                let mut cursor = vec![0usize; by_shard.len()];
                loop {
                    let mut pushed = false;
                    for (sdx, q) in by_shard.iter().enumerate() {
                        if let Some(&i) = q.get(cursor[sdx]) {
                            out.push(i);
                            cursor[sdx] += 1;
                            pushed = true;
                        }
                    }
                    if !pushed {
                        break;
                    }
                }
                out
            }
            None => (0..keys.len()).collect(),
        };
        let schedule = &schedule;
        let nworkers = self.eng.parallelism.min(keys.len());
        let next_key = std::sync::atomic::AtomicUsize::new(0);
        type WorkerOut = (MatchStats, Vec<(usize, Result<ReachMap>)>);
        let worker_out: Vec<WorkerOut> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..nworkers)
                .map(|_| {
                    let next_key = &next_key;
                    s.spawn(move || -> WorkerOut {
                        let mut stats = MatchStats::default();
                        let mut done: Vec<(usize, Result<ReachMap>)> = Vec::new();
                        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || loop {
                                let si =
                                    next_key.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                if si >= schedule.len() {
                                    break;
                                }
                                let i = schedule[si];
                                let before_v = stats.vertices_touched;
                                let before_e = stats.edges_scanned;
                                let t0 = std::time::Instant::now();
                                let r = reach_on(
                                    view, keys[i], nfa, semantics, guard, &mut stats,
                                );
                                if let Some(sh) = shards {
                                    guard.note_shard(
                                        sh.owner(keys[i]) as usize,
                                        stats.vertices_touched - before_v,
                                        stats.edges_scanned - before_e,
                                        1,
                                        t0.elapsed().as_nanos() as u64,
                                    );
                                }
                                let failed = r.is_err();
                                done.push((i, r));
                                if failed {
                                    break;
                                }
                            },
                        ));
                        if let Err(payload) = caught {
                            guard.poison();
                            done.push((usize::MAX, Err(guard.worker_panic_error(payload.as_ref()))));
                        }
                        (stats, done)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        (
                            MatchStats::default(),
                            vec![(usize::MAX, Err(Error::runtime("kernel thread panicked")))],
                        )
                    })
                })
                .collect()
        });
        let mut maps: Vec<Option<ReachMap>> = keys.iter().map(|_| None).collect();
        let mut first_err: Option<(usize, Error)> = None;
        if self.prof.is_some() {
            // Per-worker kernel distribution for the enclosing hop span —
            // how evenly the work-stealing fan-out spread the kernels.
            self.prof_hop_workers =
                worker_out.iter().map(|(stats, _)| stats.kernel_calls).collect();
            if let Some(sh) = self.shards {
                // Per-shard distribution: one kernel per key, attributed
                // to the key's owner.
                let mut per = vec![0u64; sh.shard_count()];
                for k in keys {
                    per[sh.owner(*k)] += 1;
                }
                self.prof_hop_shards = per;
            }
        }
        for (stats, done) in worker_out {
            self.stats.merge(&stats);
            for (i, r) in done {
                match r {
                    Ok(m) => maps[i] = Some(m),
                    Err(e) => {
                        let replace = match &first_err {
                            None => true,
                            Some((pi, pe)) => {
                                if pe.kind() == crate::error::ErrorKind::WorkerPanic {
                                    false
                                } else if e.kind() == crate::error::ErrorKind::WorkerPanic {
                                    true
                                } else {
                                    i < *pi
                                }
                            }
                        };
                        if replace {
                            first_err = Some((i, e));
                        }
                    }
                }
            }
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        Ok(keys
            .iter()
            .zip(maps)
            .map(|(k, m)| (*k, m.expect("kernel completed without result or error")))
            .collect())
    }

    // ---- ACCUM --------------------------------------------------------------

    /// Scatter-gather gate for one ACCUM clause: every statement must
    /// combine (`+=`) into a declared accumulator whose type merges
    /// exactly ([`AccumType::is_exact_merge`]). Assignments, unknown
    /// targets, and order-sensitive types force the row-order fold.
    fn accum_scatter_exact(&self, stmts: &[AccStmt]) -> bool {
        stmts.iter().all(|s| match s {
            AccStmt::LocalDecl { .. } => true,
            AccStmt::VAcc { name, combine, .. } => {
                *combine
                    && self
                        .vaccs
                        .get(name)
                        .is_some_and(|st| st.ty.is_exact_merge(&self.eng.registry))
            }
            AccStmt::GAcc { name, combine, .. } => {
                *combine
                    && self
                        .gacc_types
                        .get(name)
                        .is_some_and(|ty| ty.is_exact_merge(&self.eng.registry))
            }
        })
    }

    /// Merge one worker's identity-seeded partial into the live stores:
    /// globals in ascending target order, vertex cells in ascending
    /// `(target, VertexId)` order, so the merge sequence is a pure
    /// function of the data partitioning, never of worker timing.
    ///
    /// Cells marked as assigned *replace* the live state wholesale:
    /// under the proven ACCUM gate every partial assigned the same
    /// row-invariant value, and under the proven POST_ACCUM gate the
    /// last partial's state replays the sequential suffix exactly, so
    /// replacement in ascending partition order reproduces the
    /// sequential fold byte-for-byte.
    fn merge_partial(&mut self, part: AccumPartial, names: &[&str]) -> Result<()> {
        let mut globals: Vec<(usize, (Accum, bool))> = part.g.into_iter().collect();
        globals.sort_by_key(|(idx, _)| *idx);
        for (idx, (acc, assigned)) in globals {
            let live = self.gaccs.get_mut(names[idx]).ok_or_else(|| {
                Error::runtime(format!("undeclared accumulator `@@{}`", names[idx]))
            })?;
            if assigned {
                *live = acc;
            } else {
                live.merge(acc, &self.eng.registry)?;
            }
        }
        let mut cells: Vec<((usize, VertexId), (Accum, bool))> = part.v.into_iter().collect();
        cells.sort_by_key(|(k, _)| *k);
        for ((idx, vertex), (acc, assigned)) in cells {
            let store = self.vaccs.get_mut(names[idx]).ok_or_else(|| {
                Error::runtime(format!("undeclared accumulator `@{}`", names[idx]))
            })?;
            let cell = store.cell_mut(vertex);
            if assigned {
                *cell = acc;
            } else {
                cell.merge(acc, &self.eng.registry)?;
            }
        }
        Ok(())
    }

    fn run_accum(
        &mut self,
        stmts: &[AccStmt],
        rows: &MorselTable,
        vars: &FxHashMap<String, usize>,
        tables: &[&Table],
        proven: bool,
    ) -> Result<()> {
        self.stats.acc_executions += rows.len() as u64;
        let ranges = self.note_morsels(rows.len());
        // Intern target accumulator names.
        let mut names: Vec<&str> = Vec::new();
        for s in stmts {
            if let AccStmt::VAcc { name, .. } | AccStmt::GAcc { name, .. } = s {
                if !names.contains(&name.as_str()) {
                    names.push(name);
                }
            }
        }
        let name_idx = |n: &str| -> Result<usize> {
            names.iter().position(|x| *x == n).ok_or_else(|| {
                Error::runtime(format!("accumulator `{n}` is not a target of this ACCUM clause"))
            })
        };

        // Map phase: evaluate one row's statements against the snapshot
        // (live stores are never written during the Map, so visibility is
        // identical at any parallelism).
        let guard = self.guard;
        let map_row = |r: usize| -> Result<Vec<Emission>> {
            guard.checkpoint()?;
            let mut acc_locals: FxHashMap<String, Value> = FxHashMap::default();
            let mut out = Vec::with_capacity(stmts.len());
            for stmt in stmts {
                let env = Env {
                    row: Some(RowRef { vars, bindings: rows.bindings_at(r), tables }),
                    acc_locals: Some(&acc_locals),
                    ..self.env()
                };
                match stmt {
                    AccStmt::LocalDecl { name, expr } => {
                        let v = eval(&env, expr)?;
                        acc_locals.insert(name.clone(), v);
                    }
                    AccStmt::VAcc { var, name, combine, expr } => {
                        let value = eval(&env, expr)?;
                        let vertex = crate::eval::resolve_vertex(&env, var)?;
                        out.push(Emission {
                            target: EmitTarget::V { name: name_idx(name)?, vertex },
                            value,
                            combine: *combine,
                            mult: rows.mult(r).clone(),
                        });
                    }
                    AccStmt::GAcc { name, combine, expr } => {
                        let value = eval(&env, expr)?;
                        out.push(Emission {
                            target: EmitTarget::G { name: name_idx(name)? },
                            value,
                            combine: *combine,
                            mult: rows.mult(r).clone(),
                        });
                    }
                }
            }
            Ok(out)
        };
        // The syntactic gate (every statement `+=`-combines into an
        // exact-merge type) or the absint-proven gate from the block plan
        // (which additionally admits `=` assigns whose RHS is proven
        // row-invariant) both license the partial-fold paths below.
        let parallel = self.accum_scatter_exact(stmts) || proven;
        let v_types: Vec<Option<AccumType>> = if parallel {
            names.iter().map(|n| self.vaccs.get(*n).map(|st| st.ty.clone())).collect()
        } else {
            Vec::new()
        };
        let g_types: Vec<Option<AccumType>> = if parallel {
            names.iter().map(|n| self.gacc_types.get(*n).cloned()).collect()
        } else {
            Vec::new()
        };

        // Scatter-gather ACCUM: when sharding is active and the clause
        // passes the exact-merge gate (or the absint-proven gate),
        // partition the rows by the owner shard of each row's first
        // vertex binding, fold every partition into identity-seeded
        // per-shard partials on scoped workers, and merge the partials
        // into the live stores in ascending shard order. Exact-merge
        // combiners are associative and commutative at the
        // representation level — and proven row-invariant assigns write
        // the same value from every partition — so the merged state is
        // bit-identical to the sequential row-order fold at any shard
        // count (shard partitions are not contiguous row ranges, which
        // is why the proven gate forbids mixing `=` and `+=` on one
        // accumulator).
        if let Some(sh) = self.shards {
            if rows.len() >= 2 && parallel {
                let registry = &self.eng.registry;
                let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); sh.shard_count()];
                for i in 0..rows.len() {
                    let shard = (0..rows.width())
                        .find_map(|c| match rows.binding(i, c) {
                            Binding::Vertex(v) => Some(sh.owner(*v)),
                            _ => None,
                        })
                        .unwrap_or(0);
                    by_shard[shard].push(i);
                }
                let parts: Vec<(usize, Vec<usize>)> = by_shard
                    .into_iter()
                    .enumerate()
                    .filter(|(_, idxs)| !idxs.is_empty())
                    .collect();
                type ShardOut = (usize, u64, std::result::Result<AccumPartial, (usize, Error)>);
                let guard = self.guard;
                let outs: Vec<ShardOut> = std::thread::scope(|scope| {
                    let handles: Vec<_> = parts
                        .iter()
                        .map(|(shard, idxs)| {
                            let map_row = &map_row;
                            let v_types = &v_types;
                            let g_types = &g_types;
                            scope.spawn(move || -> ShardOut {
                                let t0 = std::time::Instant::now();
                                let caught = std::panic::catch_unwind(
                                    std::panic::AssertUnwindSafe(
                                        || -> std::result::Result<AccumPartial, (usize, Error)> {
                                            let mut part = AccumPartial::default();
                                            for &ri in idxs {
                                                let ems = map_row(ri).map_err(|e| (ri, e))?;
                                                for em in ems {
                                                    fold_into_partial(
                                                        &mut part, em, v_types, g_types, registry,
                                                    )
                                                    .map_err(|e| (ri, e))?;
                                                }
                                            }
                                            Ok(part)
                                        },
                                    ),
                                );
                                let r = match caught {
                                    Ok(r) => r,
                                    Err(payload) => {
                                        guard.poison();
                                        Err((
                                            usize::MAX,
                                            guard.worker_panic_error(payload.as_ref()),
                                        ))
                                    }
                                };
                                (*shard, t0.elapsed().as_nanos() as u64, r)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            h.join().unwrap_or_else(|_| {
                                (
                                    0,
                                    0,
                                    Err((
                                        usize::MAX,
                                        Error::runtime("accum scatter thread panicked"),
                                    )),
                                )
                            })
                        })
                        .collect()
                });
                // The error for the smallest original row index wins
                // (the row the sequential fold would have failed on);
                // a worker panic outranks ordinary errors.
                let mut first_err: Option<(usize, Error)> = None;
                let mut partials: Vec<(usize, AccumPartial)> = Vec::with_capacity(outs.len());
                for (shard, busy_ns, r) in outs {
                    self.guard.note_shard(shard, 0, 0, 0, busy_ns);
                    match r {
                        Ok(p) => partials.push((shard, p)),
                        Err((ri, e)) => {
                            let replace = match &first_err {
                                None => true,
                                Some((pi, pe)) => {
                                    if pe.kind() == crate::error::ErrorKind::WorkerPanic {
                                        false
                                    } else if e.kind() == crate::error::ErrorKind::WorkerPanic {
                                        true
                                    } else {
                                        ri < *pi
                                    }
                                }
                            };
                            if replace {
                                first_err = Some((ri, e));
                            }
                        }
                    }
                }
                if let Some((_, e)) = first_err {
                    return Err(e);
                }
                // Gather: merge partials in ascending shard order —
                // globals by target index, vertex cells by (target,
                // VertexId) — so the merge sequence is a pure function
                // of the sharding, never of worker timing.
                partials.sort_by_key(|(shard, _)| *shard);
                for (_, part) in partials {
                    self.merge_partial(part, &names)?;
                }
                self.guard.note_accum_bytes(self.accum_footprint())?;
                return Ok(());
            }
        }

        let workers = self.workers_for(rows.len());

        // Morsel-parallel fold (exact-merge or absint-proven): each
        // worker folds its morsels into identity-seeded accumulator
        // partials; partials merge into the live stores in ascending
        // morsel order via [`Accum::merge`] (combines) or wholesale
        // replacement (proven assigns). Exact-merge combiners are
        // associative at the representation level, so the merged state
        // is byte-identical to the sequential row-order fold at any
        // parallelism and any morsel size.
        if parallel && !rows.is_empty() {
            let registry = &self.eng.registry;
            let v_types = &v_types;
            let g_types = &g_types;
            let run = dispatch(guard, workers, &ranges, |_, range| {
                let mut part = AccumPartial::default();
                for r in range {
                    for em in map_row(r)? {
                        fold_into_partial(&mut part, em, v_types, g_types, registry)?;
                    }
                }
                Ok(part)
            })?;
            if self.prof.is_some() {
                self.prof_op_workers = run.per_worker.clone();
            }
            for part in run.results {
                self.merge_partial(part, &names)?;
            }
            self.guard.note_accum_bytes(self.accum_footprint())?;
            return Ok(());
        }

        // Non-exact-merge fallback (float sums, heaps, concat,
        // assignments): the Map phase still runs morsel-parallel — it
        // only reads the snapshot — but the emissions concatenate in
        // ascending morsel order (= row order) and the Reduce phase
        // folds them sequentially, exactly as at parallelism 1.
        let run = dispatch(guard, workers, &ranges, |_, range| {
            let mut out = Vec::new();
            for r in range {
                out.extend(map_row(r)?);
            }
            Ok(out)
        })?;
        if self.prof.is_some() {
            self.prof_op_workers = run.per_worker.clone();
        }
        let emissions: Vec<Emission> = run.results.into_iter().flatten().collect();

        // Reduce phase: fold emissions into accumulators in row order.
        for e in emissions {
            match e.target {
                EmitTarget::V { name, vertex } => {
                    let store = self
                        .vaccs
                        .get_mut(names[name])
                        .ok_or_else(|| {
                            Error::runtime(format!("undeclared accumulator `@{}`", names[name]))
                        })?;
                    let cell = store.cell_mut(vertex);
                    if e.combine {
                        cell.combine_with_multiplicity(e.value, &e.mult, &self.eng.registry)?;
                    } else {
                        cell.assign(e.value)?;
                    }
                }
                EmitTarget::G { name } => {
                    let acc = self.gaccs.get_mut(names[name]).ok_or_else(|| {
                        Error::runtime(format!("undeclared accumulator `@@{}`", names[name]))
                    })?;
                    if e.combine {
                        acc.combine_with_multiplicity(e.value, &e.mult, &self.eng.registry)?;
                    } else {
                        acc.assign(e.value)?;
                    }
                }
            }
        }
        self.guard.note_accum_bytes(self.accum_footprint())?;
        Ok(())
    }

    /// Estimated heap footprint of all live accumulator state, in bytes.
    fn accum_footprint(&self) -> u64 {
        let mut total = 0u64;
        for acc in self.gaccs.values() {
            total += acc.estimated_bytes() as u64;
        }
        for store in self.vaccs.values() {
            total += store.prototype.estimated_bytes() as u64;
            for cell in store.cells.iter().flatten() {
                total += cell.estimated_bytes() as u64;
            }
        }
        total
    }

    // ---- POST_ACCUM -----------------------------------------------------------

    fn run_post_accum(
        &mut self,
        stmts: &[AccStmt],
        rows: &MorselTable,
        vars: &FxHashMap<String, usize>,
        tables: &[&Table],
        proven: bool,
    ) -> Result<()> {
        let var = post_accum_var(stmts, vars)?;
        let vertices: Vec<VertexId> = match &var {
            None => Vec::new(),
            Some(v) => {
                let col = vars[v];
                let mut set: Vec<VertexId> = rows
                    .col(col)
                    .iter()
                    .filter_map(|b| match b {
                        Binding::Vertex(x) => Some(*x),
                        _ => None,
                    })
                    .collect();
                set.sort();
                set.dedup();
                set
            }
        };
        let _ = tables;

        let exec_one = |rt: &mut Self, bindings: &[Binding], pvars: &FxHashMap<String, usize>| -> Result<()> {
            let mut acc_locals: FxHashMap<String, Value> = FxHashMap::default();
            for stmt in stmts {
                // POST_ACCUM applies each statement immediately (visible to
                // the next statement), per distinct vertex.
                let value = {
                    let env = Env {
                        row: Some(RowRef {
                            vars: pvars,
                            bindings: Bindings::Row(bindings),
                            tables: &[],
                        }),
                        acc_locals: Some(&acc_locals),
                        ..rt.env()
                    };
                    match stmt {
                        AccStmt::LocalDecl { name, expr } => {
                            let v = eval(&env, expr)?;
                            acc_locals.insert(name.clone(), v);
                            continue;
                        }
                        AccStmt::VAcc { expr, .. } | AccStmt::GAcc { expr, .. } => eval(&env, expr)?,
                    }
                };
                match stmt {
                    AccStmt::VAcc { var: v, name, combine, .. } => {
                        let vertex = {
                            let env = Env {
                                row: Some(RowRef {
                                    vars: pvars,
                                    bindings: Bindings::Row(bindings),
                                    tables: &[],
                                }),
                                acc_locals: Some(&acc_locals),
                                ..rt.env()
                            };
                            crate::eval::resolve_vertex(&env, v)?
                        };
                        let store = rt.vaccs.get_mut(name).ok_or_else(|| {
                            Error::runtime(format!("undeclared accumulator `@{name}`"))
                        })?;
                        let cell = store.cell_mut(vertex);
                        if *combine {
                            cell.combine(value, &rt.eng.registry)?;
                        } else {
                            cell.assign(value)?;
                        }
                    }
                    AccStmt::GAcc { name, combine, .. } => {
                        let acc = rt.gaccs.get_mut(name).ok_or_else(|| {
                            Error::runtime(format!("undeclared accumulator `@@{name}`"))
                        })?;
                        if *combine {
                            acc.combine(value, &rt.eng.registry)?;
                        } else {
                            acc.assign(value)?;
                        }
                    }
                    AccStmt::LocalDecl { .. } => unreachable!(),
                }
            }
            Ok(())
        };

        match var {
            None => {
                if !rows.is_empty() {
                    let pvars = FxHashMap::default();
                    exec_one(self, &[], &pvars)?;
                }
            }
            Some(v) => {
                // Morsel accounting is a pure function of the distinct-
                // vertex count, independent of which path runs below.
                let ranges = self.note_morsels(vertices.len());
                let mut pvars = FxHashMap::default();
                pvars.insert(v.clone(), 0usize);
                let workers = self.workers_for(vertices.len());
                if workers > 1 && (self.post_accum_parallel_exact(stmts) || proven) {
                    // Morsel-parallel POST_ACCUM: legal when every
                    // statement `+=`-combines into an exact-merge
                    // accumulator AND no expression reads an accumulator
                    // this clause targets (a live read would observe
                    // earlier vertices' writes under the sequential
                    // per-vertex semantics) — or when the absint pass
                    // proved the looser gate that additionally admits
                    // `=` assigns (vertex cells are disjoint per vertex;
                    // global assigns replay the sequential suffix via
                    // the last partial). Workers fold into identity-
                    // seeded partials; partials merge in ascending morsel
                    // (= ascending vertex) order, reproducing the
                    // sequential fold byte-for-byte.
                    let mut names: Vec<&str> = Vec::new();
                    for s in stmts {
                        if let AccStmt::VAcc { name, .. } | AccStmt::GAcc { name, .. } = s {
                            if !names.contains(&name.as_str()) {
                                names.push(name);
                            }
                        }
                    }
                    let name_idx = |n: &str| -> usize {
                        names.iter().position(|x| *x == n).expect("name interned above")
                    };
                    let v_types: Vec<Option<AccumType>> =
                        names.iter().map(|n| self.vaccs.get(*n).map(|st| st.ty.clone())).collect();
                    let g_types: Vec<Option<AccumType>> =
                        names.iter().map(|n| self.gacc_types.get(*n).cloned()).collect();
                    let registry = &self.eng.registry;
                    let guard = self.guard;
                    let vertices = &vertices;
                    let pvars = &pvars;
                    let v_types_ref = &v_types;
                    let g_types_ref = &g_types;
                    let run = dispatch(guard, workers, &ranges, |_, range| {
                        let mut part = AccumPartial::default();
                        for vi in range {
                            guard.checkpoint()?;
                            let bindings = [Binding::Vertex(vertices[vi])];
                            let mut acc_locals: FxHashMap<String, Value> = FxHashMap::default();
                            for stmt in stmts {
                                let env = Env {
                                    row: Some(RowRef {
                                        vars: pvars,
                                        bindings: Bindings::Row(&bindings),
                                        tables: &[],
                                    }),
                                    acc_locals: Some(&acc_locals),
                                    ..self.env()
                                };
                                match stmt {
                                    AccStmt::LocalDecl { name, expr } => {
                                        let val = eval(&env, expr)?;
                                        acc_locals.insert(name.clone(), val);
                                    }
                                    AccStmt::VAcc { var: v2, name, combine, expr } => {
                                        let value = eval(&env, expr)?;
                                        let target = crate::eval::resolve_vertex(&env, v2)?;
                                        fold_into_partial(
                                            &mut part,
                                            Emission {
                                                target: EmitTarget::V {
                                                    name: name_idx(name),
                                                    vertex: target,
                                                },
                                                value,
                                                combine: *combine,
                                                mult: BigCount::one(),
                                            },
                                            v_types_ref,
                                            g_types_ref,
                                            registry,
                                        )?;
                                    }
                                    AccStmt::GAcc { name, combine, expr } => {
                                        let value = eval(&env, expr)?;
                                        fold_into_partial(
                                            &mut part,
                                            Emission {
                                                target: EmitTarget::G { name: name_idx(name) },
                                                value,
                                                combine: *combine,
                                                mult: BigCount::one(),
                                            },
                                            v_types_ref,
                                            g_types_ref,
                                            registry,
                                        )?;
                                    }
                                }
                            }
                        }
                        Ok(part)
                    })?;
                    if self.prof.is_some() {
                        self.prof_op_workers = run.per_worker.clone();
                    }
                    for part in run.results {
                        self.merge_partial(part, &names)?;
                    }
                } else {
                    for vertex in vertices {
                        self.guard.checkpoint()?;
                        exec_one(self, &[Binding::Vertex(vertex)], &pvars)?;
                    }
                }
            }
        }
        self.guard.note_accum_bytes(self.accum_footprint())?;
        Ok(())
    }

    /// Parallel gate for one POST_ACCUM clause: on top of the exact-merge
    /// scatter gate ([`Runtime::accum_scatter_exact`]), no statement
    /// expression may read an accumulator this clause also targets — a
    /// live read observes earlier vertices' writes under the sequential
    /// per-vertex semantics, so iteration order would matter. Snapshot
    /// reads (`v.@a'`) are always safe.
    fn post_accum_parallel_exact(&self, stmts: &[AccStmt]) -> bool {
        if !self.accum_scatter_exact(stmts) {
            return false;
        }
        let mut v_targets: Vec<&str> = Vec::new();
        let mut g_targets: Vec<&str> = Vec::new();
        for s in stmts {
            match s {
                AccStmt::VAcc { name, .. } => v_targets.push(name),
                AccStmt::GAcc { name, .. } => g_targets.push(name),
                AccStmt::LocalDecl { .. } => {}
            }
        }
        let mut ok = true;
        for s in stmts {
            let expr = match s {
                AccStmt::LocalDecl { expr, .. }
                | AccStmt::VAcc { expr, .. }
                | AccStmt::GAcc { expr, .. } => expr,
            };
            expr.walk(&mut |sub| match sub {
                Expr::VAcc { name, prev: false, .. } if v_targets.contains(&name.as_str()) => {
                    ok = false;
                }
                Expr::GAcc(name) if g_targets.contains(&name.as_str()) => {
                    ok = false;
                }
                _ => {}
            });
        }
        ok
    }

    // ---- outputs ----------------------------------------------------------------

    fn eval_vertex_fragment(
        &mut self,
        block: &SelectBlock,
        frag: &OutputFragment,
        var: &str,
        vars: &FxHashMap<String, usize>,
        rows: &MorselTable,
        _tables: &[&Table],
    ) -> Result<Vec<VertexId>> {
        let col = vars[var];
        let mut seen = FxHashSet::default();
        let mut vs: Vec<VertexId> = Vec::new();
        for b in rows.col(col) {
            if let Binding::Vertex(v) = *b {
                if seen.insert(v) {
                    vs.push(v);
                }
            }
        }
        let _ = frag;
        // ORDER BY over the vertex variable.
        if !block.order_by.is_empty() {
            let mut pvars = FxHashMap::default();
            pvars.insert(var.to_string(), 0usize);
            let mut keyed: Vec<(Vec<Value>, VertexId)> = Vec::with_capacity(vs.len());
            for v in vs {
                let bindings = [Binding::Vertex(v)];
                let env = Env {
                    row: Some(RowRef {
                        vars: &pvars,
                        bindings: Bindings::Row(&bindings),
                        tables: &[],
                    }),
                    ..self.env()
                };
                let mut keys = Vec::with_capacity(block.order_by.len());
                for o in &block.order_by {
                    keys.push(eval(&env, &o.expr)?);
                }
                keyed.push((keys, v));
            }
            sort_by_order_keys(&mut keyed, &block.order_by);
            vs = keyed.into_iter().map(|(_, v)| v).collect();
        }
        if let Some(limit) = &block.limit {
            let n = limit_value(&self.env(), limit)?;
            vs.truncate(n);
        }
        Ok(vs)
    }

    fn eval_table_fragment(
        &mut self,
        block: &SelectBlock,
        frag: &OutputFragment,
        vars: &FxHashMap<String, usize>,
        rows: &MorselTable,
        tables: &[&Table],
    ) -> Result<Table> {
        let name = frag.into.clone().unwrap_or_else(|| "RESULT".to_string());
        let columns: Vec<String> = frag
            .items
            .iter()
            .enumerate()
            .map(|(i, it)| it.alias.clone().unwrap_or_else(|| column_label(&it.expr, i)))
            .collect();
        let mut out = Table::new(name, columns);

        let grouped = block.group_by.is_some()
            || frag.items.iter().any(|i| i.expr.contains_aggregate());
        if grouped {
            self.eval_grouped(block, frag, vars, rows, tables, &mut out)?;
        } else {
            // Plain projection (bag semantics: rows carry multiplicities).
            // Cell and ORDER-BY-key evaluation runs morsel-parallel over
            // the columnar table; multiplicity expansion, DISTINCT, sort
            // and LIMIT stay sequential in ascending row order.
            let ranges = self.note_morsels(rows.len());
            let workers = self.workers_for(rows.len());
            let guard = self.guard;
            let run = dispatch(guard, workers, &ranges, |_, range| {
                let mut out: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(range.len());
                for r in range {
                    let env = Env {
                        row: Some(RowRef { vars, bindings: rows.bindings_at(r), tables }),
                        ..self.env()
                    };
                    let mut cells = Vec::with_capacity(frag.items.len());
                    for it in &frag.items {
                        cells.push(eval(&env, &it.expr)?);
                    }
                    let mut keys = Vec::with_capacity(block.order_by.len());
                    for o in &block.order_by {
                        keys.push(eval(&env, &o.expr)?);
                    }
                    out.push((keys, cells));
                }
                Ok(out)
            })?;
            let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();
            for (r, (keys, cells)) in run.results.into_iter().flatten().enumerate() {
                let copies = if frag.distinct {
                    1
                } else {
                    rows.mult(r).to_u64().filter(|m| *m <= ROW_EXPANSION_CAP).ok_or_else(|| {
                        Error::runtime(
                            "non-aggregate projection over a binding with huge multiplicity; \
                             aggregate it or use an enumerative semantics",
                        )
                    })?
                };
                for _ in 0..copies {
                    keyed.push((keys.clone(), cells.clone()));
                }
            }
            if frag.distinct {
                let mut seen = std::collections::BTreeSet::new();
                keyed.retain(|(_, cells)| seen.insert(cells.clone()));
            }
            if !block.order_by.is_empty() {
                sort_by_order_keys(&mut keyed, &block.order_by);
            }
            if let Some(limit) = &block.limit {
                let n = limit_value(&self.env(), limit)?;
                keyed.truncate(n);
            }
            for (_, cells) in keyed {
                out.push(cells);
            }
        }
        Ok(out)
    }

    /// Grouped evaluation: grouping sets × aggregate computation.
    fn eval_grouped(
        &mut self,
        block: &SelectBlock,
        frag: &OutputFragment,
        vars: &FxHashMap<String, usize>,
        rows: &MorselTable,
        tables: &[&Table],
        out: &mut Table,
    ) -> Result<()> {
        let default_gb = GroupBy { keys: Vec::new(), sets: vec![Vec::new()] };
        let gb = block.group_by.as_ref().unwrap_or(&default_gb);

        // Collect every aggregate sub-expression appearing in outputs,
        // HAVING and ORDER BY.
        let mut agg_exprs: Vec<Expr> = Vec::new();
        {
            let mut collect = |e: &Expr| {
                e.walk(&mut |sub| {
                    if is_aggregate_call(sub) && !agg_exprs.contains(sub) {
                        agg_exprs.push(sub.clone());
                    }
                });
            };
            for it in &frag.items {
                collect(&it.expr);
            }
            if let Some(h) = &block.having {
                collect(h);
            }
            for o in &block.order_by {
                collect(&o.expr);
            }
        }

        // Evaluate group keys and aggregate arguments per row once,
        // morsel-parallel over the columnar table (both are independent
        // of group membership: aggregate arguments see no group context,
        // so hoisting them out of the per-group loop is value-preserving).
        let ranges = self.note_morsels(rows.len());
        let workers = self.workers_for(rows.len());
        let guard = self.guard;
        let agg_exprs_ref = &agg_exprs;
        let run = dispatch(guard, workers, &ranges, |_, range| {
            let mut out: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(range.len());
            for r in range {
                let env = Env {
                    row: Some(RowRef { vars, bindings: rows.bindings_at(r), tables }),
                    ..self.env()
                };
                let mut keys = Vec::with_capacity(gb.keys.len());
                for k in &gb.keys {
                    keys.push(eval(&env, k)?);
                }
                let mut avals = Vec::with_capacity(agg_exprs_ref.len());
                for ae in agg_exprs_ref {
                    let Expr::Call { args, star, .. } = ae else {
                        return Err(Error::runtime("not an aggregate expression"));
                    };
                    // `count(*)` reads only multiplicities; the NULL
                    // placeholder keeps positions aligned.
                    avals.push(if *star { Value::Null } else { eval(&env, &args[0])? });
                }
                out.push((keys, avals));
            }
            Ok(out)
        })?;
        let mut row_keys: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
        let mut agg_vals: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
        for (keys, avals) in run.results.into_iter().flatten() {
            row_keys.push(keys);
            agg_vals.push(avals);
        }

        let mut result_rows: Vec<(Vec<Value>, Vec<Value>)> = Vec::new(); // (order keys, cells)
        for set in &gb.sets {
            // Group rows by the projection of keys onto this set.
            let mut groups: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
            for (i, keys) in row_keys.iter().enumerate() {
                let k: Vec<Value> = set.iter().map(|&ki| keys[ki].clone()).collect();
                groups.entry(k).or_default().push(i);
            }
            for (_gkey, members) in groups {
                // Compute aggregates over the member rows.
                let mut agg_values: Vec<Value> = Vec::with_capacity(agg_exprs.len());
                for (pos, ae) in agg_exprs.iter().enumerate() {
                    agg_values.push(self.eval_aggregate(ae, pos, &members, rows, &agg_vals)?);
                }
                let rep = members[0];
                // Resolver: grouped keys → their value; ungrouped keys →
                // NULL; aggregates → computed value.
                let resolver = |e: &Expr| -> Option<Value> {
                    if let Some(pos) = agg_exprs.iter().position(|a| a == e) {
                        return Some(agg_values[pos].clone());
                    }
                    if let Some(ki) = gb.keys.iter().position(|k| k == e) {
                        return if set.contains(&ki) {
                            Some(row_keys[rep][ki].clone())
                        } else {
                            Some(Value::Null)
                        };
                    }
                    None
                };
                let env = Env {
                    row: Some(RowRef { vars, bindings: rows.bindings_at(rep), tables }),
                    agg: Some(&resolver),
                    ..self.env()
                };
                if let Some(h) = &block.having {
                    if !truthy(&eval(&env, h)?)? {
                        continue;
                    }
                }
                let mut cells = Vec::with_capacity(frag.items.len());
                for it in &frag.items {
                    cells.push(eval(&env, &it.expr)?);
                }
                let mut okeys = Vec::with_capacity(block.order_by.len());
                for o in &block.order_by {
                    okeys.push(eval(&env, &o.expr)?);
                }
                result_rows.push((okeys, cells));
            }
        }
        if frag.distinct {
            let mut seen = std::collections::BTreeSet::new();
            result_rows.retain(|(_, cells)| seen.insert(cells.clone()));
        }
        if !block.order_by.is_empty() {
            sort_by_order_keys(&mut result_rows, &block.order_by);
        }
        if let Some(limit) = &block.limit {
            let n = limit_value(&self.env(), limit)?;
            result_rows.truncate(n);
        }
        for (_, cells) in result_rows {
            out.push(cells);
        }
        Ok(())
    }

    /// Computes one aggregate over a group, multiplicity-weighted, from
    /// the per-row argument values pre-evaluated during the morsel pass
    /// (`agg_vals[row][pos]`).
    fn eval_aggregate(
        &self,
        expr: &Expr,
        pos: usize,
        members: &[usize],
        rows: &MorselTable,
        agg_vals: &[Vec<Value>],
    ) -> Result<Value> {
        let Expr::Call { func, star, .. } = expr else {
            return Err(Error::runtime("not an aggregate expression"));
        };
        let f = func.to_ascii_lowercase();
        if *star {
            // count(*): sum of multiplicities.
            let mut total = BigCount::zero();
            for &i in members {
                total.add_assign(rows.mult(i));
            }
            return Ok(total
                .to_i64()
                .map(Value::Int)
                .unwrap_or_else(|| Value::Str(total.to_string())));
        }
        let mut count = BigCount::zero();
        let mut sum = 0.0f64;
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        for &i in members {
            let v = agg_vals[i][pos].clone();
            if matches!(v, Value::Null) {
                continue;
            }
            count.add_assign(rows.mult(i));
            match f.as_str() {
                "sum" | "avg" => {
                    let x = v.as_f64().ok_or_else(|| Error::type_error("numeric", &v))?;
                    sum += x * rows.mult(i).to_f64();
                }
                "min"
                    if min.as_ref().is_none_or(|m| v < *m) => {
                        min = Some(v);
                    }
                "max"
                    if max.as_ref().is_none_or(|m| v > *m) => {
                        max = Some(v);
                    }
                _ => {}
            }
        }
        Ok(match f.as_str() {
            "count" => count
                .to_i64()
                .map(Value::Int)
                .unwrap_or_else(|| Value::Str(count.to_string())),
            "sum" => Value::Double(sum),
            "avg" => {
                if count.is_zero() {
                    Value::Null
                } else {
                    Value::Double(sum / count.to_f64())
                }
            }
            "min" => min.unwrap_or(Value::Null),
            "max" => max.unwrap_or(Value::Null),
            other => return Err(Error::runtime(format!("unknown aggregate `{other}`"))),
        })
    }
}

// ---- helpers -------------------------------------------------------------

fn proto_type(acc: &Accum) -> AccumType {
    // Recover a displayable type for diagnostics from the instance kind.
    match acc {
        Accum::SumInt(_) => AccumType::Sum(pgraph::value::ValueType::Int),
        Accum::SumDouble(_) => AccumType::Sum(pgraph::value::ValueType::Double),
        Accum::SumStr(_) => AccumType::Sum(pgraph::value::ValueType::Str),
        Accum::Min(_) => AccumType::Min,
        Accum::Max(_) => AccumType::Max,
        Accum::Avg { .. } => AccumType::Avg,
        Accum::Or(_) => AccumType::Or,
        Accum::And(_) => AccumType::And,
        Accum::Set(_) => AccumType::Set,
        Accum::Bag(_) => AccumType::Bag,
        Accum::List(_) => AccumType::List,
        Accum::Array(_) => AccumType::Array,
        Accum::Map { value_type, .. } => AccumType::Map(value_type.clone()),
        Accum::Heap { capacity, fields, .. } => {
            AccumType::Heap { capacity: *capacity, fields: fields.clone() }
        }
        Accum::GroupBy { key_arity, nested, .. } => {
            AccumType::GroupBy { key_arity: *key_arity, nested: nested.clone() }
        }
        Accum::User(_) => AccumType::User("user".into()),
    }
}

fn new_var(vars: &mut FxHashMap<String, usize>, name: &str) -> Result<usize> {
    if vars.contains_key(name) {
        return Err(Error::compile(format!("variable `{name}` bound twice in FROM")));
    }
    let idx = vars.len();
    vars.insert(name.to_string(), idx);
    Ok(idx)
}

fn fresh_anon(counter: &mut usize) -> String {
    *counter += 1;
    format!("$anon{counter}")
}

fn vertex_at(rows: &MorselTable, row: usize, col: usize, ctx: &str) -> Result<VertexId> {
    match rows.binding(row, col) {
        Binding::Vertex(v) => Ok(*v),
        _ => Err(Error::runtime(format!("pattern source for `{ctx}` is not a vertex"))),
    }
}

/// Determines the single vertex variable a POST_ACCUM clause iterates
/// over (paper Section 4.4 / real-GSQL restriction: POST_ACCUM statements
/// may reference at most one vertex alias of the FROM clause).
fn post_accum_var(
    stmts: &[AccStmt],
    vars: &FxHashMap<String, usize>,
) -> Result<Option<String>> {
    let mut found: Option<String> = None;
    let mut names: Vec<String> = Vec::new();
    for stmt in stmts {
        match stmt {
            AccStmt::VAcc { var, expr, .. } => {
                names.push(var.clone());
                collect_var_refs(expr, &mut names);
            }
            AccStmt::GAcc { expr, .. } | AccStmt::LocalDecl { expr, .. } => {
                collect_var_refs(expr, &mut names);
            }
        }
    }
    for n in names {
        if !vars.contains_key(&n) {
            continue;
        }
        match &found {
            None => found = Some(n),
            Some(f) if *f == n => {}
            Some(f) => {
                return Err(Error::compile(format!(
                    "POST_ACCUM references two FROM variables (`{f}` and `{n}`); \
                     it may reference at most one vertex alias"
                )))
            }
        }
    }
    Ok(found)
}

fn collect_var_refs(e: &Expr, out: &mut Vec<String>) {
    e.walk(&mut |sub| match sub {
        Expr::Ident(n) => out.push(n.clone()),
        Expr::Attr { base, .. } => out.push(base.clone()),
        Expr::VAcc { var, .. } => out.push(var.clone()),
        _ => {}
    });
}

fn is_aggregate_call(e: &Expr) -> bool {
    match e {
        Expr::Call { func, args, star } => {
            let f = func.to_ascii_lowercase();
            *star
                || matches!(f.as_str(), "count" | "sum" | "avg")
                || (args.len() == 1 && matches!(f.as_str(), "min" | "max"))
        }
        _ => false,
    }
}

/// A fragment is a *vertex fragment* iff it is a single un-aliased bare
/// identifier bound to a vertex column.
fn vertex_fragment_var(
    frag: &OutputFragment,
    vars: &FxHashMap<String, usize>,
    rows: &MorselTable,
) -> Option<String> {
    if frag.items.len() != 1 || frag.items[0].alias.is_some() {
        return None;
    }
    let Expr::Ident(name) = &frag.items[0].expr else { return None };
    let col = *vars.get(name)?;
    if rows.is_empty() {
        return Some(name.clone()); // empty result set: vacuously a vertex set
    }
    if col >= rows.width() {
        return None;
    }
    // Inspect any row to confirm the column holds vertices (all rows of a
    // column share a binding kind).
    matches!(rows.col(col).first(), Some(Binding::Vertex(_))).then(|| name.clone())
}

fn column_label(e: &Expr, i: usize) -> String {
    match e {
        Expr::Ident(s) => s.clone(),
        Expr::Attr { base, field } => format!("{base}.{field}"),
        Expr::VAcc { var, name, .. } => format!("{var}.@{name}"),
        Expr::GAcc(name) => format!("@@{name}"),
        Expr::Call { func, .. } => func.clone(),
        _ => format!("col{i}"),
    }
}

fn limit_value(env: &Env, e: &Expr) -> Result<usize> {
    let v = eval(env, e)?;
    v.as_i64()
        .filter(|n| *n >= 0)
        .map(|n| n as usize)
        .ok_or_else(|| Error::type_error("non-negative integer LIMIT", &v))
}

/// Sorts `(keys, payload)` pairs by the ORDER BY specification using the
/// total order on `Value`.
fn sort_by_order_keys<T>(items: &mut [(Vec<Value>, T)], order: &[OrderItem]) {
    items.sort_by(|(a, _), (b, _)| {
        for (i, o) in order.iter().enumerate() {
            let c = a[i].cmp(&b[i]);
            let c = if o.desc { c.reverse() } else { c };
            if c != std::cmp::Ordering::Equal {
                return c;
            }
        }
        std::cmp::Ordering::Equal
    });
}
