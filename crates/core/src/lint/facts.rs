//! `QueryFacts` — the stable, consumer-facing result of the abstract
//! interpretation pass (`absint`, pass 6).
//!
//! The interpreter proves properties the syntactic passes can only
//! approximate: per-block WHERE constancy (interval analysis), proven
//! parallel-fold gates for ACCUM / POST-ACCUM clauses, and WHILE loop
//! bounds. Everything here is *facts*, not heuristics: a `true` gate or
//! a `Some(false)` conjunct is a proof obligation the planner, the
//! morsel executor, the shard merger and the server admission gate are
//! all allowed to act on.
//!
//! The JSON rendering ([`QueryFacts::render_json`]) is a stable schema
//! consumed by `gsql_shell CHECK` and `POST /lint` (under a `"facts"`
//! key); it is golden-tested, so field names and order are contract.

use crate::ast::{SelectBlock, Span};
use crate::explain::json_string;
use crate::governor::Budget;
use crate::lint::Diagnostic;
use pgraph::fxhash::FxHashMap;

/// Proven upper bound of a WHILE loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopBound {
    /// The loop provably runs at most this many iterations.
    Bounded(u64),
    /// The condition is invariantly TRUE and there is no LIMIT: the
    /// loop provably never terminates (diagnostic `D002`).
    Infinite,
    /// No bound could be proven.
    Unknown,
}

/// Facts about one WHILE loop, in source order.
#[derive(Debug, Clone)]
pub struct LoopFacts {
    /// Source anchor of the `WHILE`.
    pub span: Span,
    /// Proven upper bound.
    pub bound: LoopBound,
    /// Proven *lower* bound on iterations of one entry into the loop
    /// (`u64::MAX` when the loop provably never terminates).
    pub min_iters: u64,
    /// `min_iters` multiplied by the number of times the loop itself is
    /// guaranteed to be entered (0 inside unproven IF branches or
    /// FOREACH bodies). These sum to [`QueryFacts::min_while_iters`].
    pub guaranteed_ticks: u64,
}

/// Facts about one SELECT block, in execution-walk order.
#[derive(Debug, Clone)]
pub struct BlockFacts {
    /// 1-based position in the analyzer's walk order.
    pub ordinal: usize,
    /// The block's span.
    pub span: Span,
    /// Proven constancy of the whole WHERE clause (`None` = unknown or
    /// no WHERE clause; see `has_where`).
    pub where_const: Option<bool>,
    /// Whether the block has a WHERE clause at all.
    pub has_where: bool,
    /// Per-conjunct constancy, aligned with the planner's
    /// `split_conjuncts` order over the WHERE clause.
    pub conjunct_const: Vec<Option<bool>>,
    /// Proven gate: the ACCUM clause may run as a parallel partial fold
    /// (morsel- or shard-partitioned) with results byte-identical to
    /// the sequential fold.
    pub accum_parallel: bool,
    /// Why the ACCUM gate failed (None when it holds or the clause is
    /// empty).
    pub accum_reason: Option<String>,
    /// Proven gate for the POST-ACCUM clause (morsel-parallel
    /// per-vertex apply).
    pub post_accum_parallel: bool,
    /// Why the POST-ACCUM gate failed.
    pub post_accum_reason: Option<String>,
    /// Per ACCUM statement: `true` when the statement is an `=` assign
    /// whose RHS is proven row-invariant (same value for every binding
    /// of one Map phase). Used by the dataflow pass to exempt such
    /// writes from the A003/A004 last-writer races.
    pub accum_row_invariant: Vec<bool>,
}

/// The full fact bundle for one query.
#[derive(Debug, Clone, Default)]
pub struct QueryFacts {
    /// Per-block facts in walk order.
    pub blocks: Vec<BlockFacts>,
    /// Per-WHILE facts in walk order.
    pub loops: Vec<LoopFacts>,
    /// Proven lower bound on the *total* number of WHILE iterations the
    /// query must execute (the governor's `tick_while` counter is
    /// cumulative across loops, so this is directly comparable to
    /// `Budget::max_while_iters`). `u64::MAX` = provably unbounded.
    pub min_while_iters: u64,
    /// AST-identity index: `&SelectBlock as *const _ as usize` → index
    /// into `blocks`.
    pub(crate) by_block: FxHashMap<usize, usize>,
}

impl QueryFacts {
    /// Facts for a specific block of the *same* query AST the facts
    /// were computed from (keyed by AST node identity).
    pub fn block_facts(&self, block: &SelectBlock) -> Option<&BlockFacts> {
        let key = block as *const SelectBlock as usize;
        self.by_block.get(&key).map(|&i| &self.blocks[i])
    }

    /// Stable JSON rendering (schema documented in `docs/LINTS.md`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"min_while_iters\":");
        if self.min_while_iters == u64::MAX {
            out.push_str("\"unbounded\"");
        } else {
            out.push_str(&self.min_while_iters.to_string());
        }
        out.push_str(",\"blocks\":[");
        for (i, b) in self.blocks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"block\":{},\"line\":{}", b.ordinal, b.span.line));
            out.push_str(",\"where\":");
            json_string(&mut out, tri_state(b.has_where, b.where_const));
            out.push_str(",\"conjuncts\":[");
            for (j, c) in b.conjunct_const.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json_string(&mut out, tri_state(true, *c));
            }
            out.push_str("],\"accum\":");
            gate_json(&mut out, b.accum_parallel, &b.accum_reason);
            out.push_str(",\"post_accum\":");
            gate_json(&mut out, b.post_accum_parallel, &b.post_accum_reason);
            out.push('}');
        }
        out.push_str("],\"loops\":[");
        for (i, l) in self.loops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"line\":{},\"bound\":", l.span.line));
            match l.bound {
                LoopBound::Bounded(n) => out.push_str(&n.to_string()),
                LoopBound::Infinite => out.push_str("\"infinite\""),
                LoopBound::Unknown => out.push_str("\"unknown\""),
            }
            if l.min_iters == u64::MAX {
                out.push_str(",\"min_iters\":\"unbounded\"}");
            } else {
                out.push_str(&format!(",\"min_iters\":{}}}", l.min_iters));
            }
        }
        out.push_str("]}");
        out
    }
}

fn tri_state(present: bool, v: Option<bool>) -> &'static str {
    match (present, v) {
        (false, _) => "none",
        (true, Some(true)) => "true",
        (true, Some(false)) => "false",
        (true, None) => "unknown",
    }
}

fn gate_json(out: &mut String, parallel: bool, reason: &Option<String>) {
    out.push_str(&format!("{{\"parallel\":{parallel},\"reason\":"));
    match reason {
        Some(r) => json_string(out, r),
        None => out.push_str("null"),
    }
    out.push('}');
}

/// Budget-dependent findings (diagnostic `D003`): a query whose proven
/// minimum total WHILE iteration count already exceeds the budget's
/// `max_while_iters` is *guaranteed* to trip the governor, so callers
/// holding a concrete [`Budget`] (the shell's `SET iteration_limit`,
/// the server's per-request budget) can reject it before execution.
pub fn budget_findings(facts: &QueryFacts, budget: &Budget) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(max) = budget.max_while_iters else { return out };
    if facts.min_while_iters > max {
        let span = facts
            .loops
            .iter()
            .find(|l| l.guaranteed_ticks > 0)
            .map(|l| l.span)
            .unwrap_or_default();
        let bound = if facts.min_while_iters == u64::MAX {
            "unbounded".to_string()
        } else {
            facts.min_while_iters.to_string()
        };
        out.push(
            Diagnostic::error(
                "D003",
                span,
                format!(
                    "guaranteed budget trip: WHILE loops provably execute at least {bound} \
                     total iterations, but the budget allows max_while_iters = {max}"
                ),
            )
            .with_suggestion("raise the iteration budget or tighten the loop bounds"),
        );
    }
    out
}
