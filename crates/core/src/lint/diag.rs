//! The diagnostic data model and its two renderers (human text with
//! caret snippets, and JSON for `POST /lint` / `--json`).

use crate::ast::Span;
use crate::explain::json_string;
use std::fmt;

/// How bad a finding is.
///
/// `Error` marks queries the engine should refuse to run (nondeterminism
/// under snapshot Map/Reduce, tractability-class violations, references
/// to undeclared accumulators); `Warn` marks likely mistakes that still
/// execute deterministically; `Info` is advisory (cost estimates,
/// no-effect syntax).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only.
    Info,
    /// Likely mistake; the query still runs deterministically.
    Warn,
    /// The query should be rejected (nondeterministic or intractable).
    Error,
}

impl Severity {
    /// Lowercase stable name (`"error"` / `"warn"` / `"info"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of the static analyzer.
///
/// `code` is a stable rule identifier (`A003`, `P001`, ... — catalog in
/// `docs/LINTS.md`); clients may match on it. `span` is `0:0` when the
/// finding has no single anchor point.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable rule code (see `docs/LINTS.md`).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// Source anchor (1-based line/col; `0:0` = whole query).
    pub span: Span,
    /// Optional machine-applicable replacement / fix hint.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// An `Error`-severity diagnostic.
    pub fn error(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic { code, severity: Severity::Error, message: message.into(), span, suggestion: None }
    }

    /// A `Warn`-severity diagnostic.
    pub fn warn(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic { code, severity: Severity::Warn, message: message.into(), span, suggestion: None }
    }

    /// An `Info`-severity diagnostic.
    pub fn info(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic { code, severity: Severity::Info, message: message.into(), span, suggestion: None }
    }

    /// Attaches a fix suggestion.
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(s.into());
        self
    }

    /// Renders the diagnostic as human-readable text; when the query
    /// source is supplied and the span is known, a caret snippet of the
    /// offending line is included.
    pub fn render(&self, src: Option<&str>) -> String {
        let mut out = format!("{}[{}]: {}", self.severity, self.code, self.message);
        if self.span.is_known() {
            out.push_str(&format!("\n  --> {}:{}", self.span.line, self.span.col));
            if let Some(src) = src {
                if let Some(snip) = caret_snippet(src, self.span.line, self.span.col) {
                    out.push('\n');
                    out.push_str(&snip);
                }
            }
        }
        if let Some(s) = &self.suggestion {
            out.push_str(&format!("\n  = help: {s}"));
        }
        out
    }

    /// Appends the diagnostic as one JSON object to `out`.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"code\":");
        json_string(out, self.code);
        out.push_str(",\"severity\":");
        json_string(out, self.severity.as_str());
        out.push_str(",\"message\":");
        json_string(out, &self.message);
        out.push_str(&format!(",\"line\":{},\"col\":{}", self.span.line, self.span.col));
        if let Some(s) = &self.suggestion {
            out.push_str(",\"suggestion\":");
            json_string(out, s);
        }
        out.push('}');
    }
}

/// Renders a full diagnostic list as one JSON document:
/// `{"diagnostics": [...], "errors": N, "warnings": N, "infos": N}`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        d.write_json(&mut out);
    }
    let count = |sev| diags.iter().filter(|d| d.severity == sev).count();
    out.push_str(&format!(
        "],\"errors\":{},\"warnings\":{},\"infos\":{}}}",
        count(Severity::Error),
        count(Severity::Warn),
        count(Severity::Info)
    ));
    out
}

/// Renders every diagnostic as text (one block per finding, blank-line
/// separated), with caret snippets when `src` is given.
pub fn render_text(diags: &[Diagnostic], src: Option<&str>) -> String {
    diags.iter().map(|d| d.render(src)).collect::<Vec<_>>().join("\n\n")
}

/// True if any diagnostic is `Error`-severity.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// A two-line caret snippet pointing at `line:col` (1-based) of `src`:
///
/// ```text
///    4 |     ACCUM t.@cnt = 1
///      |             ^
/// ```
///
/// Returns `None` when the position lies outside the source.
pub fn caret_snippet(src: &str, line: usize, col: usize) -> Option<String> {
    if line == 0 {
        return None;
    }
    let text = src.lines().nth(line - 1)?;
    // `col` is a 1-based *byte* column (the lexer advances it by token
    // byte length), but the caret is padded in characters — count the
    // characters that start before the byte offset so the caret stays
    // under the right glyph when earlier content is multi-byte UTF-8.
    let byte_at = col.saturating_sub(1).min(text.len());
    let caret_at = text.char_indices().take_while(|(i, _)| *i < byte_at).count();
    // Tabs would desynchronize the caret column; render them as single
    // spaces so the offset arithmetic stays truthful.
    let text: String = text.chars().map(|c| if c == '\t' { ' ' } else { c }).collect();
    let num = line.to_string();
    let pad = " ".repeat(num.len());
    Some(format!(
        "  {num} | {text}\n  {pad} | {}^",
        " ".repeat(caret_at)
    ))
}

/// Renders an [`crate::Error`] with a caret snippet when it carries a
/// source position (parse errors do) — the same visual language as
/// [`Diagnostic::render`], shared by the shell and the bench bins.
pub fn render_error_snippet(src: &str, err: &crate::error::Error) -> String {
    match err {
        crate::error::Error::Parse { line, col, .. } => match caret_snippet(src, *line, *col) {
            Some(snip) => format!("{err}\n{snip}"),
            None => err.to_string(),
        },
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caret_lands_under_the_named_column_for_ascii() {
        let snip = caret_snippet("ACCUM t.@cnt = 1", 1, 7).unwrap();
        assert_eq!(snip, "  1 | ACCUM t.@cnt = 1\n    |       ^");
    }

    #[test]
    fn caret_counts_characters_not_bytes_after_multibyte_content() {
        // `é` is two bytes wide but one character: byte column 14 names
        // the `B`, which is the 13th character of the line.
        let snip = caret_snippet("S = 'héllo' BOGUS", 1, 14).unwrap();
        assert_eq!(snip, format!("  1 | S = 'héllo' BOGUS\n    | {}^", " ".repeat(12)));
    }

    #[test]
    fn parse_error_caret_aligns_after_non_ascii_string_literal() {
        // A stray `!` after a non-ASCII string literal: the lexer reports
        // a byte column, and the rendered caret must still sit under the
        // `!` glyph (char-aligned), not drift right by the extra bytes.
        let src = "CREATE QUERY Q () {\n  PRINT 'héllo' !;\n}";
        let err = crate::parse_query(src).unwrap_err();
        let rendered = render_error_snippet(src, &err);
        let mut lines = rendered.lines().rev();
        let caret_line = lines.next().unwrap();
        let text_line = lines.next().unwrap();
        let caret_col = caret_line.chars().position(|c| c == '^').unwrap();
        let bang_col = text_line.chars().position(|c| c == '!').unwrap();
        assert_eq!(caret_col, bang_col, "caret misaligned:\n{rendered}");
    }
}
