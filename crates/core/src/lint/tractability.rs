//! Pass 3 — tractability analysis (`P001`–`P004`).
//!
//! The static mirror of [`crate::tractable::check_block`], run before an
//! engine exists. Theorem 7.1: aggregation over Kleene patterns is
//! polynomial exactly when legal paths are all-shortest-paths (so the
//! kernel counts) and the accumulators absorb multiplicities; every
//! enumerative semantics pays worst-case exponential path
//! materialization for the same query text.

use super::{BlockCtx, Ctx, Diagnostic};
use crate::ast::FromItem;
use accum::AccumType;
use darpe::Darpe;

pub(super) fn run(cx: &Ctx, out: &mut Vec<Diagnostic>) {
    for bc in &cx.blocks {
        let mut has_kleene = false;
        let mut hop_no = 0usize;
        for item in &bc.block.from {
            let FromItem::Pattern { hops, .. } = item else { continue };
            for hop in hops {
                hop_no += 1;
                let single = hop.darpe.as_single_symbol().is_some();
                if single {
                    continue;
                }
                has_kleene = true;
                // P002 — an edge variable inside Kleene scope has no
                // single edge to bind; always outside the tractable class
                // (tractable.rs rejects it at run time under every
                // semantics).
                if let Some(ev) = &hop.edge_var {
                    out.push(Diagnostic::error(
                        "P002",
                        bc.block.span,
                        format!(
                            "edge variable `{ev}` binds inside the composite/Kleene DARPE \
                             `{}` — variables in the scope of a Kleene star are outside \
                             the tractable class (paper Section 7); bind variables on \
                             single-edge hops only",
                            hop.darpe
                        ),
                    ));
                }
                if bc.semantics.is_enumerative() {
                    if hop.darpe.has_unbounded_repeat() {
                        // P001 — Theorem 7.1's exponential blowup: an
                        // unbounded Kleene pattern evaluated by
                        // enumeration. Error when the query text itself
                        // asked for the enumerative semantics (the fix is
                        // a one-line edit); Warn when the semantics is
                        // the engine's ambient default (a deployment
                        // choice the query author may not control).
                        let d = Diagnostic {
                            code: "P001",
                            severity: if bc.inline_semantics {
                                super::Severity::Error
                            } else {
                                super::Severity::Warn
                            },
                            message: format!(
                                "unbounded Kleene pattern `{}` under enumerative \
                                 {:?} semantics: the kernel materializes every legal \
                                 path, worst-case exponential in path length \
                                 (Theorem 7.1); all-shortest-paths counting evaluates \
                                 the same query in polynomial time",
                                hop.darpe, bc.semantics
                            ),
                            span: bc.block.span,
                            suggestion: Some(
                                "USE SEMANTICS 'all_shortest_paths';".to_string(),
                            ),
                        };
                        out.push(d);
                    } else if let Some(k) = max_word_len(&hop.darpe) {
                        // P004 — bounded repeats still fan out
                        // multiplicatively under enumeration; estimate
                        // with the explain-plan vocabulary.
                        if k > 1 {
                            out.push(Diagnostic::info(
                                "P004",
                                bc.block.span,
                                format!(
                                    "hop {hop_no} `{}`: enumerative kernel may \
                                     materialize up to d^{k} paths per source vertex \
                                     (d = max adjacency fan-out); the counting kernel \
                                     visits each product state once",
                                    hop.darpe
                                ),
                            ));
                        }
                    }
                }
            }
        }
        // P003 — counting semantics must fold path multiplicities into
        // the accumulators, which only multiplicity-shortcut types
        // support (paper Appendix A); mirrors the runtime check that
        // would otherwise reject the query mid-execution.
        if has_kleene && !bc.semantics.is_enumerative() {
            check_multiplicity(cx, bc, out);
        }
    }
}

fn check_multiplicity(cx: &Ctx, bc: &BlockCtx, out: &mut Vec<Diagnostic>) {
    use crate::ast::AccStmt;
    for stmt in bc.block.accum.iter().chain(&bc.block.post_accum) {
        let (name, ty, sigil) = match stmt {
            AccStmt::VAcc { name, combine: true, .. } => {
                (name, cx.vaccs.get(name.as_str()).map(|i| i.ty), "@")
            }
            AccStmt::GAcc { name, combine: true, .. } => {
                (name, cx.gaccs.get(name.as_str()).map(|i| i.ty), "@@")
            }
            _ => continue,
        };
        let Some(ty) = ty else { continue };
        if !ty.supports_multiplicity_shortcut(cx.registry) {
            let alt = alternative_for(ty);
            out.push(
                Diagnostic::error(
                    "P003",
                    bc.block.span,
                    format!(
                        "accumulator `{sigil}{name}` of type {ty} is multiplicity-sensitive \
                         and order-dependent; it cannot absorb path multiplicities from a \
                         Kleene pattern under {:?} counting semantics (paper Section 7)",
                        bc.semantics
                    ),
                )
                .with_suggestion(format!(
                    "{alt}, or switch to an enumerative semantics (accepting exponential \
                     path materialization)"
                )),
            );
        }
    }
}

fn alternative_for(ty: &AccumType) -> &'static str {
    match ty {
        AccumType::List | AccumType::Array => {
            "use SetAccum (dedup) or BagAccum (multiplicity-aware counts) instead"
        }
        AccumType::Sum(_) => "use a numeric SumAccum instead of string concatenation",
        _ => "use a Sum/Avg/Bag or multiplicity-insensitive accumulator",
    }
}

/// Longest word the DARPE accepts, when bounded.
fn max_word_len(d: &Darpe) -> Option<u32> {
    match d {
        Darpe::Symbol(_) => Some(1),
        Darpe::Concat(xs) => xs.iter().map(max_word_len).sum(),
        Darpe::Alt(xs) => xs.iter().map(max_word_len).try_fold(0, |m, l| Some(m.max(l?))),
        Darpe::Repeat { inner, max, .. } => Some(max_word_len(inner)? * (*max)?),
    }
}
