//! Pass 2 — type/combiner checking (`T001`–`T003`).
//!
//! The combiner contract (paper Section 4.3, GRAPE/Pregel's algebraic
//! preconditions) is only meaningful when the combined values inhabit
//! the accumulator's element type. This pass statically types the
//! obvious expressions (literals, arithmetic, comparisons) and flags
//! certain mismatches; anything it cannot type stays silent — the lint
//! never guesses.

use super::{accum_decls, Ctx, Diagnostic};
use crate::ast::{AccStmt, BinOp, Expr, Span, Stmt, UnOp};
use accum::AccumType;
use pgraph::value::ValueType;

/// The fragment of the value lattice the linter can infer without a
/// schema: literal-derived scalar types plus the two structured input
/// forms accumulators consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    Int,
    Double,
    Str,
    Bool,
    /// `(k -> v)` arrow-tuple (Map/GroupBy input).
    Arrow,
    /// `(a, b, c)` plain tuple (Heap input).
    Tuple,
    Unknown,
}

fn infer(e: &Expr) -> Ty {
    match e {
        Expr::Int(_) => Ty::Int,
        Expr::Double(_) => Ty::Double,
        Expr::Str(_) => Ty::Str,
        Expr::Bool(_) => Ty::Bool,
        Expr::ArrowTuple { .. } => Ty::Arrow,
        Expr::Tuple(_) => Ty::Tuple,
        Expr::Unary { op: UnOp::Not, .. } => Ty::Bool,
        Expr::Unary { op: UnOp::Neg, expr } => match infer(expr) {
            t @ (Ty::Int | Ty::Double) => t,
            _ => Ty::Unknown,
        },
        Expr::Binary { op, lhs, rhs } => match op {
            BinOp::Eq
            | BinOp::Ne
            | BinOp::Lt
            | BinOp::Le
            | BinOp::Gt
            | BinOp::Ge
            | BinOp::And
            | BinOp::Or => Ty::Bool,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Mod => {
                match (infer(lhs), infer(rhs)) {
                    (Ty::Int, Ty::Int) => Ty::Int,
                    (Ty::Double, Ty::Int) | (Ty::Int, Ty::Double) | (Ty::Double, Ty::Double) => {
                        Ty::Double
                    }
                    (Ty::Str, Ty::Str) if *op == BinOp::Add => Ty::Str,
                    _ => Ty::Unknown,
                }
            }
            // Integer vs. float division semantics differ; don't guess.
            BinOp::Div => match (infer(lhs), infer(rhs)) {
                (Ty::Double, _) | (_, Ty::Double) => Ty::Double,
                _ => Ty::Unknown,
            },
        },
        Expr::Case { branches, default } => {
            let mut tys = branches.iter().map(|(_, r)| infer(r)).collect::<Vec<_>>();
            if let Some(d) = default {
                tys.push(infer(d));
            }
            match tys.split_first() {
                Some((first, rest)) if rest.iter().all(|t| t == first) => *first,
                _ => Ty::Unknown,
            }
        }
        _ => Ty::Unknown,
    }
}

pub(super) fn run(cx: &Ctx, out: &mut Vec<Diagnostic>) {
    // Declaration initializers follow the same value contract as `=`.
    for (ty, d) in accum_decls(cx.q) {
        if let Some(init) = &d.init {
            check_operand(ty, init, &d.name, d.global, d.span, out);
        }
    }
    // Statement-level `@@a = e;` / `@@a += e;`.
    check_stmts(cx, &cx.q.body, out);
    // ACCUM / POST_ACCUM writes.
    for bc in &cx.blocks {
        for s in bc.block.accum.iter().chain(&bc.block.post_accum) {
            match s {
                AccStmt::VAcc { name, expr, .. } => {
                    if let Some(info) = cx.vaccs.get(name.as_str()) {
                        check_operand(info.ty, expr, name, false, bc.block.span, out);
                    }
                }
                AccStmt::GAcc { name, expr, .. } => {
                    if let Some(info) = cx.gaccs.get(name.as_str()) {
                        check_operand(info.ty, expr, name, true, bc.block.span, out);
                    }
                }
                AccStmt::LocalDecl { .. } => {}
            }
        }
    }
}

fn check_stmts(cx: &Ctx, stmts: &[Stmt], out: &mut Vec<Diagnostic>) {
    for stmt in stmts {
        match stmt {
            Stmt::GAccAssign { name, expr, .. } => {
                if let Some(info) = cx.gaccs.get(name.as_str()) {
                    check_operand(info.ty, expr, name, true, Span::default(), out);
                }
            }
            Stmt::While { body, .. } | Stmt::Foreach { body, .. } => check_stmts(cx, body, out),
            Stmt::If { then_branch, else_branch, .. } => {
                check_stmts(cx, then_branch, out);
                check_stmts(cx, else_branch, out);
            }
            _ => {}
        }
    }
}

/// `2^53` — the largest magnitude at which every integer is exactly
/// representable as an IEEE-754 double.
const DOUBLE_EXACT: i64 = 1 << 53;

fn check_operand(
    ty: &AccumType,
    expr: &Expr,
    name: &str,
    global: bool,
    span: Span,
    out: &mut Vec<Diagnostic>,
) {
    let sigil = if global { "@@" } else { "@" };
    let operand = infer(expr);
    match ty {
        AccumType::Sum(vt) => match (vt, operand) {
            (ValueType::Int, Ty::Double) => out.push(Diagnostic::warn(
                "T001",
                span,
                format!(
                    "`{sigil}{name}` is SumAccum<INT> but receives a DOUBLE value; the \
                     fractional part is truncated on every combine"
                ),
            )),
            (ValueType::Int | ValueType::Double, Ty::Str | Ty::Bool | Ty::Arrow | Ty::Tuple)
            | (ValueType::Str, Ty::Int | Ty::Double | Ty::Bool | Ty::Arrow | Ty::Tuple) => {
                out.push(Diagnostic::error(
                    "T001",
                    span,
                    format!(
                        "`{sigil}{name}` is {ty} but receives a {} value",
                        ty_name(operand)
                    ),
                ))
            }
            (ValueType::Double, Ty::Int) => {
                big_literal_check(expr, name, sigil, span, out);
            }
            _ => {}
        },
        AccumType::Avg => {
            if matches!(operand, Ty::Str | Ty::Bool | Ty::Arrow | Ty::Tuple) {
                out.push(Diagnostic::error(
                    "T001",
                    span,
                    format!(
                        "`{sigil}{name}` is AvgAccum (numeric mean) but receives a {} value",
                        ty_name(operand)
                    ),
                ));
            } else {
                big_literal_check(expr, name, sigil, span, out);
            }
        }
        AccumType::Or | AccumType::And => {
            if matches!(operand, Ty::Int | Ty::Double | Ty::Str | Ty::Arrow | Ty::Tuple) {
                out.push(Diagnostic::error(
                    "T001",
                    span,
                    format!(
                        "`{sigil}{name}` is {ty} (boolean combiner) but receives a {} value",
                        ty_name(operand)
                    ),
                ));
            }
        }
        AccumType::Min | AccumType::Max => {
            if matches!(operand, Ty::Bool | Ty::Arrow) {
                let hint = if operand == Ty::Bool {
                    "; for booleans use OrAccum/AndAccum"
                } else {
                    ""
                };
                out.push(Diagnostic::warn(
                    "T003",
                    span,
                    format!(
                        "`{sigil}{name}` is {ty} over values with no meaningful order \
                         ({}){hint}",
                        ty_name(operand)
                    ),
                ));
            }
        }
        AccumType::Map(_) | AccumType::GroupBy { .. } => {
            if matches!(operand, Ty::Int | Ty::Double | Ty::Str | Ty::Bool | Ty::Tuple) {
                out.push(Diagnostic::error(
                    "T001",
                    span,
                    format!(
                        "`{sigil}{name}` is {ty} and consumes `(keys -> values)` arrow-tuple \
                         inputs, but receives a {} value",
                        ty_name(operand)
                    ),
                ));
            }
        }
        AccumType::Heap { .. } => {
            if matches!(operand, Ty::Int | Ty::Double | Ty::Str | Ty::Bool | Ty::Arrow) {
                out.push(Diagnostic::error(
                    "T001",
                    span,
                    format!(
                        "`{sigil}{name}` is a HeapAccum of tuples but receives a {} value",
                        ty_name(operand)
                    ),
                ));
            }
        }
        AccumType::Set | AccumType::Bag | AccumType::List | AccumType::Array
        | AccumType::User(_) => {}
    }
}

/// `T002`: an integer literal above 2^53 flowing into a double-valued
/// accumulator silently loses precision.
fn big_literal_check(
    expr: &Expr,
    name: &str,
    sigil: &str,
    span: Span,
    out: &mut Vec<Diagnostic>,
) {
    let mut flagged = false;
    expr.walk(&mut |e| {
        if let Expr::Int(v) = e {
            if v.unsigned_abs() > DOUBLE_EXACT as u64 && !flagged {
                flagged = true;
                out.push(Diagnostic::warn(
                    "T002",
                    span,
                    format!(
                        "integer literal {v} exceeds 2^53 and is rounded when combined into \
                         the double-valued accumulator `{sigil}{name}`"
                    ),
                ));
            }
        }
    });
}

fn ty_name(t: Ty) -> &'static str {
    match t {
        Ty::Int => "INT",
        Ty::Double => "DOUBLE",
        Ty::Str => "STRING",
        Ty::Bool => "BOOL",
        Ty::Arrow => "arrow-tuple",
        Ty::Tuple => "tuple",
        Ty::Unknown => "unknown",
    }
}
