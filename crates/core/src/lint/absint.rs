//! Pass 6: fixpoint abstract interpretation over the typed AST.
//!
//! Where passes 1–5 pattern-match the query text, this pass *executes*
//! it over an abstract domain: integer intervals, known
//! double/string/bool constants, and three-valued booleans. Global
//! accumulators are tracked through assignments, combines, SELECT
//! blocks, IF branches and WHILE loops (with widening); everything
//! row-dependent (vertex attributes, vertex accumulators, binding
//! variables) evaluates to ⊤.
//!
//! The pass produces [`QueryFacts`] — proven WHERE constancy, proven
//! parallel-fold gates for ACCUM / POST-ACCUM, and WHILE loop bounds —
//! plus four diagnostics of its own:
//!
//! * `D001` — a SELECT block whose WHERE clause is proven false by
//!   interval reasoning (beyond `H003`'s literal folding).
//! * `D002` — a WHILE loop whose condition is invariantly TRUE with no
//!   LIMIT: provably non-terminating.
//! * `D003` — emitted by [`super::facts::budget_findings`] when a
//!   concrete budget is known: the proven minimum iteration count
//!   already exceeds `max_while_iters`.
//! * `D004` — a `+=` combine in ACCUM into an accumulator whose merge
//!   is order-dependent (`ListAccum`, `ArrayAccum`, `SumAccum<STRING>`,
//!   containers nesting them): the result observes row/merge order.
//!
//! ## The proven parallel gates
//!
//! The executor's Map phase evaluates every row against the *snapshot*
//! stores and defers all writes as emissions, so expression reads never
//! observe same-phase writes on any execution path. That makes the
//! following clause shapes byte-identical between the sequential fold
//! and partitioned partial folds (morsel ranges or shard scatter):
//!
//! * **ACCUM**: per accumulator, either every write is a `+=` combine
//!   and the accumulator type merges exactly
//!   ([`AccumType::is_exact_merge`]), or every write is an `=` assign
//!   whose RHS is proven row-invariant (the same value for every
//!   binding of the phase — literals, parameters, global-accumulator
//!   snapshot reads and pure functions thereof). Mixing `=` and `+=`
//!   on one accumulator is rejected: partial replay only matches a
//!   sequential *suffix* when partials are contiguous row ranges, which
//!   the shard-scatter path does not guarantee.
//! * **POST-ACCUM**: iterates *distinct* vertices, so vertex-
//!   accumulator writes touch disjoint cells and any per-vertex
//!   statement list replays exactly within one partial. The gate
//!   requires: no expression reads an accumulator the clause itself
//!   writes (those reads would observe partial state), every `+=`
//!   combine is into an exact-merge type, and all vertex-accumulator
//!   statements target one vertex variable.

use super::facts::{BlockFacts, LoopBound, LoopFacts, QueryFacts};
use super::{Ctx, Diagnostic};
use crate::ast::{AccStmt, BinOp, Expr, SelectBlock, Span, Stmt, UnOp, VSetSource};
use crate::plan::{from_bound_vars, split_conjuncts};
use accum::AccumType;
use pgraph::fxhash::{FxHashMap, FxHashSet};
use pgraph::value::ValueType;

/// Abstract value lattice.
#[derive(Debug, Clone, PartialEq)]
enum AVal {
    /// Unknown.
    Top,
    /// Known NULL.
    Null,
    /// Integer in the inclusive interval.
    Int(i64, i64),
    /// Known double constant.
    Dbl(f64),
    /// Known string constant.
    Str(String),
    /// Three-valued boolean: (may be true, may be false).
    Bool(bool, bool),
}

use AVal::*;

fn bool_of(b: bool) -> AVal {
    Bool(b, !b)
}

fn unknown_bool() -> AVal {
    Bool(true, true)
}

/// `Some(b)` when the value is a proven boolean constant.
fn proven_bool(v: &AVal) -> Option<bool> {
    match v {
        Bool(true, false) => Some(true),
        Bool(false, true) => Some(false),
        _ => None,
    }
}

/// Condition truth: (may be true, may be false).
fn truth(v: &AVal) -> (bool, bool) {
    match v {
        Bool(t, f) => (*t, *f),
        _ => (true, true),
    }
}

/// `Some(x)` when the value is a known numeric constant.
fn f64_const(v: &AVal) -> Option<f64> {
    match v {
        Int(a, b) if a == b => Some(*a as f64),
        Dbl(x) => Some(*x),
        _ => None,
    }
}

fn join(a: &AVal, b: &AVal) -> AVal {
    match (a, b) {
        (x, y) if x == y => x.clone(),
        (Int(a1, b1), Int(a2, b2)) => Int(*a1.min(a2), *b1.max(b2)),
        (Bool(t1, f1), Bool(t2, f2)) => Bool(*t1 || *t2, *f1 || *f2),
        _ => Top,
    }
}

/// Widening: force changed interval endpoints to the lattice extremes
/// so WHILE fixpoints converge in a bounded number of steps.
fn widen(old: &AVal, joined: &AVal) -> AVal {
    match (old, joined) {
        (Int(a1, b1), Int(a2, b2)) => {
            let lo = if a2 < a1 { i64::MIN } else { *a1 };
            let hi = if b2 > b1 { i64::MAX } else { *b1 };
            Int(lo, hi)
        }
        _ => joined.clone(),
    }
}

/// Abstract store for global accumulators. Absent key = ⊤ (entries are
/// normalized: ⊤ is never stored, so map equality is a fixpoint test).
type Env = FxHashMap<String, AVal>;

fn env_set(env: &mut Env, name: &str, v: AVal) {
    if v == Top {
        env.remove(name);
    } else {
        env.insert(name.to_string(), v);
    }
}

fn join_env(a: &Env, b: &Env) -> Env {
    let mut out = Env::default();
    for (k, va) in a {
        if let Some(vb) = b.get(k) {
            let j = join(va, vb);
            if j != Top {
                out.insert(k.clone(), j);
            }
        }
    }
    out
}

fn widen_env(old: &Env, joined: &Env) -> Env {
    let mut out = Env::default();
    for (k, vj) in joined {
        let w = match old.get(k) {
            Some(vo) => widen(vo, vj),
            None => Top,
        };
        if w != Top {
            out.insert(k.clone(), w);
        }
    }
    out
}

fn interval(lo: Option<i64>, hi: Option<i64>) -> AVal {
    match (lo, hi) {
        (Some(a), Some(b)) => Int(a, b),
        _ => Top,
    }
}

/// Abstract expression evaluation. `locals` carries ACCUM-clause local
/// declarations; every other identifier (binding variables, parameters,
/// vertex sets) is ⊤, as are attributes, vertex accumulators, methods
/// and calls.
fn eval(e: &Expr, g: &Env, locals: &FxHashMap<String, AVal>) -> AVal {
    match e {
        Expr::Null => Null,
        Expr::Int(v) => Int(*v, *v),
        Expr::Double(v) => Dbl(*v),
        Expr::Str(s) => Str(s.clone()),
        Expr::Bool(b) => bool_of(*b),
        Expr::Ident(n) => locals.get(n).cloned().unwrap_or(Top),
        Expr::GAcc(n) => g.get(n).cloned().unwrap_or(Top),
        Expr::Unary { op: UnOp::Not, expr } => match eval(expr, g, locals) {
            Bool(t, f) => Bool(f, t),
            _ => Top,
        },
        Expr::Unary { op: UnOp::Neg, expr } => match eval(expr, g, locals) {
            Int(a, b) => interval(b.checked_neg(), a.checked_neg()),
            Dbl(v) => Dbl(-v),
            _ => Top,
        },
        Expr::Binary { op, lhs, rhs } => {
            let l = eval(lhs, g, locals);
            let r = eval(rhs, g, locals);
            binary(*op, &l, &r)
        }
        Expr::Case { branches, default } => {
            let mut acc: Option<AVal> = None;
            let mut decided = false;
            for (c, res) in branches {
                match proven_bool(&eval(c, g, locals)) {
                    Some(false) => continue,
                    Some(true) => {
                        let v = eval(res, g, locals);
                        acc = Some(match acc {
                            Some(a) => join(&a, &v),
                            None => v,
                        });
                        decided = true;
                        break;
                    }
                    None => {
                        let v = eval(res, g, locals);
                        acc = Some(match acc {
                            Some(a) => join(&a, &v),
                            None => v,
                        });
                    }
                }
            }
            if !decided {
                let dv = match default {
                    Some(d) => eval(d, g, locals),
                    None => Null,
                };
                acc = Some(match acc {
                    Some(a) => join(&a, &dv),
                    None => dv,
                });
            }
            acc.unwrap_or(Top)
        }
        // Row-dependent or opaque: attributes, vertex accumulators,
        // function/method calls, tuples.
        _ => Top,
    }
}

fn binary(op: BinOp, l: &AVal, r: &AVal) -> AVal {
    match op {
        BinOp::And => {
            let (lt, lf) = truth(l);
            let (rt, rf) = truth(r);
            Bool(lt && rt, lf || rf)
        }
        BinOp::Or => {
            let (lt, lf) = truth(l);
            let (rt, rf) = truth(r);
            Bool(lt || rt, lf && rf)
        }
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => compare(op, l, r),
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => arith(op, l, r),
    }
}

fn compare(op: BinOp, l: &AVal, r: &AVal) -> AVal {
    if let (Int(a, b), Int(c, d)) = (l, r) {
        return match op {
            BinOp::Lt => cmp_ranges(*b < *c, *a >= *d),
            BinOp::Le => cmp_ranges(*b <= *c, *a > *d),
            BinOp::Gt => cmp_ranges(*a > *d, *b <= *c),
            BinOp::Ge => cmp_ranges(*a >= *d, *b < *c),
            BinOp::Eq => cmp_ranges(a == b && c == d && a == c, b < c || d < a),
            BinOp::Ne => cmp_ranges(b < c || d < a, a == b && c == d && a == c),
            _ => unknown_bool(),
        };
    }
    if let (Some(x), Some(y)) = (f64_const(l), f64_const(r)) {
        return bool_of(match op {
            BinOp::Eq => x == y,
            BinOp::Ne => x != y,
            BinOp::Lt => x < y,
            BinOp::Le => x <= y,
            BinOp::Gt => x > y,
            _ => x >= y,
        });
    }
    match (l, r, op) {
        (Str(a), Str(b), BinOp::Eq) => bool_of(a == b),
        (Str(a), Str(b), BinOp::Ne) => bool_of(a != b),
        (Bool(..), Bool(..), BinOp::Eq | BinOp::Ne) => {
            match (proven_bool(l), proven_bool(r)) {
                (Some(a), Some(b)) => bool_of(if op == BinOp::Eq { a == b } else { a != b }),
                _ => unknown_bool(),
            }
        }
        _ => unknown_bool(),
    }
}

fn cmp_ranges(proven_true: bool, proven_false: bool) -> AVal {
    if proven_true {
        bool_of(true)
    } else if proven_false {
        bool_of(false)
    } else {
        unknown_bool()
    }
}

fn arith(op: BinOp, l: &AVal, r: &AVal) -> AVal {
    if let (Int(a, b), Int(c, d)) = (l, r) {
        // Checked endpoint arithmetic: overflow ⇒ ⊤ (the runtime's
        // wrapping behaviour would escape a saturated interval).
        return match op {
            BinOp::Add => interval(a.checked_add(*c), b.checked_add(*d)),
            BinOp::Sub => interval(a.checked_sub(*d), b.checked_sub(*c)),
            BinOp::Mul => {
                let ps = [
                    a.checked_mul(*c),
                    a.checked_mul(*d),
                    b.checked_mul(*c),
                    b.checked_mul(*d),
                ];
                if ps.iter().any(|p| p.is_none()) {
                    Top
                } else {
                    let vs: Vec<i64> = ps.iter().map(|p| p.unwrap()).collect();
                    Int(*vs.iter().min().unwrap(), *vs.iter().max().unwrap())
                }
            }
            BinOp::Div if a == b && c == d && *c != 0 => interval(a.checked_div(*c), a.checked_div(*c)),
            BinOp::Mod if a == b && c == d && *c != 0 => interval(a.checked_rem(*c), a.checked_rem(*c)),
            _ => Top,
        };
    }
    if let (Str(a), Str(b)) = (l, r) {
        if op == BinOp::Add {
            return Str(format!("{a}{b}"));
        }
        return Top;
    }
    match (f64_const(l), f64_const(r)) {
        (Some(x), Some(y)) if matches!(l, Dbl(_)) || matches!(r, Dbl(_)) => match op {
            BinOp::Add => Dbl(x + y),
            BinOp::Sub => Dbl(x - y),
            BinOp::Mul => Dbl(x * y),
            BinOp::Div => Dbl(x / y),
            _ => Top,
        },
        _ => Top,
    }
}

// ---- row invariance -----------------------------------------------------

/// True when the expression provably evaluates to the *same* value for
/// every row of one Map phase: no binding-variable reads, no attribute
/// or vertex-accumulator reads, no aggregates. Global-accumulator reads
/// qualify — the Map phase reads the pre-phase snapshot and defers all
/// writes, on the sequential and parallel paths alike.
fn row_invariant(e: &Expr, bound: &FxHashSet<String>, inv_locals: &FxHashMap<String, bool>) -> bool {
    match e {
        Expr::Null | Expr::Int(_) | Expr::Double(_) | Expr::Str(_) | Expr::Bool(_) => true,
        Expr::Ident(n) => inv_locals.get(n).copied().unwrap_or_else(|| !bound.contains(n)),
        Expr::Attr { .. } | Expr::VAcc { .. } | Expr::Method { .. } => false,
        Expr::GAcc(_) => true,
        Expr::Call { func, args, star } => {
            let f = func.to_ascii_lowercase();
            let aggregate = *star
                || matches!(f.as_str(), "count" | "sum" | "avg")
                || (args.len() == 1 && matches!(f.as_str(), "min" | "max"));
            !aggregate && args.iter().all(|a| row_invariant(a, bound, inv_locals))
        }
        Expr::Unary { expr, .. } => row_invariant(expr, bound, inv_locals),
        Expr::Binary { lhs, rhs, .. } => {
            row_invariant(lhs, bound, inv_locals) && row_invariant(rhs, bound, inv_locals)
        }
        Expr::ArrowTuple { keys, vals } => keys
            .iter()
            .chain(vals)
            .all(|a| row_invariant(a, bound, inv_locals)),
        Expr::Tuple(items) => items.iter().all(|a| row_invariant(a, bound, inv_locals)),
        Expr::Case { branches, default } => {
            branches
                .iter()
                .all(|(c, r)| row_invariant(c, bound, inv_locals) && row_invariant(r, bound, inv_locals))
                && default
                    .as_deref()
                    .is_none_or(|d| row_invariant(d, bound, inv_locals))
        }
    }
}

// ---- the analyzer -------------------------------------------------------

struct Analyzer<'a, 'c> {
    cx: &'c Ctx<'a>,
    facts: QueryFacts,
    diags: &'c mut Vec<Diagnostic>,
}

/// Runs the pass: walks the query in execution order, records
/// [`QueryFacts`] and emits `D001`/`D002`/`D004`.
pub(super) fn run(cx: &Ctx<'_>, diags: &mut Vec<Diagnostic>) -> QueryFacts {
    let mut a = Analyzer { cx, facts: QueryFacts::default(), diags };
    let mut env = Env::default();
    a.exec(&cx.q.body, &mut env, true, 1);
    a.facts.min_while_iters = a
        .facts
        .loops
        .iter()
        .fold(0u64, |acc, l| acc.saturating_add(l.guaranteed_ticks));
    a.facts
}

impl<'a, 'c> Analyzer<'a, 'c> {
    /// Abstractly executes `stmts`. `record` is true only on the final
    /// (fixpoint) pass over each region — facts, ordinals and
    /// diagnostics are emitted exactly once. `mult` is the proven lower
    /// bound on how many times this statement list executes.
    fn exec(&mut self, stmts: &[Stmt], env: &mut Env, record: bool, mult: u64) {
        for stmt in stmts {
            match stmt {
                Stmt::AccumDecl { ty, decls } => {
                    for d in decls {
                        if d.global {
                            let v = match &d.init {
                                Some(e) => eval(e, env, &FxHashMap::default()),
                                None => type_default(ty),
                            };
                            env_set(env, &d.name, v);
                        }
                    }
                }
                Stmt::GAccAssign { name, combine, expr } => {
                    if *combine {
                        env_set(env, name, Top);
                    } else {
                        let v = eval(expr, env, &FxHashMap::default());
                        env_set(env, name, v);
                    }
                }
                Stmt::VSetAssign { source: VSetSource::Select(b), .. } | Stmt::Select(b) => {
                    self.block(b, env, record);
                    apply_block_effects(b, env);
                }
                Stmt::While { cond, limit, body, span } => {
                    self.while_loop(cond, limit.as_ref(), body, *span, env, record, mult);
                }
                Stmt::If { cond, then_branch, else_branch } => {
                    match proven_bool(&eval(cond, env, &FxHashMap::default())) {
                        Some(true) => {
                            self.exec(then_branch, env, record, mult);
                            // Record facts for the dead branch without
                            // keeping its effects.
                            let mut dead = env.clone();
                            self.exec(else_branch, &mut dead, record, 0);
                        }
                        Some(false) => {
                            let mut dead = env.clone();
                            self.exec(then_branch, &mut dead, record, 0);
                            self.exec(else_branch, env, record, mult);
                        }
                        None => {
                            let mut t = env.clone();
                            let mut e = env.clone();
                            self.exec(then_branch, &mut t, record, 0);
                            self.exec(else_branch, &mut e, record, 0);
                            *env = join_env(&t, &e);
                        }
                    }
                }
                Stmt::Foreach { body, .. } => {
                    // The collection may be empty: fixpoint from the
                    // entry state, body executes 0..n times.
                    let head = self.fixpoint(body, env);
                    let mut fin = head.clone();
                    self.exec(body, &mut fin, record, 0);
                    *env = head;
                }
                // Mutations / output statements do not touch global
                // accumulators (attributes are ⊤ already).
                _ => {}
            }
        }
    }

    /// Fixpoint of a loop body from the current entry state; returns
    /// the loop-head invariant environment (no recording).
    fn fixpoint(&mut self, body: &[Stmt], env: &Env) -> Env {
        let mut head = env.clone();
        for i in 0..32 {
            let mut after = head.clone();
            self.exec(body, &mut after, false, 0);
            let joined = join_env(&head, &after);
            if joined == head {
                break;
            }
            head = if i >= 3 { widen_env(&head, &joined) } else { joined };
        }
        head
    }

    #[allow(clippy::too_many_arguments)]
    fn while_loop(
        &mut self,
        cond: &Expr,
        limit: Option<&Expr>,
        body: &[Stmt],
        span: Span,
        env: &mut Env,
        record: bool,
        mult: u64,
    ) {
        let limit_const = limit.and_then(|l| match eval(l, env, &FxHashMap::default()) {
            Int(a, b) if a == b && a >= 0 => Some(a as u64),
            _ => None,
        });
        let head = self.fixpoint(body, env);
        let cond_fix = proven_bool(&eval(cond, &head, &FxHashMap::default()));
        let (bound, min_iters) = match (cond_fix, limit, limit_const) {
            (Some(false), _, _) => (LoopBound::Bounded(0), 0),
            (Some(true), Some(_), Some(k)) => (LoopBound::Bounded(k), k),
            (Some(true), Some(_), None) => (LoopBound::Unknown, 0),
            (Some(true), None, _) => (LoopBound::Infinite, u64::MAX),
            (None, _, Some(k)) => (LoopBound::Bounded(k), 0),
            (None, _, None) => (LoopBound::Unknown, 0),
        };
        let body_mult = if min_iters == 0 { 0 } else { mult.saturating_mul(min_iters) };
        let mut fin = head.clone();
        self.exec(body, &mut fin, record, body_mult);
        if record {
            let guaranteed_ticks = mult.saturating_mul(min_iters);
            self.facts.loops.push(LoopFacts { span, bound, min_iters, guaranteed_ticks });
            if bound == LoopBound::Infinite {
                self.diags.push(
                    Diagnostic::error(
                        "D002",
                        span,
                        "WHILE loop is provably non-terminating: its condition is \
                         invariantly TRUE and the loop has no LIMIT",
                    )
                    .with_suggestion(
                        "add a LIMIT clause or update the condition's accumulators in the loop body",
                    ),
                );
            }
        }
        *env = head;
    }

    fn block(&mut self, b: &SelectBlock, env: &Env, record: bool) {
        if !record {
            return;
        }
        let empty = FxHashMap::default();
        let (where_const, conjunct_const) = match &b.where_clause {
            Some(w) => {
                let mut conjuncts = Vec::new();
                split_conjuncts(w, &mut conjuncts);
                let per: Vec<Option<bool>> = conjuncts
                    .iter()
                    .map(|c| proven_bool(&eval(c, env, &empty)))
                    .collect();
                (proven_bool(&eval(w, env, &empty)), per)
            }
            None => (None, Vec::new()),
        };
        if where_const == Some(false) && super::hygiene::const_bool(b.where_clause.as_ref().unwrap()) != Some(false) {
            self.diags.push(Diagnostic::warn(
                "D001",
                b.span,
                "SELECT block is unreachable: WHERE clause proven false by interval analysis",
            ));
        }
        self.order_dependence(b);
        let bound = from_bound_vars(&b.from);
        let (accum_parallel, accum_reason, accum_row_invariant) =
            self.accum_gate(&b.accum, env, &bound);
        let (post_accum_parallel, post_accum_reason) = self.post_accum_gate(&b.post_accum, env);
        let ordinal = self.facts.blocks.len() + 1;
        let key = b as *const SelectBlock as usize;
        let idx = self.facts.blocks.len();
        self.facts.blocks.push(BlockFacts {
            ordinal,
            span: b.span,
            where_const,
            has_where: b.where_clause.is_some(),
            conjunct_const,
            accum_parallel,
            accum_reason,
            post_accum_parallel,
            post_accum_reason,
            accum_row_invariant,
        });
        self.facts.by_block.insert(key, idx);
    }

    /// `D004`: `+=` combines in ACCUM into order-dependent merge types.
    fn order_dependence(&mut self, b: &SelectBlock) {
        let mut reported: FxHashSet<String> = FxHashSet::default();
        for s in &b.accum {
            let (name, display, ty) = match s {
                AccStmt::VAcc { name, combine: true, .. } => {
                    (name, format!("@{name}"), self.cx.vaccs.get(name.as_str()).map(|i| i.ty))
                }
                AccStmt::GAcc { name, combine: true, .. } => {
                    (name, format!("@@{name}"), self.cx.gaccs.get(name.as_str()).map(|i| i.ty))
                }
                _ => continue,
            };
            let Some(ty) = ty else { continue };
            if !ty.is_order_invariant(self.cx.registry) && reported.insert(name.clone()) {
                self.diags.push(Diagnostic::warn(
                    "D004",
                    b.span,
                    format!(
                        "merge-order dependence: `{display} +=` folds into {ty}, whose result \
                         depends on row and merge order; it is reproducible only sequentially"
                    ),
                ));
            }
        }
    }

    /// The proven ACCUM gate (see module docs). Returns the gate, a
    /// failure reason, and per-statement row-invariance of `=` assigns.
    fn accum_gate(
        &self,
        stmts: &[AccStmt],
        env: &Env,
        bound: &FxHashSet<String>,
    ) -> (bool, Option<String>, Vec<bool>) {
        let mut inv_locals: FxHashMap<String, bool> = FxHashMap::default();
        let mut locals: FxHashMap<String, AVal> = FxHashMap::default();
        let mut row_inv = Vec::with_capacity(stmts.len());
        // Per accumulator: (saw combine, saw assign, display, failure).
        let mut reason: Option<String> = None;
        let mut usage: FxHashMap<(bool, &str), (bool, bool)> = FxHashMap::default();
        let note = |r: String, reason: &mut Option<String>| {
            if reason.is_none() {
                *reason = Some(r);
            }
        };
        for s in stmts {
            match s {
                AccStmt::LocalDecl { name, expr } => {
                    let inv = row_invariant(expr, bound, &inv_locals);
                    inv_locals.insert(name.clone(), inv);
                    let v = if inv { eval(expr, env, &locals) } else { Top };
                    locals.insert(name.clone(), v);
                    row_inv.push(false);
                }
                AccStmt::VAcc { name, combine, expr, .. } | AccStmt::GAcc { name, combine, expr } => {
                    let global = matches!(s, AccStmt::GAcc { .. });
                    let display = if global { format!("@@{name}") } else { format!("@{name}") };
                    let ty = if global {
                        self.cx.gaccs.get(name.as_str()).map(|i| i.ty)
                    } else {
                        self.cx.vaccs.get(name.as_str()).map(|i| i.ty)
                    };
                    let inv = !*combine && row_invariant(expr, bound, &inv_locals);
                    row_inv.push(inv);
                    let u = usage.entry((global, name.as_str())).or_insert((false, false));
                    if *combine {
                        u.0 = true;
                    } else {
                        u.1 = true;
                    }
                    if u.0 && u.1 {
                        note(
                            format!("mixes `=` and `+=` writes to `{display}` in one ACCUM clause"),
                            &mut reason,
                        );
                    }
                    match ty {
                        None => note(format!("`{display}` is not declared"), &mut reason),
                        Some(ty) => {
                            if *combine && !ty.is_exact_merge(self.cx.registry) {
                                note(
                                    format!("`{display}` ({ty}) does not merge exactly across partials"),
                                    &mut reason,
                                );
                            }
                            if !*combine && !inv {
                                note(
                                    format!("`=` write to `{display}` is not proven row-invariant"),
                                    &mut reason,
                                );
                            }
                        }
                    }
                }
            }
        }
        (reason.is_none(), reason, row_inv)
    }

    /// The proven POST-ACCUM gate (see module docs).
    fn post_accum_gate(&self, stmts: &[AccStmt], env: &Env) -> (bool, Option<String>) {
        let _ = env;
        let mut reason: Option<String> = None;
        let note = |r: String, reason: &mut Option<String>| {
            if reason.is_none() {
                *reason = Some(r);
            }
        };
        let mut v_targets: FxHashSet<&str> = FxHashSet::default();
        let mut g_targets: FxHashSet<&str> = FxHashSet::default();
        let mut vars: FxHashSet<&str> = FxHashSet::default();
        for s in stmts {
            match s {
                AccStmt::VAcc { var, name, .. } => {
                    v_targets.insert(name);
                    vars.insert(var);
                }
                AccStmt::GAcc { name, .. } => {
                    g_targets.insert(name);
                }
                AccStmt::LocalDecl { .. } => {}
            }
        }
        if vars.len() > 1 {
            note("statements target more than one vertex variable".to_string(), &mut reason);
        }
        for s in stmts {
            let (expr, combine, display, ty) = match s {
                AccStmt::LocalDecl { expr, .. } => (expr, false, None, None),
                AccStmt::VAcc { name, combine, expr, .. } => (
                    expr,
                    *combine,
                    Some(format!("@{name}")),
                    self.cx.vaccs.get(name.as_str()).map(|i| i.ty),
                ),
                AccStmt::GAcc { name, combine, expr } => (
                    expr,
                    *combine,
                    Some(format!("@@{name}")),
                    self.cx.gaccs.get(name.as_str()).map(|i| i.ty),
                ),
            };
            if let Some(display) = &display {
                match ty {
                    None => note(format!("`{display}` is not declared"), &mut reason),
                    Some(ty) => {
                        if combine && !ty.is_exact_merge(self.cx.registry) {
                            note(
                                format!("`{display}` ({ty}) does not merge exactly across partials"),
                                &mut reason,
                            );
                        }
                    }
                }
            }
            // No expression may read an accumulator this clause writes:
            // such a read would observe partial (per-worker) state.
            expr.walk(&mut |e| match e {
                Expr::VAcc { name, prev: false, .. } if v_targets.contains(name.as_str()) => {
                    note(
                        format!("reads `@{name}` while the same clause writes it"),
                        &mut reason,
                    );
                }
                Expr::GAcc(name) if g_targets.contains(name.as_str()) => {
                    note(
                        format!("reads `@@{name}` while the same clause writes it"),
                        &mut reason,
                    );
                }
                _ => {}
            });
        }
        (reason.is_none(), reason)
    }
}

/// Applies a SELECT block's global-accumulator effects to the abstract
/// store: combines go to ⊤; assigns join the written value with the old
/// one (the block may bind zero rows/vertices, keeping the old value).
fn apply_block_effects(b: &SelectBlock, env: &mut Env) {
    let empty = FxHashMap::default();
    for s in b.accum.iter().chain(&b.post_accum) {
        if let AccStmt::GAcc { name, combine, expr } = s {
            let v = if *combine {
                Top
            } else {
                let new = eval(expr, env, &empty);
                let old = env.get(name.as_str()).cloned().unwrap_or(Top);
                join(&old, &new)
            };
            env_set(env, name, v);
        }
    }
}

/// Abstract value of a freshly declared global accumulator with no
/// explicit initializer. Only types whose *read* value is determined
/// get a precise default.
fn type_default(ty: &AccumType) -> AVal {
    match ty {
        AccumType::Sum(ValueType::Int) => Int(0, 0),
        AccumType::Sum(ValueType::Double) => Dbl(0.0),
        AccumType::Sum(ValueType::Str) => Str(String::new()),
        AccumType::Or => bool_of(false),
        AccumType::And => bool_of(true),
        _ => Top,
    }
}

#[cfg(test)]
mod tests {
    use super::super::{lint_query_and_facts, Ctx};
    use super::*;
    use crate::ast::Query;
    use crate::parser::parse_query;
    use crate::semantics::PathSemantics;
    use accum::UserAccumRegistry;

    fn facts_of(q: &Query) -> (QueryFacts, Vec<Diagnostic>) {
        let registry = UserAccumRegistry::new();
        let cx = Ctx::build(q, PathSemantics::AllShortestPaths, &registry);
        let mut diags = Vec::new();
        let facts = run(&cx, &mut diags);
        (facts, diags)
    }

    #[test]
    fn interval_arithmetic_saturates_to_top_on_overflow() {
        assert_eq!(arith(BinOp::Add, &Int(1, 2), &Int(10, 20)), Int(11, 22));
        assert_eq!(arith(BinOp::Add, &Int(i64::MAX, i64::MAX), &Int(1, 1)), Top);
        assert_eq!(arith(BinOp::Mul, &Int(-3, 2), &Int(4, 5)), Int(-15, 10));
        assert_eq!(arith(BinOp::Sub, &Int(0, 10), &Int(2, 3)), Int(-3, 8));
    }

    #[test]
    fn kleene_booleans() {
        let t = bool_of(true);
        let f = bool_of(false);
        let u = unknown_bool();
        assert_eq!(binary(BinOp::And, &f, &u), f);
        assert_eq!(binary(BinOp::And, &t, &u), u);
        assert_eq!(binary(BinOp::Or, &t, &u), t);
        assert_eq!(binary(BinOp::Or, &f, &u), u);
    }

    #[test]
    fn comparisons_prove_disjoint_intervals() {
        assert_eq!(compare(BinOp::Lt, &Int(1, 3), &Int(5, 9)), bool_of(true));
        assert_eq!(compare(BinOp::Lt, &Int(5, 9), &Int(1, 3)), bool_of(false));
        assert_eq!(compare(BinOp::Eq, &Int(2, 2), &Int(2, 2)), bool_of(true));
        assert_eq!(compare(BinOp::Eq, &Int(1, 3), &Int(2, 4)), unknown_bool());
    }

    #[test]
    fn while_bound_proven_with_constant_limit() {
        let q = parse_query(
            "CREATE QUERY f () FOR GRAPH g {
               SumAccum<int> @@n;
               WHILE @@n < 100 LIMIT 7 DO PRINT @@n; END;
             }",
        )
        .unwrap();
        let (facts, diags) = facts_of(&q);
        assert_eq!(facts.loops.len(), 1);
        assert_eq!(facts.loops[0].bound, LoopBound::Bounded(7));
        assert_eq!(facts.loops[0].min_iters, 7);
        assert_eq!(facts.min_while_iters, 7);
        assert!(!diags.iter().any(|d| d.code == "D002"));
    }

    #[test]
    fn nonterminating_while_is_d002() {
        let q = parse_query(
            "CREATE QUERY f () FOR GRAPH g {
               SumAccum<int> @@n;
               WHILE @@n < 100 DO PRINT @@n; END;
             }",
        )
        .unwrap();
        let (facts, diags) = facts_of(&q);
        assert_eq!(facts.loops[0].bound, LoopBound::Infinite);
        assert_eq!(facts.min_while_iters, u64::MAX);
        assert!(diags.iter().any(|d| d.code == "D002"));
    }

    #[test]
    fn accumulator_write_in_body_defeats_d002() {
        let q = parse_query(
            "CREATE QUERY f () FOR GRAPH g {
               SumAccum<int> @@n;
               WHILE @@n < 100 DO @@n += 1; END;
               PRINT @@n;
             }",
        )
        .unwrap();
        let (facts, diags) = facts_of(&q);
        assert_eq!(facts.loops[0].bound, LoopBound::Unknown);
        assert!(!diags.iter().any(|d| d.code == "D002"));
    }

    #[test]
    fn or_accum_flag_loop_is_not_d002() {
        // The WCC shape: a flag set TRUE before the loop and re-derived
        // inside it; the combine widens the flag to unknown.
        let q = parse_query(
            "CREATE QUERY f () FOR GRAPH g {
               OrAccum @@changed;
               @@changed = true;
               WHILE @@changed DO
                 @@changed = false;
                 S = SELECT v FROM Page:v ACCUM @@changed += true;
                 PRINT 1;
               END;
             }",
        )
        .unwrap();
        let (_, diags) = facts_of(&q);
        assert!(!diags.iter().any(|d| d.code == "D002"), "{diags:?}");
    }

    #[test]
    fn proven_false_where_is_d001_beyond_literals() {
        let q = parse_query(
            "CREATE QUERY f () FOR GRAPH g {
               SumAccum<int> @@k;
               @@k = 3;
               S = SELECT v FROM Page:v WHERE @@k > 5;
               PRINT S;
             }",
        )
        .unwrap();
        let (facts, diags) = facts_of(&q);
        assert_eq!(facts.blocks[0].where_const, Some(false));
        assert!(diags.iter().any(|d| d.code == "D001"));
    }

    #[test]
    fn literal_false_where_is_left_to_h003() {
        let q = parse_query(
            "CREATE QUERY f () FOR GRAPH g {
               S = SELECT v FROM Page:v WHERE 1 == 2;
               PRINT S;
             }",
        )
        .unwrap();
        let (facts, diags) = facts_of(&q);
        assert_eq!(facts.blocks[0].where_const, Some(false));
        assert!(!diags.iter().any(|d| d.code == "D001"));
    }

    #[test]
    fn post_accum_assign_gate_is_proven() {
        // The WCC/SSSP Init shape: `v.@cc = v.id()` — a per-vertex
        // assign the syntactic gate rejects (no combine) but the proven
        // gate admits.
        let q = parse_query(
            "CREATE QUERY f () FOR GRAPH g {
               MinAccum<int> @cc;
               S = SELECT v FROM Page:v POST-ACCUM v.@cc = v.id();
               PRINT S;
             }",
        )
        .unwrap();
        let (facts, _) = facts_of(&q);
        assert!(facts.blocks[0].post_accum_parallel, "{:?}", facts.blocks[0].post_accum_reason);
    }

    #[test]
    fn post_accum_live_read_of_target_fails_gate() {
        let q = parse_query(
            "CREATE QUERY f () FOR GRAPH g {
               SumAccum<double> @score;
               S = SELECT v FROM Page:v POST-ACCUM v.@score = 1.0 + v.@score;
               PRINT S;
             }",
        )
        .unwrap();
        let (facts, _) = facts_of(&q);
        assert!(!facts.blocks[0].post_accum_parallel);
    }

    #[test]
    fn accum_constant_assign_gate_is_proven_but_mixing_fails() {
        let q = parse_query(
            "CREATE QUERY f () FOR GRAPH g {
               SumAccum<int> @cnt;
               S = SELECT t FROM Page:s -(Link>)- Page:t ACCUM t.@cnt = 1;
               PRINT S;
             }",
        )
        .unwrap();
        let (facts, _) = facts_of(&q);
        assert!(facts.blocks[0].accum_parallel, "{:?}", facts.blocks[0].accum_reason);
        assert_eq!(facts.blocks[0].accum_row_invariant, vec![true]);

        let q = parse_query(
            "CREATE QUERY f () FOR GRAPH g {
               SumAccum<int> @cnt;
               S = SELECT t FROM Page:s -(Link>)- Page:t ACCUM t.@cnt = 1, t.@cnt += 1;
               PRINT S;
             }",
        )
        .unwrap();
        let (facts, _) = facts_of(&q);
        assert!(!facts.blocks[0].accum_parallel);
        assert!(facts.blocks[0].accum_reason.as_deref().unwrap().contains("mixes"));
    }

    #[test]
    fn accum_row_dependent_assign_fails_gate() {
        let q = parse_query(
            "CREATE QUERY f () FOR GRAPH g {
               SumAccum<int> @cnt;
               S = SELECT t FROM Page:s -(Link>)- Page:t ACCUM t.@cnt = s.rank;
               PRINT S;
             }",
        )
        .unwrap();
        let (facts, _) = facts_of(&q);
        assert!(!facts.blocks[0].accum_parallel);
        assert_eq!(facts.blocks[0].accum_row_invariant, vec![false]);
    }

    #[test]
    fn d004_fires_on_list_combine_in_accum() {
        let q = parse_query(
            "CREATE QUERY f () FOR GRAPH g {
               ListAccum<int> @@xs;
               S = SELECT t FROM Page:s -(Link>)- Page:t ACCUM @@xs += 1;
               PRINT @@xs;
             }",
        )
        .unwrap();
        let (_, diags) = facts_of(&q);
        assert!(diags.iter().any(|d| d.code == "D004"));
    }

    #[test]
    fn d004_silent_on_order_invariant_combines() {
        let q = parse_query(
            "CREATE QUERY f () FOR GRAPH g {
               SumAccum<double> @@x;
               S = SELECT t FROM Page:s -(Link>)- Page:t ACCUM @@x += 0.5;
               PRINT @@x;
             }",
        )
        .unwrap();
        let (_, diags) = facts_of(&q);
        assert!(!diags.iter().any(|d| d.code == "D004"));
    }

    #[test]
    fn facts_json_is_stable() {
        let q = parse_query(
            "CREATE QUERY f () FOR GRAPH g {
               SumAccum<int> @@n;
               S = SELECT v FROM Page:v WHERE @@n < 5 ACCUM @@n += 1;
               WHILE true LIMIT 2 DO PRINT 1; END;
             }",
        )
        .unwrap();
        let (_, facts) = lint_query_and_facts(&q, PathSemantics::AllShortestPaths, &UserAccumRegistry::new());
        let json = facts.render_json();
        assert!(json.starts_with("{\"min_while_iters\":2,\"blocks\":["), "{json}");
        assert!(json.contains("\"loops\":[{\"line\":"), "{json}");
    }

    #[test]
    fn guaranteed_budget_trip_is_d003() {
        use crate::governor::Budget;
        let q = parse_query(
            "CREATE QUERY f () FOR GRAPH g {
               SumAccum<int> @@n;
               WHILE true LIMIT 100 DO @@n += 1; END;
               PRINT @@n;
             }",
        )
        .unwrap();
        let (facts, _) = facts_of(&q);
        assert_eq!(facts.min_while_iters, 100);
        let tight = Budget::default().with_max_while_iters(10);
        let ds = super::super::facts::budget_findings(&facts, &tight);
        assert!(ds.iter().any(|d| d.code == "D003"), "{ds:?}");
        let roomy = Budget::default().with_max_while_iters(1000);
        assert!(super::super::facts::budget_findings(&facts, &roomy).is_empty());
    }
}
