//! Pass 4 — hygiene (`H001`–`H004`): dead vertex sets, shadowed names,
//! statically-false filters, and WHILE loops whose condition can never
//! change.

use super::{query_exprs, Ctx, Diagnostic};
use crate::ast::{
    AccStmt, BinOp, Expr, FromItem, PrintItem, SelectBlock, Span, Stmt, UnOp, VSetSource,
};

pub(super) fn run(cx: &Ctx, out: &mut Vec<Diagnostic>) {
    unused_vsets(cx, out);
    shadowed_names(cx, out);
    for bc in &cx.blocks {
        if let Some(w) = &bc.block.where_clause {
            if const_bool(w) == Some(false) {
                out.push(Diagnostic::warn(
                    "H003",
                    bc.block.span,
                    "WHERE condition is constant false: the block selects nothing",
                ));
            }
        }
    }
    while_invariants(&cx.q.body, out);
}

// ---- H001: assigned-but-never-used vertex sets --------------------------

fn unused_vsets(cx: &Ctx, out: &mut Vec<Diagnostic>) {
    // Every name a vertex set can be consumed through.
    let mut used: Vec<String> = Vec::new();
    {
        let mut structural: Vec<&str> = Vec::new();
        collect_vset_uses(&cx.q.body, &mut structural);
        used.extend(structural.into_iter().map(str::to_string));
    }
    query_exprs(cx.q, &mut |e, _| {
        e.walk(&mut |e| {
            if let Expr::Ident(name) = e {
                used.push(name.clone());
            }
        });
    });
    let mut assigns: Vec<(&str, Span, bool)> = Vec::new();
    collect_vset_assigns(&cx.q.body, &mut assigns);
    let mut flagged: Vec<&str> = Vec::new();
    for (name, span, pure) in assigns {
        if pure && !used.iter().any(|u| *u == name) && !flagged.contains(&name) {
            flagged.push(name);
            out.push(Diagnostic::warn(
                "H001",
                span,
                format!(
                    "vertex set `{name}` is assigned but never used, and its defining block \
                     has no side effects (no ACCUM, POST_ACCUM, or INTO)"
                ),
            ));
        }
    }
}

fn collect_vset_uses<'a>(stmts: &'a [Stmt], used: &mut Vec<&'a str>) {
    let block_uses = |b: &'a SelectBlock, used: &mut Vec<&'a str>| {
        for item in &b.from {
            match item {
                FromItem::Pattern { start, hops, .. } => {
                    used.push(&start.name);
                    for h in hops {
                        used.push(&h.to.name);
                    }
                }
                FromItem::Table { name, .. } => used.push(name),
            }
        }
    };
    for stmt in stmts {
        match stmt {
            Stmt::VSetAssign { source, .. } => match source {
                VSetSource::Select(b) => block_uses(b, used),
                VSetSource::Literal(entries) => used.extend(entries.iter().map(|s| s.as_str())),
                VSetSource::SetOp { lhs, rhs, .. } => {
                    used.push(lhs);
                    used.push(rhs);
                }
            },
            Stmt::Select(b) => block_uses(b, used),
            Stmt::Print(items) => {
                for item in items {
                    if let PrintItem::VSetProjection { set, .. } = item {
                        used.push(set);
                    }
                }
            }
            Stmt::While { body, .. } | Stmt::Foreach { body, .. } => {
                collect_vset_uses(body, used)
            }
            Stmt::If { then_branch, else_branch, .. } => {
                collect_vset_uses(then_branch, used);
                collect_vset_uses(else_branch, used);
            }
            _ => {}
        }
    }
}

fn collect_vset_assigns<'a>(stmts: &'a [Stmt], out: &mut Vec<(&'a str, Span, bool)>) {
    for stmt in stmts {
        match stmt {
            Stmt::VSetAssign { name, source, span } => {
                let pure = match source {
                    VSetSource::Literal(_) | VSetSource::SetOp { .. } => true,
                    VSetSource::Select(b) => {
                        b.accum.is_empty()
                            && b.post_accum.is_empty()
                            && b.outputs.iter().all(|o| o.into.is_none())
                    }
                };
                out.push((name, *span, pure));
            }
            Stmt::While { body, .. } | Stmt::Foreach { body, .. } => {
                collect_vset_assigns(body, out)
            }
            Stmt::If { then_branch, else_branch, .. } => {
                collect_vset_assigns(then_branch, out);
                collect_vset_assigns(else_branch, out);
            }
            _ => {}
        }
    }
}

// ---- H002: shadowed names ----------------------------------------------
//
// Deliberately narrow. A pattern binding variable shadowing a *query
// parameter* is idiomatic GSQL (`Person:p` with parameter `p` re-anchors
// the pattern at the parameter) and is NOT flagged. What is flagged:
// binding variables that shadow a vertex-set variable, FOREACH variables
// that shadow parameters or vertex sets, and ACCUM locals that shadow a
// binding variable of their own block.

fn shadowed_names(cx: &Ctx, out: &mut Vec<Diagnostic>) {
    let mut vset_names: Vec<&str> = Vec::new();
    let mut assigns = Vec::new();
    collect_vset_assigns(&cx.q.body, &mut assigns);
    for (name, _, _) in &assigns {
        if !vset_names.contains(name) {
            vset_names.push(name);
        }
    }

    for bc in &cx.blocks {
        let mut binding_vars: Vec<&str> = Vec::new();
        for item in &bc.block.from {
            match item {
                FromItem::Pattern { start, hops, .. } => {
                    if let Some(v) = &start.var {
                        binding_vars.push(v);
                    }
                    for h in hops {
                        if let Some(v) = &h.to.var {
                            binding_vars.push(v);
                        }
                        if let Some(v) = &h.edge_var {
                            binding_vars.push(v);
                        }
                    }
                }
                FromItem::Table { alias, .. } => binding_vars.push(alias),
            }
        }
        for v in &binding_vars {
            if vset_names.contains(v) {
                out.push(Diagnostic::warn(
                    "H002",
                    bc.block.span,
                    format!(
                        "binding variable `{v}` shadows the vertex set `{v}`; inside this \
                         block `{v}` refers to one bound vertex, not the set"
                    ),
                ));
            }
        }
        for s in bc.block.accum.iter().chain(&bc.block.post_accum) {
            if let AccStmt::LocalDecl { name, .. } = s {
                if binding_vars.contains(&name.as_str()) {
                    out.push(Diagnostic::warn(
                        "H002",
                        bc.block.span,
                        format!(
                            "ACCUM local `{name}` shadows the binding variable `{name}` of \
                             this block"
                        ),
                    ));
                }
            }
        }
    }

    foreach_shadows(cx, &cx.q.body, &vset_names, out);
}

fn foreach_shadows(cx: &Ctx, stmts: &[Stmt], vsets: &[&str], out: &mut Vec<Diagnostic>) {
    for stmt in stmts {
        match stmt {
            Stmt::Foreach { var, body, .. } => {
                let what = if cx.q.params.iter().any(|p| p.name == *var) {
                    Some("query parameter")
                } else if vsets.contains(&var.as_str()) {
                    Some("vertex set")
                } else {
                    None
                };
                if let Some(what) = what {
                    out.push(Diagnostic::warn(
                        "H002",
                        Span::default(),
                        format!("FOREACH variable `{var}` shadows the {what} `{var}`"),
                    ));
                }
                foreach_shadows(cx, body, vsets, out);
            }
            Stmt::While { body, .. } => foreach_shadows(cx, body, vsets, out),
            Stmt::If { then_branch, else_branch, .. } => {
                foreach_shadows(cx, then_branch, vsets, out);
                foreach_shadows(cx, else_branch, vsets, out);
            }
            _ => {}
        }
    }
}

// ---- H004: loop-invariant WHILE conditions ------------------------------

fn while_invariants(stmts: &[Stmt], out: &mut Vec<Diagnostic>) {
    for stmt in stmts {
        match stmt {
            Stmt::While { cond, limit, body, span } => {
                if limit.is_none() {
                    let mut deps: Vec<String> = Vec::new();
                    cond.walk(&mut |e| match e {
                        Expr::Ident(n) => deps.push(n.clone()),
                        Expr::GAcc(n) => deps.push(format!("@@{n}")),
                        Expr::VAcc { name, .. } => deps.push(format!("@{name}")),
                        _ => {}
                    });
                    let mut writes: Vec<String> = Vec::new();
                    collect_cond_writes(body, &mut writes);
                    let changing = deps.iter().any(|d| writes.contains(d));
                    if !changing {
                        let msg = if deps.is_empty() {
                            "WHILE condition is constant and the loop has no LIMIT; if the \
                             condition holds once it holds forever"
                                .to_string()
                        } else {
                            format!(
                                "WHILE condition depends only on [{}], none of which the \
                                 loop body updates, and the loop has no LIMIT",
                                deps.join(", ")
                            )
                        };
                        out.push(
                            Diagnostic::warn("H004", *span, msg)
                                .with_suggestion("add `LIMIT <n>` to bound the iteration"),
                        );
                    }
                }
                while_invariants(body, out);
            }
            Stmt::Foreach { body, .. } => while_invariants(body, out),
            Stmt::If { then_branch, else_branch, .. } => {
                while_invariants(then_branch, out);
                while_invariants(else_branch, out);
            }
            _ => {}
        }
    }
}

/// Names a WHILE condition could observe a change through: vertex sets
/// assigned, global accumulators assigned/combined, vertex accumulators
/// written in any nested block.
fn collect_cond_writes(stmts: &[Stmt], out: &mut Vec<String>) {
    let block_writes = |b: &SelectBlock, out: &mut Vec<String>| {
        for s in b.accum.iter().chain(&b.post_accum) {
            match s {
                AccStmt::VAcc { name, .. } => out.push(format!("@{name}")),
                AccStmt::GAcc { name, .. } => out.push(format!("@@{name}")),
                AccStmt::LocalDecl { .. } => {}
            }
        }
    };
    for stmt in stmts {
        match stmt {
            Stmt::VSetAssign { name, source, .. } => {
                out.push(name.clone());
                if let VSetSource::Select(b) = source {
                    block_writes(b, out);
                }
            }
            Stmt::Select(b) => block_writes(b, out),
            Stmt::GAccAssign { name, .. } => out.push(format!("@@{name}")),
            Stmt::While { body, .. } | Stmt::Foreach { body, .. } => {
                collect_cond_writes(body, out)
            }
            Stmt::If { then_branch, else_branch, .. } => {
                collect_cond_writes(then_branch, out);
                collect_cond_writes(else_branch, out);
            }
            _ => {}
        }
    }
}

// ---- constant folding (H003) --------------------------------------------

/// Folds an expression to a boolean when every leaf is a literal.
pub(super) fn const_bool(e: &Expr) -> Option<bool> {
    match const_value(e)? {
        Const::Bool(b) => Some(b),
        _ => None,
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Const {
    Int(i64),
    Double(f64),
    Bool(bool),
}

fn const_value(e: &Expr) -> Option<Const> {
    Some(match e {
        Expr::Int(v) => Const::Int(*v),
        Expr::Double(v) => Const::Double(*v),
        Expr::Bool(b) => Const::Bool(*b),
        Expr::Unary { op: UnOp::Not, expr } => match const_value(expr)? {
            Const::Bool(b) => Const::Bool(!b),
            _ => return None,
        },
        Expr::Unary { op: UnOp::Neg, expr } => match const_value(expr)? {
            Const::Int(v) => Const::Int(v.checked_neg()?),
            Const::Double(v) => Const::Double(-v),
            _ => return None,
        },
        Expr::Binary { op, lhs, rhs } => {
            // AND/OR short-circuit on one known side.
            if matches!(op, BinOp::And | BinOp::Or) {
                let l = const_value(lhs);
                let r = const_value(rhs);
                return match (op, l, r) {
                    (BinOp::And, Some(Const::Bool(false)), _)
                    | (BinOp::And, _, Some(Const::Bool(false))) => Some(Const::Bool(false)),
                    (BinOp::Or, Some(Const::Bool(true)), _)
                    | (BinOp::Or, _, Some(Const::Bool(true))) => Some(Const::Bool(true)),
                    (BinOp::And, Some(Const::Bool(a)), Some(Const::Bool(b))) => {
                        Some(Const::Bool(a && b))
                    }
                    (BinOp::Or, Some(Const::Bool(a)), Some(Const::Bool(b))) => {
                        Some(Const::Bool(a || b))
                    }
                    _ => None,
                };
            }
            let (l, r) = (const_value(lhs)?, const_value(rhs)?);
            let as_f = |c: Const| match c {
                Const::Int(v) => Some(v as f64),
                Const::Double(v) => Some(v),
                Const::Bool(_) => None,
            };
            match op {
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let (a, b) = (as_f(l)?, as_f(r)?);
                    Const::Bool(match op {
                        BinOp::Eq => a == b,
                        BinOp::Ne => a != b,
                        BinOp::Lt => a < b,
                        BinOp::Le => a <= b,
                        BinOp::Gt => a > b,
                        _ => a >= b,
                    })
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul => match (l, r) {
                    (Const::Int(a), Const::Int(b)) => Const::Int(match op {
                        BinOp::Add => a.checked_add(b)?,
                        BinOp::Sub => a.checked_sub(b)?,
                        _ => a.checked_mul(b)?,
                    }),
                    _ => {
                        let (a, b) = (as_f(l)?, as_f(r)?);
                        Const::Double(match op {
                            BinOp::Add => a + b,
                            BinOp::Sub => a - b,
                            _ => a * b,
                        })
                    }
                },
                _ => return None,
            }
        }
        _ => return None,
    })
}
