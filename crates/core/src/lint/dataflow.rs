//! Pass 1 — accumulator dataflow (`A001`–`A006`).
//!
//! ACCUM executes under snapshot Map/Reduce semantics (paper Section 4):
//! the Map phase emits messages against a frozen snapshot, the Reduce
//! phase folds them with the accumulator's combiner. That model makes
//! `+=` order-insensitive — and makes plain `=` writes from multiple
//! binding rows *order-dependent*, which is the central hazard this
//! pass hunts.

use super::facts::QueryFacts;
use super::{query_exprs, unique_binding_var, Ctx, Diagnostic};
use crate::ast::{AccStmt, Expr, Span, Stmt};
use pgraph::fxhash::FxHashMap;

pub(super) fn run(cx: &Ctx, facts: &QueryFacts, out: &mut Vec<Diagnostic>) {
    // ---- read/write sets over the whole query --------------------------
    let mut vacc_reads: FxHashMap<String, Span> = FxHashMap::default();
    let mut gacc_reads: FxHashMap<String, Span> = FxHashMap::default();
    query_exprs(cx.q, &mut |e, span| {
        e.walk(&mut |e| match e {
            Expr::VAcc { name, .. } => {
                vacc_reads.entry(name.clone()).or_insert(span);
            }
            Expr::GAcc(name) => {
                gacc_reads.entry(name.clone()).or_insert(span);
            }
            _ => {}
        });
    });
    let mut vacc_writes: FxHashMap<String, Span> = FxHashMap::default();
    let mut gacc_writes: FxHashMap<String, Span> = FxHashMap::default();
    // Statement-level assignment can only target global accumulators;
    // vertex-accumulator writes happen inside blocks (folded in below).
    collect_writes(&cx.q.body, Span::default(), &mut gacc_writes);
    for bc in &cx.blocks {
        for s in bc.block.accum.iter().chain(&bc.block.post_accum) {
            match s {
                AccStmt::VAcc { name, .. } => {
                    vacc_writes.entry(name.clone()).or_insert(bc.block.span);
                }
                AccStmt::GAcc { name, .. } => {
                    gacc_writes.entry(name.clone()).or_insert(bc.block.span);
                }
                AccStmt::LocalDecl { .. } => {}
            }
        }
    }

    // ---- A001 written-never-read / declared-never-used ------------------
    // ---- A002 read-never-written (and no initializer) -------------------
    for (global, decls, reads, writes) in [
        (false, &cx.vaccs, &vacc_reads, &vacc_writes),
        (true, &cx.gaccs, &gacc_reads, &gacc_writes),
    ] {
        let sigil = if global { "@@" } else { "@" };
        for (name, info) in decls.iter() {
            let read = reads.contains_key(*name);
            let written = writes.contains_key(*name);
            if !read {
                let msg = if written {
                    format!(
                        "accumulator `{sigil}{name}` is written but its value is never read; \
                         the aggregation result is discarded"
                    )
                } else {
                    format!("accumulator `{sigil}{name}` is declared but never used")
                };
                out.push(Diagnostic::warn("A001", info.span, msg));
            } else if !written && info.init.is_none() {
                out.push(Diagnostic::warn(
                    "A002",
                    info.span,
                    format!(
                        "accumulator `{sigil}{name}` is read but never written and has no \
                         initializer; every read yields the type's default value"
                    ),
                ));
            }
        }
    }

    // ---- A006 undeclared accumulator references -------------------------
    // One report per name, whether the reference is a read or a write.
    let mut refs: Vec<(bool, &str, Span)> = Vec::new();
    for (name, span) in vacc_reads.iter().chain(&vacc_writes) {
        if !cx.vaccs.contains_key(name.as_str()) {
            refs.push((false, name, *span));
        }
    }
    for (name, span) in gacc_reads.iter().chain(&gacc_writes) {
        if !cx.gaccs.contains_key(name.as_str()) {
            refs.push((true, name, *span));
        }
    }
    refs.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    refs.dedup_by(|a, b| (a.0, a.1) == (b.0, b.1));
    for (global, name, span) in refs {
        let sigil = if global { "@@" } else { "@" };
        out.push(Diagnostic::error(
            "A006",
            span,
            format!("reference to undeclared accumulator `{sigil}{name}`"),
        ));
    }

    // ---- per-block rules A003/A004/A005 ---------------------------------
    for bc in &cx.blocks {
        let safe_var = unique_binding_var(bc.block);
        // Pass 6 exemption: an `=` write whose RHS is proven
        // row-invariant assigns the same value from every binding row,
        // so the "arbitrary last writer" is no hazard — the proven
        // parallel gate even folds such clauses in parallel.
        let row_invariant = |idx: usize| {
            facts
                .block_facts(bc.block)
                .is_some_and(|f| f.accum_row_invariant.get(idx).copied().unwrap_or(false))
        };
        for (idx, s) in bc.block.accum.iter().enumerate() {
            match s {
                AccStmt::VAcc { var, name, combine: false, .. }
                    if safe_var != Some(var.as_str()) && !row_invariant(idx) =>
                {
                    out.push(
                        Diagnostic::error(
                            "A003",
                            bc.block.span,
                            format!(
                                "`{var}.@{name} = ...` inside ACCUM: the Map phase delivers \
                                 one message per binding row, and `{var}` can be reached by \
                                 multiple rows, so plain assignment keeps an arbitrary \
                                 last-writer value (order-dependent under snapshot \
                                 Map/Reduce, paper Section 4)"
                            ),
                        )
                        .with_suggestion(format!(
                            "combine with `{var}.@{name} += ...` (deterministic reduce), or \
                             assign in POST_ACCUM where each vertex is visited exactly once"
                        )),
                    );
                }
                AccStmt::GAcc { name, combine: false, .. } if !row_invariant(idx) => {
                    out.push(
                        Diagnostic::warn(
                            "A004",
                            bc.block.span,
                            format!(
                                "`@@{name} = ...` inside ACCUM races under the parallel Map \
                                 phase: concurrent binding rows overwrite each other in \
                                 arbitrary order"
                            ),
                        )
                        .with_suggestion(format!(
                            "combine with `@@{name} += ...`, or assign at statement level \
                             outside the SELECT block"
                        )),
                    );
                }
                _ => {}
            }
        }
        // A005: a `v.@a'` snapshot read in a block that never writes @a —
        // the snapshot equals the live value, so the apostrophe has no
        // effect and likely signals a misunderstanding.
        let mut written_here: Vec<&str> = Vec::new();
        for s in bc.block.accum.iter().chain(&bc.block.post_accum) {
            if let AccStmt::VAcc { name, .. } = s {
                written_here.push(name);
            }
        }
        let mut seen_prev: Vec<String> = Vec::new();
        super::block_exprs(bc.block, &mut |e, span| {
            e.walk(&mut |e| {
                if let Expr::VAcc { name, prev: true, .. } = e {
                    if !written_here.iter().any(|w| w == name)
                        && !seen_prev.iter().any(|s| s == name)
                    {
                        seen_prev.push(name.clone());
                        out.push(Diagnostic::info(
                            "A005",
                            span,
                            format!(
                                "snapshot read `@{name}'` in a block that never writes \
                                 `@{name}`: the pre-block snapshot equals the live value, \
                                 so the apostrophe has no effect"
                            ),
                        ));
                    }
                }
            });
        });
    }
}

fn collect_writes(stmts: &[Stmt], outer: Span, gacc: &mut FxHashMap<String, Span>) {
    for stmt in stmts {
        match stmt {
            Stmt::GAccAssign { name, .. } => {
                gacc.entry(name.clone()).or_insert(outer);
            }
            Stmt::While { body, span, .. } => collect_writes(body, *span, gacc),
            Stmt::Foreach { body, .. } => collect_writes(body, outer, gacc),
            Stmt::If { then_branch, else_branch, .. } => {
                collect_writes(then_branch, outer, gacc);
                collect_writes(else_branch, outer, gacc);
            }
            _ => {}
        }
    }
}
