//! `gsql check` — a multi-pass static analyzer for GSQL queries.
//!
//! The paper's aggregation story rests on invariants the grammar cannot
//! express: ACCUM runs under snapshot Map/Reduce semantics, so its
//! writes must be commutative-associative combines (Sections 3–4); and
//! all-shortest-paths legality is what lets the engine *count* paths
//! instead of enumerating them (Theorems 6.1/7.1). This module checks
//! those invariants — plus ordinary hygiene — *before* execution and
//! reports structured [`Diagnostic`]s with stable rule codes.
//!
//! Six passes (catalog with examples in `docs/LINTS.md`):
//!
//! | pass | codes | checks |
//! |------|-------|--------|
//! | dataflow | `A001`–`A006` | accumulator read/write dataflow: unread/unwritten accumulators, order-dependent `=` writes in ACCUM, global assignment races, no-effect snapshot reads, undeclared names |
//! | typecheck | `T001`–`T003` | combine operand vs. element type, lossy numeric literals, Min/Max over unordered values |
//! | tractability | `P001`–`P004` | Kleene patterns under enumerative semantics (Theorem 7.1), edge variables inside Kleene scope, multiplicity-sensitive accumulators under counting, per-hop fan-out estimates |
//! | hygiene | `H001`–`H004` | unused vertex sets, shadowed names, constant-false WHERE, loop-invariant WHILE conditions |
//! | mutation | `M001` | DELETE statements with no WHERE clause (full-wipe hazard) |
//! | absint | `D001`–`D004` | abstract interpretation (pass 6): proven-false WHERE intervals, provably non-terminating WHILE, guaranteed budget trips, order-dependent ACCUM combines — and the [`QueryFacts`] proofs the planner/executor/server consume |
//!
//! Entry points: [`lint_query`] (default accumulator registry) and
//! [`lint_query_with`] (engine-supplied registry, used by
//! [`crate::Engine::check`]). Severity semantics: `Error` findings are
//! queries the service refuses at prepare time (nondeterministic or
//! intractable), `Warn` are likely mistakes, `Info` is advisory.

mod absint;
mod dataflow;
mod diag;
pub mod facts;
mod hygiene;
mod mutation;
mod tractability;
mod typecheck;

pub use diag::{
    caret_snippet, has_errors, render_error_snippet, render_json, render_text, Diagnostic,
    Severity,
};
pub use facts::{budget_findings, BlockFacts, LoopBound, LoopFacts, QueryFacts};

use crate::ast::{
    AccStmt, AccumDecl, Expr, FromItem, PrintItem, Query, SelectBlock, Span, Stmt, VSetSource,
};
use crate::semantics::PathSemantics;
use accum::{AccumType, UserAccumRegistry};
use pgraph::fxhash::FxHashMap;

/// Lints a parsed query under `ambient` path semantics with an empty
/// user-accumulator registry.
///
/// `ambient` is the semantics the engine would start the query with
/// (`USE SEMANTICS` statements inside the query override it from that
/// point on, exactly as execution does).
pub fn lint_query(q: &Query, ambient: PathSemantics) -> Vec<Diagnostic> {
    lint_query_with(q, ambient, &UserAccumRegistry::new())
}

/// Lints a parsed query with the given user-accumulator registry (the
/// registry decides order-invariance/multiplicity properties of
/// [`AccumType::User`] accumulators, rule `P003`).
pub fn lint_query_with(
    q: &Query,
    ambient: PathSemantics,
    registry: &UserAccumRegistry,
) -> Vec<Diagnostic> {
    lint_query_and_facts(q, ambient, registry).0
}

/// Lints a parsed query and returns the diagnostics together with the
/// abstract-interpretation [`QueryFacts`] (pass 6) — the form consumed
/// by the shell's `CHECK`, `POST /lint` and the server admission gate.
pub fn lint_query_and_facts(
    q: &Query,
    ambient: PathSemantics,
    registry: &UserAccumRegistry,
) -> (Vec<Diagnostic>, QueryFacts) {
    let cx = Ctx::build(q, ambient, registry);
    let mut diags = Vec::new();
    // Pass 6 runs first: its facts feed the dataflow pass (proven
    // row-invariant `=` writes are exempt from the A003/A004 races).
    let facts = absint::run(&cx, &mut diags);
    dataflow::run(&cx, &facts, &mut diags);
    typecheck::run(&cx, &mut diags);
    tractability::run(&cx, &mut diags);
    hygiene::run(&cx, &mut diags);
    mutation::run(&q.body, &mut diags);
    // Deterministic order: by source position, then rule code.
    diags.sort_by(|a, b| {
        (a.span.line, a.span.col, a.code).cmp(&(b.span.line, b.span.col, b.code))
    });
    (diags, facts)
}

/// Computes [`QueryFacts`] alone (no diagnostics) — the planner's entry
/// point.
pub fn compute_facts(
    q: &Query,
    ambient: PathSemantics,
    registry: &UserAccumRegistry,
) -> QueryFacts {
    let cx = Ctx::build(q, ambient, registry);
    let mut diags = Vec::new();
    absint::run(&cx, &mut diags)
}

/// One declared accumulator.
pub(crate) struct AccInfo<'a> {
    pub ty: &'a AccumType,
    pub init: Option<&'a Expr>,
    pub span: Span,
}

/// One SELECT block together with the path semantics in force when it
/// executes and whether that semantics was set by an inline
/// `USE SEMANTICS` statement (vs. the engine's ambient default).
pub(crate) struct BlockCtx<'a> {
    pub block: &'a SelectBlock,
    pub semantics: PathSemantics,
    pub inline_semantics: bool,
}

/// Shared analysis context built once per lint run.
pub(crate) struct Ctx<'a> {
    pub q: &'a Query,
    pub registry: &'a UserAccumRegistry,
    pub vaccs: FxHashMap<&'a str, AccInfo<'a>>,
    pub gaccs: FxHashMap<&'a str, AccInfo<'a>>,
    pub blocks: Vec<BlockCtx<'a>>,
}

impl<'a> Ctx<'a> {
    fn build(q: &'a Query, ambient: PathSemantics, registry: &'a UserAccumRegistry) -> Ctx<'a> {
        let mut cx = Ctx {
            q,
            registry,
            vaccs: FxHashMap::default(),
            gaccs: FxHashMap::default(),
            blocks: Vec::new(),
        };
        let mut sem = (ambient, false);
        cx.collect(&q.body, &mut sem);
        cx
    }

    /// Walks statements in execution order, threading the effective path
    /// semantics the way the executor does (a `USE SEMANTICS` statement
    /// affects everything after it, including loop bodies).
    fn collect(&mut self, stmts: &'a [Stmt], sem: &mut (PathSemantics, bool)) {
        for stmt in stmts {
            match stmt {
                Stmt::AccumDecl { ty, decls } => {
                    for d in decls {
                        let info = AccInfo { ty, init: d.init.as_ref(), span: d.span };
                        if d.global {
                            self.gaccs.insert(&d.name, info);
                        } else {
                            self.vaccs.insert(&d.name, info);
                        }
                    }
                }
                Stmt::UseSemantics(s) => *sem = (*s, true),
                Stmt::VSetAssign { source: VSetSource::Select(b), .. } => {
                    self.push_block(b, sem)
                }
                Stmt::Select(b) => self.push_block(b, sem),
                Stmt::While { body, .. } | Stmt::Foreach { body, .. } => self.collect(body, sem),
                Stmt::If { then_branch, else_branch, .. } => {
                    self.collect(then_branch, sem);
                    self.collect(else_branch, sem);
                }
                _ => {}
            }
        }
    }

    fn push_block(&mut self, b: &'a SelectBlock, sem: &(PathSemantics, bool)) {
        self.blocks.push(BlockCtx { block: b, semantics: sem.0, inline_semantics: sem.1 });
    }
}

/// Per-declarator view of accumulator declarations, in source order.
pub(crate) fn accum_decls(q: &Query) -> impl Iterator<Item = (&AccumType, &AccumDecl)> {
    q.body.iter().filter_map(|s| match s {
        Stmt::AccumDecl { ty, decls } => Some(decls.iter().map(move |d| (ty, d))),
        _ => None,
    })
    .flatten()
}

// ---- expression walkers -------------------------------------------------
//
// The passes share one recursive statement walker that surfaces every
// top-level expression together with the span of the nearest enclosing
// spanned construct (SELECT block, WHILE, vertex-set assignment,
// accumulator declarator). Sub-expressions are reached via `Expr::walk`.

/// Visits every top-level expression of a SELECT block. `f` receives the
/// expression and the block's span.
pub(crate) fn block_exprs(b: &SelectBlock, f: &mut impl FnMut(&Expr, Span)) {
    for frag in &b.outputs {
        for it in &frag.items {
            f(&it.expr, b.span);
        }
    }
    if let Some(w) = &b.where_clause {
        f(w, b.span);
    }
    for s in b.accum.iter().chain(&b.post_accum) {
        acc_stmt_expr(s, b.span, f);
    }
    if let Some(g) = &b.group_by {
        for k in &g.keys {
            f(k, b.span);
        }
    }
    if let Some(h) = &b.having {
        f(h, b.span);
    }
    for o in &b.order_by {
        f(&o.expr, b.span);
    }
    if let Some(l) = &b.limit {
        f(l, b.span);
    }
}

fn acc_stmt_expr(s: &AccStmt, span: Span, f: &mut impl FnMut(&Expr, Span)) {
    match s {
        AccStmt::LocalDecl { expr, .. }
        | AccStmt::VAcc { expr, .. }
        | AccStmt::GAcc { expr, .. } => f(expr, span),
    }
}

/// Visits every top-level expression in the query, threading the nearest
/// enclosing span.
pub(crate) fn query_exprs(q: &Query, f: &mut impl FnMut(&Expr, Span)) {
    stmts_exprs(&q.body, Span::default(), f);
}

fn stmts_exprs(stmts: &[Stmt], outer: Span, f: &mut impl FnMut(&Expr, Span)) {
    for stmt in stmts {
        match stmt {
            Stmt::AccumDecl { decls, .. } => {
                for d in decls {
                    if let Some(init) = &d.init {
                        f(init, d.span);
                    }
                }
            }
            Stmt::TupleTypedef { .. } | Stmt::UseSemantics(_) => {}
            Stmt::VSetAssign { source: VSetSource::Select(b), .. } => block_exprs(b, f),
            Stmt::VSetAssign { .. } => {}
            Stmt::Select(b) => block_exprs(b, f),
            Stmt::GAccAssign { expr, .. } => f(expr, outer),
            Stmt::While { cond, limit, body, span } => {
                f(cond, *span);
                if let Some(l) = limit {
                    f(l, *span);
                }
                stmts_exprs(body, *span, f);
            }
            Stmt::If { cond, then_branch, else_branch } => {
                f(cond, outer);
                stmts_exprs(then_branch, outer, f);
                stmts_exprs(else_branch, outer, f);
            }
            Stmt::Foreach { iterable, body, .. } => {
                f(iterable, outer);
                stmts_exprs(body, outer, f);
            }
            Stmt::Print(items) => {
                for item in items {
                    match item {
                        PrintItem::Expr { expr, .. } => f(expr, outer),
                        PrintItem::VSetProjection { items, .. } => {
                            for it in items {
                                f(&it.expr, outer);
                            }
                        }
                    }
                }
            }
            Stmt::Return(e) => f(e, outer),
            Stmt::InsertVertex { values, span, .. } => {
                for e in values {
                    f(e, *span);
                }
            }
            Stmt::InsertEdge { src, dst, values, span, .. } => {
                f(src, *span);
                f(dst, *span);
                for e in values {
                    f(e, *span);
                }
            }
            Stmt::Update { sets, where_clause, span, .. } => {
                for (_, _, e) in sets {
                    f(e, *span);
                }
                if let Some(w) = where_clause {
                    f(w, *span);
                }
            }
            Stmt::Delete { where_clause, span, .. } => {
                if let Some(w) = where_clause {
                    f(w, *span);
                }
            }
        }
    }
}

/// The single binding variable of a block that is guaranteed to bind each
/// vertex **at most once per Map phase** — only a hopless single-pattern
/// FROM (a pure vertex-set scan) provides that guarantee. Used to decide
/// when `v.@a = e` inside ACCUM is deterministic (rule `A003`).
pub(crate) fn unique_binding_var(b: &SelectBlock) -> Option<&str> {
    match b.from.as_slice() {
        [FromItem::Table { alias, .. }] => Some(alias),
        [FromItem::Pattern { start, hops, .. }] if hops.is_empty() => start.var.as_deref(),
        _ => None,
    }
}
