//! Pass 5 — mutation safety (`M001`): DELETE statements with no WHERE
//! clause.
//!
//! A bare `DELETE FROM T;` is legal and occasionally intended (clearing
//! a staging type before a reload), but far more often it is a missing
//! filter: it tombstones every vertex of the target set *and every
//! incident edge* in one batch. The engine executes it deterministically
//! either way, so this is a warning, not an error.

use super::Diagnostic;
use crate::ast::Stmt;

pub(super) fn run(stmts: &[Stmt], out: &mut Vec<Diagnostic>) {
    for stmt in stmts {
        match stmt {
            Stmt::Delete { target, where_clause: None, span } => {
                out.push(
                    Diagnostic::warn(
                        "M001",
                        *span,
                        format!(
                            "DELETE FROM {} has no WHERE clause: it deletes every vertex in \
                             `{}` and all of their incident edges",
                            target.name, target.name
                        ),
                    )
                    .with_suggestion(format!(
                        "add a WHERE filter, e.g. `DELETE FROM {t}:v WHERE v.attr == ...;`, \
                         if a full wipe is not intended",
                        t = target.name
                    )),
                );
            }
            Stmt::While { body, .. } | Stmt::Foreach { body, .. } => run(body, out),
            Stmt::If { then_branch, else_branch, .. } => {
                run(then_branch, out);
                run(else_branch, out);
            }
            _ => {}
        }
    }
}
