//! Recursive-descent parser for the GSQL subset.

use crate::ast::*;
use crate::error::{Error, Result};
use crate::lexer::{lex, SpannedTok, Tok};
use accum::types::{HeapField, SortDir};
use accum::AccumType;
use pgraph::value::ValueType;
use std::collections::HashMap;

/// Parses a `CREATE QUERY` definition.
pub fn parse_query(src: &str) -> Result<Query> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0, typedefs: HashMap::new() };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

/// How a query text asked to be executed: run it, explain it, or profile it.
///
/// Produced by [`parse_query_with_mode`] when the query text starts with an
/// optional `EXPLAIN` or `PROFILE` prefix keyword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// No prefix — execute the query normally.
    Run,
    /// `EXPLAIN CREATE QUERY ...` — render the logical plan without running.
    Explain,
    /// `PROFILE CREATE QUERY ...` — run the query with per-operator profiling.
    Profile,
    /// `CHECK CREATE QUERY ...` — lint the query without running it.
    Check,
}

/// Parses a `CREATE QUERY` definition that may carry an optional leading
/// `EXPLAIN` or `PROFILE` keyword, returning the requested [`QueryMode`]
/// alongside the parsed query.
///
/// [`parse_query`] remains strict (no prefix allowed) so that prepared-query
/// fingerprints and the plan cache are unaffected.
pub fn parse_query_with_mode(src: &str) -> Result<(QueryMode, Query)> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0, typedefs: HashMap::new() };
    // EXPLAIN/PROFILE/CHECK are deliberately NOT reserved words — `INTO
    // Profile` must keep working — so the prefix is a leading
    // identifier, recognized case-insensitively only in this position.
    let mode = match p.peek() {
        Tok::Ident(s) if s.eq_ignore_ascii_case("explain") => {
            p.pos += 1;
            QueryMode::Explain
        }
        Tok::Ident(s) if s.eq_ignore_ascii_case("profile") => {
            p.pos += 1;
            QueryMode::Profile
        }
        Tok::Ident(s) if s.eq_ignore_ascii_case("check") => {
            p.pos += 1;
            QueryMode::Check
        }
        _ => QueryMode::Run,
    };
    let q = p.query()?;
    p.expect_eof()?;
    Ok((mode, q))
}

/// Parses a standalone expression (used by tests and the REPL-style API).
pub fn parse_expr(src: &str) -> Result<Expr> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0, typedefs: HashMap::new() };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    /// Tuple typedefs seen so far: name → field names in order.
    typedefs: HashMap<String, Vec<(String, ValueType)>>,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        let st = &self.toks[self.pos];
        Err(Error::Parse { line: st.line, col: st.col, msg: msg.into() })
    }

    /// Position of the token about to be consumed.
    fn span(&self) -> Span {
        let st = &self.toks[self.pos];
        Span::at(st.line, st.col)
    }

    /// A parse error anchored at `sp` rather than the current token —
    /// used when the offending token has already been consumed.
    fn err_at<T>(sp: Span, msg: impl Into<String>) -> Result<T> {
        Err(Error::Parse { line: sp.line, col: sp.col, msg: msg.into() })
    }

    fn expect(&mut self, tok: Tok) -> Result<()> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{tok}`, found `{}`", self.peek()))
        }
    }

    fn expect_kw(&mut self, kw: &'static str) -> Result<()> {
        self.expect(Tok::Kw(kw))
    }

    fn eat(&mut self, tok: Tok) -> bool {
        if *self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &'static str) -> bool {
        self.eat(Tok::Kw(kw))
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            // Tolerate keywords used as identifiers in non-ambiguous spots
            // (e.g. a table named `Total`, a column aliased `count`).
            Tok::Kw(k) if !matches!(k, "FROM" | "WHERE" | "SELECT" | "END" | "DO") => {
                self.bump();
                Ok(k.to_string())
            }
            other => self.err(format!("expected identifier, found `{other}`")),
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if *self.peek() == Tok::Eof {
            Ok(())
        } else {
            self.err(format!("unexpected trailing `{}`", self.peek()))
        }
    }

    // ---- query header -------------------------------------------------

    fn query(&mut self) -> Result<Query> {
        self.expect_kw("CREATE")?;
        self.expect_kw("QUERY")?;
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                params.push(self.param()?);
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        let graph = if self.eat_kw("FOR") {
            self.expect_kw("GRAPH")?;
            Some(self.ident()?)
        } else {
            None
        };
        self.expect(Tok::LBrace)?;
        let body = self.stmts_until(&Tok::RBrace)?;
        self.expect(Tok::RBrace)?;
        Ok(Query { name, params, graph, body })
    }

    fn param(&mut self) -> Result<Param> {
        let ty = match self.peek().clone() {
            Tok::Kw("VERTEX") => {
                self.bump();
                let t = if self.eat(Tok::Lt) {
                    let t = self.ident()?;
                    self.expect(Tok::Gt)?;
                    Some(t)
                } else {
                    None
                };
                ParamType::Vertex(t)
            }
            Tok::Kw("SET") => {
                self.bump();
                self.expect(Tok::Lt)?;
                self.expect_kw("VERTEX")?;
                if self.eat(Tok::Lt) {
                    self.ident()?;
                    self.expect(Tok::Gt)?;
                }
                self.expect(Tok::Gt)?;
                ParamType::VertexSet
            }
            Tok::Kw(k) => {
                if let Some(vt) = ValueType::parse(k) {
                    self.bump();
                    ParamType::Scalar(vt)
                } else {
                    return self.err(format!("expected parameter type, found `{k}`"));
                }
            }
            other => return self.err(format!("expected parameter type, found `{other}`")),
        };
        let name = self.ident()?;
        Ok(Param { name, ty })
    }

    // ---- statements ---------------------------------------------------

    fn stmts_until(&mut self, terminator: &Tok) -> Result<Vec<Stmt>> {
        let mut out = Vec::new();
        while self.peek() != terminator {
            if *self.peek() == Tok::Eof {
                return self.err(format!("expected `{terminator}` before end of input"));
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    /// Statement list for WHILE/IF/FOREACH bodies (terminated by END or
    /// ELSE).
    fn block_stmts(&mut self) -> Result<Vec<Stmt>> {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                Tok::Kw("END") | Tok::Kw("ELSE") => break,
                Tok::Eof => return self.err("expected END"),
                _ => out.push(self.stmt()?),
            }
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt> {
        match self.peek().clone() {
            Tok::Kw("TYPEDEF") => self.typedef(),
            Tok::Kw("USE") => {
                self.bump();
                self.expect_kw("SEMANTICS")?;
                let sp = self.span();
                let name = match self.bump() {
                    Tok::Str(s) => s,
                    other => {
                        return Self::err_at(
                            sp,
                            format!("expected semantics name string, found `{other}`"),
                        )
                    }
                };
                let sem = match parse_semantics(&name) {
                    Some(sem) => sem,
                    None => {
                        return Self::err_at(sp, format!(
                            "unknown semantics `{name}`; expected one of all_shortest_paths, \
                             all_shortest_paths_enumerate, non_repeated_edge, \
                             non_repeated_vertex, shortest_one"
                        ))
                    }
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::UseSemantics(sem))
            }
            Tok::Kw("INSERT") => self.insert_stmt(),
            Tok::Kw("UPDATE") => self.update_stmt(),
            Tok::Kw("DELETE") => self.delete_stmt(),
            Tok::Kw("WHILE") => self.while_stmt(),
            Tok::Kw("IF") => self.if_stmt(),
            Tok::Kw("FOREACH") => self.foreach_stmt(),
            Tok::Kw("PRINT") => self.print_stmt(),
            Tok::Kw("RETURN") => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return(e))
            }
            Tok::Kw("SELECT") => {
                let block = self.select_block()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Select(Box::new(block)))
            }
            Tok::GAcc(name) => {
                self.bump();
                let combine = match self.bump() {
                    Tok::PlusEq => true,
                    Tok::Eq => false,
                    other => return self.err(format!("expected `=` or `+=`, found `{other}`")),
                };
                let expr = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::GAccAssign { name, combine, expr })
            }
            Tok::Ident(name) if name.ends_with("Accum") => self.accum_decl(),
            Tok::Ident(_) | Tok::Kw(_) => {
                // `Name = SELECT ...` / `Name = {...}` vertex-set assignment.
                if *self.peek2() == Tok::Eq {
                    let span = self.span();
                    let name = self.ident()?;
                    self.expect(Tok::Eq)?;
                    let source = match self.peek() {
                        Tok::Kw("SELECT") => VSetSource::Select(Box::new(self.select_block()?)),
                        Tok::LBrace => self.vset_literal()?,
                        Tok::Ident(_) | Tok::Kw(_) => {
                            // Vertex-set algebra: `S = A UNION B;`
                            let lhs = self.ident()?;
                            let op = match self.bump() {
                                Tok::Kw("UNION") => SetOp::Union,
                                Tok::Kw("INTERSECT") => SetOp::Intersect,
                                Tok::Kw("MINUS") => SetOp::Minus,
                                other => {
                                    return self.err(format!(
                                        "expected UNION/INTERSECT/MINUS, found `{other}`"
                                    ))
                                }
                            };
                            let rhs = self.ident()?;
                            VSetSource::SetOp { op, lhs, rhs }
                        }
                        _ => return self.err("expected SELECT, `{...}` or a set expression after `=`"),
                    };
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::VSetAssign { name, source, span })
                } else {
                    self.err(format!("unexpected token `{}` at statement start", self.peek()))
                }
            }
            other => self.err(format!("unexpected token `{other}` at statement start")),
        }
    }

    /// Optional `(col, col, ...)` column list (INSERT statements).
    fn opt_column_list(&mut self) -> Result<Vec<String>> {
        if *self.peek() != Tok::LParen {
            return Ok(Vec::new());
        }
        self.bump();
        let mut cols = vec![self.ident()?];
        while self.eat(Tok::Comma) {
            cols.push(self.ident()?);
        }
        self.expect(Tok::RParen)?;
        Ok(cols)
    }

    /// `INSERT VERTEX T [(cols)] VALUES (exprs);` or
    /// `INSERT EDGE T FROM e TO e [[(cols)] VALUES (exprs)];`
    fn insert_stmt(&mut self) -> Result<Stmt> {
        let span = self.span();
        self.expect_kw("INSERT")?;
        match self.bump() {
            Tok::Kw("VERTEX") => {
                let vtype = self.ident()?;
                let columns = self.opt_column_list()?;
                self.expect_kw("VALUES")?;
                self.expect(Tok::LParen)?;
                let values =
                    if *self.peek() == Tok::RParen { Vec::new() } else { self.expr_list()? };
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::InsertVertex { vtype, columns, values, span })
            }
            Tok::Kw("EDGE") => {
                let etype = self.ident()?;
                self.expect_kw("FROM")?;
                let src = self.expr()?;
                self.expect_kw("TO")?;
                let dst = self.expr()?;
                let (columns, values) = if *self.peek() == Tok::Semi {
                    (Vec::new(), Vec::new())
                } else {
                    let columns = self.opt_column_list()?;
                    self.expect_kw("VALUES")?;
                    self.expect(Tok::LParen)?;
                    let values =
                        if *self.peek() == Tok::RParen { Vec::new() } else { self.expr_list()? };
                    self.expect(Tok::RParen)?;
                    (columns, values)
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::InsertEdge { etype, src, dst, columns, values, span })
            }
            other => {
                Self::err_at(span, format!("expected VERTEX or EDGE after INSERT, found `{other}`"))
            }
        }
    }

    /// `UPDATE VType:v SET v.attr = e, ... [WHERE cond];`
    fn update_stmt(&mut self) -> Result<Stmt> {
        let span = self.span();
        self.expect_kw("UPDATE")?;
        let target = self.vspec()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let var = self.ident()?;
            self.expect(Tok::Dot)?;
            let attr = self.ident()?;
            self.expect(Tok::Eq)?;
            let expr = self.expr()?;
            sets.push((var, attr, expr));
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        self.expect(Tok::Semi)?;
        Ok(Stmt::Update { target, sets, where_clause, span })
    }

    /// `DELETE FROM VType:v [WHERE cond];`
    fn delete_stmt(&mut self) -> Result<Stmt> {
        let span = self.span();
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let target = self.vspec()?;
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        self.expect(Tok::Semi)?;
        Ok(Stmt::Delete { target, where_clause, span })
    }

    fn typedef(&mut self) -> Result<Stmt> {
        self.expect_kw("TYPEDEF")?;
        self.expect_kw("TUPLE")?;
        self.expect(Tok::Lt)?;
        let mut fields = Vec::new();
        loop {
            // Accept both `INT score` and `score INT` orders. Destructure
            // type and name in one match so no panicking re-extraction is
            // needed (this path is reachable from untrusted server input).
            let (first, second) = (self.bump(), self.bump());
            let (ty, name) = match (first, second) {
                (Tok::Kw(k), Tok::Ident(name)) | (Tok::Ident(name), Tok::Kw(k)) => {
                    match ValueType::parse(k) {
                        Some(ty) => (ty, name),
                        None => {
                            return self
                                .err(format!("`{k}` is not a value type in tuple typedef"))
                        }
                    }
                }
                _ => return self.err("expected `TYPE name` in tuple typedef"),
            };
            fields.push((name, ty));
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::Gt)?;
        let name = self.ident()?;
        self.expect(Tok::Semi)?;
        self.typedefs.insert(name.clone(), fields.clone());
        Ok(Stmt::TupleTypedef { name, fields })
    }

    fn accum_decl(&mut self) -> Result<Stmt> {
        let ty = self.accum_type()?;
        let mut decls = Vec::new();
        loop {
            let span = self.span();
            let (global, name) = match self.bump() {
                Tok::VAcc(n) => (false, n),
                Tok::GAcc(n) => (true, n),
                other => {
                    return Self::err_at(
                        span,
                        format!("expected `@name` or `@@name`, found `{other}`"),
                    )
                }
            };
            let init = if self.eat(Tok::Eq) { Some(self.expr()?) } else { None };
            decls.push(AccumDecl { global, name, init, span });
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::Semi)?;
        Ok(Stmt::AccumDecl { ty, decls })
    }

    /// Parses an accumulator type, e.g. `SumAccum<float>`,
    /// `MapAccum<string, SumAccum<float>>`,
    /// `HeapAccum<Tup>(5, score DESC, name ASC)`,
    /// `GroupByAccum<int k1, string k2, SumAccum<float> s>`.
    fn accum_type(&mut self) -> Result<AccumType> {
        let name = self.ident()?;
        match name.as_str() {
            "SumAccum" => {
                let vt = self.one_type_param()?;
                Ok(AccumType::Sum(vt))
            }
            "MinAccum" => {
                self.opt_type_param()?;
                Ok(AccumType::Min)
            }
            "MaxAccum" => {
                self.opt_type_param()?;
                Ok(AccumType::Max)
            }
            "AvgAccum" => {
                self.opt_type_param()?;
                Ok(AccumType::Avg)
            }
            "OrAccum" => Ok(AccumType::Or),
            "AndAccum" => Ok(AccumType::And),
            "SetAccum" => {
                self.opt_type_param()?;
                Ok(AccumType::Set)
            }
            "BagAccum" => {
                self.opt_type_param()?;
                Ok(AccumType::Bag)
            }
            "ListAccum" => {
                self.opt_type_param()?;
                Ok(AccumType::List)
            }
            "ArrayAccum" => {
                self.opt_type_param()?;
                Ok(AccumType::Array)
            }
            "MapAccum" => {
                self.expect(Tok::Lt)?;
                // Key type: scalar type name (ignored at runtime).
                self.scalar_type()?;
                self.expect(Tok::Comma)?;
                let value = if self.peek_is_accum_type() {
                    self.accum_type()?
                } else {
                    // MapAccum<K, V-scalar> sugar: value behaves like a
                    // "last write wins"? The paper always nests accums;
                    // treat a scalar value type as MaxAccum (overwrite-ish)
                    // is surprising — reject instead.
                    return self.err("MapAccum value must be an accumulator type");
                };
                self.expect(Tok::Gt)?;
                Ok(AccumType::Map(Box::new(value)))
            }
            "HeapAccum" => {
                // HeapAccum<TupleName>(capacity, field dir, ...)
                self.expect(Tok::Lt)?;
                let tup_sp = self.span();
                let tup = self.ident()?;
                self.expect(Tok::Gt)?;
                let fields_decl = match self.typedefs.get(&tup).cloned() {
                    Some(f) => f,
                    None => {
                        return Self::err_at(
                            tup_sp,
                            format!("unknown tuple type `{tup}` in HeapAccum"),
                        )
                    }
                };
                self.expect(Tok::LParen)?;
                let capacity = match self.bump() {
                    Tok::Int(n) if n >= 0 => n as usize,
                    other => return self.err(format!("expected heap capacity, found `{other}`")),
                };
                let mut fields = Vec::new();
                while self.eat(Tok::Comma) {
                    let fname_sp = self.span();
                    let fname = self.ident()?;
                    let index = match fields_decl.iter().position(|(n, _)| *n == fname) {
                        Some(i) => i,
                        None => {
                            return Self::err_at(
                                fname_sp,
                                format!("tuple `{tup}` has no field `{fname}`"),
                            )
                        }
                    };
                    let dir = if self.eat_kw("DESC") {
                        SortDir::Desc
                    } else {
                        self.eat_kw("ASC");
                        SortDir::Asc
                    };
                    fields.push(HeapField { index, dir });
                }
                self.expect(Tok::RParen)?;
                Ok(AccumType::Heap { capacity, fields })
            }
            "GroupByAccum" => {
                self.expect(Tok::Lt)?;
                let mut key_arity = 0usize;
                let mut nested = Vec::new();
                loop {
                    if self.peek_is_accum_type() {
                        let n = self.accum_type()?;
                        // Optional field name after the nested accum.
                        if matches!(self.peek(), Tok::Ident(_)) {
                            self.bump();
                        }
                        nested.push(n);
                    } else {
                        self.scalar_type()?;
                        // Optional key field name.
                        if matches!(self.peek(), Tok::Ident(_)) {
                            self.bump();
                        }
                        if !nested.is_empty() {
                            return self.err("GroupByAccum keys must precede nested accumulators");
                        }
                        key_arity += 1;
                    }
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::Gt)?;
                Ok(AccumType::GroupBy { key_arity, nested })
            }
            user => Ok(AccumType::User(user.to_string())),
        }
    }

    fn peek_is_accum_type(&self) -> bool {
        matches!(self.peek(), Tok::Ident(n) if n.ends_with("Accum"))
    }

    fn scalar_type(&mut self) -> Result<ValueType> {
        let sp = self.span();
        match self.bump() {
            Tok::Kw(k) => ValueType::parse(k)
                .ok_or(())
                .or_else(|()| Self::err_at(sp, format!("not a scalar type: {k}"))),
            Tok::Ident(s) => ValueType::parse(&s)
                .ok_or(())
                .or_else(|()| Self::err_at(sp, format!("not a scalar type: {s}"))),
            other => Self::err_at(sp, format!("expected type, found `{other}`")),
        }
    }

    fn one_type_param(&mut self) -> Result<ValueType> {
        self.expect(Tok::Lt)?;
        let vt = self.scalar_type()?;
        self.expect(Tok::Gt)?;
        Ok(vt)
    }

    fn opt_type_param(&mut self) -> Result<()> {
        if self.eat(Tok::Lt) {
            self.scalar_type()?;
            self.expect(Tok::Gt)?;
        }
        Ok(())
    }

    fn vset_literal(&mut self) -> Result<VSetSource> {
        self.expect(Tok::LBrace)?;
        let mut entries = Vec::new();
        loop {
            let name = self.ident()?;
            if self.eat(Tok::Dot) {
                self.expect(Tok::Star)?;
            }
            entries.push(name);
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(VSetSource::Literal(entries))
    }

    fn while_stmt(&mut self) -> Result<Stmt> {
        let span = self.span();
        self.expect_kw("WHILE")?;
        let cond = self.expr()?;
        let limit = if self.eat_kw("LIMIT") { Some(self.expr()?) } else { None };
        self.expect_kw("DO")?;
        let body = self.block_stmts()?;
        self.expect_kw("END")?;
        self.eat(Tok::Semi);
        Ok(Stmt::While { cond, limit, body, span })
    }

    fn if_stmt(&mut self) -> Result<Stmt> {
        self.expect_kw("IF")?;
        let cond = self.expr()?;
        self.expect_kw("THEN")?;
        let then_branch = self.block_stmts()?;
        let else_branch = if self.eat_kw("ELSE") { self.block_stmts()? } else { Vec::new() };
        self.expect_kw("END")?;
        self.eat(Tok::Semi);
        Ok(Stmt::If { cond, then_branch, else_branch })
    }

    fn foreach_stmt(&mut self) -> Result<Stmt> {
        self.expect_kw("FOREACH")?;
        let var = self.ident()?;
        self.expect_kw("IN")?;
        let iterable = self.expr()?;
        self.expect_kw("DO")?;
        let body = self.block_stmts()?;
        self.expect_kw("END")?;
        self.eat(Tok::Semi);
        Ok(Stmt::Foreach { var, iterable, body })
    }

    fn print_stmt(&mut self) -> Result<Stmt> {
        self.expect_kw("PRINT")?;
        let mut items = Vec::new();
        loop {
            // `R[proj, ...]` — vertex-set projection.
            if let Tok::Ident(name) = self.peek().clone() {
                if *self.peek2() == Tok::LBracket {
                    self.bump();
                    self.bump();
                    let mut proj = Vec::new();
                    loop {
                        let expr = self.expr()?;
                        let alias = if self.eat_kw("AS") { Some(self.ident()?) } else { None };
                        proj.push(SelectItem { expr, alias });
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::RBracket)?;
                    items.push(PrintItem::VSetProjection { set: name, items: proj });
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                    continue;
                }
            }
            let expr = self.expr()?;
            let label = if self.eat_kw("AS") {
                self.ident()?
            } else {
                print_label(&expr)
            };
            items.push(PrintItem::Expr { expr, label });
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::Semi)?;
        Ok(Stmt::Print(items))
    }

    // ---- SELECT blocks -------------------------------------------------

    fn select_block(&mut self) -> Result<SelectBlock> {
        let span = self.span();
        self.expect_kw("SELECT")?;
        let mut outputs = vec![self.output_fragment()?];
        while *self.peek() == Tok::Semi && *self.peek2() != Tok::Kw("FROM") {
            // Multi-output: `; fragment` until FROM.
            self.bump();
            outputs.push(self.output_fragment()?);
        }
        self.eat(Tok::Semi); // tolerate trailing `;` before FROM
        self.expect_kw("FROM")?;
        let mut from = vec![self.from_item()?];
        while self.eat(Tok::Comma) {
            from.push(self.from_item()?);
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        let accum = if self.eat_kw("ACCUM") { self.acc_stmts()? } else { Vec::new() };
        let post_accum =
            if self.eat_kw("POST_ACCUM") { self.acc_stmts()? } else { Vec::new() };
        let group_by = if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            Some(self.group_by()?)
        } else {
            None
        };
        let having = if self.eat_kw("HAVING") { Some(self.expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") { Some(self.expr()?) } else { None };
        Ok(SelectBlock {
            outputs,
            from,
            where_clause,
            accum,
            post_accum,
            group_by,
            having,
            order_by,
            limit,
            span,
        })
    }

    fn output_fragment(&mut self) -> Result<OutputFragment> {
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            let expr = self.expr()?;
            let alias = if self.eat_kw("AS") { Some(self.ident()?) } else { None };
            items.push(SelectItem { expr, alias });
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        let into = if self.eat_kw("INTO") { Some(self.ident()?) } else { None };
        Ok(OutputFragment { distinct, items, into })
    }

    #[allow(clippy::wrong_self_convention)] // parser rule named after the FROM clause
    fn from_item(&mut self) -> Result<FromItem> {
        // Graph-qualified pattern: `GraphName:(pattern)`.
        if matches!(self.peek(), Tok::Ident(_)) && *self.peek2() == Tok::Colon {
            let save = self.pos;
            let gname = self.ident()?;
            self.bump(); // colon
            if *self.peek() == Tok::LParen {
                self.bump();
                let (start, hops) = self.pattern()?;
                self.expect(Tok::RParen)?;
                return Ok(FromItem::Pattern { graph: Some(gname), start, hops });
            }
            self.pos = save;
        }
        let (start, hops) = self.pattern()?;
        if hops.is_empty() {
            // Could be a relational table scan; the executor resolves.
            let alias = start.var.clone().unwrap_or_else(|| start.name.clone());
            return Ok(FromItem::Table { name: start.name, alias });
        }
        Ok(FromItem::Pattern { graph: None, start, hops })
    }

    fn pattern(&mut self) -> Result<(VSpec, Vec<Hop>)> {
        let start = self.vspec()?;
        let mut hops = Vec::new();
        while *self.peek() == Tok::Minus {
            self.bump();
            self.expect(Tok::LParen)?;
            let (darpe_text, edge_var) = self.darpe_text()?;
            self.expect(Tok::RParen)?;
            self.expect(Tok::Minus)?;
            let to = self.vspec()?;
            let darpe = darpe::parse(&darpe_text)?;
            hops.push(Hop { darpe, edge_var, to });
        }
        Ok((start, hops))
    }

    fn vspec(&mut self) -> Result<VSpec> {
        let name = match self.bump() {
            Tok::Ident(s) => s,
            Tok::Kw(k) => k.to_string(),
            other => return self.err(format!("expected vertex specifier, found `{other}`")),
        };
        let var = if *self.peek() == Tok::Colon {
            self.bump();
            Some(self.ident()?)
        } else {
            None
        };
        Ok(VSpec { name, var })
    }

    /// Re-assembles the DARPE text between `-(` and `)-`, splitting off an
    /// optional trailing `:edgeVar` at nesting depth 0.
    fn darpe_text(&mut self) -> Result<(String, Option<String>)> {
        let mut depth = 0usize;
        let mut text = String::new();
        let mut edge_var = None;
        loop {
            match self.peek().clone() {
                Tok::RParen if depth == 0 => break,
                Tok::Eof => return self.err("unterminated pattern hop"),
                Tok::Colon if depth == 0 => {
                    self.bump();
                    edge_var = Some(self.ident()?);
                    if *self.peek() != Tok::RParen {
                        return self.err("edge variable must end the hop");
                    }
                    break;
                }
                Tok::LParen => {
                    depth += 1;
                    text.push('(');
                    self.bump();
                }
                Tok::RParen => {
                    depth -= 1;
                    text.push(')');
                    self.bump();
                }
                tok => {
                    text.push_str(&tok.to_string());
                    self.bump();
                }
            }
        }
        if text.is_empty() {
            return self.err("empty DARPE in pattern hop");
        }
        Ok((text, edge_var))
    }

    fn group_by(&mut self) -> Result<GroupBy> {
        if self.eat_kw("GROUPING") {
            self.expect_kw("SETS")?;
            self.expect(Tok::LParen)?;
            let mut keys: Vec<Expr> = Vec::new();
            let mut sets = Vec::new();
            loop {
                self.expect(Tok::LParen)?;
                let mut set = Vec::new();
                if *self.peek() != Tok::RParen {
                    loop {
                        let e = self.expr()?;
                        let idx = key_index(&mut keys, e);
                        set.push(idx);
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(Tok::RParen)?;
                sets.push(set);
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
            Ok(GroupBy { keys, sets })
        } else if self.eat_kw("CUBE") {
            self.expect(Tok::LParen)?;
            let keys = self.expr_list()?;
            self.expect(Tok::RParen)?;
            let n = keys.len();
            let sets = (0..(1usize << n))
                .map(|mask| (0..n).filter(|i| mask & (1 << i) != 0).collect())
                .collect();
            Ok(GroupBy { keys, sets })
        } else if self.eat_kw("ROLLUP") {
            self.expect(Tok::LParen)?;
            let keys = self.expr_list()?;
            self.expect(Tok::RParen)?;
            let n = keys.len();
            let sets = (0..=n).rev().map(|k| (0..k).collect()).collect();
            Ok(GroupBy { keys, sets })
        } else {
            let keys = self.expr_list()?;
            let all: Vec<usize> = (0..keys.len()).collect();
            Ok(GroupBy { keys, sets: vec![all] })
        }
    }

    fn expr_list(&mut self) -> Result<Vec<Expr>> {
        let mut out = vec![self.expr()?];
        while self.eat(Tok::Comma) {
            out.push(self.expr()?);
        }
        Ok(out)
    }

    // ---- ACCUM statement lists -----------------------------------------

    fn acc_stmts(&mut self) -> Result<Vec<AccStmt>> {
        let mut out = vec![self.acc_stmt()?];
        while self.eat(Tok::Comma) {
            out.push(self.acc_stmt()?);
        }
        Ok(out)
    }

    fn acc_stmt(&mut self) -> Result<AccStmt> {
        match self.peek().clone() {
            Tok::GAcc(name) => {
                self.bump();
                let combine = match self.bump() {
                    Tok::PlusEq => true,
                    Tok::Eq => false,
                    other => return self.err(format!("expected `=`/`+=`, found `{other}`")),
                };
                let expr = self.expr()?;
                Ok(AccStmt::GAcc { name, combine, expr })
            }
            // `v.@a += e` / `v.@a = e`
            Tok::Ident(var) if *self.peek2() == Tok::Dot => {
                let save = self.pos;
                self.bump();
                self.bump();
                if let Tok::VAcc(name) = self.peek().clone() {
                    self.bump();
                    let combine = match self.bump() {
                        Tok::PlusEq => true,
                        Tok::Eq => false,
                        other => return self.err(format!("expected `=`/`+=`, found `{other}`")),
                    };
                    let expr = self.expr()?;
                    return Ok(AccStmt::VAcc { var, name, combine, expr });
                }
                self.pos = save;
                self.err("expected accumulator statement")
            }
            // Typed local: `float x = e`. Untyped local: `x = e`.
            Tok::Kw(k) if ValueType::parse(k).is_some() => {
                self.bump();
                let name = self.ident()?;
                self.expect(Tok::Eq)?;
                let expr = self.expr()?;
                Ok(AccStmt::LocalDecl { name, expr })
            }
            Tok::Ident(name) if *self.peek2() == Tok::Eq => {
                self.bump();
                self.bump();
                let expr = self.expr()?;
                Ok(AccStmt::LocalDecl { name, expr })
            }
            other => self.err(format!("expected ACCUM statement, found `{other}`")),
        }
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            Ok(Expr::Unary { op: UnOp::Not, expr: Box::new(inner) })
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            Tok::Eq | Tok::EqEq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat(Tok::Minus) {
            let inner = self.unary_expr()?;
            Ok(Expr::Unary { op: UnOp::Neg, expr: Box::new(inner) })
        } else {
            self.postfix_expr()
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        let mut base = self.primary()?;
        loop {
            if *self.peek() == Tok::Dot {
                // attribute / vertex accum / method
                self.bump();
                match self.peek().clone() {
                    Tok::VAcc(name) => {
                        self.bump();
                        let prev = self.eat(Tok::Apostrophe);
                        let var = match &base {
                            Expr::Ident(v) => v.clone(),
                            _ => return self.err("accumulator base must be a variable"),
                        };
                        base = Expr::VAcc { var, name, prev };
                    }
                    Tok::Ident(field) => {
                        self.bump();
                        if *self.peek() == Tok::LParen {
                            self.bump();
                            let mut args = Vec::new();
                            if *self.peek() != Tok::RParen {
                                args = self.expr_list()?;
                            }
                            self.expect(Tok::RParen)?;
                            base = Expr::Method { base: Box::new(base), method: field, args };
                        } else {
                            let b = match &base {
                                Expr::Ident(v) => v.clone(),
                                _ => return self.err("attribute base must be a variable"),
                            };
                            base = Expr::Attr { base: b, field };
                        }
                    }
                    Tok::Kw(k) => {
                        // Columns named like keywords (e.g. `e.year`).
                        let field = k.to_string();
                        self.bump();
                        let b = match &base {
                            Expr::Ident(v) => v.clone(),
                            _ => return self.err("attribute base must be a variable"),
                        };
                        base = Expr::Attr { base: b, field };
                    }
                    other => return self.err(format!("expected field after `.`, found `{other}`")),
                }
            } else {
                break;
            }
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Tok::Double(v) => {
                self.bump();
                Ok(Expr::Double(v))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            Tok::Kw("TRUE") => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            Tok::Kw("FALSE") => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            Tok::Kw("NULL") => {
                self.bump();
                Ok(Expr::Null)
            }
            Tok::Kw("CASE") => {
                self.bump();
                let mut branches = Vec::new();
                while self.eat_kw("WHEN") {
                    let cond = self.expr()?;
                    self.expect_kw("THEN")?;
                    let val = self.expr()?;
                    branches.push((cond, val));
                }
                if branches.is_empty() {
                    return self.err("CASE requires at least one WHEN branch");
                }
                let default = if self.eat_kw("ELSE") {
                    Some(Box::new(self.expr()?))
                } else {
                    None
                };
                self.expect_kw("END")?;
                Ok(Expr::Case { branches, default })
            }
            Tok::GAcc(name) => {
                self.bump();
                Ok(Expr::GAcc(name))
            }
            Tok::Ident(name) => {
                self.bump();
                if *self.peek() == Tok::LParen {
                    self.bump();
                    if *self.peek() == Tok::Star {
                        self.bump();
                        self.expect(Tok::RParen)?;
                        return Ok(Expr::Call { func: name, args: Vec::new(), star: true });
                    }
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        args = self.expr_list()?;
                    }
                    self.expect(Tok::RParen)?;
                    return Ok(Expr::Call { func: name, args, star: false });
                }
                Ok(Expr::Ident(name))
            }
            Tok::LParen => {
                self.bump();
                let first = self.expr()?;
                match self.peek() {
                    Tok::Arrow => {
                        self.bump();
                        let vals = self.expr_list()?;
                        self.expect(Tok::RParen)?;
                        Ok(Expr::ArrowTuple { keys: vec![first], vals })
                    }
                    Tok::Comma => {
                        let mut items = vec![first];
                        while self.eat(Tok::Comma) {
                            items.push(self.expr()?);
                        }
                        if self.eat(Tok::Arrow) {
                            let vals = self.expr_list()?;
                            self.expect(Tok::RParen)?;
                            Ok(Expr::ArrowTuple { keys: items, vals })
                        } else {
                            self.expect(Tok::RParen)?;
                            Ok(Expr::Tuple(items))
                        }
                    }
                    _ => {
                        self.expect(Tok::RParen)?;
                        Ok(first)
                    }
                }
            }
            other => self.err(format!("unexpected token `{other}` in expression")),
        }
    }
}

/// Maps a semantics name (as used by `USE SEMANTICS '...'`) to the enum.
pub fn parse_semantics(name: &str) -> Option<crate::semantics::PathSemantics> {
    use crate::semantics::PathSemantics as P;
    Some(match name.to_ascii_lowercase().as_str() {
        "all_shortest_paths" | "asp" | "shortest" => P::AllShortestPaths,
        "all_shortest_paths_enumerate" | "asp_enumerate" => P::AllShortestPathsEnumerate,
        "non_repeated_edge" | "nre" | "cypher" => P::NonRepeatedEdge,
        "non_repeated_vertex" | "nrv" | "gremlin" => P::NonRepeatedVertex,
        "shortest_one" | "boolean" | "sparql" => P::ShortestOne,
        _ => return None,
    })
}

fn key_index(keys: &mut Vec<Expr>, e: Expr) -> usize {
    if let Some(i) = keys.iter().position(|k| *k == e) {
        i
    } else {
        keys.push(e);
        keys.len() - 1
    }
}

fn print_label(e: &Expr) -> String {
    match e {
        Expr::Ident(s) => s.clone(),
        Expr::Attr { base, field } => format!("{base}.{field}"),
        Expr::VAcc { var, name, prev } => {
            format!("{var}.@{name}{}", if *prev { "'" } else { "" })
        }
        Expr::GAcc(name) => format!("@@{name}"),
        Expr::Call { func, .. } => func.clone(),
        Expr::Method { base, method, .. } => format!("{}.{method}()", print_label(base)),
        _ => "expr".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_mode_prefixes() {
        let src = "CREATE QUERY Q () { PRINT 1; }";
        let (mode, q) = parse_query_with_mode(src).unwrap();
        assert_eq!(mode, QueryMode::Run);
        assert_eq!(q.name, "Q");
        let (mode, q) = parse_query_with_mode(&format!("EXPLAIN {src}")).unwrap();
        assert_eq!(mode, QueryMode::Explain);
        assert_eq!(q.name, "Q");
        let (mode, q) = parse_query_with_mode(&format!("profile {src}")).unwrap();
        assert_eq!(mode, QueryMode::Profile);
        assert_eq!(q.name, "Q");
        // The strict entry point does not accept the prefix.
        assert!(parse_query(&format!("EXPLAIN {src}")).is_err());
    }

    #[test]
    fn parses_mutation_statements() {
        let q = parse_query(
            r#"CREATE QUERY M () {
  INSERT VERTEX Person (name, age) VALUES ("ada", 36);
  INSERT VERTEX Person VALUES ("bob", 2);
  INSERT EDGE Knows FROM 0 TO 1 (since) VALUES (2024);
  INSERT EDGE Knows FROM 1 TO 0;
  UPDATE Person:p SET p.age = p.age + 1, p.name = "eve" WHERE p.age > 30;
  DELETE FROM Person:p WHERE p.age > 100;
  DELETE FROM Person;
}"#,
        )
        .unwrap();
        assert_eq!(q.body.len(), 7);
        match &q.body[0] {
            Stmt::InsertVertex { vtype, columns, values, .. } => {
                assert_eq!(vtype, "Person");
                assert_eq!(columns, &["name".to_string(), "age".to_string()]);
                assert_eq!(values.len(), 2);
            }
            other => panic!("expected InsertVertex, got {other:?}"),
        }
        match &q.body[1] {
            Stmt::InsertVertex { columns, values, .. } => {
                assert!(columns.is_empty(), "positional insert has no column list");
                assert_eq!(values.len(), 2);
            }
            other => panic!("expected InsertVertex, got {other:?}"),
        }
        match &q.body[3] {
            Stmt::InsertEdge { etype, columns, values, .. } => {
                assert_eq!(etype, "Knows");
                assert!(columns.is_empty() && values.is_empty(), "attr-less edge insert");
            }
            other => panic!("expected InsertEdge, got {other:?}"),
        }
        match &q.body[4] {
            Stmt::Update { target, sets, where_clause, .. } => {
                assert_eq!(target.name, "Person");
                assert_eq!(target.var.as_deref(), Some("p"));
                assert_eq!(sets.len(), 2);
                assert_eq!(sets[1].1, "name");
                assert!(where_clause.is_some());
            }
            other => panic!("expected Update, got {other:?}"),
        }
        match (&q.body[5], &q.body[6]) {
            (
                Stmt::Delete { where_clause: Some(_), .. },
                Stmt::Delete { target, where_clause: None, .. },
            ) => assert_eq!(target.name, "Person"),
            other => panic!("expected two Deletes, got {other:?}"),
        }
    }

    #[test]
    fn mutation_parse_errors_are_errors_not_panics() {
        for src in [
            "CREATE QUERY M () { INSERT Person VALUES (1); }",
            "CREATE QUERY M () { INSERT VERTEX Person (name VALUES (1); }",
            "CREATE QUERY M () { INSERT EDGE Knows FROM 0; }",
            "CREATE QUERY M () { UPDATE Person:p SET WHERE true; }",
            "CREATE QUERY M () { UPDATE Person:p SET p.age += 1; }",
            "CREATE QUERY M () { DELETE Person; }",
            "CREATE QUERY M () { DELETE FROM; }",
        ] {
            assert!(parse_query(src).is_err(), "`{src}` must be a parse error");
        }
    }

    #[test]
    fn explain_profile_are_not_reserved_words() {
        // The mode prefixes must not steal `Profile`/`Explain` as
        // identifiers — LDBC IS1 selects INTO a table named Profile.
        let q = parse_query(
            "CREATE QUERY Q () { R = SELECT p.name AS name INTO Profile FROM Person:p; \
             T = SELECT e.name AS name INTO Plans FROM Explain:e; }",
        )
        .unwrap();
        let frag = |s: &Stmt| match s {
            Stmt::VSetAssign { source: VSetSource::Select(b), .. } => {
                b.outputs[0].into.clone().unwrap()
            }
            other => panic!("unexpected stmt {other:?}"),
        };
        assert_eq!(frag(&q.body[0]), "Profile");
        assert_eq!(frag(&q.body[1]), "Plans");
        // And the prefix still composes with such queries.
        let (mode, q2) = parse_query_with_mode(
            "PROFILE CREATE QUERY Q () { R = SELECT p.name AS n INTO Profile FROM Person:p; }",
        )
        .unwrap();
        assert_eq!(mode, QueryMode::Profile);
        assert_eq!(q2.name, "Q");
    }

    #[test]
    fn parses_pagerank_figure4() {
        let q = parse_query(
            r#"
            CREATE QUERY PageRank (float maxChange, int maxIteration, float dampingFactor) {
              MaxAccum<float> @@maxDifference = 9999999.0;
              SumAccum<float> @received_score;
              SumAccum<float> @score = 1;
              AllV = {Page.*};
              WHILE @@maxDifference > maxChange LIMIT maxIteration DO
                 @@maxDifference = 0;
                 S = SELECT v
                     FROM AllV:v -(LinkTo>)- Page:n
                     ACCUM n.@received_score += v.@score/v.outdegree()
                     POST-ACCUM v.@score = 1-dampingFactor + dampingFactor * v.@received_score,
                                v.@received_score = 0,
                                @@maxDifference += abs(v.@score - v.@score');
              END;
            }
            "#,
        )
        .unwrap();
        assert_eq!(q.name, "PageRank");
        assert_eq!(q.params.len(), 3);
        assert_eq!(q.body.len(), 5);
        match &q.body[4] {
            Stmt::While { limit: Some(_), body, .. } => {
                assert_eq!(body.len(), 2);
                match &body[1] {
                    Stmt::VSetAssign { name, source: VSetSource::Select(b), .. } => {
                        assert_eq!(name, "S");
                        assert_eq!(b.accum.len(), 1);
                        assert_eq!(b.post_accum.len(), 3);
                        // v.@score' parsed as prev-snapshot read.
                        match &b.post_accum[2] {
                            AccStmt::GAcc { name, combine: true, expr } => {
                                assert_eq!(name, "maxDifference");
                                let mut saw_prev = false;
                                expr.walk(&mut |e| {
                                    if let Expr::VAcc { prev: true, .. } = e {
                                        saw_prev = true;
                                    }
                                });
                                assert!(saw_prev);
                            }
                            other => panic!("{other:?}"),
                        }
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_topk_toys_figure3() {
        let q = parse_query(
            r#"
            CREATE QUERY TopKToys (vertex<Customer> c, int k) FOR GRAPH SalesGraph {
               SumAccum<float> @lc, @inCommon, @rank;
               SELECT DISTINCT o INTO OthersWithCommonLikes
               FROM   Customer:c -(Likes>)- Product:t -(<Likes)- Customer:o
               WHERE  o <> c and t.category = 'Toys'
               ACCUM  o.@inCommon += 1
               POST_ACCUM o.@lc = log(1 + o.@inCommon);

               SELECT t.name, t.@rank AS rank INTO Recommended
               FROM   OthersWithCommonLikes:o -(Likes>)- Product:t
               WHERE  t.category = 'Toy' and c <> o
               ACCUM  t.@rank += o.@lc
               ORDER BY t.@rank DESC
               LIMIT  k;

               RETURN Recommended;
            }
            "#,
        )
        .unwrap();
        assert_eq!(q.params[0].ty, ParamType::Vertex(Some("Customer".into())));
        match &q.body[1] {
            Stmt::Select(b) => {
                assert!(b.outputs[0].distinct);
                assert_eq!(b.outputs[0].into.as_deref(), Some("OthersWithCommonLikes"));
                match &b.from[0] {
                    FromItem::Pattern { hops, .. } => {
                        assert_eq!(hops.len(), 2);
                        assert_eq!(hops[0].darpe.to_string(), "Likes>");
                        assert_eq!(hops[1].darpe.to_string(), "<Likes");
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
        match &q.body[2] {
            Stmt::Select(b) => {
                assert_eq!(b.order_by.len(), 1);
                assert!(b.order_by[0].desc);
                assert!(b.limit.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_multi_output_select() {
        let q = parse_query(
            r#"
            CREATE QUERY MultiOut () {
              SELECT c.name, c.@revenuePerCust INTO PerCust;
                     t.name, t.@revenuePerToy INTO PerToy;
                     @@totalRevenue AS rev INTO Total
              FROM  Customer:c -(Bought>)- Product:t;
            }
            "#,
        )
        .unwrap();
        match &q.body[0] {
            Stmt::Select(b) => {
                assert_eq!(b.outputs.len(), 3);
                assert_eq!(b.outputs[2].into.as_deref(), Some("Total"));
                assert_eq!(b.outputs[2].items[0].alias.as_deref(), Some("rev"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_qn_query() {
        let q = parse_query(
            r#"
            CREATE QUERY Qn(string srcName, string tgtName) {
              SumAccum<int> @pathCount;
              R = SELECT t
                  FROM V:s -(E>*)- V:t
                  WHERE s.name == srcName AND t.name == tgtName
                  ACCUM t.@pathCount += 1;
              PRINT R[R.name, R.@pathCount];
            }
            "#,
        )
        .unwrap();
        match &q.body[1] {
            Stmt::VSetAssign { source: VSetSource::Select(b), .. } => match &b.from[0] {
                FromItem::Pattern { hops, .. } => {
                    assert_eq!(hops[0].darpe.to_string(), "E>*");
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        match &q.body[2] {
            Stmt::Print(items) => match &items[0] {
                PrintItem::VSetProjection { set, items } => {
                    assert_eq!(set, "R");
                    assert_eq!(items.len(), 2);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_heap_and_groupby_accums() {
        let q = parse_query(
            r#"
            CREATE QUERY Agg () {
              TYPEDEF TUPLE<INT len, STRING name> Rec;
              HeapAccum<Rec>(20, len DESC, name ASC) @@top;
              GroupByAccum<string city, string gender, AvgAccum avgLen> @@stats;
              MapAccum<string, SumAccum<float>> @@byKey;
              SELECT x FROM V:x ACCUM @@top += (x.len, x.name),
                     @@stats += (x.city, x.gender -> x.len),
                     @@byKey += (x.city -> 1.0);
            }
            "#,
        )
        .unwrap();
        match &q.body[1] {
            Stmt::AccumDecl { ty: AccumType::Heap { capacity, fields }, .. } => {
                assert_eq!(*capacity, 20);
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[0].index, 0);
                assert_eq!(fields[1].index, 1);
            }
            other => panic!("{other:?}"),
        }
        match &q.body[2] {
            Stmt::AccumDecl { ty: AccumType::GroupBy { key_arity, nested }, .. } => {
                assert_eq!(*key_arity, 2);
                assert_eq!(nested.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_grouping_sets() {
        let q = parse_query(
            r#"
            CREATE QUERY G () {
              SELECT e.a, e.b, count(*) INTO T
              FROM Emp:e
              GROUP BY GROUPING SETS ((e.a, e.b), (e.b), ());
            }
            "#,
        )
        .unwrap();
        match &q.body[0] {
            Stmt::Select(b) => {
                let g = b.group_by.as_ref().unwrap();
                assert_eq!(g.keys.len(), 2);
                assert_eq!(g.sets, vec![vec![0, 1], vec![1], vec![]]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cube_and_rollup_expand() {
        let q = parse_query(
            "CREATE QUERY C () { SELECT count(*) INTO T FROM E:e GROUP BY CUBE (e.a, e.b); }",
        )
        .unwrap();
        match &q.body[0] {
            Stmt::Select(b) => assert_eq!(b.group_by.as_ref().unwrap().sets.len(), 4),
            other => panic!("{other:?}"),
        }
        let q = parse_query(
            "CREATE QUERY R () { SELECT count(*) INTO T FROM E:e GROUP BY ROLLUP (e.a, e.b, e.c); }",
        )
        .unwrap();
        match &q.body[0] {
            Stmt::Select(b) => {
                let g = b.group_by.as_ref().unwrap();
                assert_eq!(g.sets, vec![vec![0, 1, 2], vec![0, 1], vec![0], vec![]]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_table_join_with_pattern() {
        let q = parse_query(
            r#"
            CREATE QUERY Ex1 () {
              SELECT e.email, e.name, count(*) AS cnt INTO Result
              FROM Employee:e, LinkedIn:(Person:p -(Connected:c)- Person:outsider)
              WHERE e.name == p.name AND c.since >= 2016
              GROUP BY e.email, e.name
              ORDER BY count(*) DESC;
            }
            "#,
        )
        .unwrap();
        match &q.body[0] {
            Stmt::Select(b) => {
                assert_eq!(b.from.len(), 2);
                assert!(matches!(&b.from[0], FromItem::Table { name, alias } if name == "Employee" && alias == "e"));
                match &b.from[1] {
                    FromItem::Pattern { graph: Some(g), hops, .. } => {
                        assert_eq!(g, "LinkedIn");
                        assert_eq!(hops[0].edge_var.as_deref(), Some("c"));
                        assert_eq!(hops[0].darpe.to_string(), "Connected");
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("1 + 2 * 3 < 10 AND NOT false OR x.y == 'z'").unwrap();
        // Top node should be OR.
        assert!(matches!(e, Expr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn arrow_tuples() {
        let e = parse_expr("(a, b -> c, d)").unwrap();
        match e {
            Expr::ArrowTuple { keys, vals } => {
                assert_eq!(keys.len(), 2);
                assert_eq!(vals.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        let e = parse_expr("(a, b, c)").unwrap();
        assert!(matches!(e, Expr::Tuple(v) if v.len() == 3));
    }

    #[test]
    fn errors_are_positioned() {
        let err = parse_query("CREATE QUERY x() { SELECT FROM V:v; }").unwrap_err();
        assert!(matches!(err, Error::Parse { .. }), "{err}");
    }

    #[test]
    fn if_and_foreach() {
        let q = parse_query(
            r#"
            CREATE QUERY F (int n) {
              SumAccum<int> @@total;
              IF n > 0 THEN @@total += n; ELSE @@total += 0 - n; END;
              FOREACH x IN @@items DO @@total += x; END;
            }
            "#,
        );
        // `@@total += n;` is a GAccAssign statement.
        let q = q.unwrap();
        assert!(matches!(&q.body[1], Stmt::If { .. }));
        assert!(matches!(&q.body[2], Stmt::Foreach { .. }));
    }
}

#[cfg(test)]
mod error_tests {
    use super::parse_query;

    /// Malformed inputs must produce positioned parse errors, never panics.
    #[test]
    fn malformed_queries_error_cleanly() {
        let cases = [
            "",                                                     // empty
            "CREATE QUERY {",                                       // missing name
            "CREATE QUERY x {}",                                    // missing params
            "CREATE QUERY x() { SELECT }",                          // bare select
            "CREATE QUERY x() { SELECT v FROM ; }",                 // empty from
            "CREATE QUERY x() { SELECT v FROM V:v WHERE ; }",       // empty where
            "CREATE QUERY x() { SELECT v FROM V:v -(- V:t; }",      // broken hop
            "CREATE QUERY x() { SELECT v FROM V:v -()- V:t; }",     // empty darpe
            "CREATE QUERY x() { WHILE DO END; }",                   // empty cond
            "CREATE QUERY x() { IF THEN END; }",                    // empty cond
            "CREATE QUERY x() { SumAccum<float> ; }",               // no names
            "CREATE QUERY x() { SumAccum<float> @a = ; }",          // no init expr
            "CREATE QUERY x() { TYPEDEF TUPLE<> T; }",              // empty tuple
            "CREATE QUERY x() { PRINT ; }",                         // empty print
            "CREATE QUERY x() { RETURN ; }",                        // empty return
            "CREATE QUERY x() { S = ; }",                           // empty assign
            "CREATE QUERY x() { USE SEMANTICS; }",                  // missing name
            "CREATE QUERY x(vertex<> v) {}",                        // empty type param
            "CREATE QUERY x() { SELECT v FROM V:v GROUP BY ; }",    // empty group
            "CREATE QUERY x() { SELECT v FROM V:v ORDER BY ; }",    // empty order
            "CREATE QUERY x() }",                                   // stray brace
            "CREATE QUERY x() { } trailing",                        // trailing tokens
        ];
        for src in cases {
            let r = parse_query(src);
            assert!(r.is_err(), "expected parse error for `{src}`, got {r:?}");
        }
    }

    /// Keywords are usable as identifiers where unambiguous.
    #[test]
    fn keywords_as_identifiers_in_safe_positions() {
        parse_query("CREATE QUERY x() { SELECT v.name AS count INTO Total FROM V:v; }")
            .unwrap();
    }
}
