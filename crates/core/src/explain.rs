//! `EXPLAIN`-style static query plans.
//!
//! Renders, for every SELECT block of a query, the evaluation strategy
//! the engine will use: how each FROM item is scanned, which WHERE
//! conjuncts are pushed down to which binding step, whether each pattern
//! hop runs as an adjacency scan, a polynomial SDMC **counting** kernel,
//! or an exponential **enumerative** kernel (and from which endpoint),
//! and how each accumulator absorbs binding multiplicities. This makes
//! the paper's tractability story *inspectable*: the plan names the
//! exact mechanism that keeps (or fails to keep) a query polynomial.

use crate::ast::*;
use crate::error::Result;
use crate::semantics::PathSemantics;
use pgraph::fxhash::FxHashSet;
use std::fmt::Write as _;

/// Renders a static plan for `query` under `semantics`.
pub fn explain(query: &Query, semantics: PathSemantics) -> Result<String> {
    let mut out = String::new();
    writeln!(out, "QUERY {} [{:?} semantics]", query.name, semantics).unwrap();
    let mut block_no = 0usize;
    explain_stmts(&query.body, semantics, &mut block_no, 0, &mut out);
    Ok(out)
}

fn explain_stmts(
    stmts: &[Stmt],
    mut semantics: PathSemantics,
    block_no: &mut usize,
    depth: usize,
    out: &mut String,
) {
    let pad = "  ".repeat(depth + 1);
    for stmt in stmts {
        match stmt {
            Stmt::UseSemantics(s) => {
                semantics = *s;
                writeln!(out, "{pad}USE SEMANTICS -> {semantics:?}").unwrap();
            }
            Stmt::Select(block) => {
                *block_no += 1;
                explain_block(block, semantics, *block_no, depth, out);
            }
            Stmt::VSetAssign { name, source } => match source {
                VSetSource::Select(block) => {
                    *block_no += 1;
                    writeln!(out, "{pad}{name} = <block {block_no}>").unwrap();
                    explain_block(block, semantics, *block_no, depth, out);
                }
                VSetSource::Literal(entries) => {
                    writeln!(out, "{pad}{name} = scan {{{}}}", entries.join(", ")).unwrap();
                }
                VSetSource::SetOp { op, lhs, rhs } => {
                    writeln!(out, "{pad}{name} = {lhs} {op:?} {rhs}").unwrap();
                }
            },
            Stmt::While { body, limit, .. } => {
                writeln!(
                    out,
                    "{pad}WHILE loop{}:",
                    if limit.is_some() { " (bounded)" } else { "" }
                )
                .unwrap();
                explain_stmts(body, semantics, block_no, depth + 1, out);
            }
            Stmt::If { then_branch, else_branch, .. } => {
                writeln!(out, "{pad}IF:").unwrap();
                explain_stmts(then_branch, semantics, block_no, depth + 1, out);
                if !else_branch.is_empty() {
                    writeln!(out, "{pad}ELSE:").unwrap();
                    explain_stmts(else_branch, semantics, block_no, depth + 1, out);
                }
            }
            Stmt::Foreach { var, body, .. } => {
                writeln!(out, "{pad}FOREACH {var}:").unwrap();
                explain_stmts(body, semantics, block_no, depth + 1, out);
            }
            _ => {}
        }
    }
}

fn explain_block(
    block: &SelectBlock,
    semantics: PathSemantics,
    no: usize,
    depth: usize,
    out: &mut String,
) {
    let pad = "  ".repeat(depth + 1);
    let pad2 = "  ".repeat(depth + 2);
    writeln!(out, "{pad}BLOCK {no}:").unwrap();

    // Conjunct bookkeeping mirrors the executor's pushdown.
    let will_bind = from_bound_vars_pub(&block.from);
    let mut conjuncts: Vec<(String, Vec<String>)> = Vec::new();
    if let Some(w) = &block.where_clause {
        let mut parts = Vec::new();
        split_conjuncts_pub(w, &mut parts);
        for c in parts {
            let mut refs = Vec::new();
            collect_refs(&c, &mut refs);
            refs.retain(|r| will_bind.contains(r));
            refs.sort();
            refs.dedup();
            conjuncts.push((expr_label(&c), refs));
        }
    }
    let mut bound: FxHashSet<String> = FxHashSet::default();
    let emit_ready = |bound: &FxHashSet<String>,
                          conjuncts: &mut Vec<(String, Vec<String>)>,
                          out: &mut String| {
        let mut i = 0;
        while i < conjuncts.len() {
            let ready =
                !conjuncts[i].1.is_empty() && conjuncts[i].1.iter().all(|v| bound.contains(v));
            if ready {
                let (label, _) = conjuncts.remove(i);
                writeln!(out, "{pad2}  pushdown filter: {label}").unwrap();
            } else {
                i += 1;
            }
        }
    };

    for item in &block.from {
        match item {
            FromItem::Table { name, alias } => {
                writeln!(out, "{pad2}scan {name} AS {alias} (table or vertex set)").unwrap();
                bound.insert(alias.clone());
                emit_ready(&bound, &mut conjuncts, out);
            }
            FromItem::Pattern { start, hops, .. } => {
                writeln!(
                    out,
                    "{pad2}scan {}{}",
                    start.name,
                    start.var.as_ref().map(|v| format!(" AS {v}")).unwrap_or_default()
                )
                .unwrap();
                if let Some(v) = &start.var {
                    bound.insert(v.clone());
                }
                emit_ready(&bound, &mut conjuncts, out);
                for hop in hops {
                    let to = hop
                        .to
                        .var
                        .as_ref()
                        .map(|v| format!("{} AS {v}", hop.to.name))
                        .unwrap_or_else(|| hop.to.name.clone());
                    // Will the target be spec-anchored by a sargable conjunct?
                    let sargable = hop.to.var.as_ref().is_some_and(|tv| {
                        conjuncts.iter().any(|(_, refs)| refs.len() == 1 && refs[0] == *tv)
                    });
                    let strategy = if hop.darpe.as_single_symbol().is_some() {
                        "adjacency scan".to_string()
                    } else if !semantics.is_enumerative() {
                        "SDMC counting kernel, forward (polynomial, Thm 6.1)".to_string()
                    } else if sargable
                        || hop.to.var.as_ref().is_some_and(|tv| bound.contains(tv))
                    {
                        "enumerative kernel, backward from anchored target (EXPONENTIAL)"
                            .to_string()
                    } else {
                        "enumerative kernel, forward (EXPONENTIAL)".to_string()
                    };
                    writeln!(out, "{pad2}hop -({})-> {to}: {strategy}", hop.darpe).unwrap();
                    if sargable {
                        // Name the consumed conjuncts.
                        if let Some(tv) = &hop.to.var {
                            conjuncts.retain(|(label, refs)| {
                                if refs.len() == 1 && refs[0] == *tv {
                                    writeln!(out, "{pad2}  sargable anchor: {label}").unwrap();
                                    false
                                } else {
                                    true
                                }
                            });
                        }
                    }
                    if let Some(ev) = &hop.edge_var {
                        bound.insert(ev.clone());
                    }
                    if let Some(tv) = &hop.to.var {
                        bound.insert(tv.clone());
                    }
                    emit_ready(&bound, &mut conjuncts, out);
                }
            }
        }
    }
    for (label, _) in &conjuncts {
        writeln!(out, "{pad2}residual filter: {label}").unwrap();
    }
    if !block.accum.is_empty() {
        writeln!(
            out,
            "{pad2}ACCUM: {} statement(s), snapshot Map/Reduce",
            block.accum.len()
        )
        .unwrap();
    }
    if !block.post_accum.is_empty() {
        writeln!(out, "{pad2}POST_ACCUM: {} statement(s)", block.post_accum.len()).unwrap();
    }
    if let Some(g) = &block.group_by {
        writeln!(out, "{pad2}GROUP BY: {} grouping set(s)", g.sets.len()).unwrap();
    }
    for frag in &block.outputs {
        let kind = if frag.items.len() == 1
            && frag.items[0].alias.is_none()
            && matches!(frag.items[0].expr, Expr::Ident(_))
        {
            "vertex set"
        } else if frag.items.iter().any(|i| i.expr.contains_aggregate()) {
            "aggregated table"
        } else {
            "projected table"
        };
        writeln!(
            out,
            "{pad2}output{}: {kind}",
            frag.into.as_ref().map(|n| format!(" INTO {n}")).unwrap_or_default()
        )
        .unwrap();
    }
}

fn expr_label(e: &Expr) -> String {
    match e {
        Expr::Binary { op, lhs, rhs } => {
            format!("{} {op:?} {}", expr_label(lhs), expr_label(rhs))
        }
        Expr::Ident(n) => n.clone(),
        Expr::Attr { base, field } => format!("{base}.{field}"),
        Expr::VAcc { var, name, .. } => format!("{var}.@{name}"),
        Expr::GAcc(n) => format!("@@{n}"),
        Expr::Str(s) => format!("'{s}'"),
        Expr::Int(i) => i.to_string(),
        Expr::Double(d) => d.to_string(),
        Expr::Call { func, .. } => format!("{func}(..)"),
        _ => "<expr>".to_string(),
    }
}

fn collect_refs(e: &Expr, out: &mut Vec<String>) {
    e.walk(&mut |sub| match sub {
        Expr::Ident(n) => out.push(n.clone()),
        Expr::Attr { base, .. } => out.push(base.clone()),
        Expr::VAcc { var, .. } => out.push(var.clone()),
        _ => {}
    });
}

fn split_conjuncts_pub(e: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary { op: BinOp::And, lhs, rhs } = e {
        split_conjuncts_pub(lhs, out);
        split_conjuncts_pub(rhs, out);
    } else {
        out.push(e.clone());
    }
}

fn from_bound_vars_pub(items: &[FromItem]) -> FxHashSet<String> {
    let mut out = FxHashSet::default();
    for item in items {
        match item {
            FromItem::Table { alias, .. } => {
                out.insert(alias.clone());
            }
            FromItem::Pattern { start, hops, .. } => {
                if let Some(v) = &start.var {
                    out.insert(v.clone());
                }
                for h in hops {
                    if let Some(v) = &h.edge_var {
                        out.insert(v.clone());
                    }
                    if let Some(v) = &h.to.var {
                        out.insert(v.clone());
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::stdlib;

    #[test]
    fn qn_plan_names_the_counting_kernel_and_pushdowns() {
        let q = parse_query(&stdlib::qn("V", "E")).unwrap();
        let plan = explain(&q, PathSemantics::AllShortestPaths).unwrap();
        assert!(plan.contains("SDMC counting kernel"), "{plan}");
        assert!(plan.contains("pushdown filter: s.name Eq srcName"), "{plan}");
        // t.name filter becomes a sargable anchor or pushdown.
        assert!(plan.contains("t.name"), "{plan}");
        assert!(!plan.contains("EXPONENTIAL"), "{plan}");
    }

    #[test]
    fn qn_plan_under_enumeration_warns_and_anchors_backward() {
        let q = parse_query(&stdlib::qn("V", "E")).unwrap();
        let plan = explain(&q, PathSemantics::NonRepeatedEdge).unwrap();
        assert!(plan.contains("EXPONENTIAL"), "{plan}");
        assert!(plan.contains("backward from anchored target"), "{plan}");
        assert!(plan.contains("sargable anchor: t.name Eq tgtName"), "{plan}");
    }

    #[test]
    fn pagerank_plan_shows_loop_and_adjacency_scans() {
        let q = parse_query(&stdlib::pagerank("Page", "LinkTo")).unwrap();
        let plan = explain(&q, PathSemantics::AllShortestPaths).unwrap();
        assert!(plan.contains("WHILE loop (bounded)"), "{plan}");
        assert!(plan.contains("adjacency scan"), "{plan}");
        assert!(plan.contains("POST_ACCUM: 3 statement(s)"), "{plan}");
    }

    #[test]
    fn use_semantics_is_reflected_downstream() {
        let q = parse_query(
            "CREATE QUERY x() { USE SEMANTICS 'nre'; S = SELECT t FROM V:s -(E>*)- V:t; }",
        )
        .unwrap();
        let plan = explain(&q, PathSemantics::AllShortestPaths).unwrap();
        assert!(plan.contains("USE SEMANTICS -> NonRepeatedEdge"), "{plan}");
        assert!(plan.contains("enumerative kernel, forward (EXPONENTIAL)"), "{plan}");
    }

    #[test]
    fn multi_output_fragments_are_classified() {
        let q = parse_query(stdlib::example5_multi_output()).unwrap();
        let plan = explain(&q, PathSemantics::AllShortestPaths).unwrap();
        assert!(plan.contains("output INTO PerCust: projected table"), "{plan}");
        assert!(plan.contains("output INTO Total: projected table"), "{plan}");
        assert!(plan.contains("ACCUM: 4 statement(s)"), "{plan}");
    }
}
