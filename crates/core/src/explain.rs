//! `EXPLAIN` — static query plans as a structured, stable tree.
//!
//! [`explain_plan`] compiles a parsed query into a [`Plan`]: a tree of
//! [`PlanNode`]s describing, for every SELECT block, the evaluation
//! strategy the engine will use — how each FROM item is scanned, which
//! WHERE conjuncts are pushed down to which binding step, whether each
//! pattern hop runs as an adjacency scan, a polynomial SDMC **counting**
//! kernel, or an exponential **enumerative** kernel (and from which
//! endpoint), and how each accumulator absorbs binding multiplicities.
//! This makes the paper's tractability story *inspectable*: the plan
//! names the exact mechanism that keeps (or fails to keep) a query
//! polynomial.
//!
//! The tree renders two ways, both documented in `docs/PLAN_FORMAT.md`
//! and pinned by the `explain_golden` test suite:
//!
//! * [`Plan::render`] — the indented text tree (`gsql_shell --explain`,
//!   `EXPLAIN <query>`),
//! * [`Plan::to_json`] — a JSON document (`POST /explain` on
//!   `gsql-serve`, `gsql_shell --explain --json`).
//!
//! The same node vocabulary (the [`PlanNode::op`] strings) is shared by
//! `PROFILE` ([`crate::profile::Profile`]), whose execution tree
//! annotates these operators with measured counters.

use crate::ast::*;
use crate::error::Result;
use crate::semantics::PathSemantics;
use pgraph::fxhash::FxHashSet;
use std::fmt::Write as _;

/// One operator of a static query plan.
///
/// `op` is a stable machine-readable tag drawn from the vocabulary
/// documented in `docs/PLAN_FORMAT.md` (`"query"`, `"block"`, `"scan"`,
/// `"hop"`, `"accum"`, ...); `detail` is the human-readable line the
/// text rendering prints for this node.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// Stable operator tag (see `docs/PLAN_FORMAT.md` for the full list).
    pub op: &'static str,
    /// Human-readable description; exactly the text-rendering line.
    pub detail: String,
    /// Child operators, in evaluation order.
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    fn new(op: &'static str, detail: impl Into<String>) -> Self {
        PlanNode { op, detail: detail.into(), children: Vec::new() }
    }

    /// Number of nodes in this subtree, including `self`.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(PlanNode::size).sum::<usize>()
    }
}

/// A complete static plan for one query under one [`PathSemantics`].
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The query's declared name.
    pub query: String,
    /// The semantics the plan was computed under (the engine default;
    /// `USE SEMANTICS` switches are reflected inside the tree).
    pub semantics: PathSemantics,
    /// The plan tree; the root is always an `op == "query"` node.
    pub root: PlanNode,
}

impl Plan {
    /// Renders the plan as an indented text tree (two spaces per level).
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_into(&self.root, 0, &mut out);
        out
    }

    /// Renders the plan as a single-line JSON document:
    /// `{"query":..,"semantics":..,"plan":{"op":..,"detail":..,"children":[..]}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"query\":");
        json_string(&mut out, &self.query);
        write!(out, ",\"semantics\":\"{:?}\",\"plan\":", self.semantics).unwrap();
        node_json(&mut out, &self.root);
        out.push('}');
        out
    }
}

fn render_into(node: &PlanNode, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(&node.detail);
    out.push('\n');
    for c in &node.children {
        render_into(c, depth + 1, out);
    }
}

fn node_json(out: &mut String, node: &PlanNode) {
    out.push_str("{\"op\":");
    json_string(out, node.op);
    out.push_str(",\"detail\":");
    json_string(out, &node.detail);
    out.push_str(",\"children\":[");
    for (i, c) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        node_json(out, c);
    }
    out.push_str("]}");
}

/// Appends `s` as a JSON string literal (quoted, escaped).
pub(crate) fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds the static [`Plan`] for `query` under `semantics`.
pub fn explain_plan(query: &Query, semantics: PathSemantics) -> Result<Plan> {
    let mut root = PlanNode::new(
        "query",
        format!("QUERY {} [{:?} semantics]", query.name, semantics),
    );
    let mut block_no = 0usize;
    explain_stmts(&query.body, semantics, &mut block_no, &mut root.children);
    Ok(Plan { query: query.name.clone(), semantics, root })
}

/// Renders a static plan for `query` under `semantics` as text — the
/// historical string-only entry point, equivalent to
/// `explain_plan(query, semantics)?.render()`.
pub fn explain(query: &Query, semantics: PathSemantics) -> Result<String> {
    Ok(explain_plan(query, semantics)?.render())
}

fn explain_stmts(
    stmts: &[Stmt],
    mut semantics: PathSemantics,
    block_no: &mut usize,
    out: &mut Vec<PlanNode>,
) {
    for stmt in stmts {
        match stmt {
            Stmt::UseSemantics(s) => {
                semantics = *s;
                out.push(PlanNode::new(
                    "use-semantics",
                    format!("USE SEMANTICS -> {semantics:?}"),
                ));
            }
            Stmt::Select(block) => {
                *block_no += 1;
                out.push(explain_block(block, semantics, *block_no));
            }
            Stmt::VSetAssign { name, source, .. } => match source {
                VSetSource::Select(block) => {
                    *block_no += 1;
                    out.push(PlanNode::new(
                        "vset-assign",
                        format!("{name} = <block {block_no}>"),
                    ));
                    out.push(explain_block(block, semantics, *block_no));
                }
                VSetSource::Literal(entries) => {
                    out.push(PlanNode::new(
                        "vset-assign",
                        format!("{name} = scan {{{}}}", entries.join(", ")),
                    ));
                }
                VSetSource::SetOp { op, lhs, rhs } => {
                    out.push(PlanNode::new(
                        "vset-assign",
                        format!("{name} = {lhs} {op:?} {rhs}"),
                    ));
                }
            },
            Stmt::While { body, limit, .. } => {
                let mut node = PlanNode::new(
                    "while",
                    format!(
                        "WHILE loop{}:",
                        if limit.is_some() { " (bounded)" } else { "" }
                    ),
                );
                explain_stmts(body, semantics, block_no, &mut node.children);
                out.push(node);
            }
            Stmt::If { then_branch, else_branch, .. } => {
                let mut node = PlanNode::new("if", "IF:");
                explain_stmts(then_branch, semantics, block_no, &mut node.children);
                out.push(node);
                if !else_branch.is_empty() {
                    let mut node = PlanNode::new("else", "ELSE:");
                    explain_stmts(else_branch, semantics, block_no, &mut node.children);
                    out.push(node);
                }
            }
            Stmt::Foreach { var, body, .. } => {
                let mut node = PlanNode::new("foreach", format!("FOREACH {var}:"));
                explain_stmts(body, semantics, block_no, &mut node.children);
                out.push(node);
            }
            _ => {}
        }
    }
}

fn explain_block(block: &SelectBlock, semantics: PathSemantics, no: usize) -> PlanNode {
    let mut node = PlanNode::new("block", format!("BLOCK {no}:"));

    // Conjunct bookkeeping mirrors the executor's pushdown.
    let will_bind = from_bound_vars_pub(&block.from);
    let mut conjuncts: Vec<(String, Vec<String>)> = Vec::new();
    if let Some(w) = &block.where_clause {
        let mut parts = Vec::new();
        split_conjuncts_pub(w, &mut parts);
        for c in parts {
            let mut refs = Vec::new();
            collect_refs(&c, &mut refs);
            refs.retain(|r| will_bind.contains(r));
            refs.sort();
            refs.dedup();
            conjuncts.push((expr_label(&c), refs));
        }
    }
    let mut bound: FxHashSet<String> = FxHashSet::default();
    // Every conjunct whose variables are all bound attaches to `parent`
    // (the binding step that made it ready) as a pushdown-filter child.
    let emit_ready = |bound: &FxHashSet<String>,
                      conjuncts: &mut Vec<(String, Vec<String>)>,
                      parent: &mut PlanNode| {
        let mut i = 0;
        while i < conjuncts.len() {
            let ready =
                !conjuncts[i].1.is_empty() && conjuncts[i].1.iter().all(|v| bound.contains(v));
            if ready {
                let (label, _) = conjuncts.remove(i);
                parent.children.push(PlanNode::new(
                    "pushdown-filter",
                    format!("pushdown filter: {label}"),
                ));
            } else {
                i += 1;
            }
        }
    };

    for item in &block.from {
        match item {
            FromItem::Table { name, alias } => {
                let mut scan = PlanNode::new(
                    "scan",
                    format!("scan {name} AS {alias} (table or vertex set)"),
                );
                bound.insert(alias.clone());
                emit_ready(&bound, &mut conjuncts, &mut scan);
                node.children.push(scan);
            }
            FromItem::Pattern { start, hops, .. } => {
                let mut scan = PlanNode::new(
                    "scan",
                    format!(
                        "scan {}{}",
                        start.name,
                        start.var.as_ref().map(|v| format!(" AS {v}")).unwrap_or_default()
                    ),
                );
                if let Some(v) = &start.var {
                    bound.insert(v.clone());
                }
                emit_ready(&bound, &mut conjuncts, &mut scan);
                node.children.push(scan);
                for hop in hops {
                    let to = hop
                        .to
                        .var
                        .as_ref()
                        .map(|v| format!("{} AS {v}", hop.to.name))
                        .unwrap_or_else(|| hop.to.name.clone());
                    // Will the target be spec-anchored by a sargable conjunct?
                    let sargable = hop.to.var.as_ref().is_some_and(|tv| {
                        conjuncts.iter().any(|(_, refs)| refs.len() == 1 && refs[0] == *tv)
                    });
                    let strategy = if hop.darpe.as_single_symbol().is_some() {
                        "adjacency scan".to_string()
                    } else if !semantics.is_enumerative() {
                        "SDMC counting kernel, forward (polynomial, Thm 6.1)".to_string()
                    } else if sargable
                        || hop.to.var.as_ref().is_some_and(|tv| bound.contains(tv))
                    {
                        "enumerative kernel, backward from anchored target (EXPONENTIAL)"
                            .to_string()
                    } else {
                        "enumerative kernel, forward (EXPONENTIAL)".to_string()
                    };
                    let mut hop_node = PlanNode::new(
                        "hop",
                        format!("hop -({})-> {to}: {strategy}", hop.darpe),
                    );
                    if sargable {
                        // Name the consumed conjuncts.
                        if let Some(tv) = &hop.to.var {
                            conjuncts.retain(|(label, refs)| {
                                if refs.len() == 1 && refs[0] == *tv {
                                    hop_node.children.push(PlanNode::new(
                                        "sargable-anchor",
                                        format!("sargable anchor: {label}"),
                                    ));
                                    false
                                } else {
                                    true
                                }
                            });
                        }
                    }
                    if let Some(ev) = &hop.edge_var {
                        bound.insert(ev.clone());
                    }
                    if let Some(tv) = &hop.to.var {
                        bound.insert(tv.clone());
                    }
                    emit_ready(&bound, &mut conjuncts, &mut hop_node);
                    node.children.push(hop_node);
                }
            }
        }
    }
    for (label, _) in &conjuncts {
        node.children.push(PlanNode::new(
            "residual-filter",
            format!("residual filter: {label}"),
        ));
    }
    if !block.accum.is_empty() {
        node.children.push(PlanNode::new(
            "accum",
            format!(
                "ACCUM: {} statement(s), snapshot Map/Reduce",
                block.accum.len()
            ),
        ));
    }
    if !block.post_accum.is_empty() {
        node.children.push(PlanNode::new(
            "post-accum",
            format!("POST_ACCUM: {} statement(s)", block.post_accum.len()),
        ));
    }
    if let Some(g) = &block.group_by {
        node.children.push(PlanNode::new(
            "group-by",
            format!("GROUP BY: {} grouping set(s)", g.sets.len()),
        ));
    }
    for frag in &block.outputs {
        let kind = if frag.items.len() == 1
            && frag.items[0].alias.is_none()
            && matches!(frag.items[0].expr, Expr::Ident(_))
        {
            "vertex set"
        } else if frag.items.iter().any(|i| i.expr.contains_aggregate()) {
            "aggregated table"
        } else {
            "projected table"
        };
        node.children.push(PlanNode::new(
            "output",
            format!(
                "output{}: {kind}",
                frag.into.as_ref().map(|n| format!(" INTO {n}")).unwrap_or_default()
            ),
        ));
    }
    node
}

/// A compact one-line label for a SELECT block's FROM clause, shared
/// with the `PROFILE` tree so the two displays line up.
pub(crate) fn block_label(block: &SelectBlock) -> String {
    let mut out = String::from("SELECT FROM ");
    for (i, item) in block.from.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match item {
            FromItem::Table { name, alias } => {
                write!(out, "{name}:{alias}").unwrap();
            }
            FromItem::Pattern { start, hops, .. } => {
                out.push_str(&vspec_label(start));
                for hop in hops {
                    write!(out, " -({})- {}", hop.darpe, vspec_label(&hop.to)).unwrap();
                }
            }
        }
    }
    out
}

pub(crate) fn vspec_label(spec: &VSpec) -> String {
    match &spec.var {
        Some(v) => format!("{}:{v}", spec.name),
        None => spec.name.clone(),
    }
}

fn expr_label(e: &Expr) -> String {
    match e {
        Expr::Binary { op, lhs, rhs } => {
            format!("{} {op:?} {}", expr_label(lhs), expr_label(rhs))
        }
        Expr::Ident(n) => n.clone(),
        Expr::Attr { base, field } => format!("{base}.{field}"),
        Expr::VAcc { var, name, .. } => format!("{var}.@{name}"),
        Expr::GAcc(n) => format!("@@{n}"),
        Expr::Str(s) => format!("'{s}'"),
        Expr::Int(i) => i.to_string(),
        Expr::Double(d) => d.to_string(),
        Expr::Call { func, .. } => format!("{func}(..)"),
        _ => "<expr>".to_string(),
    }
}

fn collect_refs(e: &Expr, out: &mut Vec<String>) {
    e.walk(&mut |sub| match sub {
        Expr::Ident(n) => out.push(n.clone()),
        Expr::Attr { base, .. } => out.push(base.clone()),
        Expr::VAcc { var, .. } => out.push(var.clone()),
        _ => {}
    });
}

fn split_conjuncts_pub(e: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary { op: BinOp::And, lhs, rhs } = e {
        split_conjuncts_pub(lhs, out);
        split_conjuncts_pub(rhs, out);
    } else {
        out.push(e.clone());
    }
}

fn from_bound_vars_pub(items: &[FromItem]) -> FxHashSet<String> {
    let mut out = FxHashSet::default();
    for item in items {
        match item {
            FromItem::Table { alias, .. } => {
                out.insert(alias.clone());
            }
            FromItem::Pattern { start, hops, .. } => {
                if let Some(v) = &start.var {
                    out.insert(v.clone());
                }
                for h in hops {
                    if let Some(v) = &h.edge_var {
                        out.insert(v.clone());
                    }
                    if let Some(v) = &h.to.var {
                        out.insert(v.clone());
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::stdlib;

    #[test]
    fn qn_plan_names_the_counting_kernel_and_pushdowns() {
        let q = parse_query(&stdlib::qn("V", "E")).unwrap();
        let plan = explain(&q, PathSemantics::AllShortestPaths).unwrap();
        assert!(plan.contains("SDMC counting kernel"), "{plan}");
        assert!(plan.contains("pushdown filter: s.name Eq srcName"), "{plan}");
        // t.name filter becomes a sargable anchor or pushdown.
        assert!(plan.contains("t.name"), "{plan}");
        assert!(!plan.contains("EXPONENTIAL"), "{plan}");
    }

    #[test]
    fn qn_plan_under_enumeration_warns_and_anchors_backward() {
        let q = parse_query(&stdlib::qn("V", "E")).unwrap();
        let plan = explain(&q, PathSemantics::NonRepeatedEdge).unwrap();
        assert!(plan.contains("EXPONENTIAL"), "{plan}");
        assert!(plan.contains("backward from anchored target"), "{plan}");
        assert!(plan.contains("sargable anchor: t.name Eq tgtName"), "{plan}");
    }

    #[test]
    fn pagerank_plan_shows_loop_and_adjacency_scans() {
        let q = parse_query(&stdlib::pagerank("Page", "LinkTo")).unwrap();
        let plan = explain(&q, PathSemantics::AllShortestPaths).unwrap();
        assert!(plan.contains("WHILE loop (bounded)"), "{plan}");
        assert!(plan.contains("adjacency scan"), "{plan}");
        assert!(plan.contains("POST_ACCUM: 3 statement(s)"), "{plan}");
    }

    #[test]
    fn use_semantics_is_reflected_downstream() {
        let q = parse_query(
            "CREATE QUERY x() { USE SEMANTICS 'nre'; S = SELECT t FROM V:s -(E>*)- V:t; }",
        )
        .unwrap();
        let plan = explain(&q, PathSemantics::AllShortestPaths).unwrap();
        assert!(plan.contains("USE SEMANTICS -> NonRepeatedEdge"), "{plan}");
        assert!(plan.contains("enumerative kernel, forward (EXPONENTIAL)"), "{plan}");
    }

    #[test]
    fn multi_output_fragments_are_classified() {
        let q = parse_query(stdlib::example5_multi_output()).unwrap();
        let plan = explain(&q, PathSemantics::AllShortestPaths).unwrap();
        assert!(plan.contains("output INTO PerCust: projected table"), "{plan}");
        assert!(plan.contains("output INTO Total: projected table"), "{plan}");
        assert!(plan.contains("ACCUM: 4 statement(s)"), "{plan}");
    }

    #[test]
    fn plan_tree_structure_matches_text() {
        let q = parse_query(&stdlib::qn("V", "E")).unwrap();
        let plan = explain_plan(&q, PathSemantics::AllShortestPaths).unwrap();
        assert_eq!(plan.root.op, "query");
        // One hop under the block, with the pushdown attached to the scan.
        let block = plan
            .root
            .children
            .iter()
            .find(|n| n.op == "block")
            .expect("block node");
        assert!(block.children.iter().any(|n| n.op == "scan"));
        assert!(block.children.iter().any(|n| n.op == "hop"));
        // Text rendering and tree agree on node count (one line per node).
        assert_eq!(plan.render().lines().count(), plan.root.size());
    }

    #[test]
    fn plan_json_is_well_formed_and_escaped() {
        let q = parse_query(
            "CREATE QUERY j() { S = SELECT s FROM V:s WHERE s.name == 'a\"b'; }",
        )
        .unwrap();
        let plan = explain_plan(&q, PathSemantics::AllShortestPaths).unwrap();
        let json = plan.to_json();
        assert!(json.starts_with("{\"query\":\"j\""), "{json}");
        assert!(json.contains("\\\""), "escaped quote missing: {json}");
        assert!(json.contains("\"semantics\":\"AllShortestPaths\""), "{json}");
        // Balanced braces/brackets (JSON strings contain no braces here
        // beyond the escaped quote content).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
    }
}
