//! `EXPLAIN` — static query plans as a structured, stable tree.
//!
//! [`explain_plan`] compiles a parsed query into a [`Plan`]: a tree of
//! [`PlanNode`]s describing, for every SELECT block, the evaluation
//! strategy the engine will use — how each FROM item is scanned, which
//! WHERE conjuncts are pushed down to which binding step, whether each
//! pattern hop runs as an adjacency scan, a polynomial SDMC **counting**
//! kernel, or an exponential **enumerative** kernel (and from which
//! endpoint), and how each accumulator absorbs binding multiplicities.
//! This makes the paper's tractability story *inspectable*: the plan
//! names the exact mechanism that keeps (or fails to keep) a query
//! polynomial.
//!
//! The tree renders two ways, both documented in `docs/PLAN_FORMAT.md`
//! and pinned by the `explain_golden` test suite:
//!
//! * [`Plan::render`] — the indented text tree (`gsql_shell --explain`,
//!   `EXPLAIN <query>`),
//! * [`Plan::to_json`] — a JSON document (`POST /explain` on
//!   `gsql-serve`, `gsql_shell --explain --json`).
//!
//! The same node vocabulary (the [`PlanNode::op`] strings) is shared by
//! `PROFILE` ([`crate::profile::Profile`]), whose execution tree
//! annotates these operators with measured counters.

use crate::ast::*;
use crate::error::Result;
use crate::semantics::PathSemantics;
use std::fmt::Write as _;

/// One operator of a static query plan.
///
/// `op` is a stable machine-readable tag drawn from the vocabulary
/// documented in `docs/PLAN_FORMAT.md` (`"query"`, `"block"`, `"scan"`,
/// `"hop"`, `"accum"`, ...); `detail` is the human-readable line the
/// text rendering prints for this node.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// Stable operator tag (see `docs/PLAN_FORMAT.md` for the full list).
    pub op: &'static str,
    /// Human-readable description; the text rendering prints this line
    /// (plus the estimate suffix when estimates are present).
    pub detail: String,
    /// Child operators, in evaluation order.
    pub children: Vec<PlanNode>,
    /// Planner cardinality estimate — rows flowing out of this operator.
    /// `None` when the plan was lowered without graph statistics (the
    /// graph-less [`explain_plan`] entry point).
    pub est_rows: Option<u64>,
    /// Planner cost estimate — an order-of-magnitude work unit count
    /// (rows touched, CSR entries scanned, kernel edge traversals).
    pub est_cost: Option<u64>,
}

impl PlanNode {
    pub(crate) fn new(op: &'static str, detail: impl Into<String>) -> Self {
        PlanNode {
            op,
            detail: detail.into(),
            children: Vec::new(),
            est_rows: None,
            est_cost: None,
        }
    }

    /// Number of nodes in this subtree, including `self`.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(PlanNode::size).sum::<usize>()
    }
}

/// A complete static plan for one query under one [`PathSemantics`].
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The query's declared name.
    pub query: String,
    /// The semantics the plan was computed under (the engine default;
    /// `USE SEMANTICS` switches are reflected inside the tree).
    pub semantics: PathSemantics,
    /// The plan tree; the root is always an `op == "query"` node.
    pub root: PlanNode,
}

impl Plan {
    /// Renders the plan as an indented text tree (two spaces per level).
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_into(&self.root, 0, &mut out);
        out
    }

    /// Renders the plan as a single-line JSON document:
    /// `{"query":..,"semantics":..,"plan":{"op":..,"detail":..,"children":[..]}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"query\":");
        json_string(&mut out, &self.query);
        write!(out, ",\"semantics\":\"{:?}\",\"plan\":", self.semantics).unwrap();
        node_json(&mut out, &self.root);
        out.push('}');
        out
    }
}

fn render_into(node: &PlanNode, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(&node.detail);
    if let (Some(r), Some(c)) = (node.est_rows, node.est_cost) {
        write!(out, " [est_rows={r} est_cost={c}]").unwrap();
    }
    out.push('\n');
    for c in &node.children {
        render_into(c, depth + 1, out);
    }
}

fn node_json(out: &mut String, node: &PlanNode) {
    out.push_str("{\"op\":");
    json_string(out, node.op);
    out.push_str(",\"detail\":");
    json_string(out, &node.detail);
    if let (Some(r), Some(c)) = (node.est_rows, node.est_cost) {
        write!(out, ",\"est_rows\":{r},\"est_cost\":{c}").unwrap();
    }
    out.push_str(",\"children\":[");
    for (i, c) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        node_json(out, c);
    }
    out.push_str("]}");
}

/// Appends `s` as a JSON string literal (quoted, escaped).
pub(crate) fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds the static [`Plan`] for `query` under `semantics`.
///
/// This graph-less entry point lowers through the same planner as
/// execution (`crate::plan::lower_query`) but without graph
/// statistics, so `est_rows`/`est_cost` are absent and every cost-based
/// choice falls back to the syntax-driven default. Use
/// [`crate::Engine::explain`] to see the cost-annotated plan the engine
/// actually executes against its graph.
pub fn explain_plan(query: &Query, semantics: PathSemantics) -> Result<Plan> {
    Ok(crate::plan::lower_query(query, semantics, None).plan)
}

/// Renders a static plan for `query` under `semantics` as text — the
/// historical string-only entry point, equivalent to
/// `explain_plan(query, semantics)?.render()`.
pub fn explain(query: &Query, semantics: PathSemantics) -> Result<String> {
    Ok(explain_plan(query, semantics)?.render())
}

/// A compact one-line label for a SELECT block's FROM clause, shared
/// with the `PROFILE` tree so the two displays line up.
pub(crate) fn block_label(block: &SelectBlock) -> String {
    let mut out = String::from("SELECT FROM ");
    for (i, item) in block.from.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match item {
            FromItem::Table { name, alias } => {
                write!(out, "{name}:{alias}").unwrap();
            }
            FromItem::Pattern { start, hops, .. } => {
                out.push_str(&vspec_label(start));
                for hop in hops {
                    write!(out, " -({})- {}", hop.darpe, vspec_label(&hop.to)).unwrap();
                }
            }
        }
    }
    out
}

pub(crate) fn vspec_label(spec: &VSpec) -> String {
    match &spec.var {
        Some(v) => format!("{}:{v}", spec.name),
        None => spec.name.clone(),
    }
}





#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::stdlib;

    #[test]
    fn qn_plan_names_the_counting_kernel_and_pushdowns() {
        let q = parse_query(&stdlib::qn("V", "E")).unwrap();
        let plan = explain(&q, PathSemantics::AllShortestPaths).unwrap();
        assert!(plan.contains("SDMC counting kernel"), "{plan}");
        assert!(plan.contains("pushdown filter: s.name Eq srcName"), "{plan}");
        // t.name filter becomes a sargable anchor or pushdown.
        assert!(plan.contains("t.name"), "{plan}");
        assert!(!plan.contains("EXPONENTIAL"), "{plan}");
    }

    #[test]
    fn qn_plan_under_enumeration_warns_and_anchors_backward() {
        let q = parse_query(&stdlib::qn("V", "E")).unwrap();
        let plan = explain(&q, PathSemantics::NonRepeatedEdge).unwrap();
        assert!(plan.contains("EXPONENTIAL"), "{plan}");
        assert!(plan.contains("backward from anchored target"), "{plan}");
        assert!(plan.contains("sargable anchor: t.name Eq tgtName"), "{plan}");
    }

    #[test]
    fn pagerank_plan_shows_loop_and_adjacency_scans() {
        let q = parse_query(&stdlib::pagerank("Page", "LinkTo")).unwrap();
        let plan = explain(&q, PathSemantics::AllShortestPaths).unwrap();
        assert!(plan.contains("WHILE loop (bounded)"), "{plan}");
        assert!(plan.contains("adjacency scan"), "{plan}");
        assert!(plan.contains("POST_ACCUM: 3 statement(s)"), "{plan}");
    }

    #[test]
    fn use_semantics_is_reflected_downstream() {
        let q = parse_query(
            "CREATE QUERY x() { USE SEMANTICS 'nre'; S = SELECT t FROM V:s -(E>*)- V:t; }",
        )
        .unwrap();
        let plan = explain(&q, PathSemantics::AllShortestPaths).unwrap();
        assert!(plan.contains("USE SEMANTICS -> NonRepeatedEdge"), "{plan}");
        assert!(plan.contains("enumerative kernel, forward (EXPONENTIAL)"), "{plan}");
    }

    #[test]
    fn multi_output_fragments_are_classified() {
        let q = parse_query(stdlib::example5_multi_output()).unwrap();
        let plan = explain(&q, PathSemantics::AllShortestPaths).unwrap();
        assert!(plan.contains("output INTO PerCust: projected table"), "{plan}");
        assert!(plan.contains("output INTO Total: projected table"), "{plan}");
        assert!(plan.contains("ACCUM: 4 statement(s)"), "{plan}");
    }

    #[test]
    fn plan_tree_structure_matches_text() {
        let q = parse_query(&stdlib::qn("V", "E")).unwrap();
        let plan = explain_plan(&q, PathSemantics::AllShortestPaths).unwrap();
        assert_eq!(plan.root.op, "query");
        // One hop under the block, with the pushdown attached to the scan.
        let block = plan
            .root
            .children
            .iter()
            .find(|n| n.op == "block")
            .expect("block node");
        assert!(block.children.iter().any(|n| n.op == "scan"));
        assert!(block.children.iter().any(|n| n.op == "hop"));
        // Text rendering and tree agree on node count (one line per node).
        assert_eq!(plan.render().lines().count(), plan.root.size());
    }

    #[test]
    fn plan_json_is_well_formed_and_escaped() {
        let q = parse_query(
            "CREATE QUERY j() { S = SELECT s FROM V:s WHERE s.name == 'a\"b'; }",
        )
        .unwrap();
        let plan = explain_plan(&q, PathSemantics::AllShortestPaths).unwrap();
        let json = plan.to_json();
        assert!(json.starts_with("{\"query\":\"j\""), "{json}");
        assert!(json.contains("\\\""), "escaped quote missing: {json}");
        assert!(json.contains("\"semantics\":\"AllShortestPaths\""), "{json}");
        // Balanced braces/brackets (JSON strings contain no braces here
        // beyond the escaped quote content).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
    }
}
