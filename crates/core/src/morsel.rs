//! Columnar morsels: the chunked binding-table representation and the
//! work-stealing dispatch loop that drives vectorized execution.
//!
//! The binding table is stored **column-major** ([`MorselTable`]): one
//! `Vec<Binding>` per FROM variable plus a parallel multiplicity vector.
//! Operators that walk one variable (hop expansion reading the source
//! column, WHERE residuals probing a single binding) scan a contiguous
//! slice instead of striding across row structs, and producing a new
//! table is a *gather*: record a selection vector of surviving source
//! rows ([`MorselBuilder`]), then materialize each output column in one
//! sequential pass.
//!
//! Parallel operators split the table into **morsels** — contiguous row
//! ranges of [`Engine::morsel_size`](crate::Engine::with_morsel_size)
//! rows (default [`DEFAULT_MORSEL_SIZE`]) — and feed them to
//! `dispatch`: scoped workers steal morsel indices from a shared
//! atomic counter, results land in a slot per morsel, and the caller
//! consumes them in ascending morsel order. Ascending-order consumption
//! is what keeps every merge deterministic: the sequence of
//! accumulator-partial merges (ACCUM/POST_ACCUM) or row-result
//! concatenations (filters, projections, group keys) is a pure function
//! of the table, never of worker timing — the engine's byte-identical-
//! at-any-parallelism invariant (see `docs/EXECUTION.md`).
//!
//! Error semantics mirror the kernel fan-out in `exec.rs`: the shared
//! [`QueryGuard`] is checkpointed at every morsel boundary (cancellation
//! and budget trips stay prompt mid-clause), a panicking worker poisons
//! the guard and surfaces as a structured `WorkerPanic` that outranks
//! ordinary errors, and otherwise the error from the smallest morsel
//! index wins — the same failure the sequential fold would have hit
//! first.

use crate::error::{Error, Result};
use crate::eval::Binding;
use crate::governor::QueryGuard;
use pgraph::bigcount::BigCount;
use std::ops::Range;

/// Default rows per morsel. Large enough that the steal counter and the
/// per-morsel checkpoint are noise, small enough that a table split
/// across workers load-balances (~1024 bindings, the classic
/// morsel-driven sweet spot).
pub const DEFAULT_MORSEL_SIZE: usize = 1024;

/// Column-major binding table: `cols[c][r]` is row `r`'s binding for
/// FROM variable `c`, and `mults[r]` is the row's multiplicity (the
/// compressed path-count representation of Appendix A). All columns
/// have exactly `mults.len()` entries.
#[derive(Debug, Clone, Default)]
pub struct MorselTable {
    cols: Vec<Vec<Binding>>,
    mults: Vec<BigCount>,
}

impl MorselTable {
    /// The FROM-matching seed: one row binding nothing, multiplicity 1
    /// (the unit of the cross-product the FROM items build up).
    pub fn unit() -> Self {
        MorselTable { cols: Vec::new(), mults: vec![BigCount::one()] }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.mults.len()
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.mults.is_empty()
    }

    /// Number of bound variables (columns).
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// One whole column as a contiguous slice — the columnar access
    /// pattern hop expansion and single-variable filters scan.
    pub fn col(&self, c: usize) -> &[Binding] {
        &self.cols[c]
    }

    /// The binding of row `row` for variable column `col`.
    pub fn binding(&self, row: usize, col: usize) -> &Binding {
        &self.cols[col][row]
    }

    /// Row `row`'s multiplicity.
    pub fn mult(&self, row: usize) -> &BigCount {
        &self.mults[row]
    }

    /// A borrowed row view for expression evaluation (no row
    /// materialization: the evaluator indexes straight into the
    /// columns).
    pub fn bindings_at(&self, row: usize) -> crate::eval::Bindings<'_> {
        crate::eval::Bindings::Columnar { cols: &self.cols, row }
    }
}

/// Builds a [`MorselTable`] derived from a source table by *gather*:
/// callers push `(source row, appended bindings, multiplicity)` triples
/// in output order; [`MorselBuilder::finish`] then materializes every
/// inherited column in one pass over the selection vector. Filters push
/// surviving rows with no extras; expansions (vertex bind, table scan,
/// hop) push one output row per extension with the new column(s)'
/// bindings as extras.
pub struct MorselBuilder<'a> {
    src: &'a MorselTable,
    /// Selection vector: source row index per output row.
    sel: Vec<usize>,
    /// Data for the appended columns, one `Vec` per new column.
    extra: Vec<Vec<Binding>>,
    mults: Vec<BigCount>,
}

impl<'a> MorselBuilder<'a> {
    /// A builder deriving from `src` and appending `n_extra` new
    /// columns.
    pub fn new(src: &'a MorselTable, n_extra: usize) -> Self {
        MorselBuilder {
            src,
            sel: Vec::new(),
            extra: (0..n_extra).map(|_| Vec::new()).collect(),
            mults: Vec::new(),
        }
    }

    /// Appends an output row inheriting `src_row`'s bindings, extending
    /// it with `extras` (one binding per appended column, in column
    /// order) at multiplicity `mult`.
    pub fn push(&mut self, src_row: usize, extras: &[Binding], mult: BigCount) {
        debug_assert_eq!(extras.len(), self.extra.len());
        self.sel.push(src_row);
        for (col, b) in self.extra.iter_mut().zip(extras) {
            col.push(*b);
        }
        self.mults.push(mult);
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.sel.len()
    }

    /// `true` when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.sel.is_empty()
    }

    /// Gathers the inherited columns through the selection vector and
    /// appends the new columns, yielding the output table.
    pub fn finish(self) -> MorselTable {
        let mut cols: Vec<Vec<Binding>> = Vec::with_capacity(self.src.width() + self.extra.len());
        for src_col in &self.src.cols {
            // Contiguous write per column; the read side walks the
            // selection vector once per column, staying in one array.
            cols.push(self.sel.iter().map(|&r| src_col[r]).collect());
        }
        cols.extend(self.extra);
        MorselTable { cols, mults: self.mults }
    }
}

/// Splits `len` rows into contiguous morsel ranges of at most `size`
/// rows (the final morsel may be short). `len == 0` yields no morsels.
pub fn morsel_ranges(len: usize, size: usize) -> Vec<Range<usize>> {
    let size = size.max(1);
    (0..len.div_ceil(size)).map(|i| (i * size)..((i + 1) * size).min(len)).collect()
}

/// The outcome of a [`dispatch`] run.
#[derive(Debug)]
pub(crate) struct MorselRun<T> {
    /// One result per morsel, in ascending morsel order.
    pub results: Vec<T>,
    /// Morsels completed per worker (the PROFILE `workers` distribution;
    /// varies with timing and is never consulted for results).
    pub per_worker: Vec<u64>,
}

/// Runs `work(morsel_index, row_range)` over every morsel on up to
/// `workers` scoped threads stealing morsel indices from a shared
/// counter. `workers <= 1` (or a single morsel) runs inline on the
/// caller's thread — the same loop shape, so counters and error choice
/// are identical at any worker count.
///
/// The guard is checkpointed before each morsel. On failure the error
/// for the smallest morsel index is returned (a `WorkerPanic` outranks
/// ordinary errors and poisons the guard, stopping siblings at their
/// next checkpoint).
pub(crate) fn dispatch<T, F>(
    guard: &QueryGuard,
    workers: usize,
    ranges: &[Range<usize>],
    work: F,
) -> Result<MorselRun<T>>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> Result<T> + Sync,
{
    let n = ranges.len();
    if n == 0 {
        return Ok(MorselRun { results: Vec::new(), per_worker: Vec::new() });
    }
    let nworkers = workers.max(1).min(n);
    if nworkers == 1 {
        let mut results = Vec::with_capacity(n);
        for (i, r) in ranges.iter().enumerate() {
            guard.checkpoint()?;
            results.push(work(i, r.clone())?);
        }
        return Ok(MorselRun { results, per_worker: vec![n as u64] });
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    type Done<T> = Vec<(usize, Result<T>)>;
    let outs: Vec<Done<T>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..nworkers)
            .map(|_| {
                let next = &next;
                let work = &work;
                s.spawn(move || -> Done<T> {
                    let mut done: Done<T> = Vec::new();
                    let caught =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let r = guard
                                .checkpoint()
                                .and_then(|()| work(i, ranges[i].clone()));
                            let failed = r.is_err();
                            done.push((i, r));
                            if failed {
                                break;
                            }
                        }));
                    if let Err(payload) = caught {
                        guard.poison();
                        done.push((usize::MAX, Err(guard.worker_panic_error(payload.as_ref()))));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    vec![(usize::MAX, Err(Error::runtime("morsel worker panicked")))]
                })
            })
            .collect()
    });
    let mut per_worker = vec![0u64; nworkers];
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut first_err: Option<(usize, Error)> = None;
    for (w, done) in outs.into_iter().enumerate() {
        for (i, r) in done {
            match r {
                Ok(t) => {
                    per_worker[w] += 1;
                    slots[i] = Some(t);
                }
                Err(e) => {
                    let replace = match &first_err {
                        None => true,
                        Some((pi, pe)) => {
                            if pe.kind() == crate::error::ErrorKind::WorkerPanic {
                                false
                            } else if e.kind() == crate::error::ErrorKind::WorkerPanic {
                                true
                            } else {
                                i < *pi
                            }
                        }
                    };
                    if replace {
                        first_err = Some((i, e));
                    }
                }
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    Ok(MorselRun {
        results: slots
            .into_iter()
            .map(|s| s.expect("morsel completed without result or error"))
            .collect(),
        per_worker,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::{Budget, CancelHandle};
    use pgraph::graph::VertexId;

    fn guard() -> QueryGuard {
        QueryGuard::new(Budget::default(), CancelHandle::new())
    }

    #[test]
    fn ranges_cover_exactly_once() {
        for (len, size) in [(0usize, 4usize), (1, 4), (4, 4), (5, 4), (1023, 1024), (1025, 1024)] {
            let rs = morsel_ranges(len, size);
            let total: usize = rs.iter().map(|r| r.len()).sum();
            assert_eq!(total, len, "len={len} size={size}");
            for w in rs.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            if len > 0 {
                assert_eq!(rs[0].start, 0);
                assert_eq!(rs.last().unwrap().end, len);
            }
        }
    }

    #[test]
    fn builder_gathers_columns_and_extras() {
        let mut src = MorselTable::unit();
        {
            let mut b = MorselBuilder::new(&src, 1);
            for v in 0..4u32 {
                b.push(0, &[Binding::Vertex(VertexId(v))], BigCount::one());
            }
            src = b.finish();
        }
        assert_eq!(src.len(), 4);
        assert_eq!(src.width(), 1);
        // Filter to even vertices, appending a second column.
        let mut b = MorselBuilder::new(&src, 1);
        for r in 0..src.len() {
            if let Binding::Vertex(v) = src.binding(r, 0) {
                if v.0 % 2 == 0 {
                    b.push(r, &[Binding::Vertex(VertexId(v.0 + 10))], src.mult(r).clone());
                }
            }
        }
        let out = b.finish();
        assert_eq!(out.len(), 2);
        assert_eq!(out.width(), 2);
        assert_eq!(out.col(0), &[Binding::Vertex(VertexId(0)), Binding::Vertex(VertexId(2))]);
        assert_eq!(out.col(1), &[Binding::Vertex(VertexId(10)), Binding::Vertex(VertexId(12))]);
    }

    #[test]
    fn dispatch_results_are_in_morsel_order_at_any_worker_count() {
        let g = guard();
        let ranges = morsel_ranges(100, 7);
        for workers in [1, 2, 8] {
            let run = dispatch(&g, workers, &ranges, |i, r| Ok((i, r.len()))).unwrap();
            let idxs: Vec<usize> = run.results.iter().map(|(i, _)| *i).collect();
            assert_eq!(idxs, (0..ranges.len()).collect::<Vec<_>>());
            assert_eq!(run.per_worker.iter().sum::<u64>(), ranges.len() as u64);
        }
    }

    #[test]
    fn dispatch_smallest_morsel_error_wins() {
        let g = guard();
        let ranges = morsel_ranges(64, 4);
        for workers in [1, 4] {
            let err = dispatch(&g, workers, &ranges, |i, _| -> Result<()> {
                if i >= 3 {
                    Err(Error::runtime(format!("boom at {i}")))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
            assert!(err.to_string().contains("boom at 3"), "workers={workers}: {err}");
        }
    }
}
