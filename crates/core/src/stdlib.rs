//! A library of classic graph analytics written in GSQL — the paper's
//! thesis is that accumulators plus minimal control flow make these
//! expressible *inside* the query language, with no client-side driver
//! program. Each function renders the query text for a caller-supplied
//! schema (vertex/edge type names), so the same algorithm runs on the
//! `V`/`E` toy graphs, the SalesGraph and the LDBC social network.

/// PageRank (paper Figure 4 / Example 7), parameterized by vertex and
/// edge type. Parameters at run time: `maxChange`, `maxIteration`,
/// `dampingFactor`.
pub fn pagerank(vertex_type: &str, edge_type: &str) -> String {
    format!(
        r#"
CREATE QUERY PageRank (float maxChange, int maxIteration, float dampingFactor) {{
  MaxAccum<float> @@maxDifference = 9999999.0;  // max score change in an iteration
  SumAccum<float> @received_score;              // sum of scores received from neighbors
  SumAccum<float> @score = 1;                   // initial score for every vertex is 1.
  AllV = {{{vt}.*}};
  WHILE @@maxDifference > maxChange LIMIT maxIteration DO
     @@maxDifference = 0;
     S = SELECT v
         FROM       AllV:v -({et}>)- {vt}:n
         ACCUM      n.@received_score += v.@score/v.outdegree('{et}')
         POST-ACCUM v.@score = 1-dampingFactor + dampingFactor * v.@received_score,
                    v.@received_score = 0,
                    @@maxDifference += abs(v.@score - v.@score');
  END;
}}
"#,
        vt = vertex_type,
        et = edge_type
    )
}

/// Weakly connected components: label-propagation of the minimum vertex
/// id, iterated to fixpoint. Treats directed edges symmetrically.
pub fn wcc(vertex_type: &str, edge_type: &str) -> String {
    format!(
        r#"
CREATE QUERY WCC () {{
  MinAccum<int> @cc = 2147483647;
  OrAccum @@changed;
  AllV = {{{vt}.*}};
  Init = SELECT v FROM AllV:v POST_ACCUM v.@cc = v.id();
  @@changed = true;
  WHILE @@changed DO
    @@changed = false;
    S = SELECT u
        FROM  AllV:v -({et}>|<{et})- {vt}:u
        ACCUM u.@cc += v.@cc
        POST_ACCUM @@changed += u.@cc != u.@cc';
  END;
}}
"#,
        vt = vertex_type,
        et = edge_type
    )
}

/// Single-source hop-count shortest paths via frontier relaxation.
pub fn sssp(vertex_type: &str, edge_type: &str) -> String {
    format!(
        r#"
CREATE QUERY SSSP (vertex src) {{
  MinAccum<int> @dist = 2147483647;
  OrAccum @@changed;
  AllV = {{{vt}.*}};
  Start = {{src}};
  Init = SELECT v FROM Start:v POST_ACCUM v.@dist = 0;
  @@changed = true;
  WHILE @@changed DO
    @@changed = false;
    S = SELECT u
        FROM  AllV:v -({et}>)- {vt}:u
        WHERE v.@dist + 1 < u.@dist
        ACCUM u.@dist += v.@dist + 1
        POST_ACCUM @@changed += u.@dist != u.@dist';
  END;
}}
"#,
        vt = vertex_type,
        et = edge_type
    )
}

/// The path-counting query family of Section 7.1 (`Q_n`): counts the
/// legal paths between two named vertices under the engine's configured
/// path semantics, via a `SumAccum` fed by the `(E>)*` pattern.
pub fn qn(vertex_type: &str, edge_type: &str) -> String {
    format!(
        r#"
CREATE QUERY Qn (string srcName, string tgtName) {{
  SumAccum<int> @pathCount;
  R = SELECT t
      FROM  {vt}:s -({et}>*)- {vt}:t
      WHERE s.name == srcName AND t.name == tgtName
      ACCUM t.@pathCount += 1;
  PRINT R[R.name, R.@pathCount];
}}
"#,
        vt = vertex_type,
        et = edge_type
    )
}

/// The tree-way single-pass multi-aggregation of Example 4 (Figure 2),
/// against [`pgraph::generators::sales_schema`].
pub fn example4_sales() -> &'static str {
    r#"
CREATE QUERY RevenueRollup () FOR GRAPH SalesGraph {
  SumAccum<float> @revenuePerToy, @revenuePerCust;
  SumAccum<float> @@totalRevenue;
  S = SELECT c
      FROM  Customer:c -(Bought>:b)- Product:p
      WHERE p.category == 'toy'
      ACCUM float salesPrice = b.quantity * p.list_price * (1.0 - b.discount),
            c.@revenuePerCust += salesPrice,
            p.@revenuePerToy += salesPrice,
            @@totalRevenue += salesPrice;
}
"#
}

/// Example 5's multi-output variant of Example 4: three tables from one
/// query body.
pub fn example5_multi_output() -> &'static str {
    r#"
CREATE QUERY RevenueTables () FOR GRAPH SalesGraph {
  SumAccum<float> @revenuePerToy, @revenuePerCust;
  SumAccum<float> @@totalRevenue;
  SELECT DISTINCT c.name, c.@revenuePerCust INTO PerCust;
         DISTINCT p.name, p.@revenuePerToy INTO PerToy;
         DISTINCT @@totalRevenue AS rev INTO Total
  FROM  Customer:c -(Bought>:b)- Product:p
  WHERE p.category == 'toy'
  ACCUM float salesPrice = b.quantity * p.list_price * (1.0 - b.discount),
        c.@revenuePerCust += salesPrice,
        p.@revenuePerToy += salesPrice,
        @@totalRevenue += salesPrice;
}
"#
}

/// The two-pass recommender of Example 6 (Figure 3), adapted to the
/// sample SalesGraph (category `toy`).
pub fn example6_topk_toys() -> &'static str {
    r#"
CREATE QUERY TopKToys (vertex<Customer> c, int k) FOR GRAPH SalesGraph {
   SumAccum<float> @lc, @inCommon, @rank;

   SELECT DISTINCT o INTO OthersWithCommonLikes
   FROM   Customer:c -(Likes>)- Product:t -(<Likes)- Customer:o
   WHERE  o <> c AND t.category == 'toy'
   ACCUM  o.@inCommon += 1
   POST_ACCUM o.@lc = log(1 + o.@inCommon);

   SELECT DISTINCT t.name, t.@rank AS rank INTO Recommended
   FROM   OthersWithCommonLikes:o -(Likes>)- Product:t
   WHERE  t.category == 'toy' AND c <> o
   ACCUM  t.@rank += o.@lc
   ORDER BY t.@rank DESC, t.name ASC
   LIMIT  k;

   RETURN Recommended;
}
"#
}

/// Example 1-style join of a relational `Employee` table with the
/// LinkedIn graph: employees ranked by out-of-company connections made
/// since 2016.
pub fn example1_join() -> &'static str {
    r#"
CREATE QUERY OutsideConnections () {
  SELECT e.email, e.name, count(*) AS cnt INTO Result
  FROM   Employee:e, LinkedIn:(Person:p -(Connected:c)- Person:outsider)
  WHERE  e.name == p.name
     AND outsider.company <> 'ACME'
     AND c.since >= 2016
  GROUP BY e.email, e.name
  ORDER BY count(*) DESC, e.name ASC;
}
"#
}


/// Triangle counting via a fixed-unique-length pattern: every triangle
/// is matched once per orientation and corner (6 times total), so the
/// result divides the raw match count by 6. Edges are traversed in both
/// directions (`E>|<E`), matching the undirected view used by the native
/// [`pgraph::algo::triangle_count`].
pub fn triangle_count(vertex_type: &str, edge_type: &str) -> String {
    format!(
        r#"
CREATE QUERY Triangles () {{
  SumAccum<int> @@corners;
  S = SELECT x
      FROM {vt}:x -({et}>|<{et})- {vt}:y -({et}>|<{et})- {vt}:z -({et}>|<{et})- {vt}:x
      WHERE x <> y AND y <> z AND x <> z
      ACCUM @@corners += 1;
  PRINT @@corners / 6 AS triangles;
}}
"#,
        vt = vertex_type,
        et = edge_type
    )
}

/// k-hop neighborhood: the set of vertices reachable from `src` within
/// `k` hops (directed), excluding `src` itself.
pub fn khop(vertex_type: &str, edge_type: &str, k: usize) -> String {
    format!(
        r#"
CREATE QUERY KHop (vertex src) {{
  Neigh = SELECT t FROM {vt}:src -({et}>*1..{k})- {vt}:t WHERE t <> src;
  PRINT Neigh.size() AS reachable;
  RETURN Neigh;
}}
"#,
        vt = vertex_type,
        et = edge_type
    )
}

/// Label-propagation community detection: every vertex adopts the most
/// frequent label among its neighbors (ties → smallest label), iterated
/// a bounded number of rounds. Uses a `MapAccum` of `SumAccum`s as the
/// per-vertex neighbor-label histogram — a nested-accumulator pattern
/// impossible to express with scalar GROUP BY aggregation (paper
/// Section 8, "Beyond SQL-style Aggregation").
pub fn label_propagation(vertex_type: &str, edge_type: &str) -> String {
    format!(
        r#"
CREATE QUERY LabelProp (int maxIter) {{
  MinAccum<int> @label = 2147483647;
  MapAccum<int, SumAccum<int>> @hist;
  OrAccum @@changed;
  AllV = {{{vt}.*}};
  Init = SELECT v FROM AllV:v POST_ACCUM v.@label = v.id();
  @@changed = true;
  WHILE @@changed LIMIT maxIter DO
    @@changed = false;
    S = SELECT v
        FROM  AllV:v -({et}>|<{et})- {vt}:u
        ACCUM v.@hist += (u.@label -> 1)
        POST_ACCUM v.@label = coalesce(argmax(v.@hist), v.@label),
                   @@changed += v.@label != v.@label',
                   v.@hist = NULL;
  END;
}}
"#,
        vt = vertex_type,
        et = edge_type
    )
}

/// Common-neighbor similarity of two vertices (the basic link-prediction
/// score), computed with set accumulators.
pub fn common_neighbors(vertex_type: &str, edge_type: &str) -> String {
    format!(
        r#"
CREATE QUERY CommonNeighbors (vertex a, vertex b) {{
  SetAccum<int> @@na, @@nb;
  A = SELECT t FROM {vt}:s -({et}>|<{et})- {vt}:t
      WHERE s == a ACCUM @@na += t.id();
  B = SELECT t FROM {vt}:s -({et}>|<{et})- {vt}:t
      WHERE s == b ACCUM @@nb += t.id();
  SumAccum<int> @@common;
  FOREACH x IN @@na DO
    IF @@nb.contains(x) THEN @@common += 1; END;
  END;
  PRINT @@common;
}}
"#,
        vt = vertex_type,
        et = edge_type
    )
}

/// Weighted single-source shortest paths via iterated relaxation — the
/// classic Bellman–Ford expressed with a `MinAccum` per vertex, the
/// paper's canonical example of an iterative algorithm that accumulators
/// plus a WHILE loop express in-language.
pub fn weighted_sssp(vertex_type: &str, edge_type: &str, weight_attr: &str) -> String {
    format!(
        r#"
CREATE QUERY WeightedSSSP (vertex src) {{
  MinAccum<float> @dist = 999999999.0;
  OrAccum @@changed;
  AllV = {{{vt}.*}};
  Start = {{src}};
  Init = SELECT v FROM Start:v POST_ACCUM v.@dist = 0;
  @@changed = true;
  WHILE @@changed DO
    @@changed = false;
    S = SELECT u
        FROM  AllV:v -({et}>:e)- {vt}:u
        WHERE v.@dist + e.{w} < u.@dist
        ACCUM u.@dist += v.@dist + e.{w}
        POST_ACCUM @@changed += u.@dist != u.@dist';
  END;
}}
"#,
        vt = vertex_type,
        et = edge_type,
        w = weight_attr
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn all_stdlib_queries_parse() {
        for src in [
            pagerank("Page", "LinkTo"),
            wcc("V", "E"),
            sssp("V", "E"),
            qn("V", "E"),
            example4_sales().to_string(),
            example5_multi_output().to_string(),
            example6_topk_toys().to_string(),
            example1_join().to_string(),
        ] {
            parse_query(&src).unwrap_or_else(|e| panic!("{e}\nin query:\n{src}"));
        }
    }
}
