//! `PROFILE` — per-operator execution profiling.
//!
//! A profiled run ([`crate::Engine::run_profiled`]) executes the query
//! *unchanged* — same pipeline, same results, byte-identical output at
//! any parallelism — while building a [`Profile`]: a tree of
//! [`ProfileNode`]s mirroring the `EXPLAIN` operator vocabulary, each
//! annotated with measured counters (wall time, rows produced, vertices
//! touched, edges scanned, kernel invocations, reach-cache hits/misses,
//! accumulator bytes, parallel-worker distribution).
//!
//! The counters are *deltas of the engine's one instrumentation path* —
//! [`crate::MatchStats`] snapshots taken at operator entry/exit — not a
//! second bookkeeping layer, so the profile's root totals reconcile
//! exactly with the query's [`crate::ResourceReport`] vertex/edge
//! accounting. Wall time and the stats-derived counters are
//! **inclusive** of children (subtract child values for self-only
//! numbers — the server's `/metrics` folding does exactly that via
//! [`ProfileNode::self_wall`]); the executor-reported extras (rows,
//! cache hits/misses, accumulator bytes, worker distribution) attach
//! to the operator that performs the work and are not rolled up.
//!
//! An operator that executes repeatedly (a SELECT block inside a WHILE
//! loop) accumulates into a single node keyed by its AST identity:
//! `calls` counts executions, every other counter sums (or maxes, for
//! `accum_bytes`) across them.
//!
//! Formats (text and JSON) are documented in `docs/PLAN_FORMAT.md`.

use crate::explain::json_string;
use crate::semantics::{MatchStats, PathSemantics};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One profiled operator: an `EXPLAIN`-vocabulary node annotated with
/// measured, child-inclusive counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Stable operator tag, same vocabulary as
    /// [`crate::PlanNode::op`] (see `docs/PLAN_FORMAT.md`).
    pub op: &'static str,
    /// Human-readable operator description.
    pub detail: String,
    /// Times this operator executed (a block in a WHILE loop runs many
    /// times but is reported once, with counters accumulated).
    pub calls: u64,
    /// Wall-clock time spent inside this operator, children included.
    pub wall: Duration,
    /// Binding rows this operator produced (scan/hop/filter/block output
    /// cardinality), summed over calls.
    pub rows: u64,
    /// Vertex visits within this operator's span (see
    /// [`MatchStats::vertices_touched`]).
    pub vertices_touched: u64,
    /// Adjacency entries examined within this operator's span.
    pub edges_scanned: u64,
    /// Reachability-kernel invocations within this operator's span.
    pub kernel_calls: u64,
    /// Paths materialized by enumerative kernels within this span.
    pub paths_enumerated: u64,
    /// ACCUM-clause executions within this span.
    pub acc_executions: u64,
    /// Morsels dispatched by vectorized operators within this span (a
    /// pure function of table sizes and the configured morsel size —
    /// identical at any parallelism; see `docs/EXECUTION.md`).
    pub morsels: u64,
    /// Kleene-hop reach-cache lookups that found a precomputed entry
    /// (including entries warmed by the parallel kernel fan-out).
    pub cache_hits: u64,
    /// Reach-cache lookups that had to run the kernel sequentially.
    pub cache_misses: u64,
    /// Peak estimated accumulator footprint observed at this operator,
    /// in bytes (max over calls, not a sum).
    pub accum_bytes: u64,
    /// Per-worker kernel-invocation distribution for parallel fan-outs
    /// (empty when the operator never fanned out; summed slot-wise over
    /// calls).
    pub workers: Vec<u64>,
    /// Per-shard kernel-invocation distribution for scatter-gather
    /// fan-outs (empty when execution was unsharded; summed slot-wise
    /// over calls).
    pub shards: Vec<u64>,
    /// Child operators, in first-execution order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Wall-clock time spent in this operator *excluding* children
    /// (saturating: clock skew between nested measurements never
    /// produces an underflow).
    pub fn self_wall(&self) -> Duration {
        let child: Duration = self.children.iter().map(|c| c.wall).sum();
        self.wall.saturating_sub(child)
    }

    /// Number of nodes in this subtree, including `self`.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ProfileNode::size).sum::<usize>()
    }

    /// Depth-first visit of this subtree (self first, then children).
    pub fn visit(&self, f: &mut impl FnMut(&ProfileNode)) {
        f(self);
        for c in &self.children {
            c.visit(f);
        }
    }
}

/// The measured execution profile of one query run.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// The query's declared name.
    pub query: String,
    /// The semantics the run started under.
    pub semantics: PathSemantics,
    /// The engine parallelism the run used.
    pub parallelism: usize,
    /// The profiled operator tree; the root is always `op == "query"`
    /// and its counters are the whole-query totals (they reconcile with
    /// the run's [`crate::ResourceReport`]).
    pub root: ProfileNode,
}

fn fmt_wall(d: Duration) -> String {
    let us = d.as_micros();
    if us >= 1_000_000 {
        format!("{:.2}s", d.as_secs_f64())
    } else if us >= 1000 {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{us}us")
    }
}

impl Profile {
    /// Renders the profile as an indented text tree, one operator per
    /// line with its non-zero counters in brackets.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "PROFILE {} [{:?} semantics, parallelism {}] total {}",
            self.query,
            self.semantics,
            self.parallelism,
            fmt_wall(self.root.wall),
        )
        .unwrap();
        for c in &self.root.children {
            render_into(c, 1, &mut out);
        }
        out
    }

    /// Renders the profile as a single-line JSON document (schema in
    /// `docs/PLAN_FORMAT.md`; `wall_us` fields are integer microseconds).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"query\":");
        json_string(&mut out, &self.query);
        write!(
            out,
            ",\"semantics\":\"{:?}\",\"parallelism\":{},\"total_wall_us\":{},\"root\":",
            self.semantics,
            self.parallelism,
            self.root.wall.as_micros(),
        )
        .unwrap();
        node_json(&mut out, &self.root);
        out.push('}');
        out
    }
}

fn render_into(node: &ProfileNode, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(node.detail.trim_end_matches(':'));
    let mut parts = vec![format!("calls {}", node.calls), format!("wall {}", fmt_wall(node.wall))];
    if node.rows > 0 {
        parts.push(format!("rows {}", node.rows));
    }
    if node.vertices_touched > 0 {
        parts.push(format!("vertices {}", node.vertices_touched));
    }
    if node.edges_scanned > 0 {
        parts.push(format!("edges {}", node.edges_scanned));
    }
    if node.kernel_calls > 0 {
        parts.push(format!("kernels {}", node.kernel_calls));
    }
    if node.paths_enumerated > 0 {
        parts.push(format!("paths {}", node.paths_enumerated));
    }
    if node.acc_executions > 0 {
        parts.push(format!("acc {}", node.acc_executions));
    }
    if node.morsels > 0 {
        parts.push(format!("morsels {}", node.morsels));
    }
    if node.cache_hits + node.cache_misses > 0 {
        parts.push(format!("cache {}/{}", node.cache_hits, node.cache_misses));
    }
    if node.accum_bytes > 0 {
        parts.push(format!("accum-bytes {}", node.accum_bytes));
    }
    if !node.workers.is_empty() {
        let w: Vec<String> = node.workers.iter().map(u64::to_string).collect();
        parts.push(format!("workers [{}]", w.join(" ")));
    }
    if !node.shards.is_empty() {
        let w: Vec<String> = node.shards.iter().map(u64::to_string).collect();
        parts.push(format!("shards [{}]", w.join(" ")));
    }
    writeln!(out, "  [{}]", parts.join(", ")).unwrap();
    for c in &node.children {
        render_into(c, depth + 1, out);
    }
}

fn node_json(out: &mut String, node: &ProfileNode) {
    out.push_str("{\"op\":");
    json_string(out, node.op);
    out.push_str(",\"detail\":");
    json_string(out, node.detail.trim_end_matches(':'));
    write!(
        out,
        ",\"calls\":{},\"wall_us\":{},\"rows\":{},\"vertices_touched\":{},\
         \"edges_scanned\":{},\"kernel_calls\":{},\"paths_enumerated\":{},\
         \"acc_executions\":{},\"morsels\":{},\"cache_hits\":{},\"cache_misses\":{},\
         \"accum_bytes\":{}",
        node.calls,
        node.wall.as_micros(),
        node.rows,
        node.vertices_touched,
        node.edges_scanned,
        node.kernel_calls,
        node.paths_enumerated,
        node.acc_executions,
        node.morsels,
        node.cache_hits,
        node.cache_misses,
        node.accum_bytes,
    )
    .unwrap();
    out.push_str(",\"workers\":[");
    for (i, w) in node.workers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{w}").unwrap();
    }
    out.push_str("],\"shards\":[");
    for (i, w) in node.shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{w}").unwrap();
    }
    out.push_str("],\"children\":[");
    for (i, c) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        node_json(out, c);
    }
    out.push_str("]}");
}

// ---- collection (crate-internal) ---------------------------------------

/// Extra per-span measurements the executor hands over at span exit —
/// things a [`MatchStats`] delta cannot see.
#[derive(Default)]
pub(crate) struct SpanExtra {
    pub rows: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Peak accumulator footprint observed at this operator.
    pub accum_bytes: u64,
    /// Per-worker kernel counts from a parallel fan-out.
    pub workers: Vec<u64>,
    /// Per-shard kernel counts from a scatter-gather fan-out.
    pub shards: Vec<u64>,
}

/// An open span returned by [`Profiler::enter`]; hand it back to
/// [`Profiler::exit`] at the operator boundary. If an error unwinds the
/// operator the token is simply dropped (the partial profile is
/// discarded with the run).
pub(crate) struct Span {
    node: usize,
    start: Instant,
    stats_at: MatchStats,
}

struct Collected {
    op: &'static str,
    detail: String,
    /// AST identity: the address of the AST node this operator executes,
    /// so repeated executions accumulate into one profile node.
    key: usize,
    calls: u64,
    wall: Duration,
    stats: MatchStats,
    extra: SpanExtra,
    children: Vec<usize>,
}

/// Arena-based profile collector owned by the runtime of a profiled run.
/// One `enter`/`exit` pair per operator execution — operator-boundary
/// granularity only, never per-row.
pub(crate) struct Profiler {
    nodes: Vec<Collected>,
    stack: Vec<usize>,
    started: Instant,
}

impl Profiler {
    pub(crate) fn new() -> Self {
        let root = Collected {
            op: "query",
            detail: String::new(),
            key: 0,
            calls: 1,
            wall: Duration::ZERO,
            stats: MatchStats::default(),
            extra: SpanExtra::default(),
            children: Vec::new(),
        };
        Profiler { nodes: vec![root], stack: vec![0], started: Instant::now() }
    }

    /// Opens a span for operator `(op, key)` under the current stack
    /// top, creating the node on first execution and reusing it on
    /// repeats. `detail` is only rendered on first execution.
    pub(crate) fn enter(
        &mut self,
        op: &'static str,
        key: usize,
        detail: impl FnOnce() -> String,
        stats: &MatchStats,
    ) -> Span {
        let parent = *self.stack.last().expect("profiler stack underflow");
        let found = self.nodes[parent]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c].op == op && self.nodes[c].key == key);
        let node = match found {
            Some(n) => n,
            None => {
                let n = self.nodes.len();
                self.nodes.push(Collected {
                    op,
                    detail: detail(),
                    key,
                    calls: 0,
                    wall: Duration::ZERO,
                    stats: MatchStats::default(),
                    extra: SpanExtra::default(),
                    children: Vec::new(),
                });
                self.nodes[parent].children.push(n);
                n
            }
        };
        self.stack.push(node);
        Span { node, start: Instant::now(), stats_at: stats.clone() }
    }

    /// Closes `span`, accumulating wall time, the [`MatchStats`] delta
    /// since `enter`, and the executor-provided extras into its node.
    pub(crate) fn exit(&mut self, span: Span, stats: &MatchStats, extra: SpanExtra) {
        let popped = self.stack.pop();
        debug_assert_eq!(popped, Some(span.node), "unbalanced profiler spans");
        let node = &mut self.nodes[span.node];
        node.calls += 1;
        node.wall += span.start.elapsed();
        accumulate(&mut node.stats, stats, &span.stats_at);
        node.extra.rows += extra.rows;
        node.extra.cache_hits += extra.cache_hits;
        node.extra.cache_misses += extra.cache_misses;
        node.extra.accum_bytes = node.extra.accum_bytes.max(extra.accum_bytes);
        if !extra.workers.is_empty() {
            if node.extra.workers.len() < extra.workers.len() {
                node.extra.workers.resize(extra.workers.len(), 0);
            }
            for (slot, w) in node.extra.workers.iter_mut().zip(&extra.workers) {
                *slot += w;
            }
        }
        if !extra.shards.is_empty() {
            if node.extra.shards.len() < extra.shards.len() {
                node.extra.shards.resize(extra.shards.len(), 0);
            }
            for (slot, w) in node.extra.shards.iter_mut().zip(&extra.shards) {
                *slot += w;
            }
        }
    }

    /// Finalizes collection into a [`Profile`]. The root absorbs the
    /// whole-run wall time and final stats totals, making its counters
    /// the query totals by construction.
    pub(crate) fn finish(
        mut self,
        query: &str,
        semantics: PathSemantics,
        parallelism: usize,
        stats: &MatchStats,
        accum_bytes: u64,
    ) -> Profile {
        {
            let root = &mut self.nodes[0];
            root.detail = format!("QUERY {query}");
            root.wall = self.started.elapsed();
            root.stats = stats.clone();
            root.extra.accum_bytes = accum_bytes;
        }
        let root = build(&self.nodes, 0);
        Profile { query: query.to_string(), semantics, parallelism, root }
    }
}

/// Adds `(now - base)` field-wise into `into` (saturating; a parallel
/// merge never runs mid-span, so deltas are exact in practice).
fn accumulate(into: &mut MatchStats, now: &MatchStats, base: &MatchStats) {
    into.kernel_calls += now.kernel_calls.saturating_sub(base.kernel_calls);
    into.product_states += now.product_states.saturating_sub(base.product_states);
    into.paths_enumerated += now.paths_enumerated.saturating_sub(base.paths_enumerated);
    into.binding_rows += now.binding_rows.saturating_sub(base.binding_rows);
    into.acc_executions += now.acc_executions.saturating_sub(base.acc_executions);
    into.vertices_touched += now.vertices_touched.saturating_sub(base.vertices_touched);
    into.edges_scanned += now.edges_scanned.saturating_sub(base.edges_scanned);
    into.morsels_dispatched += now.morsels_dispatched.saturating_sub(base.morsels_dispatched);
}

fn build(nodes: &[Collected], i: usize) -> ProfileNode {
    let n = &nodes[i];
    ProfileNode {
        op: n.op,
        detail: n.detail.clone(),
        calls: n.calls,
        wall: n.wall,
        // Binding rows appear either as an explicit executor-reported
        // cardinality (scan/hop/filter output) or as a `binding_rows`
        // stats delta (SELECT blocks, and the query total at the root) —
        // never both for the same node.
        rows: n.extra.rows + n.stats.binding_rows,
        vertices_touched: n.stats.vertices_touched,
        edges_scanned: n.stats.edges_scanned,
        kernel_calls: n.stats.kernel_calls,
        paths_enumerated: n.stats.paths_enumerated,
        acc_executions: n.stats.acc_executions,
        morsels: n.stats.morsels_dispatched,
        cache_hits: n.extra.cache_hits,
        cache_misses: n.extra.cache_misses,
        accum_bytes: n.extra.accum_bytes,
        workers: n.extra.workers.clone(),
        shards: n.extra.shards.clone(),
        children: n.children.iter().map(|&c| build(nodes, c)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_operators_accumulate_into_one_node() {
        let mut p = Profiler::new();
        let mut stats = MatchStats::default();
        for i in 0..3 {
            let span = p.enter("block", 42, || "SELECT ...".into(), &stats);
            stats.binding_rows += 10;
            stats.vertices_touched += 5;
            p.exit(span, &stats, SpanExtra::default());
            assert_eq!(p.nodes.len(), 2, "iteration {i} must reuse the node");
        }
        let prof = p.finish("q", PathSemantics::AllShortestPaths, 1, &stats, 0);
        assert_eq!(prof.root.children.len(), 1);
        let b = &prof.root.children[0];
        assert_eq!(b.calls, 3);
        assert_eq!(b.rows, 30);
        assert_eq!(b.vertices_touched, 15);
        // Root totals are the final stats, reconciling with the report.
        assert_eq!(prof.root.vertices_touched, 15);
        assert_eq!(prof.root.rows, 30);
    }

    #[test]
    fn nested_spans_build_a_tree_and_self_wall_subtracts() {
        let mut p = Profiler::new();
        let stats = MatchStats::default();
        let outer = p.enter("while", 1, || "WHILE loop".into(), &stats);
        let inner = p.enter("block", 2, || "SELECT".into(), &stats);
        std::thread::sleep(Duration::from_millis(2));
        p.exit(inner, &stats, SpanExtra::default());
        p.exit(outer, &stats, SpanExtra::default());
        let prof =
            p.finish("q", PathSemantics::AllShortestPaths, 1, &stats, 0);
        let w = &prof.root.children[0];
        assert_eq!(w.op, "while");
        assert_eq!(w.children.len(), 1);
        assert!(w.wall >= w.children[0].wall);
        assert!(w.self_wall() <= w.wall);
        assert_eq!(prof.root.size(), 3);
    }

    #[test]
    fn worker_distributions_sum_slotwise() {
        let mut p = Profiler::new();
        let stats = MatchStats::default();
        for _ in 0..2 {
            let s = p.enter("hop", 7, || "hop".into(), &stats);
            p.exit(
                s,
                &stats,
                SpanExtra { workers: vec![3, 1], ..SpanExtra::default() },
            );
        }
        let prof =
            p.finish("q", PathSemantics::AllShortestPaths, 4, &stats, 0);
        assert_eq!(prof.root.children[0].workers, vec![6, 2]);
    }

    #[test]
    fn json_and_text_are_well_formed() {
        let mut p = Profiler::new();
        let stats = MatchStats::default();
        let s = p.enter("scan", 1, || "scan V AS s".into(), &stats);
        p.exit(s, &stats, SpanExtra { rows: 4, ..SpanExtra::default() });
        let prof =
            p.finish("demo", PathSemantics::ShortestOne, 2, &stats, 0);
        let text = prof.render();
        assert!(text.starts_with("PROFILE demo [ShortestOne semantics, parallelism 2]"), "{text}");
        assert!(text.contains("scan V AS s"), "{text}");
        assert!(text.contains("rows 4"), "{text}");
        let json = prof.to_json();
        assert!(json.contains("\"op\":\"scan\""), "{json}");
        assert!(json.contains("\"rows\":4"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
    }
}
