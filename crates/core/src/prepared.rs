//! Reusable parsed-query handles — the serving hot path.
//!
//! A long-running service executes the same parameterized query text
//! thousands of times ([`crate::Engine::run`] is already `&self` and
//! stateless across runs), so re-lexing and re-parsing on every request
//! is pure waste. [`PreparedQuery`] parses once, pins the AST behind an
//! `Arc`, and carries a stable [`fingerprint`] of the source text usable
//! as a plan-cache key. The handle is `Clone + Send + Sync`: one parse
//! can be shared by every worker thread of a server and re-executed
//! concurrently against the same graph with different `args`.
//!
//! ```
//! use gsql_core::{Engine, PreparedQuery};
//! use pgraph::generators::sales_graph;
//!
//! let graph = sales_graph();
//! let engine = Engine::new(&graph);
//! let prepared = PreparedQuery::prepare(r#"
//!     CREATE QUERY CountCustomers () {
//!       SumAccum<int> @@n;
//!       S = SELECT c FROM Customer:c ACCUM @@n += 1;
//!       PRINT @@n;
//!     }
//! "#).unwrap();
//! let a = engine.run_prepared(&prepared, &[]).unwrap();
//! let b = engine.run_prepared(&prepared, &[]).unwrap();
//! assert_eq!(a.prints, b.prints);
//! ```

use crate::ast::{Param, ParamType, Query};
use crate::error::Result;
use crate::plan::QueryPlan;
use crate::semantics::PathSemantics;
use pgraph::value::Value;
use std::sync::{Arc, Mutex};

/// Stable 64-bit FNV-1a hash of query source text. Deliberately *not*
/// `std::hash::Hash` (which is documented as unstable across releases):
/// the fingerprint doubles as a wire-visible prepared-statement id, so
/// two processes built from different toolchains must agree on it.
pub fn fingerprint(src: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    for b in src.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// How a parameter binding failed [`PreparedQuery::check_args`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindErrorKind {
    /// A declared parameter has no binding.
    Missing,
    /// A binding's value type does not match the declared type.
    TypeMismatch,
    /// A binding names a parameter the query does not declare.
    Unknown,
}

/// A structured parameter-binding error: which parameter, what the
/// query declared, what the caller sent. The server maps this to a
/// `422` response with the same fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindError {
    /// The parameter name at fault.
    pub param: String,
    /// The declared type (as rendered in [`PreparedQuery::signature`]),
    /// or `"(none)"` for [`BindErrorKind::Unknown`].
    pub expected: String,
    /// A short description of the value actually supplied, or
    /// `"(missing)"` for [`BindErrorKind::Missing`].
    pub got: String,
    /// What went wrong.
    pub kind: BindErrorKind,
}

impl std::fmt::Display for BindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            BindErrorKind::Missing => {
                write!(f, "missing argument `{}` (expects {})", self.param, self.expected)
            }
            BindErrorKind::TypeMismatch => write!(
                f,
                "parameter `{}` expects {}, got {}",
                self.param, self.expected, self.got
            ),
            BindErrorKind::Unknown => {
                write!(f, "unknown parameter `{}`", self.param)
            }
        }
    }
}

/// Renders a [`ParamType`] the way [`PreparedQuery::signature`] does.
fn param_type_label(ty: &ParamType) -> String {
    match ty {
        ParamType::Scalar(t) => t.to_string(),
        ParamType::Vertex(Some(t)) => format!("VERTEX<{t}>"),
        ParamType::Vertex(None) => "VERTEX".to_string(),
        ParamType::VertexSet => "SET<VERTEX>".to_string(),
    }
}

/// A short human label for a bound value's type.
fn value_label(v: &Value) -> &'static str {
    match v {
        Value::Null => "NULL",
        Value::Bool(_) => "BOOL",
        Value::Int(_) => "INT",
        Value::Double(_) => "DOUBLE",
        Value::Str(_) => "STRING",
        Value::DateTime(_) => "DATETIME",
        Value::Vertex(_) => "VERTEX",
        Value::Edge(_) => "EDGE",
        Value::Tuple(_) => "TUPLE",
        Value::List(_) => "LIST",
        Value::Set(_) => "SET",
        Value::Map(_) => "MAP",
    }
}

/// A query parsed once and reusable for any number of executions, from
/// any number of threads.
///
/// Besides the parsed AST, the handle carries a shared **plan slot**:
/// the first execution against a given graph snapshot lowers the query
/// through the cost-based planner and caches the resulting
/// [`QueryPlan`]; subsequent executions with *different parameter
/// bindings* reuse that one optimized plan (the slot is keyed on the
/// graph's finalize epoch and the ambient semantics, so a re-finalized
/// graph or a semantics switch re-plans). Clones share the slot.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    source: Arc<str>,
    query: Arc<Query>,
    fingerprint: u64,
    /// `(graph finalize epoch, semantics, plan)` — one cached optimized
    /// plan serving arbitrarily many parameter bindings.
    plan: PlanSlot,
}

/// Shared cache slot for the statement's one optimized plan, keyed on
/// the graph finalize epoch and semantics it was lowered under.
type PlanSlot = Arc<Mutex<Option<(u64, PathSemantics, Arc<QueryPlan>)>>>;

impl PreparedQuery {
    /// Parses `src` into a reusable handle. All lexer/parser rejections
    /// surface here; a successfully prepared query can still fail at
    /// run time (compile-stage name resolution happens against a graph).
    pub fn prepare(src: &str) -> Result<Self> {
        let query = crate::parser::parse_query(src)?;
        Ok(PreparedQuery {
            source: Arc::from(src),
            query: Arc::new(query),
            fingerprint: fingerprint(src),
            plan: Arc::new(Mutex::new(None)),
        })
    }

    /// Returns the cached optimized plan for `(epoch, semantics)`,
    /// building (and caching) it with `build` on the first call or when
    /// the graph has been re-finalized / the semantics changed since the
    /// cached plan was built. All clones of this handle share the slot.
    pub fn plan_for(
        &self,
        epoch: u64,
        semantics: PathSemantics,
        build: impl FnOnce() -> Arc<QueryPlan>,
    ) -> Arc<QueryPlan> {
        let mut slot = self.plan.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((e, s, plan)) = slot.as_ref() {
            if *e == epoch && *s == semantics {
                return plan.clone();
            }
        }
        let plan = build();
        *slot = Some((epoch, semantics, plan.clone()));
        plan
    }

    /// Type-checks a set of parameter bindings against the declared
    /// parameters *before* execution, so servers can reject bad requests
    /// with a structured error (422) instead of a mid-query runtime
    /// failure. Mirrors the engine's binding rules: scalars must match
    /// their declared type (`INT` coerces to `DOUBLE` and `DATETIME`),
    /// `VERTEX` parameters need a vertex value, `SET<VERTEX>` needs a
    /// set. Extra bindings that name no declared parameter are rejected.
    pub fn check_args(&self, args: &[(&str, Value)]) -> std::result::Result<(), BindError> {
        for p in &self.query.params {
            let expected = param_type_label(&p.ty);
            let Some((_, v)) = args.iter().find(|(n, _)| *n == p.name) else {
                return Err(BindError {
                    param: p.name.clone(),
                    expected,
                    got: "(missing)".into(),
                    kind: BindErrorKind::Missing,
                });
            };
            let ok = match (&p.ty, v) {
                (ParamType::Vertex(_), Value::Vertex(_)) => true,
                (ParamType::VertexSet, Value::Set(_)) => true,
                (ParamType::Scalar(t), v) => {
                    use pgraph::value::ValueType;
                    matches!(
                        (t, v),
                        (ValueType::Bool, Value::Bool(_))
                            | (ValueType::Int, Value::Int(_))
                            | (ValueType::Double, Value::Double(_) | Value::Int(_))
                            | (ValueType::Str, Value::Str(_))
                            | (ValueType::DateTime, Value::DateTime(_) | Value::Int(_))
                    )
                }
                _ => false,
            };
            if !ok {
                return Err(BindError {
                    param: p.name.clone(),
                    expected,
                    got: value_label(v).into(),
                    kind: BindErrorKind::TypeMismatch,
                });
            }
        }
        for (n, v) in args {
            if !self.has_param(n) {
                return Err(BindError {
                    param: (*n).into(),
                    expected: "(none)".into(),
                    got: value_label(v).into(),
                    kind: BindErrorKind::Unknown,
                });
            }
        }
        Ok(())
    }

    /// The exact source text this handle was prepared from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The parsed AST (accepted by [`crate::Engine::run`]).
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The query's declared name.
    pub fn name(&self) -> &str {
        &self.query.name
    }

    /// The declared parameters, in order.
    pub fn params(&self) -> &[Param] {
        &self.query.params
    }

    /// `true` if the query declares a parameter called `name`.
    pub fn has_param(&self, name: &str) -> bool {
        self.query.params.iter().any(|p| p.name == name)
    }

    /// Human-readable `name(TYPE, ...)` signature line, used by the
    /// server's `/prepare` response.
    pub fn signature(&self) -> String {
        let params: Vec<String> = self
            .query
            .params
            .iter()
            .map(|p| format!("{} {}", p.name, param_type_label(&p.ty)))
            .collect();
        format!("{}({})", self.query.name, params.join(", "))
    }

    /// Stable FNV-1a fingerprint of the source text (plan-cache key /
    /// prepared-statement id).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Runs the static analyzer ([`crate::lint`]) over the prepared AST
    /// under the given ambient path semantics. Servers call this at
    /// prepare time to reject `Error`-severity queries before any
    /// execution budget is spent.
    pub fn diagnostics(
        &self,
        semantics: crate::PathSemantics,
    ) -> Vec<crate::lint::Diagnostic> {
        crate::lint::lint_query(&self.query, semantics)
    }

    /// Diagnostics together with the abstract-interpretation
    /// [`crate::lint::QueryFacts`] (pass 6) — one analysis run serving
    /// both the lint envelope and budget-aware admission gating.
    pub fn diagnostics_and_facts(
        &self,
        semantics: crate::PathSemantics,
    ) -> (Vec<crate::lint::Diagnostic>, crate::lint::QueryFacts) {
        crate::lint::lint_query_and_facts(
            &self.query,
            semantics,
            &accum::UserAccumRegistry::new(),
        )
    }

    /// The abstract-interpretation facts alone (no diagnostics) — the
    /// cheap form the server's per-request pre-admission gate uses.
    pub fn facts(&self, semantics: crate::PathSemantics) -> crate::lint::QueryFacts {
        crate::lint::compute_facts(
            &self.query,
            semantics,
            &accum::UserAccumRegistry::new(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_text_sensitive() {
        // Pinned value: the fingerprint is a wire-visible id, so it must
        // never drift across refactors.
        assert_eq!(fingerprint(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint("a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fingerprint("SELECT a"), fingerprint("SELECT b"));
    }

    #[test]
    fn prepare_reports_parse_errors() {
        let e = PreparedQuery::prepare("CREATE QUERY broken (").unwrap_err();
        assert_eq!(e.kind(), crate::ErrorKind::Parse);
    }

    #[test]
    fn signature_renders_param_types() {
        let p = PreparedQuery::prepare(
            "CREATE QUERY q (INT n, VERTEX<Person> p, SET<VERTEX> seeds) { PRINT n; }",
        )
        .unwrap();
        assert_eq!(p.name(), "q");
        assert_eq!(p.signature(), "q(n INT, p VERTEX<Person>, seeds SET<VERTEX>)");
        assert!(p.has_param("seeds"));
        assert!(!p.has_param("missing"));
    }

    #[test]
    fn plan_slot_caches_per_epoch_and_semantics() {
        let p = PreparedQuery::prepare("CREATE QUERY q (INT n) { PRINT n; }").unwrap();
        let mk = || {
            Arc::new(crate::plan::lower_query(
                p.query(),
                PathSemantics::AllShortestPaths,
                None,
            ))
        };
        let a = p.plan_for(7, PathSemantics::AllShortestPaths, mk);
        // Same key: the builder must not run again.
        let b = p.plan_for(7, PathSemantics::AllShortestPaths, || {
            panic!("plan slot missed on identical key")
        });
        assert!(Arc::ptr_eq(&a, &b));
        // Clones share the slot.
        let c = p.clone().plan_for(7, PathSemantics::AllShortestPaths, || {
            panic!("clone does not share the plan slot")
        });
        assert!(Arc::ptr_eq(&a, &c));
        // New epoch or different semantics re-plan.
        let d = p.plan_for(8, PathSemantics::AllShortestPaths, mk);
        assert!(!Arc::ptr_eq(&a, &d));
        let e = p.plan_for(8, PathSemantics::NonRepeatedEdge, mk);
        assert!(!Arc::ptr_eq(&d, &e));
    }

    #[test]
    fn check_args_reports_structured_bind_errors() {
        let p = PreparedQuery::prepare(
            "CREATE QUERY q (INT n, DOUBLE x, VERTEX<Person> v) { PRINT n; }",
        )
        .unwrap();
        let person = Value::Vertex(pgraph::VertexId(0));
        // All bound, with Int→Double coercion: OK.
        p.check_args(&[("n", Value::Int(1)), ("x", Value::Int(2)), ("v", person.clone())])
            .unwrap();
        // Missing param.
        let e = p.check_args(&[("n", Value::Int(1))]).unwrap_err();
        assert_eq!(e.kind, BindErrorKind::Missing);
        assert_eq!(e.param, "x");
        assert_eq!(e.expected, "DOUBLE");
        // Scalar type mismatch.
        let e = p
            .check_args(&[
                ("n", Value::Str("nope".into())),
                ("x", Value::Double(0.5)),
                ("v", person.clone()),
            ])
            .unwrap_err();
        assert_eq!(e.kind, BindErrorKind::TypeMismatch);
        assert_eq!(e.param, "n");
        assert_eq!(e.got, "STRING");
        // Vertex param needs a vertex.
        let e = p
            .check_args(&[
                ("n", Value::Int(1)),
                ("x", Value::Double(0.5)),
                ("v", Value::Int(3)),
            ])
            .unwrap_err();
        assert_eq!(e.kind, BindErrorKind::TypeMismatch);
        assert_eq!(e.param, "v");
        assert_eq!(e.expected, "VERTEX<Person>");
        // Unknown extra binding.
        let e = p
            .check_args(&[
                ("n", Value::Int(1)),
                ("x", Value::Double(0.5)),
                ("v", person),
                ("zz", Value::Int(9)),
            ])
            .unwrap_err();
        assert_eq!(e.kind, BindErrorKind::Unknown);
        assert_eq!(e.param, "zz");
    }
}
