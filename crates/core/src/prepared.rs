//! Reusable parsed-query handles — the serving hot path.
//!
//! A long-running service executes the same parameterized query text
//! thousands of times ([`crate::Engine::run`] is already `&self` and
//! stateless across runs), so re-lexing and re-parsing on every request
//! is pure waste. [`PreparedQuery`] parses once, pins the AST behind an
//! `Arc`, and carries a stable [`fingerprint`] of the source text usable
//! as a plan-cache key. The handle is `Clone + Send + Sync`: one parse
//! can be shared by every worker thread of a server and re-executed
//! concurrently against the same graph with different `args`.
//!
//! ```
//! use gsql_core::{Engine, PreparedQuery};
//! use pgraph::generators::sales_graph;
//!
//! let graph = sales_graph();
//! let engine = Engine::new(&graph);
//! let prepared = PreparedQuery::prepare(r#"
//!     CREATE QUERY CountCustomers () {
//!       SumAccum<int> @@n;
//!       S = SELECT c FROM Customer:c ACCUM @@n += 1;
//!       PRINT @@n;
//!     }
//! "#).unwrap();
//! let a = engine.run_prepared(&prepared, &[]).unwrap();
//! let b = engine.run_prepared(&prepared, &[]).unwrap();
//! assert_eq!(a.prints, b.prints);
//! ```

use crate::ast::{Param, ParamType, Query};
use crate::error::Result;
use std::sync::Arc;

/// Stable 64-bit FNV-1a hash of query source text. Deliberately *not*
/// `std::hash::Hash` (which is documented as unstable across releases):
/// the fingerprint doubles as a wire-visible prepared-statement id, so
/// two processes built from different toolchains must agree on it.
pub fn fingerprint(src: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    for b in src.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A query parsed once and reusable for any number of executions, from
/// any number of threads.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    source: Arc<str>,
    query: Arc<Query>,
    fingerprint: u64,
}

impl PreparedQuery {
    /// Parses `src` into a reusable handle. All lexer/parser rejections
    /// surface here; a successfully prepared query can still fail at
    /// run time (compile-stage name resolution happens against a graph).
    pub fn prepare(src: &str) -> Result<Self> {
        let query = crate::parser::parse_query(src)?;
        Ok(PreparedQuery {
            source: Arc::from(src),
            query: Arc::new(query),
            fingerprint: fingerprint(src),
        })
    }

    /// The exact source text this handle was prepared from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The parsed AST (accepted by [`crate::Engine::run`]).
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The query's declared name.
    pub fn name(&self) -> &str {
        &self.query.name
    }

    /// The declared parameters, in order.
    pub fn params(&self) -> &[Param] {
        &self.query.params
    }

    /// `true` if the query declares a parameter called `name`.
    pub fn has_param(&self, name: &str) -> bool {
        self.query.params.iter().any(|p| p.name == name)
    }

    /// Human-readable `name(TYPE, ...)` signature line, used by the
    /// server's `/prepare` response.
    pub fn signature(&self) -> String {
        let params: Vec<String> = self
            .query
            .params
            .iter()
            .map(|p| {
                let ty = match &p.ty {
                    ParamType::Scalar(t) => t.to_string(),
                    ParamType::Vertex(Some(t)) => format!("VERTEX<{t}>"),
                    ParamType::Vertex(None) => "VERTEX".to_string(),
                    ParamType::VertexSet => "SET<VERTEX>".to_string(),
                };
                format!("{} {}", p.name, ty)
            })
            .collect();
        format!("{}({})", self.query.name, params.join(", "))
    }

    /// Stable FNV-1a fingerprint of the source text (plan-cache key /
    /// prepared-statement id).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Runs the static analyzer ([`crate::lint`]) over the prepared AST
    /// under the given ambient path semantics. Servers call this at
    /// prepare time to reject `Error`-severity queries before any
    /// execution budget is spent.
    pub fn diagnostics(
        &self,
        semantics: crate::PathSemantics,
    ) -> Vec<crate::lint::Diagnostic> {
        crate::lint::lint_query(&self.query, semantics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_text_sensitive() {
        // Pinned value: the fingerprint is a wire-visible id, so it must
        // never drift across refactors.
        assert_eq!(fingerprint(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint("a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fingerprint("SELECT a"), fingerprint("SELECT b"));
    }

    #[test]
    fn prepare_reports_parse_errors() {
        let e = PreparedQuery::prepare("CREATE QUERY broken (").unwrap_err();
        assert_eq!(e.kind(), crate::ErrorKind::Parse);
    }

    #[test]
    fn signature_renders_param_types() {
        let p = PreparedQuery::prepare(
            "CREATE QUERY q (INT n, VERTEX<Person> p, SET<VERTEX> seeds) { PRINT n; }",
        )
        .unwrap();
        assert_eq!(p.name(), "q");
        assert_eq!(p.signature(), "q(n INT, p VERTEX<Person>, seeds SET<VERTEX>)");
        assert!(p.has_param("seeds"));
        assert!(!p.has_param("missing"));
    }
}
