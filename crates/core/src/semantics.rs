//! Pattern-match legality semantics (paper Section 6) and the reachability
//! kernels implementing them.
//!
//! Given a source vertex and a compiled DARPE, every semantics answers the
//! same question — *for each target vertex, how many legal satisfying
//! paths are there?* — but with different legality notions and wildly
//! different complexities:
//!
//! | semantics                    | legal paths                   | kernel |
//! |------------------------------|-------------------------------|--------|
//! | `AllShortestPaths` (default) | shortest per endpoint pair    | product-DFA BFS **counting** (poly, Thm 6.1) |
//! | `AllShortestPathsEnumerate`  | shortest per endpoint pair    | DFS enumeration of each shortest path (exp) — models Neo4j's ASP |
//! | `NonRepeatedEdge`            | no edge repeated (Cypher)     | DFS enumeration (exp, #P-hard in general) |
//! | `NonRepeatedVertex`          | no vertex repeated (Gremlin)  | DFS enumeration (exp) |
//! | `ShortestOne`                | any path ⇒ multiplicity 1     | product-DFA BFS, counts clamped (SPARQL) |

use crate::error::Result;
use crate::governor::QueryGuard;
use darpe::{CompiledDarpe, Dfa, DfaStateId};
use pgraph::bigcount::BigCount;
use pgraph::fxhash::FxHashMap;
use pgraph::graph::{AdjView, EdgeId, Graph, VertexId};
use pgraph::shard::ShardedGraph;
use std::collections::VecDeque;

/// The adjacency source a kernel traverses: the flat graph, or a
/// [`ShardedGraph`] whose per-shard CSR segments serve each vertex's
/// adjacency. A sharded view returns entries **bit-identical** to the
/// flat graph it was built from (same entries, same order — see
/// `pgraph::shard`), so kernel results are independent of the view; only
/// scheduling and accounting differ. Traversal transparently crosses
/// shard boundaries: "shard-local" execution means the kernel for a key
/// vertex is *scheduled and accounted* on that vertex's owner shard, not
/// that edges stop at the boundary.
#[derive(Clone, Copy)]
pub(crate) enum GraphView<'a> {
    /// Adjacency served by [`Graph::adjacency`].
    Flat(&'a Graph),
    /// Adjacency served by the owner shard's segment.
    Sharded(&'a ShardedGraph),
}

impl<'a> GraphView<'a> {
    #[inline]
    fn adjacency(&self, v: VertexId) -> AdjView<'a> {
        match self {
            GraphView::Flat(g) => g.adjacency(v),
            GraphView::Sharded(s) => s.adjacency(v),
        }
    }
}

/// The pattern-match legality flavor used for Kleene (multi-edge) DARPEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathSemantics {
    /// GSQL's default: all shortest satisfying paths, evaluated by
    /// counting — never materializes paths.
    AllShortestPaths,
    /// Same legal paths as `AllShortestPaths` but evaluated by explicit
    /// enumeration — the strategy the paper measured in Neo4j (`Q^asp`),
    /// exponential on the diamond chain.
    AllShortestPathsEnumerate,
    /// Cypher's default: paths with no repeated edge.
    NonRepeatedEdge,
    /// Gremlin-tutorial style: paths with no repeated vertex.
    NonRepeatedVertex,
    /// SPARQL 1.1 style: Kleene sub-patterns are existence tests; every
    /// reachable endpoint pair has multiplicity 1.
    ShortestOne,
}

impl PathSemantics {
    /// Whether this semantics requires explicit path materialization
    /// (exponential worst case).
    pub fn is_enumerative(self) -> bool {
        matches!(
            self,
            PathSemantics::AllShortestPathsEnumerate
                | PathSemantics::NonRepeatedEdge
                | PathSemantics::NonRepeatedVertex
        )
    }
}

/// Execution counters, surfaced through
/// [`crate::exec::QueryOutput::stats`] so tests and benchmarks can assert
/// *how* a query was evaluated, not just what it returned.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Number of reachability kernel invocations (one per distinct source
    /// vertex per Kleene hop).
    pub kernel_calls: u64,
    /// Product states (vertex × DFA state) visited by BFS kernels.
    pub product_states: u64,
    /// Complete legal paths materialized by enumerative kernels.
    pub paths_enumerated: u64,
    /// Rows in binding tables after each FROM evaluation, summed.
    pub binding_rows: u64,
    /// ACCUM-clause executions (one per distinct binding row).
    pub acc_executions: u64,
    /// Vertex visits performed by scans and kernels (BFS product states,
    /// enumerative DFS frames, FROM-clause vertex bindings). A vertex
    /// revisited in another kernel call or automaton state counts again.
    pub vertices_touched: u64,
    /// Adjacency entries examined by scans and kernels.
    pub edges_scanned: u64,
    /// Morsels dispatched by the vectorized operators (ACCUM/POST_ACCUM,
    /// WHERE filters, group-by/projection evaluation). A pure function
    /// of table sizes and the configured morsel size — identical at any
    /// parallelism or shard count.
    pub morsels_dispatched: u64,
}

impl MatchStats {
    /// Folds a worker thread's locally-collected counters into this one.
    /// Every field is a sum, so the merged totals are independent of
    /// worker count and merge order — parallelism never changes the
    /// reported statistics.
    pub fn merge(&mut self, other: &MatchStats) {
        self.kernel_calls += other.kernel_calls;
        self.product_states += other.product_states;
        self.paths_enumerated += other.paths_enumerated;
        self.binding_rows += other.binding_rows;
        self.acc_executions += other.acc_executions;
        self.vertices_touched += other.vertices_touched;
        self.edges_scanned += other.edges_scanned;
        self.morsels_dispatched += other.morsels_dispatched;
    }
}

/// Per-target reachability result: shortest legal length and path count.
pub type ReachMap = FxHashMap<VertexId, (u32, BigCount)>;

/// Computes, for every target vertex reachable from `src` by a legal
/// satisfying path, the pair `(shortest legal length, number of legal
/// paths)` under `semantics`. The [`QueryGuard`] enforces the caller's
/// resource budget — path-materialization caps for the enumerative
/// kernels plus deadline/cancellation checks at every loop head (a
/// structured error signals the trip, exactly like the paper's 10-minute
/// cap on Neo4j).
pub fn reach(
    graph: &Graph,
    src: VertexId,
    nfa: &CompiledDarpe,
    semantics: PathSemantics,
    guard: &QueryGuard,
    stats: &mut MatchStats,
) -> Result<ReachMap> {
    reach_on(GraphView::Flat(graph), src, nfa, semantics, guard, stats)
}

/// [`reach`] over an explicit [`GraphView`] — the entry point the
/// scatter-gather executor uses to route adjacency through per-shard CSR
/// segments. Results are view-independent (see [`GraphView`]).
pub(crate) fn reach_on(
    view: GraphView<'_>,
    src: VertexId,
    nfa: &CompiledDarpe,
    semantics: PathSemantics,
    guard: &QueryGuard,
    stats: &mut MatchStats,
) -> Result<ReachMap> {
    stats.kernel_calls += 1;
    match semantics {
        PathSemantics::AllShortestPaths => bfs_count(view, src, nfa, false, guard, stats),
        PathSemantics::ShortestOne => bfs_count(view, src, nfa, true, guard, stats),
        PathSemantics::AllShortestPathsEnumerate => {
            let targets = bfs_count(view, src, nfa, false, guard, stats)?;
            enumerate_shortest(view, src, nfa, &targets, guard, stats)
        }
        PathSemantics::NonRepeatedEdge => {
            enumerate_simple(view, src, nfa, false, guard, stats)
        }
        PathSemantics::NonRepeatedVertex => {
            enumerate_simple(view, src, nfa, true, guard, stats)
        }
    }
}

/// The polynomial SDMC kernel (Theorem 6.1): BFS over the product of the
/// graph with the lazily-determinized DARPE automaton, propagating
/// shortest-path counts. Because the automaton is deterministic, each
/// graph path has exactly one run, so run counts are path counts.
fn bfs_count(
    view: GraphView<'_>,
    src: VertexId,
    nfa: &CompiledDarpe,
    clamp_to_one: bool,
    guard: &QueryGuard,
    stats: &mut MatchStats,
) -> Result<ReachMap> {
    let mut dfa = Dfa::new(nfa);
    // Product-state bookkeeping.
    let mut index: FxHashMap<(VertexId, DfaStateId), usize> = FxHashMap::default();
    let mut dist: Vec<u32> = Vec::new();
    let mut cnt: Vec<BigCount> = Vec::new();
    let mut states: Vec<(VertexId, DfaStateId)> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();

    let start = (src, dfa.start());
    index.insert(start, 0);
    states.push(start);
    dist.push(0);
    cnt.push(BigCount::one());
    queue.push_back(0);

    let mut edges_scanned = 0u64;
    while let Some(i) = queue.pop_front() {
        guard.checkpoint()?;
        let (v, q) = states[i];
        let d = dist[i];
        let c = cnt[i].clone();
        let adj = view.adjacency(v);
        edges_scanned += adj.len() as u64;
        for a in adj {
            let Some(nq) = dfa.next(q, a.etype, a.dir) else { continue };
            let key = (a.other, nq);
            match index.get(&key) {
                None => {
                    let j = states.len();
                    index.insert(key, j);
                    states.push(key);
                    dist.push(d + 1);
                    cnt.push(c.clone());
                    queue.push_back(j);
                }
                Some(&j) => {
                    if dist[j] == d + 1 {
                        let add = c.clone();
                        cnt[j].add_assign(&add);
                    }
                }
            }
        }
    }
    stats.product_states += states.len() as u64;
    stats.vertices_touched += states.len() as u64;
    stats.edges_scanned += edges_scanned;
    guard.note_visits(states.len() as u64, edges_scanned);

    // Per target: min dist over accepting states, summed counts at it.
    let mut out: ReachMap = FxHashMap::default();
    for (i, &(v, q)) in states.iter().enumerate() {
        if !dfa.is_accepting(q) {
            continue;
        }
        match out.get_mut(&v) {
            None => {
                out.insert(v, (dist[i], cnt[i].clone()));
            }
            Some(slot) => {
                if dist[i] < slot.0 {
                    *slot = (dist[i], cnt[i].clone());
                } else if dist[i] == slot.0 {
                    let add = cnt[i].clone();
                    slot.1.add_assign(&add);
                }
            }
        }
    }
    if clamp_to_one {
        for slot in out.values_mut() {
            slot.1 = BigCount::one();
        }
    }
    Ok(out)
}

/// Enumerates every *shortest* legal path explicitly (the suboptimal
/// all-shortest-paths strategy the paper observed in Neo4j). `targets`
/// gives each target's shortest legal length; the DFS walks the product
/// automaton without repetition constraints up to the maximum relevant
/// depth and counts arrivals that hit a target at exactly its shortest
/// length.
fn enumerate_shortest(
    view: GraphView<'_>,
    src: VertexId,
    nfa: &CompiledDarpe,
    targets: &ReachMap,
    guard: &QueryGuard,
    stats: &mut MatchStats,
) -> Result<ReachMap> {
    let max_depth = targets.values().map(|(d, _)| *d).max().unwrap_or(0);
    let mut dfa = Dfa::new(nfa);
    let mut out: ReachMap = FxHashMap::default();
    let mut enumerated = 0u64;

    struct Frame {
        v: VertexId,
        q: DfaStateId,
        next_edge: usize,
    }
    let mut vertices_touched = 1u64; // the root frame
    let mut edges_scanned = 0u64;
    let mut stack = vec![Frame { v: src, q: dfa.start(), next_edge: 0 }];
    while let Some(top) = stack.last() {
        guard.checkpoint()?;
        let depth = (stack.len() - 1) as u32;
        let (v, q) = (top.v, top.q);
        if top.next_edge == 0 {
            // First visit of this walk position: check for a match.
            if dfa.is_accepting(q) {
                if let Some(&(short, _)) = targets.get(&v) {
                    if short == depth {
                        enumerated += 1;
                        guard.tick_path()?;
                        out.entry(v)
                            .or_insert_with(|| (depth, BigCount::zero()))
                            .1
                            .add_u64(1);
                    }
                }
            }
        }
        if depth == max_depth {
            stack.pop();
            continue;
        }
        let adj = view.adjacency(v);
        let mut advanced = false;
        let start_edge = stack.last().unwrap().next_edge;
        for (off, a) in adj.iter_from(start_edge).enumerate() {
            edges_scanned += 1;
            if let Some(nq) = dfa.next(q, a.etype, a.dir) {
                let idx = start_edge + off;
                stack.last_mut().unwrap().next_edge = idx + 1;
                stack.push(Frame { v: a.other, q: nq, next_edge: 0 });
                vertices_touched += 1;
                advanced = true;
                break;
            }
        }
        if !advanced {
            stack.pop();
        }
    }
    stats.paths_enumerated += enumerated;
    stats.vertices_touched += vertices_touched;
    stats.edges_scanned += edges_scanned;
    guard.note_visits(vertices_touched, edges_scanned);
    Ok(out)
}

/// Enumerates simple paths (non-repeated edge or vertex) through the
/// product automaton by DFS — Cypher's / Gremlin's strategy, exponential
/// in the worst case and the baseline of Table 1.
fn enumerate_simple(
    view: GraphView<'_>,
    src: VertexId,
    nfa: &CompiledDarpe,
    vertex_flavor: bool,
    guard: &QueryGuard,
    stats: &mut MatchStats,
) -> Result<ReachMap> {
    let mut dfa = Dfa::new(nfa);
    let mut out: ReachMap = FxHashMap::default();
    let mut used_edges: FxHashMap<EdgeId, ()> = FxHashMap::default();
    let mut used_vertices: FxHashMap<VertexId, ()> = FxHashMap::default();
    let mut enumerated = 0u64;

    struct Frame {
        v: VertexId,
        q: DfaStateId,
        next_edge: usize,
        /// Edge crossed to get here (to release on backtrack).
        via: Option<EdgeId>,
    }

    if vertex_flavor {
        used_vertices.insert(src, ());
    }
    let mut vertices_touched = 1u64; // the root frame
    let mut edges_scanned = 0u64;
    let mut stack = vec![Frame { v: src, q: dfa.start(), next_edge: 0, via: None }];
    while !stack.is_empty() {
        guard.checkpoint()?;
        let depth = (stack.len() - 1) as u32;
        let (v, q, first_visit) = {
            let top = stack.last().unwrap();
            (top.v, top.q, top.next_edge == 0)
        };
        if first_visit && dfa.is_accepting(q) {
            enumerated += 1;
            guard.tick_path()?;
            match out.get_mut(&v) {
                None => {
                    out.insert(v, (depth, BigCount::one()));
                }
                Some(slot) => {
                    slot.0 = slot.0.min(depth);
                    slot.1.add_u64(1);
                }
            }
        }
        let adj = view.adjacency(v);
        let start_edge = stack.last().unwrap().next_edge;
        let mut advanced = false;
        for (off, a) in adj.iter_from(start_edge).enumerate() {
            edges_scanned += 1;
            let idx = start_edge + off;
            if vertex_flavor {
                if used_vertices.contains_key(&a.other) {
                    continue;
                }
            } else if used_edges.contains_key(&a.edge) {
                continue;
            }
            if let Some(nq) = dfa.next(q, a.etype, a.dir) {
                stack.last_mut().unwrap().next_edge = idx + 1;
                if vertex_flavor {
                    used_vertices.insert(a.other, ());
                } else {
                    used_edges.insert(a.edge, ());
                }
                stack.push(Frame { v: a.other, q: nq, next_edge: 0, via: Some(a.edge) });
                vertices_touched += 1;
                advanced = true;
                break;
            }
        }
        if !advanced {
            let popped = stack.pop().unwrap();
            if vertex_flavor {
                if !stack.is_empty() {
                    used_vertices.remove(&popped.v);
                }
            } else if let Some(e) = popped.via {
                used_edges.remove(&e);
            }
        }
    }
    stats.paths_enumerated += enumerated;
    stats.vertices_touched += vertices_touched;
    stats.edges_scanned += edges_scanned;
    guard.note_visits(vertices_touched, edges_scanned);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use darpe::parse as dparse;
    use pgraph::generators::{diamond_chain, example10_g2, example9_g1};

    fn compiled(text: &str, g: &Graph) -> CompiledDarpe {
        CompiledDarpe::compile(&dparse(text).unwrap(), g.schema()).unwrap()
    }

    fn count_for(
        g: &Graph,
        src: VertexId,
        dst: VertexId,
        darpe: &str,
        sem: PathSemantics,
    ) -> Option<u64> {
        let nfa = compiled(darpe, g);
        let mut stats = MatchStats::default();
        let guard = QueryGuard::with_path_budget(Some(1_000_000));
        let m = reach(g, src, &nfa, sem, &guard, &mut stats).unwrap();
        m.get(&dst).map(|(_, c)| c.to_u64().unwrap())
    }

    #[test]
    fn example9_multiplicities() {
        // Pattern :s -(E>*)- :t from vertex 1 to 5: multiplicity 3 / 4 / 2
        // / 1 under NRV / NRE / ASP / SPARQL (paper Example 9).
        let (g, v) = example9_g1();
        assert_eq!(
            count_for(&g, v[1], v[5], "E>*", PathSemantics::NonRepeatedVertex),
            Some(3)
        );
        assert_eq!(
            count_for(&g, v[1], v[5], "E>*", PathSemantics::NonRepeatedEdge),
            Some(4)
        );
        assert_eq!(
            count_for(&g, v[1], v[5], "E>*", PathSemantics::AllShortestPaths),
            Some(2)
        );
        assert_eq!(
            count_for(&g, v[1], v[5], "E>*", PathSemantics::AllShortestPathsEnumerate),
            Some(2)
        );
        assert_eq!(
            count_for(&g, v[1], v[5], "E>*", PathSemantics::ShortestOne),
            Some(1)
        );
    }

    #[test]
    fn example10_only_asp_matches() {
        // G2: E>*.F>.E>* matches 1→4 only under all-shortest-paths.
        let (g, v) = example10_g2();
        let darpe = "E>*.F>.E>*";
        assert_eq!(
            count_for(&g, v[1], v[4], darpe, PathSemantics::AllShortestPaths),
            Some(1)
        );
        assert_eq!(count_for(&g, v[1], v[4], darpe, PathSemantics::NonRepeatedEdge), None);
        assert_eq!(count_for(&g, v[1], v[4], darpe, PathSemantics::NonRepeatedVertex), None);
        // The shortest length is 7 (1-2-3-5-6-2-3-4).
        let nfa = compiled(darpe, &g);
        let mut stats = MatchStats::default();
        let guard = QueryGuard::unlimited();
        let m =
            reach(&g, v[1], &nfa, PathSemantics::AllShortestPaths, &guard, &mut stats).unwrap();
        assert_eq!(m.get(&v[4]).map(|(d, _)| *d), Some(7));
    }

    #[test]
    fn diamond_counts_match_all_semantics() {
        // Example 11: all three semantics coincide on the diamond chain.
        let (g, spine) = diamond_chain(6);
        for sem in [
            PathSemantics::AllShortestPaths,
            PathSemantics::AllShortestPathsEnumerate,
            PathSemantics::NonRepeatedEdge,
            PathSemantics::NonRepeatedVertex,
        ] {
            assert_eq!(count_for(&g, spine[0], spine[6], "E>*", sem), Some(64), "{sem:?}");
        }
    }

    #[test]
    fn counting_handles_exponential_counts() {
        let (g, spine) = diamond_chain(100);
        let nfa = compiled("E>*", &g);
        let mut stats = MatchStats::default();
        let guard = QueryGuard::unlimited();
        let m = reach(&g, spine[0], &nfa, PathSemantics::AllShortestPaths, &guard, &mut stats)
            .unwrap();
        assert_eq!(m.get(&spine[100]).unwrap().1, BigCount::pow2(100));
        // Polynomial state count: O(V) product states for this DFA.
        assert!(stats.product_states < 2 * g.vertex_count() as u64 + 10);
    }

    #[test]
    fn enumeration_budget_trips() {
        let (g, spine) = diamond_chain(30);
        let nfa = compiled("E>*", &g);
        let mut stats = MatchStats::default();
        let guard = QueryGuard::with_path_budget(Some(10_000));
        let r = reach(
            &g,
            spine[0],
            &nfa,
            PathSemantics::NonRepeatedEdge,
            &guard,
            &mut stats,
        );
        assert_eq!(r.unwrap_err().kind(), crate::error::ErrorKind::PathBudget);
        assert!(guard.report().paths_enumerated > 10_000);
    }

    #[test]
    fn empty_pattern_matches_source() {
        let (g, spine) = diamond_chain(2);
        // E>* accepts the empty word: src itself has one legal path.
        assert_eq!(
            count_for(&g, spine[0], spine[0], "E>*", PathSemantics::AllShortestPaths),
            Some(1)
        );
    }

    #[test]
    fn fixed_length_pattern_on_cycle() {
        // Section 6 "fixed-unique-length" discussion: on cycle v-A>u-B>w-C>v,
        // pattern A>.B>.C>.A> matches v→u by wrapping the cycle (length 4)
        // under ASP, but not under non-repeating semantics.
        let mut s = pgraph::schema::Schema::new();
        s.add_vertex_type("V", vec![pgraph::schema::AttrDef::new("name", pgraph::value::ValueType::Str)]).unwrap();
        s.add_edge_type("A", true, vec![]).unwrap();
        s.add_edge_type("B", true, vec![]).unwrap();
        s.add_edge_type("C", true, vec![]).unwrap();
        let mut b = pgraph::graph::GraphBuilder::new(s);
        let v = b.vertex("V", &[("name", pgraph::value::Value::from("v"))]).unwrap();
        let u = b.vertex("V", &[("name", pgraph::value::Value::from("u"))]).unwrap();
        let w = b.vertex("V", &[("name", pgraph::value::Value::from("w"))]).unwrap();
        b.edge("A", v, u, &[]).unwrap();
        b.edge("B", u, w, &[]).unwrap();
        b.edge("C", w, v, &[]).unwrap();
        let g = b.build();
        let darpe = "A>.B>.C>.A>";
        assert_eq!(count_for(&g, v, u, darpe, PathSemantics::AllShortestPaths), Some(1));
        assert_eq!(count_for(&g, v, u, darpe, PathSemantics::NonRepeatedEdge), None);
        assert_eq!(count_for(&g, v, u, darpe, PathSemantics::NonRepeatedVertex), None);
    }
}
