//! GSQL lexer.
//!
//! Keywords are case-insensitive (uppercased in the token stream);
//! identifiers keep their case. Comments: `// line` and `/* block */`.
//! `POST_ACCUM` and `POST-ACCUM` (the paper uses both spellings) lex to
//! the same keyword token.

use crate::error::{Error, Result};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Keyword, uppercased (`SELECT`, `FROM`, `ACCUM`, ...).
    Kw(&'static str),
    /// Identifier (original case preserved).
    Ident(String),
    /// `@name` — vertex accumulator reference.
    VAcc(String),
    /// `@@name` — global accumulator reference.
    GAcc(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Double(f64),
    /// String literal (quotes stripped, escapes decoded).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `..` (DARPE bounded repetition).
    DotDot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=` or `<>`
    Ne,
    /// `+=`
    PlusEq,
    /// `->`
    Arrow,
    /// `|` (DARPE alternation).
    Pipe,
    /// `'` (previous-snapshot accumulator read).
    Apostrophe,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Kw(k) => write!(f, "{k}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::VAcc(s) => write!(f, "@{s}"),
            Tok::GAcc(s) => write!(f, "@@{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Double(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Comma => write!(f, ","),
            Tok::Semi => write!(f, ";"),
            Tok::Colon => write!(f, ":"),
            Tok::Dot => write!(f, "."),
            Tok::DotDot => write!(f, ".."),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::Eq => write!(f, "="),
            Tok::EqEq => write!(f, "=="),
            Tok::Ne => write!(f, "<>"),
            Tok::PlusEq => write!(f, "+="),
            Tok::Arrow => write!(f, "->"),
            Tok::Pipe => write!(f, "|"),
            Tok::Apostrophe => write!(f, "'"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// The recognized keywords (uppercase).
const KEYWORDS: &[&str] = &[
    "CREATE", "QUERY", "FOR", "GRAPH", "SELECT", "DISTINCT", "INTO", "FROM", "WHERE", "ACCUM",
    "POST_ACCUM", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "ASC", "DESC", "WHILE", "DO", "END",
    "IF", "THEN", "ELSE", "FOREACH", "IN", "PRINT", "RETURN", "TRUE", "FALSE", "NULL", "AND",
    "OR", "NOT", "AS", "GROUPING", "SETS", "CUBE", "ROLLUP", "TYPEDEF", "TUPLE", "VERTEX", "EDGE",
    "INT", "UINT", "FLOAT", "DOUBLE", "BOOL", "STRING", "DATETIME", "SET", "BAG", "LIST",
    "USE", "SEMANTICS", "UNION", "INTERSECT", "MINUS", "CASE", "WHEN",
    "INSERT", "VALUES", "UPDATE", "DELETE", "TO",
];

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

/// Decodes a byte slice the scanner believes is pure ASCII. The scanning
/// loops only ever slice on `is_ascii_*` byte classes, so this cannot
/// fail today — but the lexer fronts untrusted network input via
/// `gsql-serve`, so a future slicing bug must surface as a structured
/// parse error, never a panic.
fn ascii_str(bytes: &[u8], line: usize, col: usize) -> Result<&str> {
    std::str::from_utf8(bytes).map_err(|_| Error::Parse {
        line,
        col,
        msg: "non-ASCII bytes inside a token".into(),
    })
}

/// Lexes GSQL source into tokens (with a trailing `Eof`).
pub fn lex(src: &str) -> Result<Vec<SpannedTok>> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            toks.push(SpannedTok { tok: $tok, line, col });
            i += $len;
            col += $len;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            b' ' | b'\t' | b'\r' => {
                i += 1;
                col += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(Error::Parse {
                            line,
                            col,
                            msg: "unterminated block comment".into(),
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
            b'(' => push!(Tok::LParen, 1),
            b')' => push!(Tok::RParen, 1),
            b'{' => push!(Tok::LBrace, 1),
            b'}' => push!(Tok::RBrace, 1),
            b'[' => push!(Tok::LBracket, 1),
            b']' => push!(Tok::RBracket, 1),
            b',' => push!(Tok::Comma, 1),
            b';' => push!(Tok::Semi, 1),
            b':' => push!(Tok::Colon, 1),
            b'%' => push!(Tok::Percent, 1),
            b'|' => push!(Tok::Pipe, 1),
            b'*' => push!(Tok::Star, 1),
            b'/' => push!(Tok::Slash, 1),
            b'+' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::PlusEq, 2);
                } else {
                    push!(Tok::Plus, 1);
                }
            }
            b'-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    push!(Tok::Arrow, 2);
                } else {
                    push!(Tok::Minus, 1);
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Le, 2);
                } else if bytes.get(i + 1) == Some(&b'>') {
                    push!(Tok::Ne, 2);
                } else {
                    push!(Tok::Lt, 1);
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Ge, 2);
                } else {
                    push!(Tok::Gt, 1);
                }
            }
            b'=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::EqEq, 2);
                } else {
                    push!(Tok::Eq, 1);
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Ne, 2);
                } else {
                    return Err(Error::Parse { line, col, msg: "stray `!`".into() });
                }
            }
            b'.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    push!(Tok::DotDot, 2);
                } else {
                    push!(Tok::Dot, 1);
                }
            }
            b'@' => {
                let global = bytes.get(i + 1) == Some(&b'@');
                let start = i + if global { 2 } else { 1 };
                let mut j = start;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                if j == start {
                    return Err(Error::Parse {
                        line,
                        col,
                        msg: "expected accumulator name after `@`".into(),
                    });
                }
                let name = String::from_utf8_lossy(&bytes[start..j]).into_owned();
                let len = j - i;
                if global {
                    push!(Tok::GAcc(name), len);
                } else {
                    push!(Tok::VAcc(name), len);
                }
            }
            b'\'' | b'"' => {
                // A quote directly after a VAcc token is the "previous
                // snapshot" apostrophe (v.@score'), not a string.
                if c == b'\''
                    && matches!(toks.last().map(|t| &t.tok), Some(Tok::VAcc(_)))
                {
                    push!(Tok::Apostrophe, 1);
                    continue;
                }
                let quote = c;
                let mut j = i + 1;
                let mut s = String::new();
                let mut ok = false;
                while j < bytes.len() {
                    let b = bytes[j];
                    if b == quote {
                        ok = true;
                        break;
                    }
                    if b == b'\\' && j + 1 < bytes.len() {
                        match bytes[j + 1] {
                            b'n' => s.push('\n'),
                            b't' => s.push('\t'),
                            other => s.push(other as char),
                        }
                        j += 2;
                        continue;
                    }
                    s.push(b as char);
                    j += 1;
                }
                if !ok {
                    return Err(Error::Parse { line, col, msg: "unterminated string".into() });
                }
                let len = j + 1 - i;
                push!(Tok::Str(s), len);
            }
            b'0'..=b'9' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                // Fractional part only if `.` is followed by a digit (so
                // `1..3` bounds lex as Int DotDot Int).
                let mut is_float = false;
                if j + 1 < bytes.len() && bytes[j] == b'.' && bytes[j + 1].is_ascii_digit() {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                    let mut k = j + 1;
                    if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
                        k += 1;
                    }
                    if k < bytes.len() && bytes[k].is_ascii_digit() {
                        is_float = true;
                        j = k;
                        while j < bytes.len() && bytes[j].is_ascii_digit() {
                            j += 1;
                        }
                    }
                }
                let text = ascii_str(&bytes[start..j], line, col)?;
                let tok = if is_float {
                    Tok::Double(text.parse().map_err(|_| Error::Parse {
                        line,
                        col,
                        msg: format!("bad number `{text}`"),
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| Error::Parse {
                        line,
                        col,
                        msg: format!("bad integer `{text}`"),
                    })?)
                };
                let len = j - start;
                push!(tok, len);
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                let word = ascii_str(&bytes[start..j], line, col)?;
                let upper = word.to_ascii_uppercase();
                let norm = if upper == "POST" {
                    // POST_ACCUM / POST-ACCUM normalization.
                    None
                } else {
                    KEYWORDS.iter().find(|k| **k == upper).copied()
                };
                let len = j - start;
                if upper == "POST"
                    && (bytes.get(j) == Some(&b'-') || bytes.get(j) == Some(&b'_'))
                {
                    // Check for ACCUM following.
                    let k = j + 1;
                    let mut m = k;
                    while m < bytes.len() && bytes[m].is_ascii_alphabetic() {
                        m += 1;
                    }
                    let next = ascii_str(&bytes[k..m], line, col)?.to_ascii_uppercase();
                    if next == "ACCUM" {
                        let total = m - start;
                        push!(Tok::Kw("POST_ACCUM"), total);
                        continue;
                    }
                }
                if let Some(k) = norm {
                    push!(Tok::Kw(k), len);
                } else {
                    push!(Tok::Ident(word.to_string()), len);
                }
            }
            other => {
                return Err(Error::Parse {
                    line,
                    col,
                    msg: format!("unexpected character `{}`", other as char),
                })
            }
        }
    }
    toks.push(SpannedTok { tok: Tok::Eof, line, col });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            toks("select Select SELECT"),
            vec![Tok::Kw("SELECT"), Tok::Kw("SELECT"), Tok::Kw("SELECT"), Tok::Eof]
        );
    }

    #[test]
    fn accumulator_tokens() {
        assert_eq!(
            toks("v.@score + @@total"),
            vec![
                Tok::Ident("v".into()),
                Tok::Dot,
                Tok::VAcc("score".into()),
                Tok::Plus,
                Tok::GAcc("total".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn prev_snapshot_apostrophe() {
        assert_eq!(
            toks("v.@score'"),
            vec![
                Tok::Ident("v".into()),
                Tok::Dot,
                Tok::VAcc("score".into()),
                Tok::Apostrophe,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_both_quotes() {
        assert_eq!(toks("'Toys'"), vec![Tok::Str("Toys".into()), Tok::Eof]);
        assert_eq!(toks("\"a\\tb\""), vec![Tok::Str("a\tb".into()), Tok::Eof]);
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 1.5 2e3"),
            vec![Tok::Int(42), Tok::Double(1.5), Tok::Double(2000.0), Tok::Eof]
        );
        // Bounds syntax must not lex 1..3 as floats.
        assert_eq!(
            toks("1..3"),
            vec![Tok::Int(1), Tok::DotDot, Tok::Int(3), Tok::Eof]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("+= -> <> != == <= >="),
            vec![
                Tok::PlusEq,
                Tok::Arrow,
                Tok::Ne,
                Tok::Ne,
                Tok::EqEq,
                Tok::Le,
                Tok::Ge,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn post_accum_spellings() {
        assert_eq!(toks("POST_ACCUM"), vec![Tok::Kw("POST_ACCUM"), Tok::Eof]);
        assert_eq!(toks("POST-ACCUM"), vec![Tok::Kw("POST_ACCUM"), Tok::Eof]);
        assert_eq!(toks("post-accum"), vec![Tok::Kw("POST_ACCUM"), Tok::Eof]);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a // comment\n b /* multi\nline */ c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn errors_positioned() {
        match lex("ab\n  ~") {
            Err(Error::Parse { line, col, .. }) => {
                assert_eq!(line, 2);
                assert_eq!(col, 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn minus_vs_arrow() {
        assert_eq!(
            toks("a - b -> c -(d)-"),
            vec![
                Tok::Ident("a".into()),
                Tok::Minus,
                Tok::Ident("b".into()),
                Tok::Arrow,
                Tok::Ident("c".into()),
                Tok::Minus,
                Tok::LParen,
                Tok::Ident("d".into()),
                Tok::RParen,
                Tok::Minus,
                Tok::Eof
            ]
        );
    }
}
