//! Expression evaluation.
//!
//! GSQL expressions are evaluated against an [`Env`] that layers (from
//! innermost to outermost): ACCUM-local variables, the current binding
//! row, statement-level locals (`FOREACH` variables), query parameters,
//! and the accumulator stores. Vertex accumulator reads `v.@a` see the
//! live store; `v.@a'` sees the snapshot taken at the start of the
//! current query block (paper Section 5, PageRank's previous-iteration
//! score).

use crate::ast::{BinOp, Expr, UnOp};
use crate::datetime;
use crate::error::{Error, Result};
use crate::table::Table;
use accum::{Accum, AccumType, UserAccumRegistry};
use pgraph::fxhash::FxHashMap;
use pgraph::graph::{EdgeId, Graph, VertexId};
use pgraph::value::Value;
use std::cmp::Ordering;

/// What a FROM-clause variable is bound to in one binding-table row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Binding {
    /// A bound vertex.
    Vertex(VertexId),
    /// A bound edge.
    Edge(EdgeId),
    /// Row `row` of FROM table number `table` (index into the evaluated
    /// block's table list).
    Row {
        /// Index into the evaluated block's table list.
        table: usize,
        /// Row index within that table.
        row: usize,
    },
}

impl Binding {
    /// The value a binding denotes when used as a whole (comparisons,
    /// projections).
    pub fn to_value(&self, tables: &[&Table]) -> Value {
        match self {
            Binding::Vertex(v) => Value::Vertex(*v),
            Binding::Edge(e) => Value::Edge(*e),
            Binding::Row { table, row } => Value::Tuple(tables[*table].rows[*row].clone()),
        }
    }
}

/// Per-vertex accumulator storage for one declared `@name`.
#[derive(Debug, Clone)]
pub struct VAccStore {
    /// Declared accumulator type.
    pub ty: AccumType,
    /// The freshly-initialized instance vertices start from (includes the
    /// declaration initializer, e.g. `SumAccum<float> @score = 1`).
    pub prototype: Accum,
    /// Lazily-populated cells, indexed by `VertexId`.
    pub cells: Vec<Option<Accum>>,
}

impl VAccStore {
    /// Read the current value at `v` (prototype value if untouched).
    pub fn value_at(&self, v: VertexId) -> Value {
        match self.cells.get(v.0 as usize).and_then(|c| c.as_ref()) {
            Some(a) => a.value(),
            None => self.prototype.value(),
        }
    }

    /// Mutable access, materializing the cell from the prototype.
    pub fn cell_mut(&mut self, v: VertexId) -> &mut Accum {
        let idx = v.0 as usize;
        if idx >= self.cells.len() {
            self.cells.resize(idx + 1, None);
        }
        self.cells[idx].get_or_insert_with(|| self.prototype.clone())
    }
}

/// One row of a binding table: variable bindings plus the row's
/// multiplicity (the number of legal path combinations witnessing it —
/// the compressed representation of Appendix A).
#[derive(Debug, Clone)]
pub struct BindingRow {
    /// Variable bindings, positionally aligned with the block's variable
    /// map.
    pub bindings: Vec<Binding>,
    /// Multiplicity: number of legal path combinations witnessing this
    /// row.
    pub mult: pgraph::bigcount::BigCount,
}

/// Where a row's bindings live: a contiguous row-major slice (single
/// synthesized rows — PRINT projections, POST_ACCUM's per-vertex row,
/// spec refinement) or one row of a column-major
/// [`MorselTable`](crate::morsel::MorselTable) chunk, addressed without
/// materializing the row. Evaluation is storage-agnostic: batch
/// evaluation over a morsel reuses the scalar evaluator with a
/// `Columnar` cursor per row.
#[derive(Clone, Copy)]
pub enum Bindings<'a> {
    /// A contiguous slice holding one row's bindings.
    Row(&'a [Binding]),
    /// Row `row` across the columns of a columnar binding table.
    Columnar {
        /// The table's columns (all the same length).
        cols: &'a [Vec<Binding>],
        /// The row index this view addresses.
        row: usize,
    },
}

impl<'a> Bindings<'a> {
    /// The binding at variable position `idx`, if bound.
    pub fn get(&self, idx: usize) -> Option<&'a Binding> {
        match self {
            Bindings::Row(b) => b.get(idx),
            Bindings::Columnar { cols, row } => cols.get(idx).map(|c| &c[*row]),
        }
    }
}

/// Borrowed view of one row during evaluation.
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    /// Variable name → position in `bindings`.
    pub vars: &'a FxHashMap<String, usize>,
    /// The row's bindings (row-major or columnar).
    pub bindings: Bindings<'a>,
    /// FROM-clause tables referenced by `Binding::Row`.
    pub tables: &'a [&'a Table],
}

/// Aggregate resolver used during grouped SELECT evaluation.
pub type AggResolver<'a> = &'a dyn Fn(&Expr) -> Option<Value>;

/// The evaluation environment.
#[derive(Clone, Copy)]
pub struct Env<'a> {
    /// The graph queried.
    pub graph: &'a Graph,
    /// User-defined accumulator registry.
    pub registry: &'a UserAccumRegistry,
    /// Query parameter values.
    pub params: &'a FxHashMap<String, Value>,
    /// Statement-level locals (FOREACH variables).
    pub locals: Option<&'a FxHashMap<String, Value>>,
    /// The current binding row, if evaluating inside a block.
    pub row: Option<RowRef<'a>>,
    /// ACCUM-clause local declarations of the current acc-execution.
    pub acc_locals: Option<&'a FxHashMap<String, Value>>,
    /// Live vertex accumulator stores (`v.@a`).
    pub vaccs: &'a FxHashMap<String, VAccStore>,
    /// Pre-block snapshots (`v.@a'`).
    pub prev_vaccs: &'a FxHashMap<String, VAccStore>,
    /// Live global accumulators (`@@a`).
    pub gaccs: &'a FxHashMap<String, Accum>,
    /// Pre-block global snapshots (`@@a'`).
    pub prev_gaccs: &'a FxHashMap<String, Accum>,
    /// Named vertex sets in scope.
    pub vsets: &'a FxHashMap<String, Vec<VertexId>>,
    /// Aggregate resolver for SELECT/HAVING/ORDER BY over groups.
    pub agg: Option<AggResolver<'a>>,
}

impl<'a> Env<'a> {
    fn lookup_binding(&self, name: &str) -> Option<&'a Binding> {
        let row = self.row.as_ref()?;
        let idx = *row.vars.get(name)?;
        row.bindings.get(idx)
    }

    /// Resolves a bare identifier.
    fn ident(&self, name: &str) -> Result<Value> {
        if let Some(locals) = self.acc_locals {
            if let Some(v) = locals.get(name) {
                return Ok(v.clone());
            }
        }
        if let Some(b) = self.lookup_binding(name) {
            let tables = self
                .row
                .as_ref()
                .ok_or_else(|| {
                    Error::runtime(format!("`{name}` referenced outside a binding row"))
                })?
                .tables;
            return Ok(b.to_value(tables));
        }
        if let Some(locals) = self.locals {
            if let Some(v) = locals.get(name) {
                return Ok(v.clone());
            }
        }
        if let Some(v) = self.params.get(name) {
            return Ok(v.clone());
        }
        if let Some(set) = self.vsets.get(name) {
            return Ok(Value::new_set(set.iter().map(|v| Value::Vertex(*v)).collect()));
        }
        Err(Error::runtime(format!("unknown identifier `{name}`")))
    }
}

/// Evaluates `expr` under `env`.
pub fn eval(env: &Env, expr: &Expr) -> Result<Value> {
    if let Some(agg) = env.agg {
        if let Some(v) = agg(expr) {
            return Ok(v);
        }
    }
    match expr {
        Expr::Null => Ok(Value::Null),
        Expr::Int(v) => Ok(Value::Int(*v)),
        Expr::Double(v) => Ok(Value::Double(*v)),
        Expr::Str(s) => Ok(Value::Str(s.clone())),
        Expr::Bool(b) => Ok(Value::Bool(*b)),
        Expr::Ident(name) => env.ident(name),
        Expr::Attr { base, field } => eval_attr(env, base, field),
        Expr::VAcc { var, name, prev } => {
            let v = resolve_vertex(env, var)?;
            let stores = if *prev { env.prev_vaccs } else { env.vaccs };
            let store = stores
                .get(name)
                .ok_or_else(|| Error::runtime(format!("undeclared accumulator `@{name}`")))?;
            Ok(store.value_at(v))
        }
        Expr::GAcc(name) => {
            let acc = env
                .gaccs
                .get(name)
                .ok_or_else(|| Error::runtime(format!("undeclared accumulator `@@{name}`")))?;
            Ok(acc.value())
        }
        Expr::Call { func, args, star } => eval_call(env, func, args, *star),
        Expr::Method { base, method, args } => eval_method(env, base, method, args),
        Expr::Unary { op, expr } => {
            let v = eval(env, expr)?;
            match op {
                UnOp::Neg => match v {
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Double(d) => Ok(Value::Double(-d)),
                    other => Err(Error::type_error("numeric", &other)),
                },
                UnOp::Not => match v {
                    Value::Bool(b) => Ok(Value::Bool(!b)),
                    other => Err(Error::type_error("boolean", &other)),
                },
            }
        }
        Expr::Binary { op, lhs, rhs } => eval_binary(env, *op, lhs, rhs),
        Expr::ArrowTuple { keys, vals } => {
            let mut items = Vec::with_capacity(keys.len() + vals.len());
            for e in keys.iter().chain(vals) {
                items.push(eval(env, e)?);
            }
            Ok(Value::Tuple(items))
        }
        Expr::Tuple(items) => {
            let mut out = Vec::with_capacity(items.len());
            for e in items {
                out.push(eval(env, e)?);
            }
            Ok(Value::Tuple(out))
        }
        Expr::Case { branches, default } => {
            for (cond, val) in branches {
                if truthy(&eval(env, cond)?)? {
                    return eval(env, val);
                }
            }
            match default {
                Some(d) => eval(env, d),
                None => Ok(Value::Null),
            }
        }
    }
}

/// Resolves a variable that must denote a vertex (for `v.@acc`, `v.attr`
/// on vertices, `v.outdegree()`, ...).
pub fn resolve_vertex(env: &Env, var: &str) -> Result<VertexId> {
    if let Some(b) = env.lookup_binding(var) {
        if let Binding::Vertex(v) = b {
            return Ok(*v);
        }
        return Err(Error::runtime(format!("variable `{var}` is not a vertex")));
    }
    if let Some(locals) = env.locals {
        if let Some(Value::Vertex(v)) = locals.get(var) {
            return Ok(*v);
        }
    }
    match env.params.get(var) {
        Some(Value::Vertex(v)) => Ok(*v),
        _ => Err(Error::runtime(format!("`{var}` is not bound to a vertex"))),
    }
}

fn eval_attr(env: &Env, base: &str, field: &str) -> Result<Value> {
    // FOREACH variable or parameter holding a vertex also supports `.attr`.
    if let Some(b) = env.lookup_binding(base) {
        return match b {
            Binding::Vertex(v) => env
                .graph
                .vertex_attr_by_name(*v, field)
                .cloned()
                .ok_or_else(|| attr_error(env.graph, *v, field)),
            Binding::Edge(e) => env
                .graph
                .edge_attr_by_name(*e, field)
                .cloned()
                .ok_or_else(|| Error::runtime(format!("edge has no attribute `{field}`"))),
            Binding::Row { table, row } => {
                let t = *env
                    .row
                    .as_ref()
                    .and_then(|r| r.tables.get(*table))
                    .ok_or_else(|| {
                        Error::runtime(format!(
                            "`{base}` is a table binding with no backing table in scope"
                        ))
                    })?;
                let idx = t
                    .column_index(field)
                    .ok_or_else(|| Error::runtime(format!("table `{}` has no column `{field}`", t.name)))?;
                Ok(t.rows[*row][idx].clone())
            }
        };
    }
    // Fall back to locals / params that hold a vertex.
    let v = resolve_vertex(env, base)?;
    env.graph
        .vertex_attr_by_name(v, field)
        .cloned()
        .ok_or_else(|| attr_error(env.graph, v, field))
}

fn attr_error(graph: &Graph, v: VertexId, field: &str) -> Error {
    let ty = graph.schema().vertex_type(graph.vertex_type_of(v));
    Error::runtime(format!("vertex type `{}` has no attribute `{field}`", ty.name))
}

fn eval_call(env: &Env, func: &str, args: &[Expr], star: bool) -> Result<Value> {
    let f = func.to_ascii_lowercase();
    let is_aggregate = star
        || matches!(f.as_str(), "count" | "sum" | "avg")
        || (args.len() == 1 && matches!(f.as_str(), "min" | "max"));
    if is_aggregate {
        return Err(Error::runtime(format!(
            "aggregate `{func}` used outside SELECT/HAVING/ORDER BY context"
        )));
    }
    let mut vals = Vec::with_capacity(args.len());
    for a in args {
        vals.push(eval(env, a)?);
    }
    let num = |v: &Value| -> Result<f64> {
        v.as_f64().ok_or_else(|| Error::type_error("numeric", v))
    };
    let arity = |n: usize| -> Result<()> {
        if vals.len() == n {
            Ok(())
        } else {
            Err(Error::runtime(format!("`{func}` expects {n} argument(s), got {}", vals.len())))
        }
    };
    match f.as_str() {
        "log" | "ln" => {
            arity(1)?;
            Ok(Value::Double(num(&vals[0])?.ln()))
        }
        "log2" => {
            arity(1)?;
            Ok(Value::Double(num(&vals[0])?.log2()))
        }
        "log10" => {
            arity(1)?;
            Ok(Value::Double(num(&vals[0])?.log10()))
        }
        "exp" => {
            arity(1)?;
            Ok(Value::Double(num(&vals[0])?.exp()))
        }
        "sqrt" => {
            arity(1)?;
            Ok(Value::Double(num(&vals[0])?.sqrt()))
        }
        "abs" => {
            arity(1)?;
            match &vals[0] {
                Value::Int(i) => Ok(Value::Int(i.abs())),
                other => Ok(Value::Double(num(other)?.abs())),
            }
        }
        "floor" => {
            arity(1)?;
            Ok(Value::Double(num(&vals[0])?.floor()))
        }
        "ceil" => {
            arity(1)?;
            Ok(Value::Double(num(&vals[0])?.ceil()))
        }
        "round" => {
            arity(1)?;
            Ok(Value::Double(num(&vals[0])?.round()))
        }
        "pow" => {
            arity(2)?;
            Ok(Value::Double(num(&vals[0])?.powf(num(&vals[1])?)))
        }
        // Scalar two-argument min/max (one-argument forms are aggregates).
        "min" => {
            arity(2)?;
            Ok(if vals[0] <= vals[1] { vals[0].clone() } else { vals[1].clone() })
        }
        "max" => {
            arity(2)?;
            Ok(if vals[0] >= vals[1] { vals[0].clone() } else { vals[1].clone() })
        }
        "float" | "double" => {
            arity(1)?;
            Ok(Value::Double(num(&vals[0])?))
        }
        "int" => {
            arity(1)?;
            vals[0]
                .as_i64()
                .map(Value::Int)
                .ok_or_else(|| Error::type_error("integer-convertible", &vals[0]))
        }
        "str" | "to_string" => {
            arity(1)?;
            Ok(Value::Str(vals[0].to_string()))
        }
        "lower" => {
            arity(1)?;
            Ok(Value::Str(str_arg(&vals[0])?.to_lowercase()))
        }
        "upper" => {
            arity(1)?;
            Ok(Value::Str(str_arg(&vals[0])?.to_uppercase()))
        }
        "length" => {
            arity(1)?;
            Ok(Value::Int(str_arg(&vals[0])?.chars().count() as i64))
        }
        // argmax/argmin over a map value: the key with the extreme value
        // (ties break to the smallest key). NULL on empty maps.
        "argmax" | "argmin" => {
            arity(1)?;
            match &vals[0] {
                Value::Map(entries) => {
                    let mut best: Option<(&Value, &Value)> = None;
                    for (k, v) in entries {
                        let better = match &best {
                            None => true,
                            Some((_, bv)) => {
                                if f == "argmax" {
                                    v > bv
                                } else {
                                    v < bv
                                }
                            }
                        };
                        if better {
                            best = Some((k, v));
                        }
                    }
                    Ok(best.map(|(k, _)| k.clone()).unwrap_or(Value::Null))
                }
                other => Err(Error::type_error("map", other)),
            }
        }
        "coalesce" => {
            for v in &vals {
                if !matches!(v, Value::Null) {
                    return Ok(v.clone());
                }
            }
            Ok(Value::Null)
        }
        "year" => {
            arity(1)?;
            Ok(Value::Int(datetime::year(dt_arg(&vals[0])?)))
        }
        "month" => {
            arity(1)?;
            Ok(Value::Int(datetime::month(dt_arg(&vals[0])?)))
        }
        "day" => {
            arity(1)?;
            Ok(Value::Int(datetime::day(dt_arg(&vals[0])?)))
        }
        "to_datetime" => {
            arity(3)?;
            let y = vals[0].as_i64().ok_or_else(|| Error::type_error("int", &vals[0]))?;
            let m = vals[1].as_i64().ok_or_else(|| Error::type_error("int", &vals[1]))?;
            let d = vals[2].as_i64().ok_or_else(|| Error::type_error("int", &vals[2]))?;
            // Range-check before the u32 narrowing: a negative Int would
            // otherwise wrap to a huge month/day and flow into the epoch
            // math unvalidated.
            if !(1..=12).contains(&m) {
                return Err(Error::runtime(format!(
                    "to_datetime: month out of range: {m} (expected 1..=12)"
                )));
            }
            if !(1..=31).contains(&d) {
                return Err(Error::runtime(format!(
                    "to_datetime: day out of range: {d} (expected 1..=31)"
                )));
            }
            Ok(Value::DateTime(datetime::to_epoch(y, m as u32, d as u32)))
        }
        other => Err(Error::runtime(format!("unknown function `{other}`"))),
    }
}

fn str_arg(v: &Value) -> Result<&str> {
    v.as_str().ok_or_else(|| Error::type_error("string", v))
}

fn dt_arg(v: &Value) -> Result<i64> {
    match v {
        Value::DateTime(t) | Value::Int(t) => Ok(*t),
        other => Err(Error::type_error("datetime", other)),
    }
}

fn eval_method(env: &Env, base: &Expr, method: &str, args: &[Expr]) -> Result<Value> {
    let m = method.to_ascii_lowercase();
    // Vertex methods work on the *variable* so we can reach the graph.
    if let Expr::Ident(var) = base {
        match m.as_str() {
            "outdegree" | "indegree" | "degree" => {
                let v = resolve_vertex(env, var)?;
                let etype = match args.first() {
                    None => None,
                    Some(e) => {
                        let name = eval(env, e)?;
                        let name = str_arg(&name)?.to_string();
                        Some(env.graph.schema().edge_type_id(&name).ok_or_else(|| {
                            Error::runtime(format!("unknown edge type `{name}`"))
                        })?)
                    }
                };
                let d = match m.as_str() {
                    "outdegree" => env.graph.outdegree(v, etype),
                    "indegree" => env.graph.indegree(v, etype),
                    _ => env.graph.degree(v),
                };
                return Ok(Value::Int(d as i64));
            }
            "type" => {
                let v = resolve_vertex(env, var)?;
                let t = env.graph.schema().vertex_type(env.graph.vertex_type_of(v));
                return Ok(Value::Str(t.name.clone()));
            }
            "id" => {
                let v = resolve_vertex(env, var)?;
                return Ok(Value::Int(v.0 as i64));
            }
            _ => {}
        }
    }
    // Collection methods evaluate the base as a value.
    let b = eval(env, base)?;
    match (m.as_str(), &b) {
        ("size", Value::List(xs)) | ("size", Value::Set(xs)) | ("size", Value::Tuple(xs)) => {
            Ok(Value::Int(xs.len() as i64))
        }
        ("size", Value::Map(xs)) => Ok(Value::Int(xs.len() as i64)),
        ("size", Value::Str(s)) => Ok(Value::Int(s.chars().count() as i64)),
        ("contains", Value::List(xs)) | ("contains", Value::Set(xs)) => {
            let needle = eval(env, &args[0])?;
            Ok(Value::Bool(xs.contains(&needle)))
        }
        ("get", Value::Map(entries)) => {
            let key = eval(env, &args[0])?;
            Ok(entries
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or(Value::Null))
        }
        _ => Err(Error::runtime(format!("unknown method `{method}` on `{b}`"))),
    }
}

fn eval_binary(env: &Env, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<Value> {
    // Short-circuit logicals.
    match op {
        BinOp::And => {
            let l = truthy(&eval(env, lhs)?)?;
            if !l {
                return Ok(Value::Bool(false));
            }
            return Ok(Value::Bool(truthy(&eval(env, rhs)?)?));
        }
        BinOp::Or => {
            let l = truthy(&eval(env, lhs)?)?;
            if l {
                return Ok(Value::Bool(true));
            }
            return Ok(Value::Bool(truthy(&eval(env, rhs)?)?));
        }
        _ => {}
    }
    let l = eval(env, lhs)?;
    let r = eval(env, rhs)?;
    match op {
        BinOp::Add => match (&l, &r) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
            (Value::Str(a), b) => Ok(Value::Str(format!("{a}{b}"))),
            (a, Value::Str(b)) => Ok(Value::Str(format!("{a}{b}"))),
            _ => numeric_op(&l, &r, |a, b| a + b),
        },
        BinOp::Sub => match (&l, &r) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_sub(*b))),
            _ => numeric_op(&l, &r, |a, b| a - b),
        },
        BinOp::Mul => match (&l, &r) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_mul(*b))),
            _ => numeric_op(&l, &r, |a, b| a * b),
        },
        BinOp::Div => match (&l, &r) {
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Err(Error::runtime("integer division by zero"))
                } else {
                    Ok(Value::Int(a / b))
                }
            }
            _ => numeric_op(&l, &r, |a, b| a / b),
        },
        BinOp::Mod => match (&l, &r) {
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Err(Error::runtime("modulo by zero"))
                } else {
                    Ok(Value::Int(a.rem_euclid(*b)))
                }
            }
            _ => numeric_op(&l, &r, |a, b| a.rem_euclid(b)),
        },
        BinOp::Eq => Ok(Value::Bool(l == r)),
        BinOp::Ne => Ok(Value::Bool(l != r)),
        BinOp::Lt => Ok(Value::Bool(l.cmp(&r) == Ordering::Less)),
        BinOp::Le => Ok(Value::Bool(l.cmp(&r) != Ordering::Greater)),
        BinOp::Gt => Ok(Value::Bool(l.cmp(&r) == Ordering::Greater)),
        BinOp::Ge => Ok(Value::Bool(l.cmp(&r) != Ordering::Less)),
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

fn numeric_op(l: &Value, r: &Value, f: impl Fn(f64, f64) -> f64) -> Result<Value> {
    let a = l.as_f64().ok_or_else(|| Error::type_error("numeric", l))?;
    let b = r.as_f64().ok_or_else(|| Error::type_error("numeric", r))?;
    Ok(Value::Double(f(a, b)))
}

/// Boolean coercion for WHERE / WHILE / IF conditions.
pub fn truthy(v: &Value) -> Result<bool> {
    match v {
        Value::Bool(b) => Ok(*b),
        other => Err(Error::type_error("boolean condition", other)),
    }
}
