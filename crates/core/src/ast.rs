//! GSQL abstract syntax.

use accum::AccumType;
use pgraph::value::ValueType;

/// A source position (1-based line/column) attached to the AST nodes
/// the linter anchors diagnostics to.
///
/// Spans compare **equal to every other span** so that AST equality in
/// tests stays structural: two parses of semantically identical text
/// are `==` even when whitespace shifts positions.
#[derive(Debug, Clone, Copy, Default)]
pub struct Span {
    /// 1-based source line (0 = unknown).
    pub line: usize,
    /// 1-based source column (0 = unknown).
    pub col: usize,
}

impl Span {
    /// Builds a span from a known position.
    pub fn at(line: usize, col: usize) -> Span {
        Span { line, col }
    }

    /// True when the span carries a real position.
    pub fn is_known(&self) -> bool {
        self.line > 0
    }
}

impl PartialEq for Span {
    fn eq(&self, _other: &Span) -> bool {
        true
    }
}

impl Eq for Span {}

/// A parsed `CREATE QUERY`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Query name (`CREATE QUERY <name>`).
    pub name: String,
    /// Declared parameters, in order.
    pub params: Vec<Param>,
    /// `FOR GRAPH g` — informational in this engine (one graph per
    /// [`crate::Engine`]), but parsed and kept.
    pub graph: Option<String>,
    /// Statements of the query body.
    pub body: Vec<Stmt>,
}

/// A query parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: ParamType,
}

/// Parameter types.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamType {
    /// A scalar (`INT`, `STRING`, ...).
    Scalar(ValueType),
    /// `VERTEX` or `VERTEX<Type>`.
    Vertex(Option<String>),
    /// `SET<VERTEX>` — a set of vertices.
    VertexSet,
}

/// A statement in a query body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `SumAccum<float> @a = 1, @@b;`
    AccumDecl {
        /// Declared accumulator type.
        ty: AccumType,
        /// One or more declarators sharing that type.
        decls: Vec<AccumDecl>,
    },
    /// `TYPEDEF TUPLE<f1 INT, f2 STRING> Name;`
    TupleTypedef {
        /// Tuple type name.
        name: String,
        /// Field names and types, in order.
        fields: Vec<(String, ValueType)>,
    },
    /// `S = SELECT ...;` or `AllV = {Page.*};`
    VSetAssign {
        /// Target vertex-set variable.
        name: String,
        /// Right-hand side.
        source: VSetSource,
        /// Source position of the assignment target.
        span: Span,
    },
    /// A bare `SELECT` block used for its side effects / INTO tables.
    Select(Box<SelectBlock>),
    /// `@@a = e;` / `@@a += e;` at statement level.
    GAccAssign {
        /// Global accumulator name (without `@@`).
        name: String,
        /// `true` for `+=` (combine), `false` for `=` (assign).
        combine: bool,
        /// Right-hand side.
        expr: Expr,
    },
    /// `USE SEMANTICS 'non_repeated_edge';` — the per-query matching-
    /// semantics selection the paper announces as planned syntax
    /// (Section 6.1, "syntactic sugar for specifying semantic
    /// alternatives"). Affects subsequent SELECT blocks.
    UseSemantics(crate::semantics::PathSemantics),
    /// `WHILE cond [LIMIT n] DO ... END;`
    While {
        /// Loop condition, re-evaluated before each iteration.
        cond: Expr,
        /// Optional `LIMIT` iteration cap.
        limit: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source position of the `WHILE` keyword.
        span: Span,
    },
    /// `IF cond THEN ... [ELSE ...] END;`
    If {
        /// Branch condition.
        cond: Expr,
        /// Statements run when the condition is true.
        then_branch: Vec<Stmt>,
        /// Statements run otherwise (empty when no `ELSE`).
        else_branch: Vec<Stmt>,
    },
    /// `FOREACH var IN iterable DO ... END;`
    Foreach {
        /// Loop variable.
        var: String,
        /// Collection expression iterated over.
        iterable: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `PRINT e1, e2, ...;`
    Print(Vec<PrintItem>),
    /// `RETURN e;`
    Return(Expr),
    /// `INSERT VERTEX Type [(attr, ...)] VALUES (e, ...);` — omitted
    /// attributes take their type defaults; with no column list the
    /// values are positional over the declared attributes.
    InsertVertex {
        /// Vertex type name.
        vtype: String,
        /// Named columns (empty = positional over all attributes).
        columns: Vec<String>,
        /// Value expressions, evaluated against the pre-write snapshot.
        values: Vec<Expr>,
        /// Source position of the `INSERT` keyword.
        span: Span,
    },
    /// `INSERT EDGE Type FROM e1 TO e2 [[(attr, ...)] VALUES (e, ...)];`
    /// Endpoint expressions must evaluate to a vertex, or to an integer
    /// id (which may address a vertex inserted earlier in this query).
    InsertEdge {
        /// Edge type name.
        etype: String,
        /// Source endpoint expression.
        src: Expr,
        /// Target endpoint expression.
        dst: Expr,
        /// Named columns (empty = positional).
        columns: Vec<String>,
        /// Attribute value expressions.
        values: Vec<Expr>,
        /// Source position of the `INSERT` keyword.
        span: Span,
    },
    /// `UPDATE VType:v SET v.attr = e, ... [WHERE cond];`
    Update {
        /// Candidate vertices (type, set variable, parameter, or ANY).
        target: VSpec,
        /// `(var, attr, expr)` assignments applied per matching vertex.
        sets: Vec<(String, String, Expr)>,
        /// Optional row filter, evaluated per candidate vertex.
        where_clause: Option<Expr>,
        /// Source position of the `UPDATE` keyword.
        span: Span,
    },
    /// `DELETE FROM VType:v [WHERE cond];` — deletes matching vertices
    /// and (transitively) their incident edges.
    Delete {
        /// Candidate vertices.
        target: VSpec,
        /// Optional row filter; **absent means full wipe** (lint M001).
        where_clause: Option<Expr>,
        /// Source position of the `DELETE` keyword.
        span: Span,
    },
}

/// One accumulator declarator.
#[derive(Debug, Clone, PartialEq)]
pub struct AccumDecl {
    /// `true` for `@@global`, `false` for per-vertex `@local`.
    pub global: bool,
    /// Accumulator name without the `@`/`@@` sigil.
    pub name: String,
    /// Optional declaration initializer.
    pub init: Option<Expr>,
    /// Source position of the declarator.
    pub span: Span,
}

/// Source of a vertex-set assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum VSetSource {
    /// `{Page.*, Person.*}` — all vertices of the listed types
    /// (`{_}`/`{ANY}` = every vertex). An entry may also name a vertex
    /// parameter (singleton set).
    Literal(Vec<String>),
    /// The vertices produced by a SELECT block.
    Select(Box<SelectBlock>),
    /// `A UNION B` / `A INTERSECT B` / `A MINUS B` over vertex sets.
    SetOp {
        /// Which set operation.
        op: SetOp,
        /// Left operand (vertex-set variable).
        lhs: String,
        /// Right operand (vertex-set variable).
        rhs: String,
    },
}

/// Vertex-set algebra operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// `UNION`.
    Union,
    /// `INTERSECT`.
    Intersect,
    /// `MINUS`.
    Minus,
}

/// A `SELECT` query block.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectBlock {
    /// SELECT-clause output fragments (multi-output SELECT has several).
    pub outputs: Vec<OutputFragment>,
    /// FROM-clause items (patterns and/or tables).
    pub from: Vec<FromItem>,
    /// Optional `WHERE` predicate over binding rows.
    pub where_clause: Option<Expr>,
    /// `ACCUM` statements (Map phase, per binding row).
    pub accum: Vec<AccStmt>,
    /// `POST-ACCUM` statements (per distinct bound vertex).
    pub post_accum: Vec<AccStmt>,
    /// Optional `GROUP BY` clause.
    pub group_by: Option<GroupBy>,
    /// Optional `HAVING` predicate over groups.
    pub having: Option<Expr>,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderItem>,
    /// Optional `LIMIT` row count.
    pub limit: Option<Expr>,
    /// Source position of the `SELECT` keyword.
    pub span: Span,
}

/// One output fragment of a (multi-output) SELECT clause.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputFragment {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projected columns.
    pub items: Vec<SelectItem>,
    /// Optional `INTO table` target.
    pub into: Option<String>,
}

/// One projected column.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// Projected expression.
    pub expr: Expr,
    /// Optional `AS alias`.
    pub alias: Option<String>,
}

/// `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort key expression.
    pub expr: Expr,
    /// `true` for `DESC`.
    pub desc: bool,
}

/// `GROUP BY` clause: one or more grouping sets (plain GROUP BY is one
/// set; `GROUPING SETS`, `CUBE` and `ROLLUP` expand to several — the
/// expansion happens in the parser so the executor sees only sets).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupBy {
    /// Full list of distinct grouping expressions (output columns).
    pub keys: Vec<Expr>,
    /// Each set selects indices into `keys`.
    pub sets: Vec<Vec<usize>>,
}

/// FROM-clause item.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// A path pattern, optionally graph-qualified:
    /// `LinkedIn:(Person:p -(Connected:c)- Person:o)`.
    Pattern {
        /// Optional graph qualifier.
        graph: Option<String>,
        /// The pattern's source vertex specifier.
        start: VSpec,
        /// The hops walked from the source.
        hops: Vec<Hop>,
    },
    /// A relational-table scan: `Employee:e`.
    Table {
        /// Table name.
        name: String,
        /// Binding variable.
        alias: String,
    },
}

/// A vertex specifier: a name (vertex type, vertex-set variable, vertex
/// parameter, or `_`/`ANY`) with an optional binding variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VSpec {
    /// Vertex type, vertex-set variable, vertex parameter, or `_`/`ANY`.
    pub name: String,
    /// Optional binding variable (`:v`).
    pub var: Option<String>,
}

/// One hop of a path pattern: `-(DARPE[:edgeVar])- VSpec`.
#[derive(Debug, Clone, PartialEq)]
pub struct Hop {
    /// The edge pattern (direction-aware regular path expression).
    pub darpe: darpe::Darpe,
    /// Optional edge binding variable (single-edge patterns only).
    pub edge_var: Option<String>,
    /// Target vertex specifier.
    pub to: VSpec,
}

/// A statement inside ACCUM / POST_ACCUM.
#[derive(Debug, Clone, PartialEq)]
pub enum AccStmt {
    /// `float salesPrice = e.quantity * p.list_price` (type optional).
    LocalDecl {
        /// Local variable name.
        name: String,
        /// Initializer expression.
        expr: Expr,
    },
    /// `v.@a += e` / `v.@a = e`.
    VAcc {
        /// The bound vertex variable the accumulator belongs to.
        var: String,
        /// Vertex accumulator name (without `@`).
        name: String,
        /// `true` for `+=` (combine), `false` for `=` (assign).
        combine: bool,
        /// Right-hand side.
        expr: Expr,
    },
    /// `@@a += e` / `@@a = e`.
    GAcc {
        /// Global accumulator name (without `@@`).
        name: String,
        /// `true` for `+=` (combine), `false` for `=` (assign).
        combine: bool,
        /// Right-hand side.
        expr: Expr,
    },
}

/// A PRINT item.
#[derive(Debug, Clone, PartialEq)]
pub enum PrintItem {
    /// A labeled expression (`PRINT e AS label`; label defaults to the
    /// source text of `e`).
    Expr {
        /// The printed expression.
        expr: Expr,
        /// Output key in the PRINT result.
        label: String,
    },
    /// `PRINT R[R.name, R.@cnt]` — project a vertex set; inside the
    /// bracket the set name doubles as the per-vertex alias.
    VSetProjection {
        /// Vertex-set variable being projected.
        set: String,
        /// Per-vertex projected columns.
        items: Vec<SelectItem>,
    },
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `NULL`.
    Null,
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Double(f64),
    /// String literal.
    Str(String),
    /// `TRUE` / `FALSE`.
    Bool(bool),
    /// Variable / parameter / vertex-set reference.
    Ident(String),
    /// `base.field` — vertex/edge attribute or table column.
    Attr {
        /// The bound variable owning the attribute.
        base: String,
        /// Attribute / column name.
        field: String,
    },
    /// `v.@name` (`prev` = trailing apostrophe: pre-block snapshot).
    VAcc {
        /// The bound vertex variable.
        var: String,
        /// Accumulator name (without `@`).
        name: String,
        /// `true` for `v.@name'` (previous-snapshot read).
        prev: bool,
    },
    /// `@@name`.
    GAcc(String),
    /// `f(args)`; `star` marks `count(*)`.
    Call {
        /// Function name.
        func: String,
        /// Argument expressions.
        args: Vec<Expr>,
        /// `true` for `count(*)`.
        star: bool,
    },
    /// `v.outdegree("Likes")`, `v.type()`, `s.size()`, ...
    Method {
        /// Receiver expression.
        base: Box<Expr>,
        /// Method name.
        method: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Unary operator application.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operator application.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `(k1, k2 -> a1, a2)` — accumulator input tuple; evaluates to a
    /// `Value::Tuple` of keys followed by values.
    ArrowTuple {
        /// Key expressions (left of `->`).
        keys: Vec<Expr>,
        /// Value expressions (right of `->`).
        vals: Vec<Expr>,
    },
    /// `(a, b, c)` — plain tuple (HeapAccum inputs).
    Tuple(Vec<Expr>),
    /// `CASE WHEN c1 THEN e1 ... ELSE e END`.
    Case {
        /// `(condition, result)` pairs, tried in order.
        branches: Vec<(Expr, Expr)>,
        /// `ELSE` result (NULL when absent).
        default: Option<Box<Expr>>,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean `NOT`.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (also string/list concatenation).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Mod,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// Boolean `AND`.
    And,
    /// Boolean `OR`.
    Or,
}

impl Expr {
    /// Walks the expression tree, applying `f` to every node.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Call { args, .. } | Expr::Tuple(args) => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Method { base, args, .. } => {
                base.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::ArrowTuple { keys, vals } => {
                for e in keys.iter().chain(vals) {
                    e.walk(f);
                }
            }
            Expr::Case { branches, default } => {
                for (c, e) in branches {
                    c.walk(f);
                    e.walk(f);
                }
                if let Some(d) = default {
                    d.walk(f);
                }
            }
            _ => {}
        }
    }

    /// True if any sub-expression is an aggregate function call
    /// (`count`/`sum`/`avg`/`min`/`max` with one argument or `count(*)`).
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if let Expr::Call { func, args, star } = e {
                let f = func.to_ascii_lowercase();
                if *star
                    || (args.len() == 1
                        && matches!(f.as_str(), "count" | "sum" | "avg" | "min" | "max"))
                {
                    found = true;
                }
            }
        });
        found
    }
}
