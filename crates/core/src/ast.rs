//! GSQL abstract syntax.

use accum::AccumType;
use pgraph::value::ValueType;

/// A parsed `CREATE QUERY`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub name: String,
    pub params: Vec<Param>,
    /// `FOR GRAPH g` — informational in this engine (one graph per
    /// [`crate::Engine`]), but parsed and kept.
    pub graph: Option<String>,
    pub body: Vec<Stmt>,
}

/// A query parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub name: String,
    pub ty: ParamType,
}

/// Parameter types.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamType {
    Scalar(ValueType),
    /// `VERTEX` or `VERTEX<Type>`.
    Vertex(Option<String>),
    /// `SET<VERTEX>` — a set of vertices.
    VertexSet,
}

/// A statement in a query body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `SumAccum<float> @a = 1, @@b;`
    AccumDecl {
        ty: AccumType,
        decls: Vec<AccumDecl>,
    },
    /// `TYPEDEF TUPLE<f1 INT, f2 STRING> Name;`
    TupleTypedef {
        name: String,
        fields: Vec<(String, ValueType)>,
    },
    /// `S = SELECT ...;` or `AllV = {Page.*};`
    VSetAssign { name: String, source: VSetSource },
    /// A bare `SELECT` block used for its side effects / INTO tables.
    Select(Box<SelectBlock>),
    /// `@@a = e;` / `@@a += e;` at statement level.
    GAccAssign { name: String, combine: bool, expr: Expr },
    /// `USE SEMANTICS 'non_repeated_edge';` — the per-query matching-
    /// semantics selection the paper announces as planned syntax
    /// (Section 6.1, "syntactic sugar for specifying semantic
    /// alternatives"). Affects subsequent SELECT blocks.
    UseSemantics(crate::semantics::PathSemantics),
    While {
        cond: Expr,
        limit: Option<Expr>,
        body: Vec<Stmt>,
    },
    If {
        cond: Expr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
    },
    Foreach {
        var: String,
        iterable: Expr,
        body: Vec<Stmt>,
    },
    Print(Vec<PrintItem>),
    Return(Expr),
}

/// One accumulator declarator.
#[derive(Debug, Clone, PartialEq)]
pub struct AccumDecl {
    pub global: bool,
    pub name: String,
    pub init: Option<Expr>,
}

/// Source of a vertex-set assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum VSetSource {
    /// `{Page.*, Person.*}` — all vertices of the listed types
    /// (`{_}`/`{ANY}` = every vertex). An entry may also name a vertex
    /// parameter (singleton set).
    Literal(Vec<String>),
    Select(Box<SelectBlock>),
    /// `A UNION B` / `A INTERSECT B` / `A MINUS B` over vertex sets.
    SetOp { op: SetOp, lhs: String, rhs: String },
}

/// Vertex-set algebra operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    Union,
    Intersect,
    Minus,
}

/// A `SELECT` query block.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectBlock {
    pub outputs: Vec<OutputFragment>,
    pub from: Vec<FromItem>,
    pub where_clause: Option<Expr>,
    pub accum: Vec<AccStmt>,
    pub post_accum: Vec<AccStmt>,
    pub group_by: Option<GroupBy>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<Expr>,
}

/// One output fragment of a (multi-output) SELECT clause.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputFragment {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub into: Option<String>,
}

/// One projected column.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

/// `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

/// `GROUP BY` clause: one or more grouping sets (plain GROUP BY is one
/// set; `GROUPING SETS`, `CUBE` and `ROLLUP` expand to several — the
/// expansion happens in the parser so the executor sees only sets).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupBy {
    /// Full list of distinct grouping expressions (output columns).
    pub keys: Vec<Expr>,
    /// Each set selects indices into `keys`.
    pub sets: Vec<Vec<usize>>,
}

/// FROM-clause item.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// A path pattern, optionally graph-qualified:
    /// `LinkedIn:(Person:p -(Connected:c)- Person:o)`.
    Pattern {
        graph: Option<String>,
        start: VSpec,
        hops: Vec<Hop>,
    },
    /// A relational-table scan: `Employee:e`.
    Table { name: String, alias: String },
}

/// A vertex specifier: a name (vertex type, vertex-set variable, vertex
/// parameter, or `_`/`ANY`) with an optional binding variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VSpec {
    pub name: String,
    pub var: Option<String>,
}

/// One hop of a path pattern: `-(DARPE[:edgeVar])- VSpec`.
#[derive(Debug, Clone, PartialEq)]
pub struct Hop {
    pub darpe: darpe::Darpe,
    pub edge_var: Option<String>,
    pub to: VSpec,
}

/// A statement inside ACCUM / POST_ACCUM.
#[derive(Debug, Clone, PartialEq)]
pub enum AccStmt {
    /// `float salesPrice = e.quantity * p.list_price` (type optional).
    LocalDecl { name: String, expr: Expr },
    /// `v.@a += e` / `v.@a = e`.
    VAcc { var: String, name: String, combine: bool, expr: Expr },
    /// `@@a += e` / `@@a = e`.
    GAcc { name: String, combine: bool, expr: Expr },
}

/// A PRINT item.
#[derive(Debug, Clone, PartialEq)]
pub enum PrintItem {
    Expr { expr: Expr, label: String },
    /// `PRINT R[R.name, R.@cnt]` — project a vertex set; inside the
    /// bracket the set name doubles as the per-vertex alias.
    VSetProjection { set: String, items: Vec<SelectItem> },
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Null,
    Int(i64),
    Double(f64),
    Str(String),
    Bool(bool),
    /// Variable / parameter / vertex-set reference.
    Ident(String),
    /// `base.field` — vertex/edge attribute or table column.
    Attr { base: String, field: String },
    /// `v.@name` (`prev` = trailing apostrophe: pre-block snapshot).
    VAcc { var: String, name: String, prev: bool },
    /// `@@name`.
    GAcc(String),
    /// `f(args)`; `star` marks `count(*)`.
    Call { func: String, args: Vec<Expr>, star: bool },
    /// `v.outdegree("Likes")`, `v.type()`, `s.size()`, ...
    Method { base: Box<Expr>, method: String, args: Vec<Expr> },
    Unary { op: UnOp, expr: Box<Expr> },
    Binary { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr> },
    /// `(k1, k2 -> a1, a2)` — accumulator input tuple; evaluates to a
    /// `Value::Tuple` of keys followed by values.
    ArrowTuple { keys: Vec<Expr>, vals: Vec<Expr> },
    /// `(a, b, c)` — plain tuple (HeapAccum inputs).
    Tuple(Vec<Expr>),
    /// `CASE WHEN c1 THEN e1 ... ELSE e END`.
    Case {
        branches: Vec<(Expr, Expr)>,
        default: Option<Box<Expr>>,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl Expr {
    /// Walks the expression tree, applying `f` to every node.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Call { args, .. } | Expr::Tuple(args) => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Method { base, args, .. } => {
                base.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::ArrowTuple { keys, vals } => {
                for e in keys.iter().chain(vals) {
                    e.walk(f);
                }
            }
            Expr::Case { branches, default } => {
                for (c, e) in branches {
                    c.walk(f);
                    e.walk(f);
                }
                if let Some(d) = default {
                    d.walk(f);
                }
            }
            _ => {}
        }
    }

    /// True if any sub-expression is an aggregate function call
    /// (`count`/`sum`/`avg`/`min`/`max` with one argument or `count(*)`).
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if let Expr::Call { func, args, star } = e {
                let f = func.to_ascii_lowercase();
                if *star
                    || (args.len() == 1
                        && matches!(f.as_str(), "count" | "sum" | "avg" | "min" | "max"))
                {
                    found = true;
                }
            }
        });
        found
    }
}
